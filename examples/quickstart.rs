//! Quickstart: resolve a name over DNS-over-CoAP (FETCH) end to end.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Builds a DoC client and server, performs one FETCH exchange, and
//! prints each protocol step with the real on-the-wire sizes.

use doc_repro::coap::msg::Code;
use doc_repro::dns::{Name, Question, RecordType};
use doc_repro::doc::client::{DocClient, QueryOutcome};
use doc_repro::doc::method::DocMethod;
use doc_repro::doc::policy::CachePolicy;
use doc_repro::doc::server::{DocServer, MockUpstream};

fn main() {
    // 1. A mock recursive resolver that knows one name.
    let name = Name::parse("sensor-7.things.example.org").expect("valid name");
    let upstream = MockUpstream::new(1, 300, 300);
    upstream.add_aaaa(name.clone(), 2);
    let server = DocServer::new(CachePolicy::EolTtls, upstream);

    // 2. A DoC client using the preferred FETCH method with both the
    //    client-side DNS cache and the CoAP response cache enabled.
    let mut client = DocClient::new(DocMethod::Fetch, CachePolicy::EolTtls)
        .with_dns_cache()
        .with_coap_cache();

    // 3. First resolution goes over the (virtual) wire.
    let question = Question::new(name.clone(), RecordType::Aaaa);
    let outcome = client
        .begin_query(question.clone(), 0x0001, vec![0xC0, 0x01], 0)
        .expect("query construction");
    let request = match outcome {
        QueryOutcome::SendRequest(req) => req,
        QueryOutcome::Answered(_) => unreachable!("cache is cold"),
    };
    println!(
        "-> CoAP {} /dns  ({} bytes on the wire, {} bytes DNS query)",
        request.code,
        request.encoded_len(),
        request.payload.len()
    );

    let response = server.handle_request(&request, 0);
    assert_eq!(response.code, Code::CONTENT);
    println!(
        "<- CoAP {} (ETag {:02x?}, Max-Age {}, {} bytes DNS payload)",
        response.code,
        response
            .option(doc_repro::coap::opt::OptionNumber::ETAG)
            .expect("server sets ETag")
            .value,
        response.max_age(),
        response.payload.len()
    );

    let answer = client
        .handle_response(&[0xC0, 0x01], &response, 0)
        .expect("valid response");
    println!("answers for {name}:");
    for rec in &answer.answers {
        println!("  {} (TTL {} s)", describe(&rec.data), rec.ttl);
    }

    // 4. A second query 10 s later is served from the local DNS cache —
    //    no network traffic at all.
    match client
        .begin_query(question, 0x0002, vec![0xC0, 0x02], 10_000)
        .expect("query construction")
    {
        QueryOutcome::Answered(cached) => {
            println!(
                "second query answered locally from cache (TTL now {} s)",
                cached.answers[0].ttl
            );
        }
        QueryOutcome::SendRequest(_) => unreachable!("cache is warm"),
    }
    println!(
        "client stats: {} queries, {} DNS-cache hits",
        client.stats.queries, client.stats.dns_cache_hits
    );
}

fn describe(data: &doc_repro::dns::RecordData) -> String {
    match data {
        doc_repro::dns::RecordData::Aaaa(a) => format!("AAAA {a}"),
        doc_repro::dns::RecordData::A(a) => format!("A {a}"),
        other => format!("{other:?}"),
    }
}
