//! Encrypted service discovery: mDNS/DNS-SD over Group OSCORE — the
//! paper's §7/§8 future-work scenario ("We will also focus on a DoC
//! integration for mDNS protected by Group OSCORE to enable service
//! discovery").
//!
//! One querier multicasts an encrypted PTR browse for
//! `_coap._udp.local`; two group members (a camera and a sensor)
//! decrypt it and answer with protected DNS-SD responses carrying
//! PTR + SRV + TXT + AAAA records.
//!
//! ```sh
//! cargo run --example mdns_discovery
//! ```

use doc_repro::coap::msg::{CoapMessage, Code, MsgType};
use doc_repro::coap::opt::{CoapOption, OptionNumber};
use doc_repro::dns::dnssd::{
    browse_query, browse_response, parse_browse_response, ServiceInstance,
};
use doc_repro::dns::{Message, Name};
use doc_repro::oscore::group::GroupContext;

const GROUP_SECRET: &[u8] = b"home-iot-group-master-secret";
const GROUP_SALT: &[u8] = b"gm-salt";
const GROUP_ID: &[u8] = b"dns-sd";

fn instance(name: &str, host: &str, port: u16, addr: &str) -> ServiceInstance {
    ServiceInstance {
        instance: name.into(),
        service: "_coap._udp".into(),
        domain: "local".into(),
        target: Name::parse(host).expect("valid host"),
        port,
        txt: vec![("rt".into(), "doc".into())],
        address: addr.parse().expect("valid address"),
    }
}

fn main() {
    // Group members provisioned by the Group Manager.
    let mut querier = GroupContext::join(GROUP_SECRET, GROUP_SALT, GROUP_ID, b"Q");
    let mut camera = GroupContext::join(GROUP_SECRET, GROUP_SALT, GROUP_ID, b"CAM");
    let mut sensor = GroupContext::join(GROUP_SECRET, GROUP_SALT, GROUP_ID, b"SEN");

    // 1. Build the mDNS browse query and protect it for the group.
    let dns_query = browse_query("_coap._udp", "local", 0).expect("valid service");
    let inner = CoapMessage::request(Code::FETCH, MsgType::Non, 0x0001, vec![0x51])
        .with_option(CoapOption::new(OptionNumber::URI_PATH, b"dns".to_vec()))
        .with_payload(dns_query.encode());
    let (multicast, binding) = querier.protect_request(&inner).expect("group protect");
    println!(
        "-> multicast {} bytes (encrypted PTR browse for _coap._udp.local; outer code {})",
        multicast.encoded_len(),
        multicast.code
    );

    // 2. Each member decrypts the multicast and answers with its own
    //    protected DNS-SD response.
    let mut protected_answers = Vec::new();
    for (ctx, inst) in [
        (
            &mut camera,
            instance("kitchen-cam", "cam-1234.local", 5683, "fe80::c"),
        ),
        (
            &mut sensor,
            instance("hall-sensor", "sensor-9.local", 5683, "fe80::5"),
        ),
    ] {
        let (inner_req, from, bind) = ctx.unprotect_request(&multicast).expect("member decrypts");
        let query = Message::decode(&inner_req.payload).expect("valid DNS");
        println!(
            "   member {:?} decrypted browse from {:?} for {}",
            String::from_utf8_lossy(&ctx.sender_id),
            String::from_utf8_lossy(&from),
            query.questions[0].qname
        );
        let dns_resp = browse_response(&query, &[inst], 120).expect("valid response");
        let inner_resp =
            CoapMessage::ack_response(&inner_req, Code::CONTENT).with_payload(dns_resp.encode());
        protected_answers.push(
            ctx.protect_response(&inner_resp, &bind, &multicast)
                .expect("group protect"),
        );
    }

    // 3. The querier decrypts every answer and assembles the directory.
    println!("\ndiscovered services:");
    for outer in protected_answers {
        let (inner_resp, from) = querier
            .unprotect_response(&outer, &binding)
            .expect("querier decrypts");
        let dns = Message::decode(&inner_resp.payload).expect("valid DNS");
        for svc in parse_browse_response(&dns).expect("valid DNS-SD") {
            println!(
                "  {} @ {}:{} [{}] (answered by member {:?}, TXT {:?})",
                svc.instance_name().expect("valid"),
                svc.address,
                svc.port,
                svc.target,
                String::from_utf8_lossy(&from),
                svc.txt
            );
        }
    }
    println!(
        "\n(responses are encrypted end-to-end; an eavesdropper sees only outer POST/2.04 shells)"
    );
}
