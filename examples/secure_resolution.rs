//! Secure name resolution with OSCORE and with DTLS (CoAPS) — the two
//! security modes of the paper's §4.3 — including the session-setup
//! cost each one pays.
//!
//! ```sh
//! cargo run --example secure_resolution
//! ```

use doc_repro::coap::msg::Code;
use doc_repro::dns::{Message, Name, RecordType};
use doc_repro::doc::method::{build_request, DocMethod};
use doc_repro::doc::server::{DocServer, MockUpstream};
use doc_repro::doc::transport::{dns_query_bytes, session_setup, TransportKind};
use doc_repro::dtls::{DtlsClient, DtlsEvent, DtlsServer};
use doc_repro::oscore::context::SecurityContext;
use doc_repro::oscore::protect::OscoreEndpoint;

const PSK: &[u8] = b"123456789"; // 9-byte PSK, as in the paper

fn main() {
    let name = Name::parse("camera-3.things.example.org").expect("valid name");
    let query = dns_query_bytes(&name, RecordType::Aaaa);

    oscore_resolution(&name, &query);
    println!();
    dtls_resolution(&name, &query);
}

/// OSCORE: object security; the proxy-cacheable mode (Fig. 4b).
fn oscore_resolution(name: &Name, query: &[u8]) {
    println!("=== DNS over OSCORE ===");
    let secret = b"0123456789abcdef";
    let salt = b"example-salt";
    let mut client = OscoreEndpoint::new(SecurityContext::derive(secret, salt, b"C", b"S"), false);
    let mut server_osc =
        OscoreEndpoint::new(SecurityContext::derive(secret, salt, b"S", b"C"), false);
    let upstream = MockUpstream::new(2, 600, 600);
    upstream.add_aaaa(name.clone(), 1);
    let server = DocServer::new(doc_repro::doc::policy::CachePolicy::EolTtls, upstream);

    // Build the inner FETCH and protect it.
    let inner = build_request(
        DocMethod::Fetch,
        query,
        doc_repro::coap::msg::MsgType::Con,
        0x0101,
        vec![0xAA, 0x01],
    )
    .expect("request construction");
    let (outer, binding) = client.protect_request(&inner).expect("protect");
    println!(
        "-> outer CoAP {} ({} bytes; inner FETCH hidden, {} bytes overhead)",
        outer.code,
        outer.encoded_len(),
        outer.encoded_len() - inner.encoded_len()
    );

    // Server unprotects, resolves, protects the response.
    let (inner_at_server, s_binding) = server_osc.unprotect_request(&outer).expect("unprotect");
    let resp = server.handle_request(&inner_at_server, 0);
    let outer_resp = server_osc
        .protect_response(&resp, &s_binding, &outer)
        .expect("protect");
    println!(
        "<- outer CoAP {} ({} bytes; real code hidden)",
        outer_resp.code,
        outer_resp.encoded_len()
    );

    // Client unprotects and reads the answer.
    let inner_resp = client
        .unprotect_response(&outer_resp, &binding)
        .expect("unprotect");
    assert_eq!(inner_resp.code, Code::CONTENT);
    let msg = Message::decode(&inner_resp.payload).expect("valid DNS");
    println!(
        "   resolved {} answer(s); Max-Age {}",
        msg.answers.len(),
        inner_resp.max_age()
    );

    // Session setup: one Echo round trip (vs. the DTLS handshake).
    let setup = session_setup(TransportKind::Oscore);
    let setup_bytes: usize = setup.iter().map(|d| d.total).sum();
    println!(
        "   replay-window init: {} packets, {} bytes on air total",
        setup.len(),
        setup_bytes
    );
}

/// DTLS: transport security; needs the full handshake first.
fn dtls_resolution(name: &Name, query: &[u8]) {
    println!("=== DNS over DTLSv1.2 (PSK, AES-128-CCM-8) ===");
    let mut client = DtlsClient::new(7, b"Client_identity", PSK);
    let mut server_dtls = DtlsServer::new(8, PSK);

    // Handshake (8 flights).
    let mut c2s: Vec<Vec<u8>> = Vec::new();
    let mut flights = 0;
    let mut bytes = 0usize;
    for ev in client.start(0) {
        if let DtlsEvent::Transmit { datagram, label } = ev {
            println!("   handshake: {label} ({} bytes)", datagram.len());
            flights += 1;
            bytes += datagram.len();
            c2s.push(datagram);
        }
    }
    while !(client.is_connected() && server_dtls.is_connected()) {
        let mut s2c = Vec::new();
        for d in c2s.drain(..) {
            for ev in server_dtls.handle_datagram(0, &d) {
                if let DtlsEvent::Transmit { datagram, label } = ev {
                    println!("   handshake: {label} ({} bytes)", datagram.len());
                    flights += 1;
                    bytes += datagram.len();
                    s2c.push(datagram);
                }
            }
        }
        for d in s2c {
            for ev in client.handle_datagram(0, &d) {
                if let DtlsEvent::Transmit { datagram, label } = ev {
                    println!("   handshake: {label} ({} bytes)", datagram.len());
                    flights += 1;
                    bytes += datagram.len();
                    c2s.push(datagram);
                }
            }
        }
    }
    println!("   handshake complete: {flights} flights, {bytes} bytes");

    // Resolve over the established session.
    let upstream = MockUpstream::new(3, 600, 600);
    upstream.add_aaaa(name.clone(), 1);
    let record = client.send_application_data(query).expect("session up");
    println!(
        "-> DTLS record ({} bytes for a {}-byte DNS query)",
        record.len(),
        query.len()
    );
    let mut answer = None;
    for ev in server_dtls.handle_datagram(0, &record) {
        if let DtlsEvent::ApplicationData(dns_query) = ev {
            let q = Message::decode(&dns_query).expect("valid DNS");
            let resp = upstream.resolve(&q, 0);
            answer = Some(
                server_dtls
                    .send_application_data(&resp.encode())
                    .expect("session up"),
            );
        }
    }
    let record = answer.expect("server answered");
    for ev in client.handle_datagram(0, &record) {
        if let DtlsEvent::ApplicationData(dns_resp) = ev {
            let msg = Message::decode(&dns_resp).expect("valid DNS");
            println!(
                "<- DTLS record ({} bytes): {} answer(s), TTL {} s",
                record.len(),
                msg.answers.len(),
                msg.answers[0].ttl
            );
        }
    }
}
