//! Drive a full simulated testbed run with a realistic IoT workload:
//! names drawn from the calibrated corpus (Table 3 statistics), queried
//! at Poisson rate over the Fig. 2 two-hop topology, comparing plain
//! CoAP against OSCORE.
//!
//! ```sh
//! cargo run --release --example iot_workload
//! ```

use doc_repro::datasets::corpus::generate_corpus;
use doc_repro::datasets::lengths::Dataset;
use doc_repro::datasets::records::TrafficMix;
use doc_repro::datasets::stats::LengthStats;
use doc_repro::doc::experiment::{run, ExperimentConfig};
use doc_repro::doc::transport::TransportKind;

fn main() {
    // 1. Generate a corpus with the paper's empirical shape.
    let corpus = generate_corpus(Dataset::IotTotal, TrafficMix::IotWithoutMdns, 500, 0x10b);
    let lengths: Vec<usize> = corpus.iter().map(|c| c.name.presentation_len()).collect();
    let stats = LengthStats::from_lengths(&lengths);
    println!(
        "corpus: {} unique names, median length {} chars (mean {:.1}, Q1 {}, Q3 {})",
        corpus.len(),
        stats.q2,
        stats.mean,
        stats.q1,
        stats.q3
    );
    println!("example names:");
    for c in corpus.iter().take(5) {
        println!(
            "  {} ({} chars, {})",
            c.name,
            c.name.presentation_len(),
            c.rtype
        );
    }

    // 2. Run the two-hop testbed for plain CoAP and OSCORE.
    println!("\nsimulated testbed (2 clients, 2 wireless hops, 50 queries @ 5/s):");
    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>9} {:>9}",
        "transport", "<=250ms", "<=1s", "success", "frames2hop", "frames1hop"
    );
    for transport in [TransportKind::Coap, TransportKind::Oscore] {
        let cfg = ExperimentConfig {
            transport,
            num_queries: 50,
            num_names: 50,
            loss_permille: 120,
            seed: 0x10b,
            ..Default::default()
        };
        let r = run(&cfg);
        println!(
            "{:<10} {:>8.2} {:>8.2} {:>8.2} {:>9} {:>9}",
            transport.name(),
            r.fraction_within(250),
            r.fraction_within(1000),
            r.success_rate(),
            r.client_proxy.frames,
            r.proxy_br.frames
        );
    }
    println!("\n(OSCORE queries fragment where plain CoAP FETCH fits one frame — the Fig. 7 gap)");
}
