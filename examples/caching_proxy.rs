//! The Fig. 2/3 deployment in miniature: two DoC clients behind a
//! DoC-agnostic caching CoAP forward proxy, demonstrating how the
//! paper's EOL-TTLs scheme keeps ETag revalidation working while the
//! DoH-like baseline breaks on TTL decay.
//!
//! ```sh
//! cargo run --example caching_proxy
//! ```

use doc_repro::coap::msg::{CoapMessage, Code, MsgType};
use doc_repro::coap::opt::{CoapOption, OptionNumber};
use doc_repro::dns::{Message, Name, RecordType};
use doc_repro::doc::method::{build_request, DocMethod};
use doc_repro::doc::policy::CachePolicy;
use doc_repro::doc::proxy::{CoapProxy, ProxyAction};
use doc_repro::doc::server::{DocServer, MockUpstream};

fn fetch(name: &Name, mid: u16, token: u8) -> CoapMessage {
    let mut q = Message::query(0, name.clone(), RecordType::Aaaa);
    q.canonicalize_id();
    build_request(
        DocMethod::Fetch,
        &q.encode(),
        MsgType::Con,
        mid,
        vec![token],
    )
    .expect("request construction")
}

fn via_proxy(
    proxy: &CoapProxy,
    server: &DocServer,
    req: &CoapMessage,
    now: u64,
) -> (CoapMessage, bool) {
    match proxy.handle_client_request(req, now) {
        ProxyAction::Respond(resp) => (*resp, false),
        ProxyAction::Forward {
            request,
            exchange_id,
        } => {
            let upstream = server.handle_request(&request, now);
            (
                proxy
                    .handle_upstream_response(exchange_id, &upstream, now)
                    .expect("known exchange"),
                true,
            )
        }
    }
}

fn scenario(policy: CachePolicy) {
    println!("--- policy: {} ---", policy.name());
    let name = Name::parse("hub.smart-home.example.org").expect("valid name");
    let upstream = MockUpstream::new(11, 10, 10);
    upstream.add_aaaa(name.clone(), 4);
    let server = DocServer::new(policy, upstream);
    let proxy = CoapProxy::new(16);

    // t=0: C1 populates the proxy cache.
    let (r, upstream_used) = via_proxy(&proxy, &server, &fetch(&name, 1, 1), 0);
    println!(
        "t= 0s C1: {} via {} ({} B payload, Max-Age {})",
        r.code,
        if upstream_used {
            "server"
        } else {
            "proxy cache"
        },
        r.payload.len(),
        r.max_age()
    );
    let etag = r
        .option(OptionNumber::ETAG)
        .expect("ETag set")
        .value
        .clone();

    // t=4s: C2 asks the same name — served from the proxy cache.
    let (r, upstream_used) = via_proxy(&proxy, &server, &fetch(&name, 2, 2), 4_000);
    println!(
        "t= 4s C2: {} via {} (Max-Age {})",
        r.code,
        if upstream_used {
            "server"
        } else {
            "proxy cache"
        },
        r.max_age()
    );

    // t=12s: TTL expired; a background client refreshes the RRset so
    // its TTLs decayed relative to C1's copy.
    server.handle_request(&fetch(&name, 3, 9), 12_000);

    // t=14s: C1 revalidates with its old ETag.
    let mut reval = fetch(&name, 4, 1);
    reval.set_option(CoapOption::new(OptionNumber::ETAG, etag));
    let (r, _) = via_proxy(&proxy, &server, &reval, 14_000);
    match r.code {
        Code::VALID => println!(
            "t=14s C1: revalidation OK — 2.03 Valid, 0 payload bytes (saved {} B)",
            120
        ),
        Code::CONTENT => println!(
            "t=14s C1: revalidation FAILED — full 2.05 retransfer of {} B",
            r.payload.len()
        ),
        other => println!("t=14s C1: unexpected {other}"),
    }
    println!(
        "proxy: {} hits, {} revalidations ({} succeeded); server: {} validations, {} full responses\n",
        proxy.stats().cache_hits,
        proxy.stats().revalidations,
        proxy.stats().revalidated,
        server.stats().validations,
        server.stats().full_responses
    );
}

fn main() {
    println!("Two clients + caching CoAP forward proxy (the Fig. 3 scenario)\n");
    scenario(CachePolicy::DohLike);
    scenario(CachePolicy::EolTtls);
}
