//! Model-checked concurrency tests over the *real* workspace
//! primitives — the tier-1 slice of what `check_gate` explores more
//! exhaustively in CI. Each body is deterministic and self-contained;
//! `doc_check::explore` runs it once per bounded interleaving.

use doc_repro::check::sync::Arc;
use doc_repro::check::{explore, thread, Config, FailureKind};
use doc_repro::coap::shard::ShardedCache;
use doc_repro::doc::pool::SpmcRing;
use doc_repro::doc::proxy::{CoapProxy, ProxyAction};

/// Debug builds explore noticeably slower than the release-mode gate,
/// so tier-1 uses a tighter (but still exhaustive for these bodies)
/// budget.
fn cfg() -> Config {
    Config {
        max_schedules: 20_000,
        preemption_bound: 2,
        ..Config::default()
    }
}

#[test]
fn spmc_ring_delivers_exactly_once_under_all_bounded_schedules() {
    let report = explore(&cfg(), || {
        let ring: Arc<SpmcRing<u32>> = Arc::new(SpmcRing::new(2));
        let consumer = {
            let ring = Arc::clone(&ring);
            thread::spawn(move || {
                let mut got = Vec::new();
                let mut batch = Vec::new();
                while ring.pop_batch(&mut batch, 2) > 0 {
                    got.append(&mut batch);
                }
                got
            })
        };
        ring.push(1).expect("open");
        ring.push(2).expect("open");
        ring.close();
        assert_eq!(consumer.join(), vec![1, 2], "in-order, exactly once");
    })
    .expect("the ring has no failing interleaving");
    assert!(report.completed, "search truncated at {}", report.schedules);
    assert!(report.schedules > 1, "no branching happened");
}

#[test]
fn spmc_ring_close_races_cleanly_with_blocked_consumer() {
    let report = explore(&cfg(), || {
        let ring: Arc<SpmcRing<u32>> = Arc::new(SpmcRing::new(2));
        // The consumer may park on the empty ring before the producer
        // pushes; every wake path (push's notify, close's notify_all)
        // must eventually drain it.
        let consumer = {
            let ring = Arc::clone(&ring);
            thread::spawn(move || (ring.pop(), ring.pop()))
        };
        ring.push(5).expect("open");
        ring.close();
        let (first, second) = consumer.join();
        assert_eq!(first, Some(5));
        assert_eq!(second, None, "closed and drained");
    })
    .expect("close/drain has no failing interleaving");
    assert!(report.completed);
}

#[test]
fn sharded_cache_read_modify_write_loses_no_update() {
    let report = explore(&cfg(), || {
        let cache: Arc<ShardedCache<u64, u64>> = Arc::new(ShardedCache::new(2));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let cache = Arc::clone(&cache);
                thread::spawn(move || {
                    cache.with_shard_mut(&1, |m| {
                        *m.entry(1).or_insert(0) += 1;
                    });
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        assert_eq!(cache.get_cloned(&1), Some(2), "lost increment");
    })
    .expect("with_shard_mut is atomic per shard");
    assert!(report.completed);
}

/// The converse of the test above — a get/insert sequence that takes
/// the shard lock *twice* is not atomic, and the checker must say so.
/// This guards the checker's sensitivity on the real `ShardedCache`,
/// not just on the toy ring in `crates/check/tests/injected_race.rs`.
#[test]
fn sharded_cache_unlocked_rmw_is_caught() {
    let failure = explore(&cfg(), || {
        let cache: Arc<ShardedCache<u64, u64>> = Arc::new(ShardedCache::new(2));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let cache = Arc::clone(&cache);
                thread::spawn(move || {
                    // BUG under test: lock dropped between read and write.
                    let current = cache.get_cloned(&1).unwrap_or(0);
                    cache.insert(1, current + 1);
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        assert_eq!(cache.get_cloned(&1), Some(2), "lost increment");
    })
    .expect_err("two-lock read-modify-write must lose an update somewhere");
    assert_eq!(failure.kind, FailureKind::Panic);
    assert!(
        failure.message.contains("lost increment"),
        "{}",
        failure.message
    );
    assert!(
        failure.preemptions <= 2,
        "a small bound suffices: {}",
        failure.preemptions
    );
}

#[test]
fn proxy_stats_snapshots_stay_coherent_under_concurrent_hits() {
    let report = explore(&cfg(), || {
        let proxy = Arc::new(CoapProxy::with_shards(8, 2));
        let wire = fetch_wire("a.example.org");
        match proxy.handle_client_request_wire(&wire, 0) {
            Ok(ProxyAction::Forward {
                request,
                exchange_id,
            }) => {
                let resp = doc_repro::coap::msg::CoapMessage {
                    mtype: doc_repro::coap::msg::MsgType::Ack,
                    code: doc_repro::coap::msg::Code::CONTENT,
                    message_id: 1,
                    token: vec![1],
                    options: vec![doc_repro::coap::opt::CoapOption::uint(
                        doc_repro::coap::opt::OptionNumber::MAX_AGE,
                        60,
                    )],
                    payload: request.payload.clone(),
                };
                proxy
                    .handle_upstream_response(exchange_id, &resp, 0)
                    .expect("primed");
            }
            other => panic!("first touch must forward, got {other:?}"),
        }
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let proxy = Arc::clone(&proxy);
                let wire = wire.clone();
                thread::spawn(move || {
                    let action = proxy.handle_client_request_wire(&wire, 1).expect("valid");
                    assert!(matches!(action, ProxyAction::Respond(_)), "must hit");
                    let snap = proxy.stats();
                    assert!(snap.cache_hits <= snap.requests, "incoherent: {snap:?}");
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        let snap = proxy.stats();
        assert_eq!((snap.requests, snap.cache_hits), (3, 2), "{snap:?}");
    })
    .expect("atomic stats have no failing interleaving");
    assert!(report.completed);
}

fn fetch_wire(name: &str) -> Vec<u8> {
    use doc_repro::dns::{Message, Name, RecordType};
    let mut q = Message::query(0, Name::parse(name).expect("valid"), RecordType::Aaaa);
    q.canonicalize_id();
    doc_repro::doc::method::build_request(
        doc_repro::doc::method::DocMethod::Fetch,
        &q.encode(),
        doc_repro::coap::msg::MsgType::Con,
        9,
        vec![9],
    )
    .expect("valid request")
    .encode()
}
