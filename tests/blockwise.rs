//! Block-wise transfer integration (paper Appendix A/D, Fig. 12/14/15):
//! Block1 query slicing and Block2 response retrieval through the real
//! DoC server, plus the simulated Fig. 15 behaviour.

use doc_repro::coap::block::{Block1Sender, BlockAssembler, BlockOpt};
use doc_repro::coap::msg::{CoapMessage, Code, MsgType};
use doc_repro::coap::opt::OptionNumber;
use doc_repro::dns::{Message, Name, RecordType};
use doc_repro::doc::experiment::{run, ExperimentConfig};
use doc_repro::doc::method::{build_request, DocMethod};
use doc_repro::doc::policy::CachePolicy;
use doc_repro::doc::server::{DocServer, MockUpstream};

fn server_with(n_answers: u16, block: usize) -> (DocServer, Name) {
    let name = Name::parse("name-00000.c.example.org").unwrap();
    let up = MockUpstream::new(1, 60, 60);
    up.add_aaaa(name.clone(), n_answers);
    (
        DocServer::new(CachePolicy::EolTtls, up).with_block_size(block),
        name,
    )
}

fn query_bytes(name: &Name) -> Vec<u8> {
    let mut q = Message::query(0, name.clone(), RecordType::Aaaa);
    q.canonicalize_id();
    q.encode()
}

/// Block1-sliced query followed by Block2-sliced response, end to end
/// against the real server.
#[test]
fn block1_query_then_block2_response() {
    let (server, name) = server_with(4, 32);
    let dns_query = query_bytes(&name);
    assert!(dns_query.len() > 32, "query needs slicing at 32 B blocks");

    // Client side: slice the query with Block1 (token reused across the
    // transaction, like the experiment driver does).
    let token = vec![0x42, 0x01];
    let mut sender = Block1Sender::new(dns_query.clone(), 32).unwrap();
    let mut mid = 1u16;
    let mut final_resp: Option<CoapMessage> = None;
    while let Some((slice, block)) = sender.next_block() {
        let mut req =
            build_request(DocMethod::Fetch, &[], MsgType::Con, mid, token.clone()).unwrap();
        doc_repro::coap::block::apply_block1(&mut req, slice, block);
        let resp = server.handle_request(&req, 0);
        mid += 1;
        if block.more {
            assert_eq!(resp.code, Code::CONTINUE, "intermediate blocks get 2.31");
            let echoed = BlockOpt::from_message(&resp, OptionNumber::BLOCK1)
                .unwrap()
                .unwrap();
            sender.handle_ack(echoed).unwrap();
        } else {
            assert_eq!(resp.code, Code::CONTENT);
            final_resp = Some(resp);
        }
    }
    // Server sliced the (large, 4-answer) response with Block2.
    let first = final_resp.expect("final response");
    let b0 = BlockOpt::from_message(&first, OptionNumber::BLOCK2)
        .expect("Block2 present")
        .unwrap();
    assert_eq!(b0.num, 0);
    assert!(b0.more);
    assert_eq!(first.payload.len(), 32);

    // Retrieve the remaining blocks.
    let mut assembler = BlockAssembler::new();
    let mut body = assembler.push(b0, &first.payload).unwrap();
    let mut num = 1u32;
    while body.is_none() {
        let mut follow = CoapMessage::request(Code::FETCH, MsgType::Con, mid, token.clone());
        follow.options.push(doc_repro::coap::opt::CoapOption::new(
            OptionNumber::URI_PATH,
            b"dns".to_vec(),
        ));
        follow.set_option(
            BlockOpt::new(num, false, 32)
                .unwrap()
                .to_option(OptionNumber::BLOCK2),
        );
        let resp = server.handle_request(&follow, 0);
        assert_eq!(resp.code, Code::CONTENT);
        let b = BlockOpt::from_message(&resp, OptionNumber::BLOCK2)
            .unwrap()
            .unwrap();
        body = assembler.push(b, &resp.payload).unwrap();
        num += 1;
        mid += 1;
    }
    let msg = Message::decode(&body.unwrap()).unwrap();
    assert_eq!(msg.answers.len(), 4);
}

/// Two clients' concurrent block transfers must not interfere (the
/// server keys state per (peer, token)).
#[test]
fn concurrent_transfers_do_not_collide() {
    let (server, name) = server_with(4, 32);
    let dns_query = query_bytes(&name);
    let tok_a = vec![0xA0];
    let tok_b = vec![0xB0];
    let mut sender_a = Block1Sender::new(dns_query.clone(), 32).unwrap();
    let mut sender_b = Block1Sender::new(dns_query, 32).unwrap();
    // Interleave: a0, b0, a1, b1, a2, b2 — with peers 1 and 2.
    let mut mid = 1;
    loop {
        let next_a = sender_a.next_block();
        let next_b = sender_b.next_block();
        if next_a.is_none() && next_b.is_none() {
            break;
        }
        for (peer, tok, next) in [(1u64, &tok_a, next_a), (2u64, &tok_b, next_b)] {
            if let Some((slice, block)) = next {
                let mut req =
                    build_request(DocMethod::Fetch, &[], MsgType::Con, mid, tok.clone()).unwrap();
                doc_repro::coap::block::apply_block1(&mut req, slice, block);
                let resp = server.handle_request_from(peer, &req, 0);
                mid += 1;
                if block.more {
                    assert_eq!(resp.code, Code::CONTINUE);
                } else {
                    assert_eq!(resp.code, Code::CONTENT, "peer {peer} completes");
                }
            }
        }
    }
    assert_eq!(server.stats().errors, 0);
}

/// Fig. 15 behaviour in the full simulator: smaller blocks succeed less
/// often / take longer under loss, and 32-byte blocks avoid any
/// 6LoWPAN fragmentation.
#[test]
fn fig15_blockwise_in_simulation() {
    let base = ExperimentConfig {
        num_queries: 15,
        num_names: 15,
        loss_permille: 60,
        seed: 0xB10C,
        ..Default::default()
    };
    let plain = run(&base);
    let b32 = run(&ExperimentConfig {
        block_size: Some(32),
        ..base.clone()
    });
    let b16 = run(&ExperimentConfig {
        block_size: Some(16),
        ..base.clone()
    });
    assert!(plain.success_rate() > 0.9);
    assert!(b32.success_rate() > 0.8, "b32 {}", b32.success_rate());
    assert!(b16.success_rate() > 0.6, "b16 {}", b16.success_rate());
    // More exchanges → more frames on the first hop.
    assert!(b16.client_proxy.frames > plain.client_proxy.frames);
    assert!(b16.client_proxy.frames >= b32.client_proxy.frames);
    // Median latency grows as blocks shrink.
    let median = |r: &doc_repro::doc::experiment::ExperimentResult| {
        let l = r.sorted_latencies();
        l[l.len() / 2]
    };
    assert!(median(&b16) >= median(&b32));
    assert!(median(&b32) >= median(&plain));
}
