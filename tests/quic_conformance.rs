//! Conformance of the *simulated* DoQ transport (`doc-quic` +
//! `TransportKind::Quic`) against the paper's *analytical* DNS-over-
//! QUIC model (`doc-models::quic`, §5.5 / Fig. 9): the handshake must
//! cost the 1 RTT the model assumes, and the bytes a DoQ packet puts
//! on the wire must fall inside the model's swept 1-RTT overhead
//! envelope — so Fig. 9's curves and the simulation describe the same
//! transport.

use doc_repro::doc::method::DocMethod;
use doc_repro::doc::transport::{dissect, PacketItem, TransportKind, QUIC_PSK};
use doc_repro::models::quic::{
    doq_bytes_on_air, doq_frames, quic_penalty, QuicHandshake, QUIC_MIN_OVERHEAD,
};
use doc_repro::netsim::{LinkKind, Sim, SimEvent, Tag};
use doc_repro::quic::{conn, doq, Connection, ControllerKind, QuicEvent};
use doc_repro::time::Instant;

const ITEMS: [PacketItem; 3] = [
    PacketItem::Query,
    PacketItem::ResponseA,
    PacketItem::ResponseAaaa,
];

/// The simulated DoQ packet overhead (everything that is not the DNS
/// message) sits inside the model's 1-RTT header envelope, for the
/// query and both response shapes.
#[test]
fn doq_overhead_within_analytical_1rtt_envelope() {
    let (lo, hi) = QuicHandshake::OneRtt.header_range();
    assert_eq!(lo, QUIC_MIN_OVERHEAD);
    for item in ITEMS {
        let d = dissect(TransportKind::Quic, DocMethod::Fetch, item);
        let overhead = d.udp_payload() - d.dns;
        assert!(
            (lo..=hi).contains(&overhead),
            "{}: overhead {overhead} outside the {lo}–{hi} envelope",
            d.label
        );
    }
}

/// Feeding the *measured* overhead back into the analytical
/// bytes-on-air / fragment-count formulas reproduces the simulated
/// packet exactly — the model and the simulation agree byte for byte.
#[test]
fn analytical_formulas_reproduce_simulated_packets() {
    for item in ITEMS {
        let d = dissect(TransportKind::Quic, DocMethod::Fetch, item);
        let overhead = d.udp_payload() - d.dns;
        assert_eq!(
            doq_bytes_on_air(d.dns, overhead),
            d.total,
            "{}: bytes on air",
            d.label
        );
        assert_eq!(doq_frames(d.dns, overhead), d.frames, "{}: frames", d.label);
    }
}

/// Fig. 9 cross-check: the simulated DoQ-vs-DTLS penalty lands inside
/// the band the analytical sweep spans for 1-RTT headers.
#[test]
fn simulated_penalty_inside_fig9_band() {
    let (lo, hi) = QuicHandshake::OneRtt.header_range();
    for item in ITEMS {
        let doq = dissect(TransportKind::Quic, DocMethod::Fetch, item);
        let base = dissect(TransportKind::Dtls, DocMethod::Fetch, item);
        let actual = doq.total as f64 / base.total as f64 * 100.0;
        let band_lo = quic_penalty(TransportKind::Dtls, item, lo);
        let band_hi = quic_penalty(TransportKind::Dtls, item, hi);
        assert!(
            (band_lo..=band_hi).contains(&actual),
            "{:?}: simulated penalty {actual:.1}% outside the analytical band {band_lo:.1}–{band_hi:.1}%",
            item
        );
    }
}

/// Drive the QUIC-lite handshake *in band* through the simulated
/// multi-hop network: the client must be established after exactly one
/// flight in each direction (the model's 1-RTT assumption), and the
/// first query then resolves in roughly one more round trip — so a
/// cold DoQ resolution costs ~2 RTT, not the 8 flights of DTLS.
#[test]
fn in_band_handshake_is_one_rtt_and_query_follows() {
    // client(0) -- proxy(1) -- border router(2) -- resolver(3), no loss.
    let mut sim = Sim::new(0xD0C);
    for (a, b) in [(0, 1), (1, 2)] {
        sim.add_link(
            a,
            b,
            LinkKind::Wireless {
                channel: 0,
                loss_permille: 0,
            },
        );
    }
    sim.add_link(2, 3, LinkKind::Wired { latency_us: 1000 });
    sim.add_route(&[0, 1, 2, 3]);

    let mut client = Connection::client(1, QUIC_PSK);
    let mut server = Connection::server(2, QUIC_PSK);
    let mut client_flights = 0u32;
    let mut server_flights = 0u32;
    for d in client.connect(Instant::EPOCH) {
        client_flights += 1;
        sim.send_datagram(0, 3, d, Tag::Other);
    }
    let mut established_at = None;
    let mut resolved_at = None;
    let dns_query = b"\x00\x2A-stand-in-dns-query-bytes-padded-to-42".to_vec();
    while let Some((now, ev)) = sim.next_event() {
        let SimEvent::Datagram { to, bytes, .. } = ev else {
            continue;
        };
        if to == 3 {
            for ev in server.handle_datagram(now, &bytes) {
                match ev {
                    QuicEvent::Transmit(d) => {
                        server_flights += 1;
                        sim.send_datagram(3, 0, d, Tag::Other);
                    }
                    QuicEvent::Stream { id, data, fin } => {
                        assert!(fin, "DoQ query stream must FIN");
                        let echoed = doq::decode_doq(&data).expect("framed query").to_vec();
                        for d in server
                            .send_stream(id, &doq::encode_doq(&echoed), true, now)
                            .expect("established")
                        {
                            sim.send_datagram(3, 0, d, Tag::Response);
                        }
                    }
                    QuicEvent::Established => {}
                }
            }
        } else if to == 0 {
            for ev in client.handle_datagram(now, &bytes) {
                match ev {
                    QuicEvent::Transmit(d) => sim.send_datagram(0, 3, d, Tag::Other),
                    QuicEvent::Established => {
                        established_at = Some(now);
                        // Data can flow immediately: open the query
                        // stream in the same instant.
                        let sid = client.open_stream();
                        for d in client
                            .send_stream(sid, &doq::encode_doq(&dns_query), true, now)
                            .expect("established")
                        {
                            sim.send_datagram(0, 3, d, Tag::Query);
                        }
                    }
                    QuicEvent::Stream { data, fin, .. } => {
                        assert!(fin);
                        assert_eq!(doq::decode_doq(&data).expect("framed"), dns_query);
                        resolved_at = Some(now);
                    }
                }
            }
        }
        if resolved_at.is_some() {
            break;
        }
    }
    let established_at = established_at.expect("handshake completed");
    let resolved_at = resolved_at.expect("query resolved");
    assert_eq!(client_flights, 1, "client handshake is one datagram");
    assert_eq!(server_flights, 1, "server handshake is one datagram");
    assert!(established_at > Instant::EPOCH);
    // The query round trip costs about one more RTT: allow generous
    // slack for CSMA backoff and the slightly larger protected packet,
    // but rule out any extra handshake round trip.
    let handshake_rtt = established_at - Instant::EPOCH;
    let query_rtt = resolved_at - established_at;
    assert!(
        query_rtt <= handshake_rtt.saturating_mul(2),
        "query RTT {query_rtt} vs handshake RTT {handshake_rtt}"
    );
}

/// `FixedRto` is the conformance oracle: with the pluggable-recovery
/// redesign in place, its wire behaviour must stay byte-exact — the
/// retransmission schedule is the analytical 300 ms initial RTO with
/// binary exponential backoff, the retransmitted datagrams carry fresh
/// packet numbers but identical frames, and every packet stays inside
/// the model's 1-RTT overhead envelope.
#[test]
fn fixed_rto_schedule_and_bytes_are_pinned() {
    let at = |ms: u64| Instant::from_millis(ms);
    let (mut client, _server) = doc_repro::quic::establish_pair(7, QUIC_PSK);
    assert_eq!(client.controller_name(), "fixed_rto");
    let sid = client.open_stream();
    let dns_msg = b"\x00\x08pinned-q";
    let payload = doq::encode_doq(dns_msg);
    let first = client
        .send_stream(sid, &payload, true, at(0))
        .expect("established");
    assert_eq!(first.len(), 1, "one-MTU query is a single datagram");

    // No ack ever arrives: the timer fires at exactly 300 ms, then
    // 300 ms + 600 ms, then + 1200 ms, ... (RFC 6298-style doubling
    // with the analytical model's fixed base).
    let mut expected_deadline = at(0) + conn::INITIAL_RTO;
    let mut rto = conn::INITIAL_RTO;
    let mut wire_sizes = Vec::new();
    for _ in 0..conn::MAX_RETRIES {
        assert_eq!(client.next_timeout(), Some(expected_deadline));
        // Polling *before* the deadline transmits nothing.
        let early = client.poll(expected_deadline - doc_repro::time::Millis::from_millis(1));
        assert!(early.datagrams.is_empty());
        let fired = client.poll(expected_deadline);
        assert_eq!(fired.datagrams.len(), 1, "one retransmission per expiry");
        wire_sizes.push(fired.datagrams[0].len());
        rto = rto.saturating_mul(2);
        expected_deadline = expected_deadline + rto;
        assert_eq!(fired.next_timeout, Some(expected_deadline));
    }
    // Identical frames re-packetized under a fresh packet number keep
    // an identical wire size — the retransmit bytes are deterministic.
    assert!(wire_sizes.windows(2).all(|w| w[0] == w[1]));

    // After MAX_RETRIES expiries the packet is abandoned and the timer
    // goes quiet.
    let last = client.poll(expected_deadline);
    assert!(last.datagrams.is_empty());
    assert_eq!(last.next_timeout, None);
    assert_eq!(client.abandoned(), 1);

    // The pinned wire size sits inside the analytical 1-RTT overhead
    // envelope (everything that is not the raw DNS message: header,
    // protection, and DoQ length prefix).
    let (lo, hi) = QuicHandshake::OneRtt.header_range();
    let overhead = wire_sizes[0] - dns_msg.len();
    assert!(
        (lo..=hi).contains(&overhead),
        "retransmit overhead {overhead} outside {lo}–{hi}"
    );
}

/// The adaptive controllers share the oracle's handshake: swapping the
/// congestion controller must not change the handshake wire bytes at
/// all (the redesign only alters post-handshake recovery).
#[test]
fn controllers_share_byte_exact_handshake() {
    let fixed = Connection::client(9, QUIC_PSK).connect(Instant::EPOCH);
    for kind in [ControllerKind::Cubic, ControllerKind::BbrLite] {
        let adaptive = Connection::client_with(9, QUIC_PSK, kind).connect(Instant::EPOCH);
        assert_eq!(fixed, adaptive, "{kind:?} handshake diverges from oracle");
    }
}

/// The 0-RTT half of the model stays analytical (QUIC-lite does not
/// implement session resumption): its envelope must remain *above* the
/// simulated 1-RTT packets, as Fig. 9 draws it.
#[test]
fn zero_rtt_model_upper_bounds_simulation() {
    let (_, hi0) = QuicHandshake::ZeroRtt.header_range();
    for item in ITEMS {
        let d = dissect(TransportKind::Quic, DocMethod::Fetch, item);
        assert!(
            d.total <= doq_bytes_on_air(d.dns, hi0),
            "{}: simulated packet exceeds the max-0-RTT model",
            d.label
        );
    }
}
