//! End-to-end integration of all five transports through the full
//! simulated testbed, asserting the qualitative shape of the paper's
//! Fig. 7/10 results.

// Seeds are grouped as figure number + scenario (`0xF16_10` = Fig. +
// scenario 10), not by nibble.
#![allow(clippy::unusual_byte_groupings)]

use doc_repro::dns::RecordType;
use doc_repro::doc::experiment::{run, ExperimentConfig};
use doc_repro::doc::method::DocMethod;
use doc_repro::doc::policy::CachePolicy;
use doc_repro::doc::transport::{TransportKind, TRANSPORT_MATRIX};

fn cfg(transport: TransportKind, method: DocMethod) -> ExperimentConfig {
    ExperimentConfig {
        transport,
        method,
        num_queries: 30,
        num_names: 30,
        loss_permille: 100,
        seed: 0xE2E,
        ..Default::default()
    }
}

/// Every row of the shared transport × method matrix — the same table
/// the throughput bench and Fig. 7 derive their sweeps from, so a new
/// transport cannot be silently omitted here — resolves under 10%
/// frame loss.
#[test]
fn all_transports_resolve() {
    for (transport, method) in TRANSPORT_MATRIX {
        let r = run(&cfg(transport, method));
        assert!(
            r.success_rate() > 0.85,
            "{}/{}: success {}",
            transport.name(),
            method.name(),
            r.success_rate()
        );
        assert!(r.server_stats.requests > 0 || transport == TransportKind::Udp);
    }
}

/// The stream transports really traverse the lossy simulated network:
/// bytes move on the client↔proxy hop, DoH's HTTP framing costs more
/// than DoQ's bare length prefix, and the per-query numbers come back
/// deterministic.
#[test]
fn stream_transports_shape() {
    let doq = run(&cfg(TransportKind::Quic, DocMethod::Fetch));
    let doh = run(&cfg(TransportKind::DohLite, DocMethod::Fetch));
    let dot = run(&cfg(TransportKind::Dot, DocMethod::Fetch));
    for (label, r) in [("DoQ", &doq), ("DoH", &doh), ("DoT", &dot)] {
        assert!(r.success_rate() > 0.85, "{label}: {}", r.success_rate());
        assert!(r.client_proxy.bytes > 0, "{label}: no traffic on the air");
        assert!(
            r.server_stats.requests >= 25,
            "{label}: {:?}",
            r.server_stats
        );
    }
    assert!(
        doh.client_proxy.bytes > doq.client_proxy.bytes,
        "DoH framing must cost more than DoQ: {} vs {}",
        doh.client_proxy.bytes,
        doq.client_proxy.bytes
    );
    let again = run(&cfg(TransportKind::Quic, DocMethod::Fetch));
    assert_eq!(doq.queries, again.queries);
}

/// Fig. 7 grouping: averaged over seeds, the unfragmented UDP A-record
/// exchange resolves more queries quickly than CoAPS (whose query and
/// response both fragment).
#[test]
fn fig7_shape_udp_vs_fragmenting_group() {
    let frac_250 = |transport: TransportKind, rtype: RecordType| {
        let mut acc = 0.0;
        let reps = 6;
        for rep in 0..reps as u64 {
            let mut c = cfg(transport, DocMethod::Fetch);
            c.record_type = rtype;
            c.seed = 0x51AB + rep;
            c.loss_permille = 120;
            acc += run(&c).fraction_within(250);
        }
        acc / reps as f64
    };
    let udp_a = frac_250(TransportKind::Udp, RecordType::A);
    let coaps_a = frac_250(TransportKind::Coaps, RecordType::A);
    assert!(
        udp_a > coaps_a,
        "UDP A {udp_a:.3} should beat CoAPS A {coaps_a:.3}"
    );
    // For AAAA, UDP's response fragments too, narrowing the gap —
    // both must still mostly succeed.
    let udp_aaaa = frac_250(TransportKind::Udp, RecordType::Aaaa);
    assert!(udp_aaaa > 0.5);
    assert!(udp_a >= udp_aaaa, "A {udp_a:.3} >= AAAA {udp_aaaa:.3}");
}

/// Fig. 10 headline: "CoAP caching leads to 50% less link utilization"
/// on the bottleneck (proxy ↔ border router) link.
#[test]
fn fig10_proxy_cache_halves_bottleneck_traffic() {
    let run_with = |proxy_cache: bool| {
        let mut frames = 0u64;
        for rep in 0..4u64 {
            let c = ExperimentConfig {
                proxy_cache,
                policy: CachePolicy::EolTtls,
                num_queries: 50,
                num_names: 8,
                answers_per_response: 4,
                ttl_range: (2, 8),
                loss_permille: 50,
                seed: 0xF16_10 + rep,
                ..Default::default()
            };
            frames += run(&c).proxy_br.frames;
        }
        frames
    };
    let opaque = run_with(false);
    let proxied = run_with(true);
    assert!(
        (proxied as f64) < 0.7 * opaque as f64,
        "proxied {proxied} vs opaque {opaque} frames on the 1-hop link"
    );
}

/// Fig. 10/11: EOL TTLs outperforms DoH-like when caches revalidate.
#[test]
fn eol_ttls_beats_doh_like() {
    let run_policy = |policy: CachePolicy| {
        let mut bytes = 0u64;
        let mut validations = 0u32;
        for rep in 0..4u64 {
            let c = ExperimentConfig {
                proxy_cache: true,
                client_coap_cache: true,
                policy,
                num_queries: 50,
                num_names: 8,
                answers_per_response: 4,
                ttl_range: (2, 8),
                loss_permille: 50,
                seed: 0xF16_11 + rep,
                ..Default::default()
            };
            let r = run(&c);
            bytes += r.proxy_br.bytes;
            validations += r.server_stats.validations;
        }
        (bytes, validations)
    };
    let (doh_bytes, doh_val) = run_policy(CachePolicy::DohLike);
    let (eol_bytes, eol_val) = run_policy(CachePolicy::EolTtls);
    assert!(
        eol_val > doh_val,
        "EOL validations {eol_val} vs DoH {doh_val}"
    );
    assert!(
        eol_bytes < doh_bytes,
        "EOL upstream bytes {eol_bytes} vs DoH {doh_bytes}"
    );
}

/// OSCORE encrypts end-to-end: the server sees FETCH after unprotect,
/// the wire shows POST — and the run still completes. (The experiment
/// driver exercises the full protect/unprotect path; this asserts the
/// bytes moved.)
#[test]
fn oscore_end_to_end_traffic_is_larger_than_plain() {
    let plain = run(&cfg(TransportKind::Coap, DocMethod::Fetch));
    let oscore = run(&cfg(TransportKind::Oscore, DocMethod::Fetch));
    assert!(oscore.client_proxy.bytes > plain.client_proxy.bytes);
    assert!(oscore.success_rate() > 0.85);
}

/// Determinism across the whole stack: same seed, same result.
#[test]
fn full_stack_determinism() {
    let a = run(&cfg(TransportKind::Coaps, DocMethod::Fetch));
    let b = run(&cfg(TransportKind::Coaps, DocMethod::Fetch));
    assert_eq!(a.queries, b.queries);
    assert_eq!(a.client_proxy, b.client_proxy);
    assert_eq!(a.proxy_br, b.proxy_br);
}
