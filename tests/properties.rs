//! Property-based tests (proptest) over the core data structures and
//! invariants of the workspace: codecs must round-trip, parsers must be
//! total, security layers must preserve payloads and reject tampering.

use doc_repro::coap::msg::{CoapMessage, Code, MsgType};
use doc_repro::coap::opt::{CoapOption, OptionNumber};
use doc_repro::coap::view::CoapView;
use doc_repro::crypto::base64url;
use doc_repro::crypto::cbor::Value;
use doc_repro::crypto::ccm::AesCcm;
use doc_repro::dns::view::MessageView;
use doc_repro::dns::{cbor_fmt, Message, Name, Question, Rcode, Record, RecordType};
use doc_repro::dtls::record::{ContentType, Record as DtlsRecord, RecordView as DtlsRecordView};
use doc_repro::quic::recovery::{CongestionController, Cubic, RttEstimator, MIN_WINDOW};
use doc_repro::quic::{doq, frame::Frame, packet, varint};
use doc_repro::time::{Instant, Millis};
use proptest::prelude::*;

fn arb_label() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9][a-z0-9-]{0,20}").expect("valid regex")
}

fn arb_name() -> impl Strategy<Value = Name> {
    proptest::collection::vec(arb_label(), 1..5)
        .prop_map(|labels| Name::parse(&labels.join(".")).expect("labels are valid"))
}

proptest! {
    /// DNS messages round-trip through the wire codec.
    #[test]
    fn dns_message_roundtrip(name in arb_name(), id in any::<u16>(), n in 0usize..6) {
        let query = Message::query(id, name.clone(), RecordType::Aaaa);
        let mut answers = Vec::new();
        for i in 0..n {
            answers.push(Record::aaaa(
                name.clone(),
                i as u32 * 7,
                std::net::Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, i as u16),
            ));
        }
        let resp = Message::response(&query, Rcode::NoError, answers);
        let wire = resp.encode();
        let back = Message::decode(&wire).unwrap();
        prop_assert_eq!(back, resp);
    }

    /// The DNS decoder never panics on arbitrary input.
    #[test]
    fn dns_decode_total(data in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = Message::decode(&data);
    }

    /// Guard for the zero-copy compression rewrite: over arbitrary
    /// multi-name messages (names sharing suffixes to various depths,
    /// plus unrelated names), the compressed encoding decodes to
    /// exactly the message the uncompressed encoding decodes to, and is
    /// never larger than the uncompressed wire form.
    #[test]
    fn dns_compression_roundtrip_matches_uncompressed(
        base in arb_name(),
        hosts in proptest::collection::vec(arb_label(), 1..10),
        others in proptest::collection::vec(arb_name(), 0..4),
        ttl in 0u32..100_000,
    ) {
        let query = Message::query(0, base.clone(), RecordType::Aaaa);
        let mut answers = Vec::new();
        for (i, h) in hosts.iter().enumerate() {
            // Rotate through: subdomain of the query name, the query
            // name itself, and a deeper two-label subdomain — all
            // compressible to different depths.
            let name = match i % 3 {
                0 => Name::parse(&format!("{h}.{base}")).expect("valid"),
                1 => base.clone(),
                _ => Name::parse(&format!("{h}.sub.{base}")).expect("valid"),
            };
            if name.wire_len() > 255 { continue; }
            answers.push(Record::aaaa(
                name,
                ttl,
                std::net::Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, i as u16),
            ));
        }
        for (i, name) in others.iter().enumerate() {
            answers.push(Record::aaaa(
                name.clone(),
                ttl,
                std::net::Ipv6Addr::new(0x2001, 0xdb8, 0, 1, 0, 0, 0, i as u16),
            ));
        }
        let resp = Message::response(&query, Rcode::NoError, answers);
        let compressed = resp.encode();
        let uncompressed = resp.encode_uncompressed();
        prop_assert!(compressed.len() <= uncompressed.len());
        prop_assert_eq!(uncompressed.len(), resp.uncompressed_len());
        let via_compressed = Message::decode(&compressed).unwrap();
        let via_uncompressed = Message::decode(&uncompressed).unwrap();
        prop_assert_eq!(&via_compressed, &via_uncompressed);
        prop_assert_eq!(&via_compressed, &resp);
    }

    /// Arbitrary records round-trip.
    #[test]
    fn dns_record_roundtrip(name in arb_name(), ttl in any::<u32>(), octets in any::<[u8; 16]>()) {
        let rec = Record::aaaa(name, ttl, std::net::Ipv6Addr::from(octets));
        let mut msg = Vec::new();
        let mut table = doc_repro::dns::CompressionMap::new();
        rec.encode(&mut msg, &mut table);
        let mut pos = 0;
        let back = Record::decode(&msg, &mut pos).unwrap();
        prop_assert_eq!(back, rec);
    }

    /// CoAP messages round-trip with arbitrary token/options/payload.
    #[test]
    fn coap_roundtrip(
        token in proptest::collection::vec(any::<u8>(), 0..=8),
        mid in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..200),
        max_age in any::<u32>(),
        etag in proptest::collection::vec(any::<u8>(), 1..=8),
    ) {
        let mut msg = CoapMessage::request(Code::FETCH, MsgType::Con, mid, token);
        msg.options.push(CoapOption::new(OptionNumber::URI_PATH, b"dns".to_vec()));
        msg.options.push(CoapOption::uint(OptionNumber::MAX_AGE, max_age));
        msg.options.push(CoapOption::new(OptionNumber::ETAG, etag));
        msg.payload = payload;
        let back = CoapMessage::decode(&msg.encode()).unwrap();
        prop_assert_eq!(back.message_id, msg.message_id);
        prop_assert_eq!(back.max_age(), msg.max_age());
        prop_assert_eq!(&back.token, &msg.token);
        prop_assert_eq!(&back.payload, &msg.payload);
    }

    /// The CoAP decoder never panics on arbitrary input.
    #[test]
    fn coap_decode_total(data in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = CoapMessage::decode(&data);
    }

    /// Equivalence guard for the borrowed DNS decode layer: on
    /// arbitrary bytes, `MessageView::parse` and `Message::decode`
    /// either both reject or both accept — and when they accept, every
    /// field of the view materializes to exactly the owned decode.
    /// View iterators must be total on whatever parses.
    #[test]
    fn dns_view_agrees_on_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..400)) {
        let owned = Message::decode(&data);
        let view = MessageView::parse(&data);
        prop_assert_eq!(owned.is_ok(), view.is_ok());
        if let (Ok(m), Ok(v)) = (owned, view) {
            prop_assert_eq!(v.to_owned(), m);
            for (_, r) in v.records() {
                let _ = (r.name.wire_len(), r.rdata().len());
            }
        }
    }

    /// The same equivalence over *mutated and truncated* valid wire
    /// messages — the adversarial neighborhood of real traffic, where
    /// compression pointers and RDATA lengths go subtly wrong.
    #[test]
    fn dns_view_agrees_on_mutated_wire(
        name in arb_name(),
        n in 0usize..5,
        flips in proptest::collection::vec(any::<(usize, u8)>(), 0..4),
        cut in any::<usize>(),
    ) {
        let query = Message::query(0, name.clone(), RecordType::Aaaa);
        let answers = (0..n)
            .map(|i| Record::aaaa(
                name.clone(),
                300,
                std::net::Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, i as u16),
            ))
            .collect();
        let mut wire = Message::response(&query, Rcode::NoError, answers).encode();
        for (pos, bits) in flips {
            let len = wire.len();
            wire[pos % len] ^= bits;
        }
        wire.truncate(cut % (wire.len() + 1));
        let owned = Message::decode(&wire);
        let view = MessageView::parse(&wire);
        prop_assert_eq!(owned.is_ok(), view.is_ok(), "wire {:02X?}", wire);
        if let (Ok(m), Ok(v)) = (owned, view) {
            prop_assert_eq!(v.to_owned(), m);
        }
    }

    /// Equivalence guard for the borrowed CoAP decode layer, on
    /// arbitrary bytes.
    #[test]
    fn coap_view_agrees_on_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..300)) {
        let owned = CoapMessage::decode(&data);
        let view = CoapView::parse(&data);
        prop_assert_eq!(owned.is_ok(), view.is_ok());
        if let (Ok(m), Ok(v)) = (owned, view) {
            prop_assert_eq!(v.to_owned(), m);
            for o in v.options() {
                let _ = (o.number, o.value.len());
            }
        }
    }

    /// ... and over mutated/truncated valid CoAP requests.
    #[test]
    fn coap_view_agrees_on_mutated_wire(
        token in proptest::collection::vec(any::<u8>(), 0..=8),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        etag in proptest::collection::vec(any::<u8>(), 1..=8),
        flips in proptest::collection::vec(any::<(usize, u8)>(), 0..4),
        cut in any::<usize>(),
    ) {
        let mut msg = CoapMessage::request(Code::FETCH, MsgType::Con, 7, token);
        msg.options.push(CoapOption::new(OptionNumber::ETAG, etag));
        msg.options.push(CoapOption::new(OptionNumber::URI_PATH, b"dns".to_vec()));
        msg.options.push(CoapOption::new(OptionNumber::ECHO, vec![0x5A; 300]));
        msg.payload = payload;
        let mut wire = msg.encode();
        for (pos, bits) in flips {
            let len = wire.len();
            wire[pos % len] ^= bits;
        }
        wire.truncate(cut % (wire.len() + 1));
        let owned = CoapMessage::decode(&wire);
        let view = CoapView::parse(&wire);
        prop_assert_eq!(owned.is_ok(), view.is_ok(), "wire {:02X?}", wire);
        if let (Ok(m), Ok(v)) = (owned, view) {
            prop_assert_eq!(v.to_owned(), m);
        }
    }

    /// Equivalence guard for the borrowed DTLS record layer, on
    /// arbitrary bytes: `RecordView::decode` and `Record::decode` must
    /// agree byte-for-byte — same acceptance, same *error*, same
    /// consumed length, same materialized record — and the lazy
    /// datagram iterator must walk exactly like `Record::decode_all`.
    #[test]
    fn dtls_view_agrees_on_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..300)) {
        let owned = DtlsRecord::decode(&data);
        let view = DtlsRecordView::decode(&data);
        match (owned, view) {
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (Ok((rec, used_o)), Ok((v, used_v))) => {
                prop_assert_eq!(used_o, used_v);
                prop_assert_eq!(v.to_owned(), rec);
            }
            (o, v) => prop_assert!(false, "acceptance differs: {:?} vs {:?}", o, v),
        }
        let all = DtlsRecord::decode_all(&data);
        let walked: Result<Vec<_>, _> =
            DtlsRecordView::iter(&data).map(|r| r.map(|v| v.to_owned())).collect();
        prop_assert_eq!(all, walked);
    }

    /// ... and over mutated/truncated valid DTLS flights — the
    /// adversarial neighborhood where record length fields and version
    /// bytes go subtly wrong mid-datagram.
    #[test]
    fn dtls_view_agrees_on_mutated_wire(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..60), 1..4),
        epoch in any::<u16>(),
        seq in 0u64..(1 << 48),
        flips in proptest::collection::vec(any::<(usize, u8)>(), 0..4),
        cut in any::<usize>(),
    ) {
        let mut wire = Vec::new();
        for (i, payload) in payloads.into_iter().enumerate() {
            DtlsRecord {
                ctype: if i % 2 == 0 { ContentType::Handshake } else { ContentType::ApplicationData },
                epoch,
                seq: seq.wrapping_add(i as u64) & ((1 << 48) - 1),
                payload,
            }
            .encode_into(&mut wire);
        }
        for (pos, bits) in flips {
            let len = wire.len();
            wire[pos % len] ^= bits;
        }
        wire.truncate(cut % (wire.len() + 1));
        match (DtlsRecord::decode(&wire), DtlsRecordView::decode(&wire)) {
            (Err(a), Err(b)) => prop_assert_eq!(a, b, "wire {:02X?}", wire),
            (Ok((rec, used_o)), Ok((v, used_v))) => {
                prop_assert_eq!(used_o, used_v);
                prop_assert_eq!(v.to_owned(), rec);
            }
            (o, v) => prop_assert!(false, "acceptance differs on {:02X?}: {:?} vs {:?}", wire, o, v),
        }
        let all = DtlsRecord::decode_all(&wire);
        let walked: Result<Vec<_>, _> =
            DtlsRecordView::iter(&wire).map(|r| r.map(|v| v.to_owned())).collect();
        prop_assert_eq!(all, walked);
    }

    /// The view-derived cache key is byte-identical to the owned one on
    /// arbitrary FETCH requests (same key ⇒ same cache entry).
    #[test]
    fn cache_key_view_matches_owned(
        token in proptest::collection::vec(any::<u8>(), 0..=8),
        payload in proptest::collection::vec(any::<u8>(), 1..64),
        segs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..12), 0..4),
    ) {
        use doc_repro::coap::cache::{cache_key, cache_key_view};
        let mut msg = CoapMessage::request(Code::FETCH, MsgType::Con, 7, token);
        for s in segs {
            msg.options.push(CoapOption::new(OptionNumber::URI_PATH, s));
        }
        msg.payload = payload;
        let wire = msg.encode();
        let view = CoapView::parse(&wire).unwrap();
        prop_assert_eq!(cache_key_view(&view), cache_key(&msg));
    }

    /// base64url round-trips arbitrary bytes (GET query encoding).
    #[test]
    fn base64url_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..200)) {
        let enc = base64url::encode(&data);
        prop_assert_eq!(enc.len(), base64url::encoded_len(data.len()));
        prop_assert_eq!(base64url::decode(&enc).unwrap(), data);
    }

    /// CBOR values round-trip (ints, bytes, arrays).
    #[test]
    fn cbor_roundtrip(n in any::<i64>(), bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let v = Value::Array(vec![
            Value::int(n),
            Value::Bytes(bytes),
            Value::Text("x".into()),
            Value::Null,
        ]);
        prop_assert_eq!(Value::decode(&v.encode()).unwrap(), v);
    }

    /// The CBOR decoder never panics on arbitrary input.
    #[test]
    fn cbor_decode_total(data in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = Value::decode(&data);
    }

    /// dns+cbor responses round-trip against their question context.
    #[test]
    fn dns_cbor_roundtrip(name in arb_name(), ttl in 0u32..100_000, n in 1usize..5) {
        let q = Question::new(name.clone(), RecordType::Aaaa);
        let query = Message::query(0, name.clone(), RecordType::Aaaa);
        let answers: Vec<Record> = (0..n)
            .map(|i| Record::aaaa(
                name.clone(),
                ttl,
                std::net::Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, i as u16),
            ))
            .collect();
        let resp = Message::response(&query, Rcode::NoError, answers);
        let encoded = cbor_fmt::encode_response(&resp, &q);
        let back = cbor_fmt::decode_response(&encoded, &q).unwrap();
        // Compression: cbor is never larger than wire format for
        // homogeneous AAAA answers.
        prop_assert!(encoded.len() <= resp.encode().len());
        prop_assert_eq!(back.answers, resp.answers);
    }

    /// CCM seal/open round-trips and rejects any single-bit flip.
    #[test]
    fn ccm_roundtrip_and_tamper(
        key in any::<[u8; 16]>(),
        nonce in any::<[u8; 13]>(),
        aad in proptest::collection::vec(any::<u8>(), 0..32),
        plain in proptest::collection::vec(any::<u8>(), 0..128),
        flip in any::<(usize, u8)>(),
    ) {
        let ccm = AesCcm::cose_ccm_16_64_128(&key);
        let sealed = ccm.seal(&nonce, &aad, &plain).unwrap();
        prop_assert_eq!(ccm.open(&nonce, &aad, &sealed).unwrap(), plain);
        let mut bad = sealed.clone();
        let idx = flip.0 % bad.len();
        let bit = 1u8 << (flip.1 % 8);
        bad[idx] ^= bit;
        prop_assert!(ccm.open(&nonce, &aad, &bad).is_err());
    }

    /// 6LoWPAN fragmentation always reassembles to the original
    /// datagram, in order or reversed. (Real datagrams start with the
    /// IPHC dispatch 0b011…, which is what distinguishes unfragmented
    /// payloads from FRAG1/FRAGN dispatches — the generator pins the
    /// first byte accordingly.)
    #[test]
    fn sixlowpan_fragment_roundtrip(
        mut data in proptest::collection::vec(any::<u8>(), 0..1200),
        reverse in any::<bool>(),
    ) {
        if let Some(first) = data.first_mut() {
            *first = 0x7A; // IPHC dispatch
        }
        let mut f = doc_repro::sixlowpan::frag::Fragmenter::new();
        let mut frames = f.fragment(&data, 102).unwrap();
        if reverse {
            frames.reverse();
        }
        let mut r = doc_repro::sixlowpan::frag::Reassembler::new();
        let mut out = None;
        for fr in &frames {
            if let Some(d) = r.push(fr).unwrap() {
                out = Some(d);
            }
        }
        prop_assert_eq!(out.unwrap(), data);
    }

    /// The fragment plan covers any payload exactly, with every frame
    /// within the 127-byte PDU.
    #[test]
    fn fragment_plan_invariants(len in 0usize..1500) {
        let plan = doc_repro::sixlowpan::fragment_plan(len);
        let covered: usize = plan.iter().map(|f| f.payload).sum();
        prop_assert_eq!(covered, len);
        for f in &plan {
            prop_assert!(f.total <= doc_repro::sixlowpan::MAX_FRAME);
            prop_assert_eq!(f.total, f.mac + f.sixlowpan + f.payload);
        }
    }

    /// QUIC-lite varints round-trip for every representable value and
    /// report their own encoded length.
    #[test]
    fn quic_varint_roundtrip(v in 0u64..=(1 << 62) - 1) {
        let mut buf = Vec::new();
        varint::encode_into(v, &mut buf);
        prop_assert_eq!(buf.len(), varint::len(v));
        prop_assert_eq!(varint::decode(&buf).unwrap(), (v, buf.len()));
    }

    /// The varint decoder is total on arbitrary bytes, and whatever it
    /// accepts re-encodes to at most the consumed length (QUIC varints
    /// admit non-canonical longer encodings; the value must survive).
    #[test]
    fn quic_varint_decode_total(data in proptest::collection::vec(any::<u8>(), 0..12)) {
        if let Ok((v, used)) = varint::decode(&data) {
            prop_assert!(used <= data.len());
            prop_assert!(varint::len(v) <= used);
        }
    }

    /// QUIC-lite frames round-trip through the codec, individually and
    /// concatenated into one packet payload.
    #[test]
    fn quic_frame_roundtrip(
        id in (0u64..1 << 20).prop_map(|v| v * 4),
        offset in 0u64..1 << 30,
        fin in any::<bool>(),
        data in proptest::collection::vec(any::<u8>(), 0..200),
        crypto in proptest::collection::vec(any::<u8>(), 0..64),
        largest in 0u64..1 << 40,
        range in 0u64..1 << 10,
    ) {
        let frames = vec![
            Frame::Ack { largest: largest + range, first_range: range },
            Frame::Crypto { offset, data: crypto },
            Frame::Stream { id, offset, fin, data },
            Frame::Ping,
            Frame::Padding,
        ];
        let mut wire = Vec::new();
        for f in &frames {
            let one = f.encode();
            let (back, used) = Frame::decode(&one).unwrap();
            prop_assert_eq!(&back, f);
            prop_assert_eq!(used, one.len());
            wire.extend_from_slice(&one);
        }
        prop_assert_eq!(Frame::decode_all(&wire).unwrap(), frames);
    }

    /// Frame and packet-header decoding is total: arbitrary bytes,
    /// and mutated/truncated valid encodings, never panic.
    #[test]
    fn quic_decode_total_on_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = Frame::decode_all(&data);
        let _ = packet::Header::decode(&data);
        let _ = doq::decode_doq(&data);
        let _ = doq::decode_doh(&data);
        let mut r = doq::DotReassembler::new();
        let _ = r.push(&data);
    }

    /// ... including the adversarial neighborhood of valid frames.
    #[test]
    fn quic_frame_decode_total_on_mutated_wire(
        data in proptest::collection::vec(any::<u8>(), 0..100),
        offset in 0u64..1 << 20,
        flips in proptest::collection::vec(any::<(usize, u8)>(), 0..4),
        cut in any::<usize>(),
    ) {
        let mut wire = Vec::new();
        Frame::Stream { id: 4, offset, fin: true, data: data.clone() }.encode_into(&mut wire);
        Frame::Crypto { offset, data }.encode_into(&mut wire);
        Frame::Ack { largest: offset + 1, first_range: 1 }.encode_into(&mut wire);
        for (pos, bits) in flips {
            let len = wire.len();
            wire[pos % len] ^= bits;
        }
        wire.truncate(cut % (wire.len() + 1));
        let _ = Frame::decode_all(&wire); // must not panic
    }

    /// DoQ 2-byte length framing: round-trips, rejects every
    /// truncation, and rejects trailing garbage (RFC 9250: exactly one
    /// message per stream).
    #[test]
    fn doq_framing_exactly_one_message(
        dns in proptest::collection::vec(any::<u8>(), 0..300),
        garbage in proptest::collection::vec(any::<u8>(), 1..16),
        cut in any::<usize>(),
    ) {
        let framed = doq::encode_doq(&dns);
        prop_assert_eq!(framed.len(), dns.len() + 2);
        prop_assert_eq!(doq::decode_doq(&framed).unwrap(), dns.as_slice());
        let mut trailing = framed.clone();
        trailing.extend_from_slice(&garbage);
        prop_assert!(doq::decode_doq(&trailing).is_err(), "trailing garbage accepted");
        let cut = cut % framed.len().max(1);
        if cut < framed.len() {
            prop_assert!(doq::decode_doq(&framed[..cut]).is_err(), "truncation accepted");
        }
        // The DoH framing enforces the same exactly-one discipline.
        let doh = doq::encode_doh_request(&dns);
        prop_assert_eq!(doq::decode_doh(&doh).unwrap(), dns.as_slice());
        let mut doh_trailing = doh.clone();
        doh_trailing.extend_from_slice(&garbage);
        prop_assert!(doq::decode_doh(&doh_trailing).is_err());
    }

    /// The DoT splitter reassembles any pipelined message sequence
    /// from any chunking of the byte stream.
    #[test]
    fn dot_splitter_reassembles_any_chunking(
        msgs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..80), 0..6),
        chunk in 1usize..20,
    ) {
        let mut wire = Vec::new();
        for m in &msgs {
            wire.extend_from_slice(&doq::encode_dot(m));
        }
        let mut r = doq::DotReassembler::new();
        let mut got = Vec::new();
        for piece in wire.chunks(chunk.max(1)) {
            got.extend(r.push(piece));
        }
        prop_assert_eq!(got, msgs);
        prop_assert_eq!(r.pending(), 0);
    }

    /// The RFC 6298-style estimator never leaves the envelope of its
    /// inputs: SRTT is always within [min observed, max observed], the
    /// windowed min-RTT tracks the true minimum (while inside the
    /// window), and the PTO strictly exceeds SRTT.
    #[test]
    fn rtt_srtt_bounded_by_observed_samples(
        samples in proptest::collection::vec(1u64..2_000, 1..40),
    ) {
        let mut est = RttEstimator::new();
        let mut now = Instant::EPOCH;
        let (mut lo, mut hi) = (u64::MAX, 0u64);
        for &s in &samples {
            // Small gaps keep every sample inside the min-RTT window.
            now = now + Millis::from_millis(7);
            est.on_sample(now, Millis::from_millis(s));
            lo = lo.min(s);
            hi = hi.max(s);
            let srtt = est.srtt().expect("sample observed").as_millis();
            prop_assert!(srtt >= lo && srtt <= hi, "srtt {} outside [{}, {}]", srtt, lo, hi);
            prop_assert_eq!(est.min_rtt().expect("sample observed").as_millis(), lo);
            prop_assert!(est.pto().as_millis() > srtt);
        }
    }

    /// Under a constant RTT the smoothed estimate converges
    /// monotonically: the distance |SRTT − RTT| never grows, whatever
    /// history preceded the steady state.
    #[test]
    fn rtt_converges_monotonically_under_constant_samples(
        prefix in proptest::collection::vec(1u64..2_000, 0..10),
        constant in 1u64..2_000,
        n in 1usize..30,
    ) {
        let mut est = RttEstimator::new();
        let mut now = Instant::EPOCH;
        for &s in &prefix {
            now = now + Millis::from_millis(7);
            est.on_sample(now, Millis::from_millis(s));
        }
        let mut dist = u64::MAX;
        for _ in 0..n {
            now = now + Millis::from_millis(7);
            est.on_sample(now, Millis::from_millis(constant));
            let d = est.srtt().expect("sample observed").as_millis().abs_diff(constant);
            prop_assert!(d <= dist, "estimate diverged: |srtt − rtt| grew {} → {}", dist, d);
            dist = d;
        }
    }

    /// CUBIC's window is monotone non-decreasing between loss events
    /// (slow start and congestion avoidance alike, hystart or not) and
    /// every loss applies the β = 0.7 multiplicative decrease, floored
    /// at MIN_WINDOW.
    #[test]
    fn cubic_monotone_growth_and_multiplicative_decrease(
        events in proptest::collection::vec((1usize..1500, 1u64..200, 1u64..100), 1..80),
        loss_every in 5usize..20,
    ) {
        let mut cubic = Cubic::new();
        let mut est = RttEstimator::new();
        let mut now = Instant::EPOCH;
        let mut last_window = cubic.window();
        for (i, &(bytes, rtt_ms, gap)) in events.iter().enumerate() {
            now = now + Millis::from_millis(gap);
            if i % loss_every == loss_every - 1 {
                let before = cubic.window();
                cubic.on_loss(now, bytes);
                let after = cubic.window();
                let expect = ((before as f64 * 0.7).max(MIN_WINDOW as f64)) as usize;
                prop_assert!(after >= MIN_WINDOW);
                prop_assert!(
                    after.abs_diff(expect) <= 1,
                    "loss backoff {} -> {} (expected ≈{})", before, after, expect
                );
                last_window = after;
            } else {
                est.on_sample(now, Millis::from_millis(rtt_ms));
                cubic.on_ack(now, bytes, &est);
                prop_assert!(
                    cubic.window() >= last_window,
                    "window shrank on ACK: {} -> {}", last_window, cubic.window()
                );
                last_window = cubic.window();
            }
        }
    }

    /// OSCORE protects any payload: round-trips, hides the plaintext,
    /// rejects bit flips.
    #[test]
    fn oscore_protect_invariants(payload in proptest::collection::vec(1u8..255, 8..64)) {
        use doc_repro::oscore::context::SecurityContext;
        use doc_repro::oscore::protect::OscoreEndpoint;
        let secret = b"0123456789abcdef";
        let mut client = OscoreEndpoint::new(
            SecurityContext::derive(secret, b"s", &[], &[1]), false);
        let mut server = OscoreEndpoint::new(
            SecurityContext::derive(secret, b"s", &[1], &[]), false);
        let req = CoapMessage::request(Code::FETCH, MsgType::Con, 1, vec![9])
            .with_option(CoapOption::new(OptionNumber::URI_PATH, b"dns".to_vec()))
            .with_payload(payload.clone());
        let (outer, _) = client.protect_request(&req).unwrap();
        // Confidentiality: the ciphertext must not contain the
        // plaintext as a substring (8+ bytes of entropy-free payload
        // would be visible if unencrypted).
        let ct = outer.encode();
        prop_assert!(!ct.windows(payload.len()).any(|w| w == payload.as_slice()));
        let (inner, _) = server.unprotect_request(&outer).unwrap();
        prop_assert_eq!(inner.payload, payload);
    }

    /// Slab-reset guard for the zero-alloc pool path: a 1-worker
    /// `ProxyPool::run` serves replies out of per-worker slab buffers
    /// reused across batches, while `ProxyPool::serve` allocates fresh
    /// per call. Over arbitrary query sequences (arbitrary repetition,
    /// so cache hits follow misses and short replies follow long ones)
    /// the two paths must be byte-identical per sequence number — any
    /// stale bytes surviving a batch boundary show up as a mismatch.
    #[test]
    fn pool_slab_path_matches_owned_serve(
        picks in proptest::collection::vec(any::<usize>(), 1..60),
    ) {
        use doc_bench::throughput::{build_mix, LoadSpec};
        use doc_repro::doc::policy::CachePolicy;
        use doc_repro::doc::pool::{Datagram, ProxyPool};
        use doc_repro::doc::server::{DocServer, MockUpstream};
        use doc_repro::doc::CoapProxy;
        use std::sync::{Arc, Mutex};

        let spec = LoadSpec { unique_names: 8, ..LoadSpec::default() };
        let make_pool = || {
            let upstream = MockUpstream::new(1, spec.ttl_s, spec.ttl_s);
            let mix = build_mix(&spec, &upstream);
            let pool = ProxyPool::new(
                1,
                Arc::new(CoapProxy::with_shards(64, spec.shards)),
                Arc::new(DocServer::new(CachePolicy::EolTtls, upstream)),
            );
            (pool, mix.wires().to_vec())
        };
        let datagrams = |wires: &[Vec<u8>]| -> Vec<Datagram> {
            picks
                .iter()
                .enumerate()
                .map(|(seq, &p)| Datagram {
                    peer: seq as u64 % 4,
                    seq: seq as u64,
                    at: doc_repro::time::Instant::from_millis(1),
                    wire: wires[p % wires.len()].clone(),
                })
                .collect()
        };

        // Slab path: 1 worker drains the injector in input order, so
        // cache state evolves exactly like the sequential pass below.
        let (pool, wires) = make_pool();
        let via_run = Mutex::new(vec![None; picks.len()]);
        pool.run(16, datagrams(&wires).into_iter(), &|r| {
            via_run.lock().unwrap()[r.seq as usize] = r.wire.clone();
        });

        // Owned path: same mix on an identically-seeded pool, one
        // fresh-allocated reply per call.
        let (pool2, wires2) = make_pool();
        prop_assert_eq!(&wires, &wires2);
        let mut upstream_buf = Vec::new();
        for (seq, d) in datagrams(&wires2).iter().enumerate() {
            let expect = pool2.serve(d, &mut upstream_buf);
            prop_assert_eq!(
                &via_run.lock().unwrap()[seq], &expect,
                "slab reply diverged from owned reply at seq {}", seq
            );
        }
    }
}
