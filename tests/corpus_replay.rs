//! Tier-1 replay of the on-disk fuzzing corpus (`tests/corpus/`).
//!
//! Every `*.hex` entry — seed messages emitted by `fuzz_gate
//! --emit-seeds` and minimized crashers pinned after a fix — is fed
//! through its family's differential check on every `cargo test` run.
//! A divergence on a pinned entry means a fixed bug came back; a
//! malformed corpus file fails loudly rather than being skipped.

use doc_fuzz::target::Outcome;
use doc_fuzz::{corpus, targets};

/// Every corpus entry replays clean through its family's check.
#[test]
fn every_corpus_entry_replays_clean() {
    for target in targets::all() {
        let entries = corpus::load_family(target.name())
            .unwrap_or_else(|e| panic!("corpus for `{}` unreadable: {e}", target.name()));
        assert!(
            !entries.is_empty(),
            "tests/corpus/{}/ has no entries — run `fuzz_gate --emit-seeds`",
            target.name()
        );
        for (file, bytes) in &entries {
            if let Err(divergence) = target.check(bytes) {
                panic!(
                    "corpus entry tests/corpus/{}/{file} diverges:\n{divergence}\n{}",
                    target.name(),
                    doc_fuzz::hex::dump(bytes)
                );
            }
        }
    }
}

/// The corpus is not vacuous: every family has at least one entry its
/// parsers fully accept (seeds are valid messages, so shallow
/// rejections alone cannot pass this).
#[test]
fn every_family_has_an_accepted_entry() {
    for target in targets::all() {
        let entries = corpus::load_family(target.name()).expect("readable corpus");
        let accepted = entries
            .iter()
            .filter(|(_, bytes)| target.check(bytes) == Ok(Outcome::Accepted))
            .count();
        assert!(
            accepted > 0,
            "tests/corpus/{}/ contains no accepted (valid) entry",
            target.name()
        );
    }
}

/// Pinned regression entries exist and carry provenance comments —
/// the corpus documents *why* each crasher is pinned.
#[test]
fn regression_entries_are_commented() {
    let mut regressions = 0;
    for target in targets::all() {
        let dir = corpus::corpus_root().join(target.name());
        for entry in std::fs::read_dir(&dir).expect("corpus dir") {
            let path = entry.expect("dir entry").path();
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            if !name.starts_with("regression-") {
                continue;
            }
            regressions += 1;
            let text = std::fs::read_to_string(&path).expect("readable entry");
            assert!(
                text.lines().next().is_some_and(|l| l.starts_with('#')),
                "{name}: regression entry must start with a provenance comment"
            );
        }
    }
    assert!(regressions > 0, "no pinned regression entries found");
}
