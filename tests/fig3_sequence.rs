//! Integration test reproducing the paper's Fig. 3 message sequence:
//! two DoC clients, a DoC-agnostic caching proxy, the DoC server and
//! its (mock) name server — asserting each numbered event of the
//! figure for the DoH-like scheme, and the EOL-TTLs improvement.

use doc_repro::coap::msg::{CoapMessage, Code, MsgType};
use doc_repro::coap::opt::{CoapOption, OptionNumber};
use doc_repro::dns::{Message, Name, RecordType};
use doc_repro::doc::method::{build_request, DocMethod};
use doc_repro::doc::policy::CachePolicy;
use doc_repro::doc::proxy::{CoapProxy, ProxyAction};
use doc_repro::doc::server::{DocServer, MockUpstream};

fn fetch(name: &Name, mid: u16, token: u8) -> CoapMessage {
    let mut q = Message::query(0, name.clone(), RecordType::Aaaa);
    q.canonicalize_id();
    build_request(
        DocMethod::Fetch,
        &q.encode(),
        MsgType::Con,
        mid,
        vec![token],
    )
    .unwrap()
}

struct Testbed {
    server: DocServer,
    proxy: CoapProxy,
}

impl Testbed {
    fn new(policy: CachePolicy) -> (Self, Name) {
        let name = Name::parse("example.org").unwrap();
        let up = MockUpstream::new(5, 10, 10);
        up.add_aaaa(name.clone(), 1);
        (
            Testbed {
                server: DocServer::new(policy, up),
                proxy: CoapProxy::new(8),
            },
            name,
        )
    }

    /// Returns (response, hit_proxy_cache).
    fn query(&mut self, req: &CoapMessage, now: u64) -> (CoapMessage, bool) {
        match self.proxy.handle_client_request(req, now) {
            ProxyAction::Respond(resp) => (*resp, true),
            ProxyAction::Forward {
                request,
                exchange_id,
            } => {
                let upstream = self.server.handle_request(&request, now);
                (
                    self.proxy
                        .handle_upstream_response(exchange_id, &upstream, now)
                        .expect("known exchange"),
                    false,
                )
            }
        }
    }
}

/// The full DoH-like sequence of Fig. 3, steps 1–5.
#[test]
fn fig3_doh_like_sequence() {
    let (mut tb, name) = Testbed::new(CachePolicy::DohLike);

    // Step 1: C2's query is answered by S (DNS cache of S fills; the
    // NS is consulted).
    let (r1, hit) = tb.query(&fetch(&name, 1, 2), 0);
    assert!(!hit);
    assert_eq!(r1.code, Code::CONTENT);
    assert_eq!(tb.server.upstream.ns_queries(), 1);
    let e1 = r1.option(OptionNumber::ETAG).unwrap().value.clone();
    assert_eq!(r1.max_age(), 10);

    // Step 2: C1's query at t=4 s is answered from P's CoAP cache with
    // a decremented Max-Age.
    let (r2, hit) = tb.query(&fetch(&name, 2, 1), 4_000);
    assert!(hit, "step 2 must be a proxy cache hit");
    assert_eq!(r2.code, Code::CONTENT);
    assert_eq!(r2.max_age(), 6);
    assert_eq!(r2.option(OptionNumber::ETAG).unwrap().value, e1);
    assert_eq!(tb.server.stats().requests, 1, "server untouched in step 2");

    // Step 3: at t=12 s the RRset expired; a background query (a
    // client outside the proxy path) reaches the NS and refreshes the
    // RRset — from here on the upstream TTL decays relative to e1.
    tb.server.handle_request(&fetch(&name, 3, 9), 12_000);
    assert_eq!(tb.server.upstream.ns_queries(), 2, "NS queried again");

    // Step 4: C1 revalidates e1 at t=15 s. The proxy's entry is stale
    // (expired at 10 s), so it revalidates upstream — but the remaining
    // TTL is now 7 s, the payload changed, and the server must answer
    // with a full 2.05 instead of 2.03.
    let mut reval = fetch(&name, 5, 1);
    reval.set_option(CoapOption::new(OptionNumber::ETAG, e1.clone()));
    let (r4, hit) = tb.query(&reval, 15_000);
    assert!(!hit, "stale entry goes upstream");
    assert_eq!(r4.code, Code::CONTENT, "Fig. 3 step 4: revalidation fails");
    assert!(!r4.payload.is_empty(), "full retransfer");
    assert_eq!(tb.server.stats().validations, 0);
    let e2 = r4.option(OptionNumber::ETAG).unwrap().value.clone();
    assert_ne!(e2, e1, "TTL decay changed the DoH-like ETag");

    // Step 5: C2, holding the fresh ETag e2, *can* revalidate — served
    // as a tiny 2.03 straight from the (now fresh) proxy entry.
    let mut reval = fetch(&name, 6, 2);
    reval.set_option(CoapOption::new(OptionNumber::ETAG, e2));
    let (r5, hit) = tb.query(&reval, 15_100);
    assert!(hit, "fresh proxy entry");
    assert_eq!(r5.code, Code::VALID, "Fig. 3 step 5: 2.03 Valid");
    assert!(r5.payload.is_empty(), "2.03 saves constrained bandwidth");
}

/// Under EOL TTLs the step-4 revalidation succeeds even after TTL
/// decay: the upstream confirms with 2.03, and because the client's
/// ETag is still current the proxy forwards the tiny 2.03 as well.
#[test]
fn fig3_eol_ttls_fixes_step_4() {
    let (mut tb, name) = Testbed::new(CachePolicy::EolTtls);
    let (r1, _) = tb.query(&fetch(&name, 1, 1), 0);
    let e1 = r1.option(OptionNumber::ETAG).unwrap().value.clone();
    // Background refresh at t=12 s (outside the proxy path): the
    // upstream TTL decays relative to t=0.
    tb.server.handle_request(&fetch(&name, 2, 9), 12_000);
    // C1 revalidates its original ETag at t=15 s (remaining TTL 7 s).
    let mut reval = fetch(&name, 3, 1);
    reval.set_option(CoapOption::new(OptionNumber::ETAG, e1));
    let (r4, hit) = tb.query(&reval, 15_000);
    assert!(!hit, "stale proxy entry revalidates upstream");
    // Upstream confirmed with 2.03 — no full transfer anywhere, and
    // the client's copy is still valid too.
    assert_eq!(tb.server.stats().validations, 1);
    assert_eq!(r4.code, Code::VALID, "EOL TTLs: revalidation succeeds");
    assert!(r4.payload.is_empty());
    // The propagated Max-Age reflects the decayed TTL.
    assert_eq!(r4.max_age(), 7);
}

/// The EOL payload TTLs are zero on the wire and restored on the client.
#[test]
fn eol_wire_ttls_are_zero() {
    let (mut tb, name) = Testbed::new(CachePolicy::EolTtls);
    let (r, _) = tb.query(&fetch(&name, 1, 1), 0);
    let msg = Message::decode(&r.payload).unwrap();
    assert!(msg.answers.iter().all(|rec| rec.ttl == 0));
    // Client-side restoration.
    let mut restored = msg.clone();
    doc_repro::doc::policy::restore_ttls(CachePolicy::EolTtls, &mut restored, r.max_age());
    assert!(restored.answers.iter().all(|rec| rec.ttl == 10));
}
