//! End-to-end tests of the scale-out front-end: the sharded
//! proxy/server behind the SPMC-ring worker pool, fed both by the
//! throughput harness's replay mix and by the network simulator's
//! batched event drain.

use doc_bench::throughput::{build_mix, LoadSpec};
use doc_repro::doc::policy::CachePolicy;
use doc_repro::doc::pool::{Datagram, ProxyPool};
use doc_repro::doc::server::{DocServer, MockUpstream};
use doc_repro::doc::CoapProxy;
use doc_repro::netsim::{LinkKind, Sim, SimEvent, Tag};
use std::sync::{Arc, Mutex};

fn sharded_pool(workers: usize, spec: &LoadSpec) -> (ProxyPool, Vec<Vec<u8>>) {
    let upstream = MockUpstream::new(1, spec.ttl_s, spec.ttl_s);
    let mix = build_mix(spec, &upstream);
    let pool = ProxyPool::new(
        workers,
        Arc::new(CoapProxy::with_shards(1024, spec.shards)),
        Arc::new(DocServer::new(CachePolicy::EolTtls, upstream)),
    );
    (pool, mix.wires().to_vec())
}

/// The full replay mix through 4 workers: every datagram answered,
/// every reply well-formed, proxy/server accounting adds up.
#[test]
fn pool_replays_query_mix_end_to_end() {
    let spec = LoadSpec {
        unique_names: 32,
        ..LoadSpec::default()
    };
    let (pool, wires) = sharded_pool(4, &spec);
    let total = 2_000u64;
    let replies = Mutex::new(0u64);
    let stats = pool.run(
        64,
        (0..total).map(|seq| Datagram {
            peer: seq % 16,
            seq,
            at: doc_repro::time::Instant::from_millis(1),
            wire: wires[(seq % wires.len() as u64) as usize].clone(),
        }),
        &|r| {
            assert!(r.wire.is_some(), "seq {} dropped", r.seq);
            *replies.lock().unwrap() += 1;
        },
    );
    assert_eq!(stats.processed, total);
    assert_eq!(stats.replies, total);
    assert_eq!(*replies.lock().unwrap(), total);
    let p = pool.proxy.stats();
    assert_eq!(p.requests, total as u32);
    // Steady state after the 32 first touches (racing first touches
    // are bounded by names × workers).
    assert!(p.cache_hits >= (total as u32) - 32 * 4);
    // Every forward reached the origin.
    assert_eq!(pool.server.stats().requests, p.forwards + p.revalidations);
}

/// The simulator feeds the ring in batched virtual-time windows:
/// clients transmit queries over the simulated 802.15.4 topology,
/// `drain_due` harvests each window's arrivals, the pool serves them,
/// and the replies are injected back into the simulator toward the
/// clients. Every client ends up with a reply datagram.
#[test]
fn netsim_batched_drain_feeds_the_pool() {
    const CLIENTS: usize = 8;
    const PROXY_NODE: usize = 100;
    let spec = LoadSpec {
        unique_names: CLIENTS as u32,
        ..LoadSpec::default()
    };
    let (pool, wires) = sharded_pool(2, &spec);

    // Star topology: every client one lossless wireless hop from the
    // proxy node.
    let mut sim = Sim::new(42);
    for (c, wire) in wires.iter().enumerate().take(CLIENTS) {
        sim.add_link(
            c,
            PROXY_NODE,
            LinkKind::Wireless {
                channel: 0,
                loss_permille: 0,
            },
        );
        sim.add_route(&[c, PROXY_NODE]);
        sim.send_datagram(c, PROXY_NODE, wire.clone(), Tag::Query);
    }

    // Pump the simulator in 50 ms batches; each batch's datagrams fan
    // through the worker pool, and replies re-enter the simulator.
    let mut horizon_us = 0;
    let mut batch = Vec::new();
    let mut client_replies = vec![0u32; CLIENTS];
    while !sim.is_idle() {
        horizon_us += 50_000;
        batch.clear();
        sim.drain_due(horizon_us, &mut batch);
        let at = sim.now();
        let mut arrived = Vec::new();
        for (_, ev) in batch.drain(..) {
            match ev {
                SimEvent::Datagram { from, to, bytes } if to == PROXY_NODE => {
                    arrived.push(Datagram {
                        peer: from as u64,
                        seq: from as u64,
                        at,
                        wire: bytes,
                    });
                }
                SimEvent::Datagram { to, .. } => {
                    client_replies[to] += 1;
                }
                SimEvent::Timer { .. } => {}
            }
        }
        if arrived.is_empty() {
            continue;
        }
        let replies = Mutex::new(Vec::new());
        let stats = pool.run(16, arrived, &|r| {
            replies.lock().unwrap().push(r.clone());
        });
        assert_eq!(stats.errors, 0);
        for r in replies.into_inner().unwrap() {
            let wire = r.wire.expect("served");
            sim.send_datagram(PROXY_NODE, r.peer as usize, wire, Tag::Response);
        }
    }
    assert_eq!(client_replies, vec![1; CLIENTS], "one reply per client");
    assert_eq!(pool.proxy.stats().requests, CLIENTS as u32);
}

/// Work stealing under a skewed arrival pattern: affinity routing pins
/// every datagram to one hot worker's deque, so the other workers only
/// make progress by stealing. Every request is still answered exactly
/// once and the per-worker steal counters are reported for the full
/// topology.
#[test]
fn idle_workers_steal_from_hot_deque() {
    const WORKERS: usize = 4;
    let spec = LoadSpec {
        unique_names: 16,
        ..LoadSpec::default()
    };
    let (pool, wires) = sharded_pool(WORKERS, &spec);
    let pool = pool.with_affinity(true);
    let total = 1_000u64;
    let served = Mutex::new(vec![0u32; total as usize]);
    let stats = pool.run(
        64,
        (0..total).map(|seq| Datagram {
            // Every request routes to worker 1's deque; workers 0, 2,
            // and 3 see work only through steal_front_batch.
            peer: 1,
            seq,
            at: doc_repro::time::Instant::from_millis(1),
            wire: wires[(seq % wires.len() as u64) as usize].clone(),
        }),
        &|r| {
            assert!(r.wire.is_some(), "seq {} dropped", r.seq);
            served.lock().unwrap()[r.seq as usize] += 1;
        },
    );
    assert_eq!(stats.processed, total);
    assert_eq!(stats.replies, total);
    assert!(
        served.lock().unwrap().iter().all(|&n| n == 1),
        "every request served exactly once"
    );
    assert_eq!(
        stats.steals_per_worker.len(),
        WORKERS,
        "one steal counter per worker"
    );
}

/// Uniform affinity routing spreads datagrams across all worker deques
/// by `peer % workers`; totals still add up and match a 1-worker run of
/// the same mix.
#[test]
fn affinity_routing_matches_single_worker_totals() {
    let spec = LoadSpec {
        unique_names: 16,
        ..LoadSpec::default()
    };
    let total = 800u64;
    let mut totals = Vec::new();
    for workers in [1usize, 4] {
        let (pool, wires) = sharded_pool(workers, &spec);
        let pool = pool.with_affinity(true);
        let stats = pool.run(
            32,
            (0..total).map(|seq| Datagram {
                peer: seq % 7,
                seq,
                at: doc_repro::time::Instant::from_millis(1),
                wire: wires[(seq % wires.len() as u64) as usize].clone(),
            }),
            &|_| {},
        );
        totals.push((stats.processed, stats.replies, stats.errors));
    }
    assert_eq!(totals[0], totals[1], "worker count must not change totals");
    assert_eq!(totals[0], (total, total, 0));
}
