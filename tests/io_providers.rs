//! End-to-end tests of the I/O provider seam: the same worker-pool
//! code serving the same query mix through the network simulator
//! ([`SimProvider`]) and through a real loopback UDP socket
//! ([`UdpProvider`]) must produce byte-identical replies — the
//! guarantee that lets the paper's simulated experiments stand in for
//! the production front-end.

use doc_bench::throughput::{build_mix, LoadSpec};
use doc_repro::doc::io::{IoProvider, SimProvider, UdpProvider};
use doc_repro::doc::policy::CachePolicy;
use doc_repro::doc::pool::ProxyPool;
use doc_repro::doc::server::{DocServer, MockUpstream};
use doc_repro::doc::CoapProxy;
use doc_repro::netsim::{LinkKind, NodeId, Sim, Tag};
use doc_repro::time::{Instant, Millis};
use std::net::UdpSocket;

/// One pool + the replay wires, identically seeded for every provider
/// (same upstream zone, same mix, same cache geometry).
fn pool_and_wires(workers: usize) -> (ProxyPool, Vec<Vec<u8>>) {
    let spec = LoadSpec {
        unique_names: 8,
        ..LoadSpec::default()
    };
    let upstream = MockUpstream::new(1, spec.ttl_s, spec.ttl_s);
    let mix = build_mix(&spec, &upstream);
    let pool = ProxyPool::new(
        workers,
        std::sync::Arc::new(CoapProxy::with_shards(64, spec.shards)),
        std::sync::Arc::new(DocServer::new(CachePolicy::EolTtls, upstream)),
    );
    (pool, mix.wires().to_vec())
}

/// The query sequence both providers serve: arbitrary repetition so
/// cache hits follow misses and short replies follow long ones.
fn query_sequence(wires: &[Vec<u8>], total: usize) -> Vec<Vec<u8>> {
    (0..total)
        .map(|i| wires[(i * 7 + i / 3) % wires.len()].clone())
        .collect()
}

/// Serve `queries` through a 1-worker pool fed by the simulator:
/// one client node sends every query up front, replies come back along
/// the installed route. Returns the reply wires in query order.
fn replies_via_sim(queries: &[Vec<u8>]) -> Vec<Vec<u8>> {
    let (pool, _) = pool_and_wires(1);
    let mut sim = Sim::new(7);
    let proxy_node: NodeId = 0;
    let client: NodeId = 1;
    sim.add_link(proxy_node, client, LinkKind::Wired { latency_us: 100 });
    sim.add_route(&[client, proxy_node]);
    for q in queries {
        sim.send_datagram(client, proxy_node, q.clone(), Tag::Query);
    }
    let mut provider = SimProvider::new(&mut sim, proxy_node, 1_000);
    let stats = pool.run_io(&mut provider, 16, 8, Millis::from_millis(10));
    assert_eq!(stats.processed, queries.len() as u64);
    assert_eq!(stats.errors, 0);
    // Pump the sim dry so the tail of the final reply flush arrives.
    let mut none: [doc_repro::doc::io::RecvSlot; 1] = Default::default();
    assert_eq!(provider.recv_batch(&mut none, Millis::from_millis(1)), 0);
    provider
        .take_delivered()
        .into_iter()
        .map(|(node, bytes)| {
            assert_eq!(node, client, "reply routed back to the client");
            bytes
        })
        .collect()
}

/// Serve `queries` through a 1-worker pool fed by a loopback UDP
/// socket: a serial client sends query N only after receiving reply
/// N−1, so the ordering matches the sim's FIFO delivery. The provider's
/// virtual receive time is pinned inside the same second the sim run
/// uses, which is the granularity Max-Age decay observes.
fn replies_via_udp(queries: &[Vec<u8>]) -> Vec<Vec<u8>> {
    let (pool, _) = pool_and_wires(1);
    let mut provider = UdpProvider::bind("127.0.0.1:0")
        .unwrap()
        .with_virtual_time(Instant::from_millis(1));
    let server_addr = provider.local_addr().unwrap();
    let queries = queries.to_vec();
    let handle = std::thread::spawn(move || {
        let client = UdpSocket::bind("127.0.0.1:0").unwrap();
        client
            .set_read_timeout(Some(std::time::Duration::from_millis(5_000)))
            .unwrap();
        let mut replies = Vec::new();
        let mut buf = [0u8; 2048];
        for q in &queries {
            client.send_to(q, server_addr).unwrap();
            let (len, _) = client.recv_from(&mut buf).unwrap();
            replies.push(buf[..len].to_vec());
        }
        replies
    });
    let stats = pool.run_io(&mut provider, 16, 8, Millis::from_millis(500));
    let replies = handle.join().unwrap();
    assert_eq!(stats.processed, replies.len() as u64);
    assert_eq!(stats.errors, 0);
    replies
}

/// The tentpole guarantee: the simulated and the socket front-end are
/// interchangeable — same queries through the same worker code yield
/// byte-identical reply wires, per query.
#[test]
fn sim_and_udp_providers_serve_byte_identical_replies() {
    let (_, wires) = pool_and_wires(1);
    let queries = query_sequence(&wires, 48);
    let via_sim = replies_via_sim(&queries);
    let via_udp = replies_via_udp(&queries);
    assert_eq!(via_sim.len(), queries.len());
    assert_eq!(via_udp.len(), queries.len());
    for (i, (s, u)) in via_sim.iter().zip(&via_udp).enumerate() {
        assert_eq!(s, u, "reply {i} differs between sim and UDP front-ends");
    }
}

/// Loopback smoke for CI: a multi-worker pool behind the UDP provider
/// serves a serial client's full query run — the cheap end-to-end
/// proof that the socket path works on the build machine.
#[test]
fn udp_loopback_smoke_multi_worker() {
    let (pool, wires) = pool_and_wires(4);
    let mut provider = UdpProvider::bind("127.0.0.1:0")
        .unwrap()
        .with_virtual_time(Instant::from_millis(1));
    let server_addr = provider.local_addr().unwrap();
    let queries = query_sequence(&wires, 64);
    let handle = std::thread::spawn(move || {
        let client = UdpSocket::bind("127.0.0.1:0").unwrap();
        client
            .set_read_timeout(Some(std::time::Duration::from_millis(5_000)))
            .unwrap();
        let mut got = 0usize;
        let mut buf = [0u8; 2048];
        for q in &queries {
            client.send_to(q, server_addr).unwrap();
            if client.recv_from(&mut buf).is_ok() {
                got += 1;
            }
        }
        got
    });
    let stats = pool.run_io(&mut provider, 32, 8, Millis::from_millis(500));
    let got = handle.join().unwrap();
    assert_eq!(got, 64, "every loopback query answered");
    assert_eq!(stats.processed, 64);
    assert_eq!(stats.replies, 64);
    assert_eq!(stats.errors, 0);
}
