//! Sharded-vs-unsharded response-cache equivalence, plus a
//! seeded-thread isolation check.
//!
//! The tentpole claim of the sharded cache is that lock striping is a
//! pure *mechanical* change: for any interleaved sequence of
//! insert/lookup/revalidate operations (no eviction pressure — see
//! below), [`ShardedResponseCache`] is observationally identical to
//! the unsharded [`ResponseCache`], for any shard count. Under
//! capacity pressure a multi-shard cache may pick different FIFO
//! *victims* (each shard evicts locally); with a single shard even the
//! victim order is identical, which a dedicated property pins down.

use doc_repro::coap::cache::{cache_key, CacheKey, Lookup, ResponseCache};
use doc_repro::coap::msg::{CoapMessage, Code, MsgType};
use doc_repro::coap::opt::{CoapOption, OptionNumber};
use doc_repro::coap::shard::ShardedResponseCache;
use proptest::prelude::*;
use std::sync::Arc;

/// A FETCH request whose payload identifies the key.
fn fetch_req(key_id: u8) -> CoapMessage {
    CoapMessage::request(Code::FETCH, MsgType::Con, 1, vec![1])
        .with_option(CoapOption::new(OptionNumber::URI_PATH, b"dns".to_vec()))
        .with_payload(vec![key_id, 0xD0, 0x0C])
}

fn key(key_id: u8) -> CacheKey {
    cache_key(&fetch_req(key_id))
}

/// A cacheable response whose payload identifies (key, version).
fn response(key_id: u8, version: u8, max_age: u32, etag: bool) -> CoapMessage {
    let mut r = CoapMessage {
        mtype: MsgType::Ack,
        code: Code::CONTENT,
        message_id: 1,
        token: vec![1],
        options: vec![CoapOption::uint(OptionNumber::MAX_AGE, max_age)],
        payload: vec![key_id, version],
    };
    if etag {
        r.set_option(CoapOption::new(OptionNumber::ETAG, vec![key_id, version]));
    }
    r
}

/// A `2.03 Valid` refresh message.
fn valid(key_id: u8, version: u8, max_age: u32) -> CoapMessage {
    let mut r = CoapMessage::ack_reply(1, vec![1], Code::VALID);
    r.set_option(CoapOption::uint(OptionNumber::MAX_AGE, max_age));
    r.set_option(CoapOption::new(OptionNumber::ETAG, vec![key_id, version]));
    r
}

/// One scripted cache operation.
#[derive(Debug, Clone)]
enum Op {
    Insert {
        key_id: u8,
        version: u8,
        max_age_s: u32,
        etag: bool,
    },
    Lookup {
        key_id: u8,
    },
    Revalidate {
        key_id: u8,
        version: u8,
        max_age_s: u32,
    },
    Advance {
        dt_ms: u32,
    },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..8, any::<u8>(), 0u32..20, any::<bool>()).prop_map(
            |(key_id, version, max_age_s, etag)| Op::Insert {
                key_id,
                version,
                max_age_s,
                etag
            }
        ),
        (0u8..8).prop_map(|key_id| Op::Lookup { key_id }),
        (0u8..8, any::<u8>(), 1u32..20).prop_map(|(key_id, version, max_age_s)| {
            Op::Revalidate {
                key_id,
                version,
                max_age_s,
            }
        }),
        (0u32..30_000).prop_map(|dt_ms| Op::Advance { dt_ms }),
    ]
}

/// Either cache behind one interface, so the same op script drives
/// both implementations.
enum CacheUnderTest<'a> {
    Flat(&'a mut ResponseCache),
    Sharded(&'a ShardedResponseCache),
}

impl CacheUnderTest<'_> {
    fn lookup(&mut self, k: &CacheKey, now: u64) -> Lookup {
        match self {
            CacheUnderTest::Flat(c) => c.lookup(k, now),
            CacheUnderTest::Sharded(c) => c.lookup(k, now),
        }
    }
    fn insert(&mut self, k: CacheKey, r: CoapMessage, now: u64) {
        match self {
            CacheUnderTest::Flat(c) => c.insert(k, r, now),
            CacheUnderTest::Sharded(c) => c.insert(k, r, now),
        }
    }
    fn revalidate(&mut self, k: &CacheKey, v: &CoapMessage, now: u64) -> Option<CoapMessage> {
        match self {
            CacheUnderTest::Flat(c) => c.revalidate(k, v, now),
            CacheUnderTest::Sharded(c) => c.revalidate(k, v, now),
        }
    }
}

/// Apply the op script, returning the observable trace (every lookup
/// and revalidation result, Debug-formatted).
fn apply_ops(ops: &[Op], mut cache: CacheUnderTest<'_>) -> Vec<String> {
    let mut now: u64 = 0;
    let mut trace = Vec::new();
    for op in ops {
        match op {
            Op::Advance { dt_ms } => now += u64::from(*dt_ms),
            Op::Insert {
                key_id,
                version,
                max_age_s,
                etag,
            } => cache.insert(
                key(*key_id),
                response(*key_id, *version, *max_age_s, *etag),
                now,
            ),
            Op::Lookup { key_id } => {
                trace.push(format!(
                    "lookup {key_id} -> {:?}",
                    cache.lookup(&key(*key_id), now)
                ));
            }
            Op::Revalidate {
                key_id,
                version,
                max_age_s,
            } => {
                trace.push(format!(
                    "reval {key_id} -> {:?}",
                    cache.revalidate(&key(*key_id), &valid(*key_id, *version, *max_age_s), now)
                ));
            }
        }
    }
    trace
}

proptest! {
    /// For arbitrary interleaved insert/lookup/revalidate sequences
    /// over ≤ 8 keys with ample capacity (so eviction never fires —
    /// the one behaviour where multi-shard FIFO legitimately differs),
    /// every shard count produces exactly the unsharded trace and
    /// aggregate statistics.
    #[test]
    fn sharded_cache_is_observationally_identical(
        ops in proptest::collection::vec(arb_op(), 1..60),
        shards in prop_oneof![Just(1usize), Just(2), Just(4), Just(8)],
    ) {
        let mut flat = ResponseCache::new(64);
        let flat_trace = apply_ops(&ops, CacheUnderTest::Flat(&mut flat));
        let sharded = ShardedResponseCache::new(64 * shards, shards);
        let sharded_trace = apply_ops(&ops, CacheUnderTest::Sharded(&sharded));
        prop_assert_eq!(&flat_trace, &sharded_trace, "shards = {}", shards);
        prop_assert_eq!(flat.stats(), sharded.stats());
        prop_assert_eq!(flat.len(), sharded.len());
    }

    /// With a single shard the equivalence extends to eviction: the
    /// FIFO victim order is identical even under capacity pressure.
    #[test]
    fn single_shard_matches_even_under_eviction(
        inserts in proptest::collection::vec((0u8..16, any::<u8>()), 1..40),
        capacity in 1usize..6,
    ) {
        let mut flat = ResponseCache::new(capacity);
        let sharded = ShardedResponseCache::new(capacity, 1);
        for (key_id, version) in &inserts {
            let r = response(*key_id, *version, 60, true);
            flat.insert(key(*key_id), r.clone(), 0);
            sharded.insert(key(*key_id), r, 0);
        }
        for key_id in 0u8..16 {
            prop_assert_eq!(
                flat.lookup(&key(key_id), 1),
                sharded.lookup(&key(key_id), 1),
                "key {}", key_id
            );
        }
        prop_assert_eq!(flat.stats(), sharded.stats());
    }
}

/// Multi-shard capacity stays bounded under eviction pressure even if
/// victim order differs from the global FIFO.
#[test]
fn multi_shard_eviction_stays_bounded() {
    let sharded = ShardedResponseCache::new(16, 4);
    for i in 0..200u8 {
        sharded.insert(key(i), response(i, 0, 60, false), 0);
    }
    assert!(sharded.len() <= 16, "len {}", sharded.len());
    assert!(sharded.stats().evictions >= 184);
}

/// Seeded-thread isolation: concurrent workers hammering the sharded
/// cache never observe a response that crossed shard/key boundaries —
/// every Fresh lookup and revalidation returns the payload written for
/// exactly that key, and ETag-carrying stale entries expose that key's
/// tag.
#[test]
fn concurrent_workers_never_cross_shard_boundaries() {
    const KEYS: u8 = 32;
    const THREADS: u64 = 4;
    const OPS: u64 = 4_000;
    let cache = Arc::new(ShardedResponseCache::new(256, 8));
    let threads: Vec<_> = (0..THREADS)
        .map(|t| {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || {
                // Deterministic per-thread xorshift op stream.
                let mut rng: u64 = 0x9E3779B97F4A7C15u64.wrapping_mul(t + 1) | 1;
                let mut step = move || {
                    rng ^= rng >> 12;
                    rng ^= rng << 25;
                    rng ^= rng >> 27;
                    rng.wrapping_mul(0x2545F4914F6CDD1D)
                };
                for _ in 0..OPS {
                    let r = step();
                    let key_id = (r % u64::from(KEYS)) as u8;
                    let now = (r >> 8) % 10_000;
                    match (r >> 32) % 3 {
                        0 => cache.insert(
                            key(key_id),
                            response(key_id, (r >> 16) as u8, 5, true),
                            now,
                        ),
                        1 => match cache.lookup(&key(key_id), now) {
                            Lookup::Fresh(resp) => {
                                assert_eq!(
                                    resp.payload[0], key_id,
                                    "fresh response served across key/shard boundary"
                                );
                            }
                            Lookup::Stale { etag, response } => {
                                assert_eq!(etag[0], key_id, "foreign ETag");
                                assert_eq!(response.payload[0], key_id);
                            }
                            Lookup::Miss | Lookup::StaleNoEtag => {}
                        },
                        _ => {
                            if let Some(refreshed) =
                                cache.revalidate(&key(key_id), &valid(key_id, 1, 5), now)
                            {
                                assert_eq!(refreshed.payload[0], key_id);
                            }
                        }
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    // Aggregate accounting survived the interleaving.
    let st = cache.stats();
    let lookups = st.hits + st.misses + st.stale;
    assert!(lookups > 0 && st.revalidations > 0);
    assert!(cache.len() <= 256);
}
