#!/usr/bin/env sh
# One-command gate for this repository. Later PRs must keep this green.
#
#   ./ci.sh          # tier-1 (build + test) + format + lints
#   ./ci.sh quick    # tier-1 only
#
# Tier-1 is exactly what the project driver runs:
#   cargo build --release && cargo test -q
set -eu

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

[ "${1:-}" = "quick" ] && exit 0

echo "==> codec-bench smoke (emits BENCH_codecs.json, asserts zero-alloc encode)"
BENCH_WARMUP_MS=10 BENCH_MEASURE_MS=25 cargo bench -p doc-bench --bench encode

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> ci.sh: all gates green"
