#!/usr/bin/env sh
# One-command gate for this repository. Later PRs must keep this green.
#
#   ./ci.sh          # tier-1 (build + test) + format + lints
#   ./ci.sh quick    # tier-1 only
#
# Tier-1 is exactly what the project driver runs:
#   cargo build --release && cargo test -q
set -eu

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

[ "${1:-}" = "quick" ] && exit 0

# The allocation bounds are exact and always asserted by the bench; the
# >=2x view-decode speedup is timing and is only enforced on full
# measurement windows (default `cargo bench -p doc-bench --bench
# encode`), not on this shortened smoke run.
echo "==> codec-bench smoke (emits BENCH_codecs.json; asserts zero-alloc encode+decode and <=4-alloc OSCORE protect)"
BENCH_WARMUP_MS=10 BENCH_MEASURE_MS=25 cargo bench -p doc-bench --bench encode

echo "==> BENCH_codecs.json gate: every *_view/*_into row must report 0 allocs/iter"
if grep -E '"name": "[^"]*(_view|_into)"' BENCH_codecs.json | grep -v '"allocs_per_iter": 0\.000'; then
    echo "FAIL: a zero-copy codec row above reports nonzero allocs/iter" >&2
    exit 1
fi

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> ci.sh: all gates green"
