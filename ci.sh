#!/usr/bin/env sh
# One-command gate for this repository. Later PRs must keep this green.
#
#   ./ci.sh          # full: tier-1 + smoke benches + parsed JSON gates
#                    #       + format + lints
#   ./ci.sh quick    # tier-1 + the DoQ-vs-analytical-model conformance
#                    # test re-run in release (it gates the simulated
#                    # QUIC transport against doc-models::quic)
#   ./ci.sh bench    # tier-1 build + the loopback UdpProvider smoke
#                    # (real UDP sockets through the identical worker
#                    # code, byte-identical to the sim front-end) + full
#                    # measurement windows, then the timing gates: >=2x
#                    # view-decode speedup (asserted by the encode bench
#                    # itself), the 4-vs-1 worker throughput scaling
#                    # gate (bench_gate proxy --require-scaling; the
#                    # required ratio follows the machine parallelism
#                    # recorded in BENCH_proxy.json: >=2x on >=4 cores,
#                    # a no-collapse bound below — the >=2x bound stays
#                    # dormant on smaller runners but is always present
#                    # in the v4 schema), the zero-alloc pool gate
#                    # (allocs_per_req < 1 on the 4-worker CoAP sim
#                    # path, always enforced),
#                    # the congested-bottleneck recovery gate (all
#                    # three congestion controllers' rows present and
#                    # both adaptive p99s below the fixed-RTO oracle;
#                    # deterministic in virtual time, so always
#                    # enforced), and the crypto vectorization gates
#                    # (bench_gate crypto: AES-NI seal >=2x the scalar
#                    # reference, batch-8 sealing >=1.3x batch-1 on the
#                    # multi-block backends).
#   ./ci.sh fuzz     # release build + the deterministic differential
#                    # fuzzing campaign (fuzz_gate): 140k fixed-seed
#                    # iterations across the seven differential
#                    # families (six parsers + the crypto substrate),
#                    # failing with a shrunk counterexample on any
#                    # owned/view/re-encode (or backend/batch)
#                    # disagreement.
#   ./ci.sh check    # static analysis + model checking: lint_gate
#                    # (workspace invariant linter: panic-free parsers,
#                    # 0-alloc hot paths, SAFETY-commented unsafe, with
#                    # `// lint:allow(<rule>): <reason>` waivers) and
#                    # check_gate (doc-check: exhaustive bounded
#                    # thread-interleaving exploration of the real
#                    # SpmcRing/WorkerDeque/Park/ShardedCache/
#                    # proxy-stats primitives, failing with a minimal
#                    # replayable schedule).
#
# Tier-1 is exactly what the project driver runs:
#   cargo build --release && cargo test -q
#
# The JSON bench artifacts are validated by the bench_gate binary
# (schema version, row shapes, numeric bounds) — not by grep.
set -eu

# Modes are dispatched through this case so a new mode can never be
# mistaken for "no argument" and silently skip gates (the old
# short-circuit `[ "$1" = quick ] && exit 0` relied on its position
# under `set -e` to not abort the full run).
mode="${1:-full}"
case "$mode" in
    quick|full|bench|fuzz|check) ;;
    *)
        echo "usage: $0 [quick|full|bench|fuzz|check]" >&2
        exit 2
        ;;
esac

run_tier1() {
    echo "==> tier-1: cargo build --release"
    cargo build --release
    echo "==> tier-1: cargo test -q"
    cargo test -q
}

run_gate() {
    echo "==> bench_gate: $*"
    cargo run --release -q -p doc-bench --bin bench_gate -- "$@"
}

run_fuzz() {
    # The differential fuzzing gate: one mutated corpus through every
    # family (owned vs view vs re-encode for the six parsers; scalar vs
    # vector vs batched for the crypto substrate), 20k iterations per
    # family under a fixed seed, so the campaign is reproducible and
    # every CI run is a fuzzing run. A divergence exits non-zero with a
    # shrunk counterexample and a one-line replay command.
    echo "==> fuzz_gate: deterministic differential campaign (140k iterations)"
    cargo run --release -q -p doc-fuzz --bin fuzz_gate
}

run_check() {
    # Static analysis + model checking. lint_gate walks every workspace
    # source with the doc-lint rules and fails on any unwaivered
    # violation; check_gate exhaustively explores bounded thread
    # interleavings of the real concurrency primitives via doc-check
    # and fails with a minimal, replayable schedule on any panic or
    # deadlock.
    echo "==> lint_gate: workspace invariant linter"
    cargo run --release -q -p doc-lint --bin lint_gate
    echo "==> check_gate: bounded model checking of the concurrency primitives"
    cargo run --release -q -p doc-repro --bin check_gate
}

run_conformance() {
    # The DoQ conformance suite (simulated transport vs the
    # doc-models::quic analytical envelope) is part of tier-1's debug
    # run already; re-running it in release guards the packet-size
    # arithmetic against debug-only behaviour (overflow checks) and
    # gives quick mode an explicit, named gate.
    echo "==> quic conformance (release): cargo test --release -q --test quic_conformance"
    cargo test --release -q --test quic_conformance
}

case "$mode" in
    quick)
        run_tier1
        run_conformance
        ;;
    full)
        run_tier1
        run_conformance
        run_check
        run_fuzz
        # Shortened measurement windows: the allocation bounds are
        # exact and always asserted in-process by the encode bench; the
        # structural JSON gates run on the emitted artifacts. Timing
        # bounds (decode speedup, worker scaling) are only enforced in
        # bench mode, on full windows.
        echo "==> codec-bench smoke (emits BENCH_codecs.json; asserts zero-alloc encode+decode)"
        BENCH_WARMUP_MS=10 BENCH_MEASURE_MS=25 cargo bench -p doc-bench --bench encode
        echo "==> proxy-throughput smoke (emits BENCH_proxy.json)"
        BENCH_PROXY_REQUESTS=3000 BENCH_PROXY_CONCURRENCY=64 \
            cargo bench -p doc-bench --bench throughput
        echo "==> crypto-bench smoke (emits BENCH_crypto.json; per-backend seal/open/batch rows)"
        BENCH_WARMUP_MS=10 BENCH_MEASURE_MS=25 cargo bench -p doc-bench --bench crypto
        run_gate codecs BENCH_codecs.json proxy BENCH_proxy.json crypto BENCH_crypto.json
        echo "==> cargo fmt --check"
        cargo fmt --check
        echo "==> cargo clippy --workspace --all-targets -- -D warnings"
        cargo clippy --workspace --all-targets -- -D warnings
        ;;
    bench)
        echo "==> bench: cargo build --release"
        cargo build --release
        # The socket front-end must serve the same mix as the sim
        # front-end before the throughput numbers mean anything.
        echo "==> UDP loopback smoke (UdpProvider vs SimProvider parity + multi-worker serve)"
        cargo test --release -q --test io_providers
        echo "==> codec bench, full windows (asserts >=2x view-decode speedup in-process)"
        cargo bench -p doc-bench --bench encode
        echo "==> proxy throughput bench, full windows (1/2/4/8 workers)"
        cargo bench -p doc-bench --bench throughput
        echo "==> crypto bench, full windows (asserts AES-NI >=2x reference and batch gains in-process)"
        cargo bench -p doc-bench --bench crypto
        run_gate codecs BENCH_codecs.json proxy BENCH_proxy.json --require-scaling \
            crypto BENCH_crypto.json
        ;;
    fuzz)
        echo "==> fuzz: cargo build --release"
        cargo build --release
        run_fuzz
        ;;
    check)
        run_check
        ;;
esac

echo "==> ci.sh ($mode): all gates green"
