//! Statistics toolkit recomputing Table 3 / Fig. 1 quantities from a
//! sample of name lengths.

/// Summary statistics of a length sample (one Table 3 row).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LengthStats {
    /// Sample size.
    pub n: usize,
    /// Minimum.
    pub min: usize,
    /// Maximum.
    pub max: usize,
    /// Most frequent value (smallest on ties).
    pub mode: usize,
    /// Mean (μ).
    pub mean: f64,
    /// Population standard deviation (σ).
    pub sigma: f64,
    /// First quartile (nearest-rank).
    pub q1: usize,
    /// Median (nearest-rank).
    pub q2: usize,
    /// Third quartile (nearest-rank).
    pub q3: usize,
}

impl LengthStats {
    /// Compute from raw lengths.
    ///
    /// # Panics
    /// Panics on an empty sample.
    pub fn from_lengths(lengths: &[usize]) -> Self {
        assert!(!lengths.is_empty(), "empty sample");
        let mut sorted = lengths.to_vec();
        sorted.sort_unstable();
        let n = sorted.len();
        let mean = sorted.iter().sum::<usize>() as f64 / n as f64;
        let var = sorted
            .iter()
            .map(|&x| {
                let d = x as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n as f64;
        // Nearest-rank quantiles.
        let rank = |p: f64| -> usize {
            let r = (p * n as f64).ceil() as usize;
            sorted[r.clamp(1, n) - 1]
        };
        // Mode via frequency count.
        let max_len = *sorted.last().expect("non-empty");
        let mut freq = vec![0usize; max_len + 1];
        for &l in &sorted {
            freq[l] += 1;
        }
        let mode = freq
            .iter()
            .enumerate()
            .max_by_key(|&(_, c)| c)
            .map(|(l, _)| l)
            .expect("non-empty");
        LengthStats {
            n,
            min: sorted[0],
            max: max_len,
            mode,
            mean,
            sigma: var.sqrt(),
            q1: rank(0.25),
            q2: rank(0.50),
            q3: rank(0.75),
        }
    }
}

/// Normalized density histogram (percent per length) over `0..=max_len`
/// — the y-axis of Fig. 1.
pub fn density_histogram(lengths: &[usize], max_len: usize) -> Vec<f64> {
    let mut hist = vec![0.0f64; max_len + 1];
    if lengths.is_empty() {
        return hist;
    }
    for &l in lengths {
        if l <= max_len {
            hist[l] += 1.0;
        }
    }
    let total = lengths.len() as f64;
    for h in hist.iter_mut() {
        *h = *h / total * 100.0;
    }
    hist
}

/// Fraction of the link-layer PDU a name of `len` chars occupies — §3.2
/// computes "18.8% of 127 bytes" for the 24-char median and "40.7%" of
/// LoRaWAN's 59 bytes.
pub fn pdu_share(len: usize, pdu: usize) -> f64 {
    len as f64 / pdu as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_stats() {
        let s = LengthStats::from_lengths(&[1, 2, 2, 3, 4]);
        assert_eq!(s.n, 5);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 4);
        assert_eq!(s.mode, 2);
        assert!((s.mean - 2.4).abs() < 1e-9);
        assert_eq!(s.q2, 2);
    }

    #[test]
    fn quartiles_nearest_rank() {
        let data: Vec<usize> = (1..=100).collect();
        let s = LengthStats::from_lengths(&data);
        assert_eq!(s.q1, 25);
        assert_eq!(s.q2, 50);
        assert_eq!(s.q3, 75);
    }

    #[test]
    fn sigma_population() {
        let s = LengthStats::from_lengths(&[2, 4, 4, 4, 5, 5, 7, 9]);
        assert!((s.sigma - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_panics() {
        LengthStats::from_lengths(&[]);
    }

    #[test]
    fn histogram_density_sums_to_100() {
        let data = vec![5usize, 5, 10, 20, 20, 20];
        let h = density_histogram(&data, 85);
        let total: f64 = h.iter().sum();
        assert!((total - 100.0).abs() < 1e-9);
        assert!((h[20] - 50.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_ignores_overflow() {
        let h = density_histogram(&[5, 200], 85);
        assert!((h[5] - 50.0).abs() < 1e-9);
        assert!((h.iter().sum::<f64>() - 50.0).abs() < 1e-9);
    }

    /// §3.2: the 24-char median occupies 18.8% of the 802.15.4 PDU and
    /// 40.7% of LoRaWAN's 59-byte PDU.
    #[test]
    fn pdu_share_paper_numbers() {
        assert!((pdu_share(24, 127) - 0.188).abs() < 0.002);
        assert!((pdu_share(24, 59) - 0.407).abs() < 0.002);
    }
}
