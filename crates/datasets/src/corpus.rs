//! Full corpus generation: unique domain names with realistic label
//! structure at target presentation lengths.
//!
//! Names mimic the shapes the paper describes: short vendor domains
//! ("e123.abcd.akamaiedge.net"-style CDN names around the 24-char
//! median) and long mDNS/UUID device names in the tail (§3.2:
//! "Significantly longer names are used for certain mDNS applications,
//! e.g., … to identify local devices via a UUID").

use crate::lengths::{Dataset, LengthModel};
use crate::records::{sample_record_type, TrafficMix};
use doc_dns::{Name, RecordType};

/// One generated corpus entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusName {
    /// The generated domain name.
    pub name: Name,
    /// The record type a query for this name would use.
    pub rtype: RecordType,
}

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed
            .wrapping_add(0x9E3779B97F4A7C15)
            .wrapping_mul(0xBF58476D1CE4E5B9)
            | 1)
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
    fn uniform(&mut self) -> f64 {
        ((self.next() >> 11) as f64) / (1u64 << 53) as f64
    }
    fn alnum(&mut self) -> u8 {
        const CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789";
        CHARS[(self.next() % CHARS.len() as u64) as usize]
    }
}

/// Suffixes for cloud/CDN-style names (short/medium lengths).
const SUFFIXES: &[&str] = &[
    "akamaiedge.net",
    "amazonaws.com",
    "cloudfront.net",
    "iot.example.com",
    "tuyaeu.com",
    "nest.com",
    "local",
];

/// Build a syntactically valid name of exactly `len` presentation
/// characters (best effort for very short lengths).
fn name_of_length(rng: &mut Rng, len: usize) -> Name {
    if len < 3 {
        // Degenerate lengths (the IXP sample contains 0..2): single
        // short label.
        let l = len.max(1);
        let label: Vec<u8> = (0..l).map(|_| rng.alnum()).collect();
        return Name::from_labels(&[label]).expect("short label is valid");
    }
    // Pick a suffix that leaves room for at least a 1-char prefix label.
    let mut suffix = "";
    for _ in 0..8 {
        let cand = SUFFIXES[(rng.next() % SUFFIXES.len() as u64) as usize];
        if cand.len() + 2 <= len {
            suffix = cand;
            break;
        }
    }
    let remaining = if suffix.is_empty() {
        len
    } else {
        len - suffix.len() - 1
    };
    // Fill the remaining budget with labels of up to 20 chars.
    let mut labels: Vec<Vec<u8>> = Vec::new();
    let mut left = remaining;
    while left > 0 {
        let this = if left <= 21 {
            left
        } else {
            // Leave room for the dot separating the next label.
            (2 + (rng.next() % 19) as usize).min(left - 2)
        };
        labels.push((0..this.min(63)).map(|_| rng.alnum()).collect());
        left = left.saturating_sub(this + 1);
    }
    for part in suffix.split('.') {
        if !part.is_empty() {
            labels.push(part.as_bytes().to_vec());
        }
    }
    Name::from_labels(&labels).expect("constructed labels are valid")
}

/// Generate `n` unique names following `dataset`'s length distribution
/// and `mix`'s record-type distribution.
pub fn generate_corpus(dataset: Dataset, mix: TrafficMix, n: usize, seed: u64) -> Vec<CorpusName> {
    let model = LengthModel::for_dataset(dataset);
    let mut rng = Rng::new(seed);
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::with_capacity(n);
    let mut guard = 0;
    while out.len() < n && guard < n * 100 {
        guard += 1;
        let len = model.sample(rng.uniform()).max(1);
        let name = name_of_length(&mut rng, len);
        if !seen.insert(name.clone()) {
            continue;
        }
        let rtype = sample_record_type(mix, rng.uniform());
        out.push(CorpusName { name, rtype });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::LengthStats;

    #[test]
    fn generated_lengths_follow_model() {
        let corpus = generate_corpus(Dataset::IotTotal, TrafficMix::IotWithMdns, 2336, 42);
        assert_eq!(corpus.len(), 2336);
        let lengths: Vec<usize> = corpus.iter().map(|c| c.name.presentation_len()).collect();
        let s = LengthStats::from_lengths(&lengths);
        // §3.2 headline numbers.
        assert!((s.q2 as i64 - 24).abs() <= 1, "median {}", s.q2);
        assert!((s.mean - 25.9).abs() < 2.0, "mean {:.1}", s.mean);
    }

    #[test]
    fn names_are_unique_and_valid() {
        let corpus = generate_corpus(Dataset::YourThings, TrafficMix::IotWithMdns, 500, 7);
        let mut set = std::collections::HashSet::new();
        for c in &corpus {
            assert!(set.insert(c.name.clone()), "duplicate {}", c.name);
            assert!(c.name.wire_len() <= 255);
            // Round-trip through the wire codec.
            let mut wire = Vec::new();
            c.name.encode(&mut wire);
            let mut pos = 0;
            assert_eq!(Name::decode(&wire, &mut pos).unwrap(), c.name);
        }
    }

    #[test]
    fn exact_lengths_mostly_hit() {
        let mut rng = Rng::new(9);
        for target in [5usize, 12, 24, 31, 40, 60, 83] {
            let mut hits = 0;
            for _ in 0..50 {
                let n = name_of_length(&mut rng, target);
                if n.presentation_len() == target {
                    hits += 1;
                }
            }
            assert!(hits >= 45, "target {target}: only {hits}/50 exact");
        }
    }

    #[test]
    fn record_types_follow_mix() {
        let corpus = generate_corpus(Dataset::IotTotal, TrafficMix::IotWithoutMdns, 2000, 3);
        let a =
            corpus.iter().filter(|c| c.rtype == RecordType::A).count() as f64 / corpus.len() as f64;
        assert!((a - 0.758).abs() < 0.03, "A share {a:.3}");
    }

    #[test]
    fn deterministic() {
        let a = generate_corpus(Dataset::Ixp, TrafficMix::Ixp, 100, 5);
        let b = generate_corpus(Dataset::Ixp, TrafficMix::Ixp, 100, 5);
        assert_eq!(a, b);
    }
}
