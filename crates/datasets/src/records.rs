//! Queried record-type mixes (Table 4 of the paper).
//!
//! | Data set     | A    | AAAA | ANY | HTTPS | NS  | PTR  | SRV | TXT | Other |
//! |--------------|------|------|-----|-------|-----|------|-----|-----|-------|
//! | IoT w/ mDNS  | 53.6 | 16.4 | 8.2 | —     | —   | 19.6 | 1.0 | 1.2 | <0.1  |
//! | IoT w/o mDNS | 75.8 | 23.5 | —   | —     | —   | 0.3  | —   | 0.1 | 0.3   |
//! | IXP          | 64.5 | 17.6 | 1.7 | 9.1   | 0.7 | 1.8  | 0.4 | 0.7 | 3.5   |

use doc_dns::RecordType;

/// A record type's share of queries, in permyriad (1/100 of a percent)
/// so the table is exactly representable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordShare {
    /// Record type.
    pub rtype: RecordType,
    /// Share in permyriad (53.6% = 5360).
    pub permyriad: u32,
}

/// Traffic mixes of Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficMix {
    /// IoT data including multicast DNS.
    IotWithMdns,
    /// IoT data excluding multicast DNS.
    IotWithoutMdns,
    /// The IXP sample.
    Ixp,
}

impl TrafficMix {
    /// Paper label.
    pub fn name(self) -> &'static str {
        match self {
            TrafficMix::IotWithMdns => "IoT w/ mDNS",
            TrafficMix::IotWithoutMdns => "IoT w/o mDNS",
            TrafficMix::Ixp => "IXP",
        }
    }
}

/// The Table 4 record-type distribution for a traffic mix.
pub fn record_mix(mix: TrafficMix) -> Vec<RecordShare> {
    let rows: &[(RecordType, u32)] = match mix {
        TrafficMix::IotWithMdns => &[
            (RecordType::A, 5360),
            (RecordType::Aaaa, 1640),
            (RecordType::Any, 820),
            (RecordType::Ptr, 1960),
            (RecordType::Srv, 100),
            (RecordType::Txt, 120),
        ],
        TrafficMix::IotWithoutMdns => &[
            (RecordType::A, 7580),
            (RecordType::Aaaa, 2350),
            (RecordType::Ptr, 30),
            (RecordType::Txt, 10),
            (RecordType::Other(0), 30),
        ],
        TrafficMix::Ixp => &[
            (RecordType::A, 6450),
            (RecordType::Aaaa, 1760),
            (RecordType::Any, 170),
            (RecordType::Https, 910),
            (RecordType::Ns, 70),
            (RecordType::Ptr, 180),
            (RecordType::Srv, 40),
            (RecordType::Txt, 70),
            (RecordType::Other(0), 350),
        ],
    };
    rows.iter()
        .map(|&(rtype, permyriad)| RecordShare { rtype, permyriad })
        .collect()
}

/// Sample a record type from the mix given a uniform draw `u ∈ [0, 1)`.
/// Residual mass (rows not summing to 100%) falls to the last entry.
pub fn sample_record_type(mix: TrafficMix, u: f64) -> RecordType {
    let shares = record_mix(mix);
    let mut acc = 0u32;
    let target = (u * 10_000.0) as u32;
    for s in &shares {
        acc += s.permyriad;
        if target < acc {
            return s.rtype;
        }
    }
    shares.last().expect("non-empty mix").rtype
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_close_to_100_percent() {
        for mix in [
            TrafficMix::IotWithMdns,
            TrafficMix::IotWithoutMdns,
            TrafficMix::Ixp,
        ] {
            let total: u32 = record_mix(mix).iter().map(|s| s.permyriad).sum();
            assert!(
                (9990..=10_010).contains(&total),
                "{}: total {total}",
                mix.name()
            );
        }
    }

    /// §3.2: "A records are in all data sets the most requested
    /// records, with AAAA records being close second… When not
    /// accounting for mDNS, these are >99% of all records in the IoT."
    #[test]
    fn a_and_aaaa_dominate() {
        for mix in [
            TrafficMix::IotWithMdns,
            TrafficMix::IotWithoutMdns,
            TrafficMix::Ixp,
        ] {
            let shares = record_mix(mix);
            let a = shares
                .iter()
                .find(|s| s.rtype == RecordType::A)
                .expect("A present")
                .permyriad;
            assert!(shares.iter().all(|s| s.permyriad <= a), "{}", mix.name());
        }
        let no_mdns = record_mix(TrafficMix::IotWithoutMdns);
        let a_aaaa: u32 = no_mdns
            .iter()
            .filter(|s| matches!(s.rtype, RecordType::A | RecordType::Aaaa))
            .map(|s| s.permyriad)
            .sum();
        assert!(a_aaaa > 9900, "A+AAAA = {a_aaaa} permyriad");
    }

    /// Service-discovery types (ANY/PTR/SRV/TXT) appear only with mDNS
    /// in meaningful quantity.
    #[test]
    fn mdns_brings_service_discovery_types() {
        let with = record_mix(TrafficMix::IotWithMdns);
        let ptr = with
            .iter()
            .find(|s| s.rtype == RecordType::Ptr)
            .expect("PTR present")
            .permyriad;
        assert!(ptr > 1500);
        let without = record_mix(TrafficMix::IotWithoutMdns);
        let ptr2 = without
            .iter()
            .find(|s| s.rtype == RecordType::Ptr)
            .map(|s| s.permyriad)
            .unwrap_or(0);
        assert!(ptr2 < 100);
    }

    /// HTTPS records appear only at the IXP (Table 4).
    #[test]
    fn https_only_at_ixp() {
        assert!(record_mix(TrafficMix::Ixp)
            .iter()
            .any(|s| s.rtype == RecordType::Https));
        for mix in [TrafficMix::IotWithMdns, TrafficMix::IotWithoutMdns] {
            assert!(!record_mix(mix).iter().any(|s| s.rtype == RecordType::Https));
        }
    }

    #[test]
    fn sampling_matches_distribution() {
        let mut counts = std::collections::HashMap::new();
        let n = 100_000;
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        for _ in 0..n {
            let mut x = state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            state = x;
            let u = ((x.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64) / (1u64 << 53) as f64;
            *counts
                .entry(sample_record_type(TrafficMix::IotWithMdns, u).to_u16())
                .or_insert(0u32) += 1;
        }
        let a_share = counts[&1] as f64 / n as f64;
        assert!((a_share - 0.536).abs() < 0.01, "A share {a_share}");
        let ptr_share = counts[&12] as f64 / n as f64;
        assert!((ptr_share - 0.196).abs() < 0.01, "PTR share {ptr_share}");
    }
}
