//! `doc-datasets` — synthetic DNS corpora calibrated to the paper's §3
//! empirical study (Table 3, Table 4, Fig. 1).
//!
//! The paper analyzes DNS traffic of >90 consumer IoT devices from
//! three public captures (YourThings, IoTFinder, MonIoTr; all 2019)
//! and compares with sFlow samples from a European IXP. Those captures
//! are not redistributable, so this crate substitutes **generators
//! whose name-length and record-type distributions are calibrated to
//! the published statistics** (see DESIGN.md → Substitutions). The
//! downstream design inputs the paper derives — 24-character median
//! names, A/AAAA dominance, mDNS-driven long-name tail — are thereby
//! reproduced exactly.
//!
//! * [`lengths`] — per-dataset name-length distributions (mixtures of
//!   discretized Gaussians fitted to Table 3's min/max/mode/μ/σ/Q1/Q2/
//!   Q3) and samplers.
//! * [`records`] — the Table 4 record-type mixes (IoT with/without
//!   mDNS, IXP).
//! * [`stats`] — the statistics toolkit that recomputes Table 3 from a
//!   sample (mean, σ, nearest-rank quartiles, mode, density
//!   histograms for Fig. 1).
//! * [`corpus`] — full corpus generation: unique domain [`doc_dns::Name`]s
//!   with realistic label structure at a target presentation length.

pub mod corpus;
pub mod lengths;
pub mod records;
pub mod stats;

pub use corpus::{generate_corpus, CorpusName};
pub use lengths::{Dataset, LengthModel};
pub use records::{record_mix, RecordShare};
pub use stats::{density_histogram, LengthStats};
