//! Name-length models fitted to the paper's Table 3.
//!
//! Each dataset's length distribution is a mixture of discretized
//! Gaussian components over the valid length range. The component
//! parameters were fitted numerically so that the resulting
//! distribution's min/max/mode/μ/σ/Q1/Q2/Q3 match the published row of
//! Table 3 (tests in [`crate::stats`] assert the match):
//!
//! | Data source | n    | min | max | mode | μ    | σ    | Q1 | Q2 | Q3 |
//! |-------------|------|-----|-----|------|------|------|----|----|----|
//! | YourThings  | 1293 | 2   | 83  | 31   | 24.5 | 9.7  | 18 | 24 | 30 |
//! | IoTFinder   | 1097 | 7   | 82  | 24   | 26.8 | 10.5 | 20 | 24 | 30 |
//! | MonIoTr     | 695  | 9   | 83  | 18   | 27.1 | 14.7 | 18 | 23 | 30 |
//! | IXP         | —    | 0   | 68  | 17   | 26.1 | 11.7 | 17 | 25 | 33 |

/// The data sources of §3.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// YourThings (Alrawi et al., IEEE S&P 2019).
    YourThings,
    /// IoTFinder (Perdisci et al., EuroS&P 2020).
    IotFinder,
    /// MonIoTr (Ren et al., IMC 2019).
    MonIotr,
    /// The aggregate of the three IoT datasets ("IoT total").
    IotTotal,
    /// The European IXP sFlow sample.
    Ixp,
}

impl Dataset {
    /// Paper label.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::YourThings => "YourThings",
            Dataset::IotFinder => "IoTFinder",
            Dataset::MonIotr => "MonIoTr",
            Dataset::IotTotal => "IoT total",
            Dataset::Ixp => "IXP",
        }
    }

    /// Unique-name count reported in Table 3 (None for the IXP, whose
    /// privacy pipeline prevented counting).
    pub fn unique_names(self) -> Option<usize> {
        match self {
            Dataset::YourThings => Some(1293),
            Dataset::IotFinder => Some(1097),
            Dataset::MonIotr => Some(695),
            Dataset::IotTotal => Some(2336),
            Dataset::Ixp => None,
        }
    }
}

/// One Gaussian mixture component: (mean, sigma, weight).
type Component = (f64, f64, f64);

/// A fitted length distribution.
#[derive(Debug, Clone)]
pub struct LengthModel {
    /// Inclusive length range.
    pub min: usize,
    /// Inclusive maximum.
    pub max: usize,
    /// Probability mass per length (index 0 = length `min`).
    pmf: Vec<f64>,
    /// Cumulative distribution for sampling.
    cdf: Vec<f64>,
}

impl LengthModel {
    fn from_components(min: usize, max: usize, comps: &[Component]) -> Self {
        let mut pmf = Vec::with_capacity(max - min + 1);
        for len in min..=max {
            let x = len as f64;
            let p: f64 = comps
                .iter()
                .map(|&(m, s, w)| w * (-((x - m) * (x - m)) / (2.0 * s * s)).exp() / s)
                .sum();
            pmf.push(p);
        }
        let total: f64 = pmf.iter().sum();
        for p in pmf.iter_mut() {
            *p /= total;
        }
        let mut cdf = Vec::with_capacity(pmf.len());
        let mut acc = 0.0;
        for &p in &pmf {
            acc += p;
            cdf.push(acc);
        }
        LengthModel { min, max, pmf, cdf }
    }

    /// The fitted model for `dataset`.
    pub fn for_dataset(dataset: Dataset) -> Self {
        match dataset {
            // Left-skewed: CDN-style names cluster at 31 chars (the
            // mode) with a large population of shorter vendor names and
            // a small mDNS long tail.
            Dataset::YourThings => Self::from_components(
                2,
                83,
                &[(31.0, 3.0, 0.38), (19.0, 5.0, 0.60), (65.0, 10.0, 0.02)],
            ),
            Dataset::IotFinder => {
                Self::from_components(7, 82, &[(24.0, 6.0, 0.84), (41.0, 18.0, 0.16)])
            }
            Dataset::MonIotr => {
                Self::from_components(9, 83, &[(20.0, 6.0, 0.72), (44.0, 18.0, 0.28)])
            }
            Dataset::Ixp => Self::from_components(
                0,
                68,
                &[(17.0, 4.0, 0.45), (32.0, 6.0, 0.50), (65.0, 8.0, 0.05)],
            ),
            // Fitted directly to the "IoT total" row (a pure count-
            // weighted aggregate of the three fitted sources lands
            // within ~1 char of every statistic but shifts the mode to
            // 21; Table 3 reports 24).
            Dataset::IotTotal => Self::from_components(
                2,
                83,
                &[(24.0, 5.5, 0.73), (16.0, 3.0, 0.15), (50.0, 12.0, 0.12)],
            ),
        }
    }

    /// Probability of a given length.
    pub fn pmf(&self, len: usize) -> f64 {
        if len < self.min || len > self.max {
            return 0.0;
        }
        self.pmf[len - self.min]
    }

    /// Sample a length given a uniform `u ∈ [0, 1)`.
    pub fn sample(&self, u: f64) -> usize {
        let idx = self
            .cdf
            .iter()
            .position(|&c| u < c)
            .unwrap_or(self.cdf.len() - 1);
        self.min + idx
    }

    /// Draw `n` lengths with a seeded xorshift RNG.
    pub fn sample_many(&self, seed: u64, n: usize) -> Vec<usize> {
        let mut state = seed
            .wrapping_add(0x9E3779B97F4A7C15)
            .wrapping_mul(0xBF58476D1CE4E5B9)
            | 1;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let mut x = state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            state = x;
            let u = ((x.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64) / (1u64 << 53) as f64;
            out.push(self.sample(u));
        }
        out
    }

    /// Analytic mean of the distribution.
    pub fn mean(&self) -> f64 {
        self.pmf
            .iter()
            .enumerate()
            .map(|(i, p)| (self.min + i) as f64 * p)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::LengthStats;

    /// Table 3 targets: (min, max, mode, mean, sigma, q1, q2, q3).
    fn target(d: Dataset) -> (usize, usize, usize, f64, f64, usize, usize, usize) {
        match d {
            Dataset::YourThings => (2, 83, 31, 24.5, 9.7, 18, 24, 30),
            Dataset::IotFinder => (7, 82, 24, 26.8, 10.5, 20, 24, 30),
            Dataset::MonIotr => (9, 83, 18, 27.1, 14.7, 18, 23, 30),
            Dataset::IotTotal => (2, 83, 24, 25.9, 11.3, 19, 24, 30),
            Dataset::Ixp => (0, 68, 17, 26.1, 11.7, 17, 25, 33),
        }
    }

    /// Sampled statistics must match Table 3 within tight tolerances.
    #[test]
    fn table3_statistics_match() {
        for d in [
            Dataset::YourThings,
            Dataset::IotFinder,
            Dataset::MonIotr,
            Dataset::IotTotal,
            Dataset::Ixp,
        ] {
            let model = LengthModel::for_dataset(d);
            let n = d.unique_names().unwrap_or(5000).max(2000) * 4;
            let sample = model.sample_many(0xD41A5E7 ^ d.name().len() as u64, n);
            let s = LengthStats::from_lengths(&sample);
            let (min, max, mode, mean, sigma, q1, q2, q3) = target(d);
            assert!(s.min >= min, "{d:?} min {} < {min}", s.min);
            assert!(s.max <= max, "{d:?} max {} > {max}", s.max);
            assert!(
                (s.mean - mean).abs() < 1.2,
                "{d:?} mean {:.1} vs {mean}",
                s.mean
            );
            assert!(
                (s.sigma - sigma).abs() < 1.2,
                "{d:?} sigma {:.1} vs {sigma}",
                s.sigma
            );
            assert!(
                (s.q1 as i64 - q1 as i64).abs() <= 1,
                "{d:?} q1 {} vs {q1}",
                s.q1
            );
            assert!(
                (s.q2 as i64 - q2 as i64).abs() <= 1,
                "{d:?} q2 {} vs {q2}",
                s.q2
            );
            assert!(
                (s.q3 as i64 - q3 as i64).abs() <= 1,
                "{d:?} q3 {} vs {q3}",
                s.q3
            );
            assert!(
                (s.mode as i64 - mode as i64).abs() <= 3,
                "{d:?} mode {} vs {mode}",
                s.mode
            );
        }
    }

    /// The headline finding of §3.2: the IoT median name length is 24
    /// characters — the value every packet-size experiment uses.
    #[test]
    fn iot_median_is_24() {
        let model = LengthModel::for_dataset(Dataset::IotTotal);
        let sample = model.sample_many(7, 20_000);
        let s = LengthStats::from_lengths(&sample);
        assert_eq!(s.q2, 24);
    }

    #[test]
    fn pmf_sums_to_one() {
        for d in [Dataset::YourThings, Dataset::Ixp, Dataset::IotTotal] {
            let m = LengthModel::for_dataset(d);
            let total: f64 = (m.min..=m.max).map(|l| m.pmf(l)).sum();
            assert!((total - 1.0).abs() < 1e-9, "{d:?} pmf sums to {total}");
            assert_eq!(m.pmf(m.max + 1), 0.0);
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let m = LengthModel::for_dataset(Dataset::IotFinder);
        assert_eq!(m.sample_many(1, 100), m.sample_many(1, 100));
        assert_ne!(m.sample_many(1, 100), m.sample_many(2, 100));
    }

    #[test]
    fn sample_respects_bounds() {
        let m = LengthModel::for_dataset(Dataset::MonIotr);
        for len in m.sample_many(3, 10_000) {
            assert!((m.min..=m.max).contains(&len));
        }
    }

    #[test]
    fn unique_name_counts() {
        assert_eq!(Dataset::YourThings.unique_names(), Some(1293));
        assert_eq!(Dataset::IotTotal.unique_names(), Some(2336));
        assert_eq!(Dataset::Ixp.unique_names(), None);
    }
}
