//! QUIC-lite packets: a long-header-shaped handshake packet (plaintext
//! CRYPTO flights) and a short-header 1-RTT packet protected with
//! AES-128-CCM (16-byte tag) — the same crypto substrate the DTLS
//! record layer uses ([`doc_crypto::ccm::AesCcm`]), keyed via HKDF.
//!
//! Wire layouts (CIDs fixed at 2 bytes, packet numbers varint-encoded
//! in the clear — header protection is out of scope for a simulated
//! transport; the *byte counts* are what the paper's Fig. 9 model
//! sweeps, and the short-header overhead lands inside its 1-RTT
//! envelope):
//!
//! ```text
//! handshake: 0xC5 || dcid(2) || pn varint || frames…          (plaintext)
//! 1-RTT:     0x45 || dcid(2) || pn varint || AEAD(frames…)    (protected)
//! ```

use crate::{varint, QuicError};
use doc_crypto::ccm::{AesCcm, OpenRequest, SealRequest};
use doc_crypto::hkdf;

/// First byte of a QUIC-lite long-header (handshake) packet.
pub const FLAGS_HANDSHAKE: u8 = 0xC5;
/// First byte of a QUIC-lite short-header (1-RTT) packet.
pub const FLAGS_ONE_RTT: u8 = 0x45;
/// Connection-ID length (fixed).
pub const CID_LEN: usize = 2;
/// AEAD tag length of the 1-RTT packet protection (QUIC uses 16-byte
/// tags; this is what puts the short-header overhead inside the
/// analytical model's 24–64-byte 1-RTT envelope).
pub const TAG_LEN: usize = 16;

/// Which packet-number space / protection level a packet belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Space {
    /// Plaintext handshake packet (CRYPTO flights).
    Handshake,
    /// Protected application packet.
    OneRtt,
}

/// A parsed packet header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Packet space.
    pub space: Space,
    /// Destination connection ID.
    pub cid: [u8; CID_LEN],
    /// Packet number.
    pub pn: u64,
    /// Bytes the header occupies on the wire.
    pub len: usize,
}

impl Header {
    /// Append the header for (`space`, `cid`, `pn`) to `out`.
    pub fn encode_into(space: Space, cid: [u8; CID_LEN], pn: u64, out: &mut Vec<u8>) {
        out.push(match space {
            Space::Handshake => FLAGS_HANDSHAKE,
            Space::OneRtt => FLAGS_ONE_RTT,
        });
        out.extend_from_slice(&cid);
        varint::encode_into(pn, out);
    }

    /// Parse the header at the front of `datagram`.
    pub fn decode(datagram: &[u8]) -> Result<Header, QuicError> {
        let flags = *datagram.first().ok_or(QuicError::Truncated)?;
        let space = match flags {
            FLAGS_HANDSHAKE => Space::Handshake,
            FLAGS_ONE_RTT => Space::OneRtt,
            _ => return Err(QuicError::Malformed),
        };
        let cid: [u8; CID_LEN] = datagram
            .get(1..1 + CID_LEN)
            .ok_or(QuicError::Truncated)?
            .try_into()
            .expect("slice length checked");
        let (pn, n) = varint::decode(&datagram[1 + CID_LEN..])?;
        Ok(Header {
            space,
            cid,
            pn,
            len: 1 + CID_LEN + n,
        })
    }
}

/// One direction of 1-RTT packet protection: AES-128-CCM with a
/// 16-byte tag, nonce = IV XOR packet number (RFC 9001 §5.3 shape).
pub struct PacketKeys {
    ccm: AesCcm,
    iv: [u8; 12],
}

impl PacketKeys {
    /// Derive a directional key/IV from the handshake secret material.
    /// `secret` is `psk || client_random || server_random`; `label`
    /// separates the client-write and server-write directions.
    pub fn derive(secret: &[u8], label: &str) -> Self {
        let key_bytes = hkdf::hkdf(b"doq-lite key", secret, label.as_bytes(), 16);
        let iv_bytes = hkdf::hkdf(b"doq-lite iv", secret, label.as_bytes(), 12);
        let key: [u8; 16] = key_bytes.as_slice().try_into().expect("16 bytes");
        let iv: [u8; 12] = iv_bytes.as_slice().try_into().expect("12 bytes");
        PacketKeys {
            // The schedule cache makes rederivation cheap: both
            // directions of a connection (and any re-established pair
            // under the same PSK) share one key expansion per thread.
            ccm: AesCcm::new_cached(&key, TAG_LEN, 3).expect("static parameters are valid"),
            iv,
        }
    }

    fn nonce(&self, pn: u64) -> [u8; 12] {
        let mut nonce = self.iv;
        for (i, b) in pn.to_be_bytes().iter().enumerate() {
            nonce[4 + i] ^= b;
        }
        nonce
    }

    /// Seal `plaintext` for packet `pn`, authenticating the header
    /// bytes, appending `ciphertext || tag` to `out`.
    pub fn seal_into(
        &self,
        pn: u64,
        header: &[u8],
        plaintext: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<(), QuicError> {
        self.ccm
            .seal_into(&self.nonce(pn), header, plaintext, out)
            .map_err(|_| QuicError::Crypto)
    }

    /// Open a protected packet body for packet `pn` under its header.
    pub fn open(&self, pn: u64, header: &[u8], body: &[u8]) -> Result<Vec<u8>, QuicError> {
        self.ccm
            .open(&self.nonce(pn), header, body)
            .map_err(|_| QuicError::Crypto)
    }

    /// Seal a whole batch of 1-RTT packets in one pass: each item's
    /// plaintext is appended to its `out` (which typically already
    /// holds the encoded header) and protected, byte-identically to
    /// calling [`PacketKeys::seal_into`] per packet — but the CBC-MAC
    /// chains advance in lockstep and every packet's CTR keystream
    /// comes from one flattened multi-block AES pass
    /// ([`AesCcm::seal_suffix_batch`]). On failure every `out` is
    /// restored to its original length.
    pub fn seal_batch(&self, items: &mut [PacketSeal<'_>]) -> Result<(), QuicError> {
        let nonces: Vec<[u8; 12]> = items.iter().map(|it| self.nonce(it.pn)).collect();
        let starts: Vec<usize> = items
            .iter_mut()
            .map(|it| {
                let start = it.out.len();
                it.out.extend_from_slice(it.plaintext);
                start
            })
            .collect();
        let mut reqs: Vec<SealRequest<'_>> = items
            .iter_mut()
            .zip(nonces.iter().zip(starts.iter()))
            .map(|(it, (nonce, &start))| SealRequest {
                nonce,
                aad: it.header,
                buf: &mut *it.out,
                start,
            })
            .collect();
        self.ccm.seal_suffix_batch(&mut reqs).map_err(|_| {
            for (it, &start) in items.iter_mut().zip(starts.iter()) {
                it.out.truncate(start);
            }
            QuicError::Crypto
        })
    }

    /// Open a whole batch of 1-RTT packet bodies in one pass — the
    /// inbound mirror of [`PacketKeys::seal_batch`] for a worker
    /// draining many protected datagrams at once
    /// ([`AesCcm::open_suffix_batch`]). Each item's `buf[start..]`
    /// holds `ciphertext || tag` and becomes the plaintext on success.
    /// All-or-nothing: on any failure every buffer is restored
    /// byte-exactly; fall back to per-packet [`PacketKeys::open`] to
    /// isolate the forged datagram.
    pub fn open_batch(&self, items: &mut [PacketOpen<'_>]) -> Result<(), QuicError> {
        let nonces: Vec<[u8; 12]> = items.iter().map(|it| self.nonce(it.pn)).collect();
        let mut reqs: Vec<OpenRequest<'_>> = items
            .iter_mut()
            .zip(nonces.iter())
            .map(|(it, nonce)| OpenRequest {
                nonce,
                aad: it.header,
                buf: &mut *it.buf,
                start: it.start,
            })
            .collect();
        self.ccm
            .open_suffix_batch(&mut reqs)
            .map_err(|_| QuicError::Crypto)
    }
}

/// One packet of a batched 1-RTT open (see [`PacketKeys::open_batch`]).
pub struct PacketOpen<'a> {
    /// Packet number (forms the nonce).
    pub pn: u64,
    /// Header bytes authenticated as AAD.
    pub header: &'a [u8],
    /// Buffer whose suffix `buf[start..]` holds `ciphertext || tag`
    /// and becomes the plaintext on success.
    pub buf: &'a mut Vec<u8>,
    /// Offset where the protected body begins (typically the header
    /// length, so the datagram is opened in place).
    pub start: usize,
}

/// One packet of a batched 1-RTT seal (see [`PacketKeys::seal_batch`]).
pub struct PacketSeal<'a> {
    /// Packet number (forms the nonce).
    pub pn: u64,
    /// Header bytes to authenticate as AAD.
    pub header: &'a [u8],
    /// Frame plaintext to protect.
    pub plaintext: &'a [u8],
    /// Output buffer; `ciphertext || tag` is appended after whatever it
    /// already holds (typically the encoded header).
    pub out: &'a mut Vec<u8>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip_both_spaces() {
        for (space, pn) in [(Space::Handshake, 0u64), (Space::OneRtt, 70_000)] {
            let mut wire = Vec::new();
            Header::encode_into(space, [0xD0, 0xC1], pn, &mut wire);
            let h = Header::decode(&wire).unwrap();
            assert_eq!(h.space, space);
            assert_eq!(h.cid, [0xD0, 0xC1]);
            assert_eq!(h.pn, pn);
            assert_eq!(h.len, wire.len());
        }
    }

    #[test]
    fn header_rejects_garbage() {
        assert_eq!(Header::decode(&[]), Err(QuicError::Truncated));
        assert_eq!(Header::decode(&[0xFF, 0, 0, 0]), Err(QuicError::Malformed));
        assert_eq!(
            Header::decode(&[FLAGS_ONE_RTT, 1]),
            Err(QuicError::Truncated)
        );
    }

    #[test]
    fn protection_roundtrips_and_binds_header() {
        let secret = b"psk-0123456789abcdef-randoms";
        let tx = PacketKeys::derive(secret, "client write");
        let rx = PacketKeys::derive(secret, "client write");
        let other = PacketKeys::derive(secret, "server write");
        let header = [FLAGS_ONE_RTT, 0xD0, 0xC1, 0x07];
        let mut sealed = Vec::new();
        tx.seal_into(7, &header, b"stream bytes", &mut sealed)
            .unwrap();
        assert_eq!(sealed.len(), b"stream bytes".len() + TAG_LEN);
        assert_eq!(rx.open(7, &header, &sealed).unwrap(), b"stream bytes");
        // Wrong direction, pn or header must all fail.
        assert!(other.open(7, &header, &sealed).is_err());
        assert!(rx.open(8, &header, &sealed).is_err());
        assert!(rx.open(7, &[0u8; 4], &sealed).is_err());
    }

    #[test]
    fn seal_batch_matches_sequential() {
        let secret = b"psk-0123456789abcdef-randoms";
        let tx = PacketKeys::derive(secret, "client write");
        let rx = PacketKeys::derive(secret, "client write");
        let plains: Vec<Vec<u8>> = (0..9usize).map(|i| vec![i as u8; 5 + i * 19]).collect();
        let headers: Vec<Vec<u8>> = (0..plains.len())
            .map(|i| {
                let mut h = Vec::new();
                Header::encode_into(Space::OneRtt, [0xD0, 0xC1], 500 + i as u64, &mut h);
                h
            })
            .collect();
        // Sequential reference datagrams: header || sealed body.
        let expect: Vec<Vec<u8>> = plains
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let mut out = headers[i].clone();
                tx.seal_into(500 + i as u64, &headers[i], p, &mut out)
                    .unwrap();
                out
            })
            .collect();
        let mut outs: Vec<Vec<u8>> = headers.clone();
        let mut items: Vec<PacketSeal<'_>> = outs
            .iter_mut()
            .enumerate()
            .map(|(i, out)| PacketSeal {
                pn: 500 + i as u64,
                header: &headers[i],
                plaintext: &plains[i],
                out,
            })
            .collect();
        tx.seal_batch(&mut items).unwrap();
        assert_eq!(outs, expect);
        for (i, wire) in outs.iter().enumerate() {
            let body = &wire[headers[i].len()..];
            assert_eq!(
                rx.open(500 + i as u64, &headers[i], body).unwrap(),
                plains[i]
            );
        }

        // Batched open: the whole flight decrypts in place in one
        // pass, leaving header || plaintext per datagram.
        let mut wires = outs.clone();
        let mut opens: Vec<PacketOpen<'_>> = wires
            .iter_mut()
            .enumerate()
            .map(|(i, buf)| PacketOpen {
                pn: 500 + i as u64,
                header: &headers[i],
                buf,
                start: headers[i].len(),
            })
            .collect();
        rx.open_batch(&mut opens).unwrap();
        for (i, wire) in wires.iter().enumerate() {
            assert_eq!(&wire[..headers[i].len()], &headers[i][..]);
            assert_eq!(&wire[headers[i].len()..], plains[i]);
        }

        // A forged datagram fails the batch and restores every buffer.
        let mut wires = outs.clone();
        wires[4][headers[4].len()] ^= 1;
        let snapshots = wires.clone();
        let mut opens: Vec<PacketOpen<'_>> = wires
            .iter_mut()
            .enumerate()
            .map(|(i, buf)| PacketOpen {
                pn: 500 + i as u64,
                header: &headers[i],
                buf,
                start: headers[i].len(),
            })
            .collect();
        assert_eq!(rx.open_batch(&mut opens), Err(QuicError::Crypto));
        assert_eq!(wires, snapshots);
    }

    /// Rederiving packet keys for the same secret hits the AES
    /// schedule cache instead of re-expanding the key.
    #[test]
    fn derive_reuses_cached_key_schedule() {
        let secret = b"psk-cache-check-0123456789abcdef";
        let _warm = PacketKeys::derive(secret, "client write");
        let hits_before = doc_crypto::aes::schedule_cache_hits();
        let again = PacketKeys::derive(secret, "client write");
        assert!(
            doc_crypto::aes::schedule_cache_hits() > hits_before,
            "rederivation must hit the per-thread schedule cache"
        );
        // And the cached schedule still produces working keys.
        let header = [FLAGS_ONE_RTT, 1, 2, 3];
        let mut sealed = Vec::new();
        again.seal_into(3, &header, b"check", &mut sealed).unwrap();
        assert_eq!(again.open(3, &header, &sealed).unwrap(), b"check");
    }
}
