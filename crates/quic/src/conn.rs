//! The QUIC-lite connection: a sans-IO state machine pairing a 1-RTT
//! PSK handshake (CRYPTO-lite flights), per-stream reassembly, ACK
//! generation and timer-driven loss recovery.
//!
//! Like every protocol crate in this workspace the connection is
//! driven with explicit timestamps — [`doc_time::Instant`] newtypes,
//! shared with `doc-netsim`, so timer-unit mix-ups are type errors.
//! The caller feeds datagrams through
//! [`Connection::handle_datagram`], pumps the single
//! [`Connection::poll`] entry point when
//! [`Connection::next_timeout`] fires (the `doc-netsim` event queue
//! does this in the experiment driver), and transmits whatever
//! [`Transmit::datagrams`] come back. Nothing here does IO.
//!
//! Loss recovery is pluggable ([`crate::recovery`]): an
//! [`RttEstimator`] feeds the connection's
//! [`CongestionController`], which decides the retransmission
//! timeout and a pacing-aware send quota. The default [`FixedRto`]
//! controller reproduces the original fixed-300 ms behavior
//! byte-exactly; `Cubic` and `BbrLite` adapt.
//!
//! ## Handshake (1-RTT accounting)
//!
//! ```text
//! client                                server
//!   | Handshake[CRYPTO client_random]  →  |   derive keys, established
//!   | ←  Handshake[CRYPTO server_random]  |
//!   derive keys, established              |
//!   | 1-RTT[STREAM …]                  →  |   (first query, 1 RTT after start)
//! ```
//!
//! Keys are `HKDF(psk || client_random || server_random)` split into a
//! client-write and a server-write direction ([`crate::packet`]); the
//! client can send protected data exactly one round trip after its
//! first flight, which is the 1-RTT figure the `doc-models::quic`
//! analytical model assumes.

use crate::frame::Frame;
use crate::packet::{Header, PacketKeys, Space, CID_LEN};
use crate::recovery::{self, CongestionController, ControllerKind, RttEstimator};
use crate::stream::RecvStream;
use crate::QuicError;
use doc_time::{Instant, Millis};
use std::collections::{BTreeSet, HashMap, VecDeque};

/// Delayed-ACK timer: a standalone ACK goes out this long after an
/// ack-eliciting packet unless an outgoing packet piggybacks it first.
pub const ACK_DELAY: Millis = Millis::from_millis(25);
/// Initial retransmission timeout (doubles per retry). The
/// [`recovery::FixedRto`] controller pins every packet's RTO to this
/// value; adaptive controllers start from the RTT estimator's PTO.
pub const INITIAL_RTO: Millis = Millis::from_millis(300);
/// Retransmissions per packet before its frames are abandoned.
pub const MAX_RETRIES: u32 = 7;
/// Largest frame payload packed into one packet (headroom below the
/// 1280-byte IPv6 MTU; the simulated exchanges are far smaller).
const MAX_PACKET_PAYLOAD: usize = 1024;

/// Connection role.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    Client,
    Server,
}

/// Events surfaced by [`Connection::handle_datagram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuicEvent {
    /// A datagram to transmit immediately (handshake reply, ACK, or a
    /// queued packet released by freshly freed congestion quota).
    Transmit(Vec<u8>),
    /// Newly contiguous application bytes on a stream. `fin` is true
    /// once the peer's side of the stream is complete.
    Stream {
        /// Stream ID.
        id: u64,
        /// The newly delivered bytes (may be empty on a bare FIN).
        data: Vec<u8>,
        /// Whether the stream's receive side is now finished.
        fin: bool,
    },
    /// The handshake completed; 1-RTT data can flow.
    Established,
}

/// The outcome of one [`Connection::poll`] call: datagrams to put on
/// the wire now, and when to poll again.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Transmit {
    /// Datagrams to transmit immediately (standalone ACKs,
    /// retransmissions, queued packets released by quota).
    pub datagrams: Vec<Vec<u8>>,
    /// The next timer deadline after this poll, if any.
    pub next_timeout: Option<Instant>,
}

struct SentPacket {
    space: Space,
    /// Retransmittable frames only (CRYPTO/STREAM).
    frames: Vec<Frame>,
    /// Packet number of the latest transmission (retransmissions are
    /// sent under fresh pns and re-keyed here).
    last_pn: u64,
    retries: u32,
    rto: Millis,
    deadline: Instant,
    /// When the *original* transmission left (Karn: RTT samples come
    /// only from packets that were never retransmitted).
    sent_at: Instant,
    /// Wire size of the original datagram (congestion accounting).
    size: usize,
}

/// A QUIC-lite connection endpoint.
pub struct Connection {
    role: Role,
    cid: [u8; CID_LEN],
    psk: Vec<u8>,
    local_random: [u8; 32],
    established: bool,
    tx_keys: Option<PacketKeys>,
    rx_keys: Option<PacketKeys>,
    next_pn: u64,
    // Receiver ACK state.
    rx_seen: BTreeSet<u64>,
    ack_pending: bool,
    ack_deadline: Option<Instant>,
    // Sender loss recovery.
    sent: Vec<SentPacket>,
    rtt: RttEstimator,
    cc: Box<dyn CongestionController>,
    bytes_in_flight: usize,
    /// Stream frames awaiting congestion quota, in send order.
    queued: VecDeque<Frame>,
    /// Datagrams that exhausted their retries (observability).
    abandoned: u64,
    // Streams.
    next_stream_id: u64,
    send_offset: HashMap<u64, u64>,
    recv: HashMap<u64, RecvStream>,
}

fn random32(seed: u64) -> [u8; 32] {
    let mut x = seed | 1;
    let mut out = [0u8; 32];
    for chunk in out.chunks_mut(8) {
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        chunk.copy_from_slice(&x.wrapping_mul(0x2545F4914F6CDD1D).to_be_bytes());
    }
    out
}

impl Connection {
    fn new(role: Role, seed: u64, psk: &[u8], controller: ControllerKind) -> Self {
        Connection {
            role,
            cid: [0xD0, 0xC1],
            psk: psk.to_vec(),
            local_random: random32(seed ^ role as u64),
            established: false,
            tx_keys: None,
            rx_keys: None,
            next_pn: 0,
            rx_seen: BTreeSet::new(),
            ack_pending: false,
            ack_deadline: None,
            sent: Vec::new(),
            rtt: RttEstimator::new(),
            cc: controller.build(),
            bytes_in_flight: 0,
            queued: VecDeque::new(),
            abandoned: 0,
            next_stream_id: 0,
            send_offset: HashMap::new(),
            recv: HashMap::new(),
        }
    }

    /// A client endpoint (initiates the handshake, opens streams
    /// 0, 4, 8, …) with the default [`FixedRto`] oracle controller.
    ///
    /// [`FixedRto`]: recovery::FixedRto
    pub fn client(seed: u64, psk: &[u8]) -> Self {
        Connection::new(Role::Client, seed, psk, ControllerKind::FixedRto)
    }

    /// A server endpoint (answers the handshake, replies on the
    /// client's streams) with the default [`FixedRto`] oracle
    /// controller.
    ///
    /// [`FixedRto`]: recovery::FixedRto
    pub fn server(seed: u64, psk: &[u8]) -> Self {
        Connection::new(Role::Server, seed, psk, ControllerKind::FixedRto)
    }

    /// A client endpoint with an explicit congestion controller.
    pub fn client_with(seed: u64, psk: &[u8], controller: ControllerKind) -> Self {
        Connection::new(Role::Client, seed, psk, controller)
    }

    /// A server endpoint with an explicit congestion controller.
    pub fn server_with(seed: u64, psk: &[u8], controller: ControllerKind) -> Self {
        Connection::new(Role::Server, seed, psk, controller)
    }

    /// Whether 1-RTT keys are installed.
    pub fn is_established(&self) -> bool {
        self.established
    }

    /// Datagrams whose frames were abandoned after [`MAX_RETRIES`].
    pub fn abandoned(&self) -> u64 {
        self.abandoned
    }

    /// Packets currently awaiting acknowledgement.
    pub fn in_flight(&self) -> usize {
        self.sent.len()
    }

    /// Bytes currently counted against the congestion window.
    pub fn bytes_in_flight(&self) -> usize {
        self.bytes_in_flight
    }

    /// The connection's RTT estimator (read-only).
    pub fn rtt(&self) -> &RttEstimator {
        &self.rtt
    }

    /// The active congestion controller's stable name.
    pub fn controller_name(&self) -> &'static str {
        self.cc.name()
    }

    fn derive_keys(&mut self, peer_random: &[u8]) {
        let mut secret = self.psk.clone();
        match self.role {
            Role::Client => {
                secret.extend_from_slice(&self.local_random);
                secret.extend_from_slice(peer_random);
            }
            Role::Server => {
                secret.extend_from_slice(peer_random);
                secret.extend_from_slice(&self.local_random);
            }
        }
        let (tx, rx) = match self.role {
            Role::Client => ("client write", "server write"),
            Role::Server => ("server write", "client write"),
        };
        self.tx_keys = Some(PacketKeys::derive(&secret, tx));
        self.rx_keys = Some(PacketKeys::derive(&secret, rx));
        self.established = true;
    }

    /// Build one packet carrying `frames`; tracks retransmittable
    /// frames for loss recovery when `track_at` is given.
    fn build_packet(
        &mut self,
        space: Space,
        frames: &[Frame],
        track_at: Option<Instant>,
    ) -> Vec<u8> {
        let pn = self.next_pn;
        self.next_pn += 1;
        let mut datagram = Vec::new();
        Header::encode_into(space, self.cid, pn, &mut datagram);
        let header_len = datagram.len();
        let mut payload = Vec::new();
        for f in frames {
            f.encode_into(&mut payload);
        }
        match space {
            Space::Handshake => datagram.extend_from_slice(&payload),
            Space::OneRtt => {
                let header = datagram[..header_len].to_vec();
                self.tx_keys
                    .as_ref()
                    .expect("1-RTT packet before keys")
                    .seal_into(pn, &header, &payload, &mut datagram)
                    .expect("seal cannot fail on sane sizes");
            }
        }
        if let Some(now) = track_at {
            let keep: Vec<Frame> = frames
                .iter()
                .filter(|f| f.retransmittable())
                .cloned()
                .collect();
            if !keep.is_empty() {
                let size = datagram.len();
                let rto = self.cc.rto(&self.rtt);
                self.sent.push(SentPacket {
                    space,
                    frames: keep,
                    last_pn: pn,
                    retries: 0,
                    rto,
                    deadline: now + rto,
                    sent_at: now,
                    size,
                });
                self.bytes_in_flight += size;
                self.cc.on_packet_sent(now, size);
            }
        }
        datagram
    }

    /// Take the pending ACK as a frame to piggyback on an outgoing
    /// packet (clears the delayed-ACK timer).
    fn take_ack(&mut self) -> Option<Frame> {
        let largest = *self.rx_seen.last()?;
        if !self.ack_pending {
            return None;
        }
        self.ack_pending = false;
        self.ack_deadline = None;
        // Contiguous run below `largest`.
        let mut first_range = 0;
        while self.rx_seen.contains(&(largest - first_range - 1)) {
            first_range += 1;
            if first_range == largest {
                break;
            }
        }
        Some(Frame::Ack {
            largest,
            first_range,
        })
    }

    /// Mark a tracked packet delivered: release its quota and (per
    /// Karn's algorithm) feed the RTT estimator if it was never
    /// retransmitted. Handshake packets are excluded from sampling:
    /// sessions pre-established in memory (`establish_pair`) pump both
    /// flights at one instant, and a degenerate 0 ms sample would
    /// poison the smoothed estimate.
    fn packet_delivered(&mut self, now: Instant, p: SentPacket) {
        self.bytes_in_flight = self.bytes_in_flight.saturating_sub(p.size);
        if p.retries == 0 && p.space == Space::OneRtt {
            self.rtt
                .on_sample(now, now.saturating_duration_since(p.sent_at));
        }
        self.cc.on_ack(now, p.size, &self.rtt);
    }

    /// Build packets for queued stream frames while the controller's
    /// send quota allows, appending them to `out`.
    fn drain_queued(&mut self, now: Instant, out: &mut Vec<Vec<u8>>) {
        while !self.queued.is_empty() && self.cc.send_quota(self.bytes_in_flight) >= recovery::MSS {
            let frame = self.queued.pop_front().expect("checked non-empty");
            let mut frames = Vec::new();
            if let Some(ack) = self.take_ack() {
                frames.push(ack);
            }
            frames.push(frame);
            out.push(self.build_packet(Space::OneRtt, &frames, Some(now)));
        }
    }

    /// Client: produce the first handshake flight.
    pub fn connect(&mut self, now: Instant) -> Vec<Vec<u8>> {
        assert_eq!(self.role, Role::Client, "only clients initiate");
        let crypto = Frame::Crypto {
            offset: 0,
            data: self.local_random.to_vec(),
        };
        vec![self.build_packet(Space::Handshake, &[crypto], Some(now))]
    }

    /// Allocate the next locally initiated bidirectional stream ID.
    pub fn open_stream(&mut self) -> u64 {
        let id = self.next_stream_id;
        self.next_stream_id += 4;
        id
    }

    /// Send `data` on stream `id` (appended at the stream's current
    /// send offset), optionally finishing the stream. Returns the
    /// datagrams to transmit now; frames beyond the controller's send
    /// quota are queued and released by later ACKs or [`Connection::poll`].
    pub fn send_stream(
        &mut self,
        id: u64,
        data: &[u8],
        fin: bool,
        now: Instant,
    ) -> Result<Vec<Vec<u8>>, QuicError> {
        if !self.established {
            return Err(QuicError::NotEstablished);
        }
        let mut out = Vec::new();
        let offset = self.send_offset.entry(id).or_insert(0);
        let mut chunks: Vec<Frame> = Vec::new();
        if data.is_empty() {
            chunks.push(Frame::Stream {
                id,
                offset: *offset,
                fin,
                data: Vec::new(),
            });
        } else {
            for (i, chunk) in data.chunks(MAX_PACKET_PAYLOAD).enumerate() {
                let last = (i + 1) * MAX_PACKET_PAYLOAD >= data.len();
                chunks.push(Frame::Stream {
                    id,
                    offset: *offset + (i * MAX_PACKET_PAYLOAD) as u64,
                    fin: fin && last,
                    data: chunk.to_vec(),
                });
            }
        }
        *offset += data.len() as u64;
        let mut first = true;
        for frame in chunks {
            // Preserve frame order: once one frame queues on quota,
            // everything behind it queues too.
            if !self.queued.is_empty() || self.cc.send_quota(self.bytes_in_flight) < recovery::MSS {
                self.queued.push_back(frame);
                continue;
            }
            // Piggyback the pending ACK on the first packet.
            let mut frames = Vec::new();
            if first {
                if let Some(ack) = self.take_ack() {
                    frames.push(ack);
                }
            }
            first = false;
            frames.push(frame);
            out.push(self.build_packet(Space::OneRtt, &frames, Some(now)));
        }
        Ok(out)
    }

    /// Process one received datagram.
    pub fn handle_datagram(&mut self, now: Instant, datagram: &[u8]) -> Vec<QuicEvent> {
        let mut events = Vec::new();
        let Ok(header) = Header::decode(datagram) else {
            return events; // garbage datagrams are dropped silently
        };
        let body = &datagram[header.len..];
        let frames = match header.space {
            Space::Handshake => match Frame::decode_all(body) {
                Ok(f) => f,
                Err(_) => return events,
            },
            Space::OneRtt => {
                let Some(keys) = self.rx_keys.as_ref() else {
                    return events; // data before keys: drop
                };
                let aad = &datagram[..header.len];
                let Ok(plain) = keys.open(header.pn, aad, body) else {
                    return events; // bad auth: drop
                };
                match Frame::decode_all(&plain) {
                    Ok(f) => f,
                    Err(_) => return events,
                }
            }
        };
        // De-duplicate retransmitted packets (1-RTT replay guard; the
        // handshake flight is idempotent and re-answered below).
        if header.space == Space::OneRtt && !self.rx_seen.insert(header.pn) {
            return events;
        }
        let mut ack_eliciting = false;
        for frame in frames {
            ack_eliciting |= frame.ack_eliciting();
            match frame {
                Frame::Crypto { data, .. } => {
                    if header.space != Space::Handshake {
                        continue;
                    }
                    match self.role {
                        Role::Server => {
                            let was_established = self.established;
                            if !was_established {
                                self.derive_keys(&data);
                                events.push(QuicEvent::Established);
                            }
                            // Answer (and re-answer, if our reply was
                            // lost) with the server flight.
                            let crypto = Frame::Crypto {
                                offset: 0,
                                data: self.local_random.to_vec(),
                            };
                            let reply = self.build_packet(Space::Handshake, &[crypto], None);
                            events.push(QuicEvent::Transmit(reply));
                        }
                        Role::Client => {
                            if !self.established {
                                self.derive_keys(&data);
                                // The handshake flight is answered;
                                // stop retransmitting it. Its round
                                // trip is the first RTT sample.
                                let mut i = 0;
                                while i < self.sent.len() {
                                    if self.sent[i].space == Space::Handshake {
                                        let p = self.sent.remove(i);
                                        self.packet_delivered(now, p);
                                    } else {
                                        i += 1;
                                    }
                                }
                                events.push(QuicEvent::Established);
                            }
                        }
                    }
                }
                Frame::Ack {
                    largest,
                    first_range,
                } => {
                    self.on_ack(now, largest, first_range);
                }
                Frame::Stream {
                    id,
                    offset,
                    fin,
                    data,
                } => {
                    let stream = self.recv.entry(id).or_default();
                    let delivered = stream.push(offset, &data, fin);
                    // The FIN is announced exactly once; duplicate
                    // retransmits that deliver nothing stay silent so
                    // request/response consumers never answer twice.
                    let finished = stream.take_fin_notification();
                    if !delivered.is_empty() || finished {
                        events.push(QuicEvent::Stream {
                            id,
                            data: delivered,
                            fin: finished,
                        });
                    }
                }
                Frame::Ping | Frame::Padding => {}
            }
        }
        if ack_eliciting && header.space == Space::OneRtt {
            self.ack_pending = true;
            let deadline = now + ACK_DELAY;
            self.ack_deadline = Some(self.ack_deadline.map_or(deadline, |d| d.min(deadline)));
        }
        // Bound the dedup set (packets older than the ack window are
        // long decided either way).
        while self.rx_seen.len() > 256 {
            self.rx_seen.pop_first();
        }
        // ACKs may have freed congestion quota: release queued frames.
        let mut drained = Vec::new();
        self.drain_queued(now, &mut drained);
        events.extend(drained.into_iter().map(QuicEvent::Transmit));
        events
    }

    fn on_ack(&mut self, now: Instant, largest: u64, first_range: u64) {
        // Each tracked entry is identified by the pn of its latest
        // transmission. The single ACK range covers
        // `largest - first_range ..= largest`; an entry whose latest
        // transmission falls inside it is delivered. Older entries
        // (earlier transmissions lost) keep their RTO.
        let low = largest - first_range;
        let mut i = 0;
        while i < self.sent.len() {
            if (low..=largest).contains(&self.sent[i].last_pn) {
                let p = self.sent.remove(i);
                self.packet_delivered(now, p);
            } else {
                i += 1;
            }
        }
    }

    /// Earliest timer deadline (delayed ACK or retransmission), if any.
    pub fn next_timeout(&self) -> Option<Instant> {
        let rto = self.sent.iter().map(|p| p.deadline).min();
        match (self.ack_pending.then_some(self.ack_deadline).flatten(), rto) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// The single sans-IO driver entry point: fire due timers (emit a
    /// standalone ACK if the delayed-ACK timer expired, retransmit
    /// timed-out packets, release queued frames up to the send quota)
    /// and report when to poll next.
    pub fn poll(&mut self, now: Instant) -> Transmit {
        let mut out = Vec::new();
        if self.ack_pending && self.ack_deadline.is_some_and(|d| d <= now) {
            if let Some(ack) = self.take_ack() {
                let pkt = self.build_packet(Space::OneRtt, &[ack], None);
                out.push(pkt);
            }
        }
        let mut due: Vec<SentPacket> = Vec::new();
        let mut i = 0;
        while i < self.sent.len() {
            if self.sent[i].deadline <= now {
                due.push(self.sent.remove(i));
            } else {
                i += 1;
            }
        }
        for mut p in due {
            if p.retries >= MAX_RETRIES {
                self.abandoned += 1;
                self.bytes_in_flight = self.bytes_in_flight.saturating_sub(p.size);
                self.cc.on_loss(now, p.size);
                continue;
            }
            // An expired RTO is a loss signal for the controller; the
            // retransmission itself keeps the packet's quota.
            self.cc.on_loss(now, p.size);
            p.retries += 1;
            p.rto = p.rto.saturating_mul(2);
            let datagram = self.build_packet(p.space, &p.frames, None);
            p.deadline = now + p.rto;
            p.last_pn = self.next_pn - 1;
            out.push(datagram);
            self.sent.push(p);
        }
        self.drain_queued(now, &mut out);
        Transmit {
            datagrams: out,
            next_timeout: self.next_timeout(),
        }
    }
}
