//! The QUIC-lite connection: a sans-IO state machine pairing a 1-RTT
//! PSK handshake (CRYPTO-lite flights), per-stream reassembly, ACK
//! generation and timer-driven loss recovery.
//!
//! Like every protocol crate in this workspace the connection is
//! driven with explicit millisecond timestamps: the caller feeds
//! datagrams through [`Connection::handle_datagram`], pumps
//! [`Connection::poll`] when [`Connection::next_timeout`] fires (the
//! `doc-netsim` event queue does this in the experiment driver), and
//! transmits whatever datagrams come back. Nothing here does IO.
//!
//! ## Handshake (1-RTT accounting)
//!
//! ```text
//! client                                server
//!   | Handshake[CRYPTO client_random]  →  |   derive keys, established
//!   | ←  Handshake[CRYPTO server_random]  |
//!   derive keys, established              |
//!   | 1-RTT[STREAM …]                  →  |   (first query, 1 RTT after start)
//! ```
//!
//! Keys are `HKDF(psk || client_random || server_random)` split into a
//! client-write and a server-write direction ([`crate::packet`]); the
//! client can send protected data exactly one round trip after its
//! first flight, which is the 1-RTT figure the `doc-models::quic`
//! analytical model assumes.

use crate::frame::Frame;
use crate::packet::{Header, PacketKeys, Space, CID_LEN};
use crate::stream::RecvStream;
use crate::QuicError;
use std::collections::{BTreeSet, HashMap};

/// Delayed-ACK timer: a standalone ACK goes out this long after an
/// ack-eliciting packet unless an outgoing packet piggybacks it first.
pub const ACK_DELAY_MS: u64 = 25;
/// Initial retransmission timeout (doubles per retry).
pub const INITIAL_RTO_MS: u64 = 300;
/// Retransmissions per packet before its frames are abandoned.
pub const MAX_RETRIES: u32 = 7;
/// Largest frame payload packed into one packet (headroom below the
/// 1280-byte IPv6 MTU; the simulated exchanges are far smaller).
const MAX_PACKET_PAYLOAD: usize = 1024;

/// Connection role.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    Client,
    Server,
}

/// Events surfaced by [`Connection::handle_datagram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuicEvent {
    /// A datagram to transmit immediately (handshake reply, ACK).
    Transmit(Vec<u8>),
    /// Newly contiguous application bytes on a stream. `fin` is true
    /// once the peer's side of the stream is complete.
    Stream {
        /// Stream ID.
        id: u64,
        /// The newly delivered bytes (may be empty on a bare FIN).
        data: Vec<u8>,
        /// Whether the stream's receive side is now finished.
        fin: bool,
    },
    /// The handshake completed; 1-RTT data can flow.
    Established,
}

struct SentPacket {
    space: Space,
    /// Retransmittable frames only (CRYPTO/STREAM).
    frames: Vec<Frame>,
    /// Packet number of the latest transmission (retransmissions are
    /// sent under fresh pns and re-keyed here).
    last_pn: u64,
    retries: u32,
    rto_ms: u64,
    deadline_ms: u64,
}

/// A QUIC-lite connection endpoint.
pub struct Connection {
    role: Role,
    cid: [u8; CID_LEN],
    psk: Vec<u8>,
    local_random: [u8; 32],
    established: bool,
    tx_keys: Option<PacketKeys>,
    rx_keys: Option<PacketKeys>,
    next_pn: u64,
    // Receiver ACK state.
    rx_seen: BTreeSet<u64>,
    ack_pending: bool,
    ack_deadline: Option<u64>,
    // Sender loss recovery.
    sent: Vec<SentPacket>,
    /// Datagrams that exhausted their retries (observability).
    abandoned: u64,
    // Streams.
    next_stream_id: u64,
    send_offset: HashMap<u64, u64>,
    recv: HashMap<u64, RecvStream>,
}

fn random32(seed: u64) -> [u8; 32] {
    let mut x = seed | 1;
    let mut out = [0u8; 32];
    for chunk in out.chunks_mut(8) {
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        chunk.copy_from_slice(&x.wrapping_mul(0x2545F4914F6CDD1D).to_be_bytes());
    }
    out
}

impl Connection {
    fn new(role: Role, seed: u64, psk: &[u8]) -> Self {
        Connection {
            role,
            cid: [0xD0, 0xC1],
            psk: psk.to_vec(),
            local_random: random32(seed ^ role as u64),
            established: false,
            tx_keys: None,
            rx_keys: None,
            next_pn: 0,
            rx_seen: BTreeSet::new(),
            ack_pending: false,
            ack_deadline: None,
            sent: Vec::new(),
            abandoned: 0,
            next_stream_id: 0,
            send_offset: HashMap::new(),
            recv: HashMap::new(),
        }
    }

    /// A client endpoint (initiates the handshake, opens streams
    /// 0, 4, 8, …).
    pub fn client(seed: u64, psk: &[u8]) -> Self {
        Connection::new(Role::Client, seed, psk)
    }

    /// A server endpoint (answers the handshake, replies on the
    /// client's streams).
    pub fn server(seed: u64, psk: &[u8]) -> Self {
        Connection::new(Role::Server, seed, psk)
    }

    /// Whether 1-RTT keys are installed.
    pub fn is_established(&self) -> bool {
        self.established
    }

    /// Datagrams whose frames were abandoned after [`MAX_RETRIES`].
    pub fn abandoned(&self) -> u64 {
        self.abandoned
    }

    /// Packets currently awaiting acknowledgement.
    pub fn in_flight(&self) -> usize {
        self.sent.len()
    }

    fn derive_keys(&mut self, peer_random: &[u8]) {
        let mut secret = self.psk.clone();
        match self.role {
            Role::Client => {
                secret.extend_from_slice(&self.local_random);
                secret.extend_from_slice(peer_random);
            }
            Role::Server => {
                secret.extend_from_slice(peer_random);
                secret.extend_from_slice(&self.local_random);
            }
        }
        let (tx, rx) = match self.role {
            Role::Client => ("client write", "server write"),
            Role::Server => ("server write", "client write"),
        };
        self.tx_keys = Some(PacketKeys::derive(&secret, tx));
        self.rx_keys = Some(PacketKeys::derive(&secret, rx));
        self.established = true;
    }

    /// Build one packet carrying `frames`; tracks retransmittable
    /// frames for loss recovery when `now_ms` is given.
    fn build_packet(&mut self, space: Space, frames: &[Frame], track_at: Option<u64>) -> Vec<u8> {
        let pn = self.next_pn;
        self.next_pn += 1;
        let mut datagram = Vec::new();
        Header::encode_into(space, self.cid, pn, &mut datagram);
        let header_len = datagram.len();
        let mut payload = Vec::new();
        for f in frames {
            f.encode_into(&mut payload);
        }
        match space {
            Space::Handshake => datagram.extend_from_slice(&payload),
            Space::OneRtt => {
                let header = datagram[..header_len].to_vec();
                self.tx_keys
                    .as_ref()
                    .expect("1-RTT packet before keys")
                    .seal_into(pn, &header, &payload, &mut datagram)
                    .expect("seal cannot fail on sane sizes");
            }
        }
        if let Some(now_ms) = track_at {
            let keep: Vec<Frame> = frames
                .iter()
                .filter(|f| f.retransmittable())
                .cloned()
                .collect();
            if !keep.is_empty() {
                self.sent.push(SentPacket {
                    space,
                    frames: keep,
                    last_pn: pn,
                    retries: 0,
                    rto_ms: INITIAL_RTO_MS,
                    deadline_ms: now_ms + INITIAL_RTO_MS,
                });
            }
        }
        datagram
    }

    /// Take the pending ACK as a frame to piggyback on an outgoing
    /// packet (clears the delayed-ACK timer).
    fn take_ack(&mut self) -> Option<Frame> {
        let largest = *self.rx_seen.last()?;
        if !self.ack_pending {
            return None;
        }
        self.ack_pending = false;
        self.ack_deadline = None;
        // Contiguous run below `largest`.
        let mut first_range = 0;
        while self.rx_seen.contains(&(largest - first_range - 1)) {
            first_range += 1;
            if first_range == largest {
                break;
            }
        }
        Some(Frame::Ack {
            largest,
            first_range,
        })
    }

    /// Client: produce the first handshake flight.
    pub fn connect(&mut self, now_ms: u64) -> Vec<Vec<u8>> {
        assert_eq!(self.role, Role::Client, "only clients initiate");
        let crypto = Frame::Crypto {
            offset: 0,
            data: self.local_random.to_vec(),
        };
        vec![self.build_packet(Space::Handshake, &[crypto], Some(now_ms))]
    }

    /// Allocate the next locally initiated bidirectional stream ID.
    pub fn open_stream(&mut self) -> u64 {
        let id = self.next_stream_id;
        self.next_stream_id += 4;
        id
    }

    /// Send `data` on stream `id` (appended at the stream's current
    /// send offset), optionally finishing the stream. Returns the
    /// datagrams to transmit.
    pub fn send_stream(
        &mut self,
        id: u64,
        data: &[u8],
        fin: bool,
        now_ms: u64,
    ) -> Result<Vec<Vec<u8>>, QuicError> {
        if !self.established {
            return Err(QuicError::NotEstablished);
        }
        let mut out = Vec::new();
        let offset = self.send_offset.entry(id).or_insert(0);
        let mut chunks: Vec<Frame> = Vec::new();
        if data.is_empty() {
            chunks.push(Frame::Stream {
                id,
                offset: *offset,
                fin,
                data: Vec::new(),
            });
        } else {
            for (i, chunk) in data.chunks(MAX_PACKET_PAYLOAD).enumerate() {
                let last = (i + 1) * MAX_PACKET_PAYLOAD >= data.len();
                chunks.push(Frame::Stream {
                    id,
                    offset: *offset + (i * MAX_PACKET_PAYLOAD) as u64,
                    fin: fin && last,
                    data: chunk.to_vec(),
                });
            }
        }
        *offset += data.len() as u64;
        for (i, frame) in chunks.into_iter().enumerate() {
            // Piggyback the pending ACK on the first packet.
            let mut frames = Vec::new();
            if i == 0 {
                if let Some(ack) = self.take_ack() {
                    frames.push(ack);
                }
            }
            frames.push(frame);
            out.push(self.build_packet(Space::OneRtt, &frames, Some(now_ms)));
        }
        Ok(out)
    }

    /// Process one received datagram.
    pub fn handle_datagram(&mut self, now_ms: u64, datagram: &[u8]) -> Vec<QuicEvent> {
        let mut events = Vec::new();
        let Ok(header) = Header::decode(datagram) else {
            return events; // garbage datagrams are dropped silently
        };
        let body = &datagram[header.len..];
        let frames = match header.space {
            Space::Handshake => match Frame::decode_all(body) {
                Ok(f) => f,
                Err(_) => return events,
            },
            Space::OneRtt => {
                let Some(keys) = self.rx_keys.as_ref() else {
                    return events; // data before keys: drop
                };
                let aad = &datagram[..header.len];
                let Ok(plain) = keys.open(header.pn, aad, body) else {
                    return events; // bad auth: drop
                };
                match Frame::decode_all(&plain) {
                    Ok(f) => f,
                    Err(_) => return events,
                }
            }
        };
        // De-duplicate retransmitted packets (1-RTT replay guard; the
        // handshake flight is idempotent and re-answered below).
        if header.space == Space::OneRtt && !self.rx_seen.insert(header.pn) {
            return events;
        }
        let mut ack_eliciting = false;
        for frame in frames {
            ack_eliciting |= frame.ack_eliciting();
            match frame {
                Frame::Crypto { data, .. } => {
                    if header.space != Space::Handshake {
                        continue;
                    }
                    match self.role {
                        Role::Server => {
                            let was_established = self.established;
                            if !was_established {
                                self.derive_keys(&data);
                                events.push(QuicEvent::Established);
                            }
                            // Answer (and re-answer, if our reply was
                            // lost) with the server flight.
                            let crypto = Frame::Crypto {
                                offset: 0,
                                data: self.local_random.to_vec(),
                            };
                            let reply = self.build_packet(Space::Handshake, &[crypto], None);
                            events.push(QuicEvent::Transmit(reply));
                        }
                        Role::Client => {
                            if !self.established {
                                self.derive_keys(&data);
                                // The handshake flight is answered;
                                // stop retransmitting it.
                                self.sent.retain(|p| p.space != Space::Handshake);
                                events.push(QuicEvent::Established);
                            }
                        }
                    }
                }
                Frame::Ack {
                    largest,
                    first_range,
                } => {
                    self.on_ack(largest, first_range);
                }
                Frame::Stream {
                    id,
                    offset,
                    fin,
                    data,
                } => {
                    let stream = self.recv.entry(id).or_default();
                    let delivered = stream.push(offset, &data, fin);
                    let finished = stream.is_finished();
                    if !delivered.is_empty() || finished {
                        events.push(QuicEvent::Stream {
                            id,
                            data: delivered,
                            fin: finished,
                        });
                    }
                }
                Frame::Ping | Frame::Padding => {}
            }
        }
        if ack_eliciting && header.space == Space::OneRtt {
            self.ack_pending = true;
            let deadline = now_ms + ACK_DELAY_MS;
            self.ack_deadline = Some(self.ack_deadline.map_or(deadline, |d| d.min(deadline)));
        }
        // Bound the dedup set (packets older than the ack window are
        // long decided either way).
        while self.rx_seen.len() > 256 {
            self.rx_seen.pop_first();
        }
        events
    }

    fn on_ack(&mut self, largest: u64, first_range: u64) {
        // Each tracked entry is identified by the pn of its latest
        // transmission. The single ACK range covers
        // `largest - first_range ..= largest`; an entry whose latest
        // transmission falls inside it is delivered. Older entries
        // (earlier transmissions lost) keep their RTO.
        let low = largest - first_range;
        self.sent.retain(|p| !(low..=largest).contains(&p.last_pn));
    }

    /// Earliest timer deadline (delayed ACK or retransmission), if any.
    pub fn next_timeout(&self) -> Option<u64> {
        let rto = self.sent.iter().map(|p| p.deadline_ms).min();
        match (self.ack_pending.then_some(self.ack_deadline).flatten(), rto) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Fire due timers: emit a standalone ACK if the delayed-ACK timer
    /// expired, retransmit timed-out packets. Returns datagrams to
    /// transmit.
    pub fn poll(&mut self, now_ms: u64) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        if self.ack_pending && self.ack_deadline.is_some_and(|d| d <= now_ms) {
            if let Some(ack) = self.take_ack() {
                let pkt = self.build_packet(Space::OneRtt, &[ack], None);
                out.push(pkt);
            }
        }
        let mut due: Vec<SentPacket> = Vec::new();
        let mut i = 0;
        while i < self.sent.len() {
            if self.sent[i].deadline_ms <= now_ms {
                due.push(self.sent.swap_remove(i));
            } else {
                i += 1;
            }
        }
        for mut p in due {
            if p.retries >= MAX_RETRIES {
                self.abandoned += 1;
                continue;
            }
            p.retries += 1;
            p.rto_ms *= 2;
            let datagram = self.build_packet(p.space, &p.frames, None);
            p.deadline_ms = now_ms + p.rto_ms;
            p.last_pn = self.next_pn - 1;
            out.push(datagram);
            self.sent.push(p);
        }
        out
    }
}
