//! DNS message framings carried on QUIC-lite streams:
//!
//! * **DoQ** (RFC 9250): one query per bidirectional stream, the DNS
//!   message prefixed by a 2-byte big-endian length, stream FIN after
//!   exactly one message. [`decode_doq`] enforces the "exactly one" —
//!   trailing bytes after the framed message are a protocol error.
//! * **DoH-lite** (HTTP/3-flavoured): one request per stream, a
//!   varint-framed HEADERS frame carrying a fixed header block followed
//!   by a varint-framed DATA frame with the DNS message — the
//!   structural overhead a DoH exchange adds over DoQ.
//! * **DoT-lite** (RFC 7858): the whole session multiplexed on one
//!   stream; each message 2-byte length-prefixed, pipelined back to
//!   back. [`DotReassembler`] splits the byte stream back into
//!   messages.

use crate::{varint, QuicError};

/// DoH-lite HEADERS frame type (HTTP/3 §7.2.2).
const H3_HEADERS: u64 = 0x01;
/// DoH-lite DATA frame type (HTTP/3 §7.2.1).
const H3_DATA: u64 = 0x00;
/// The static header block of a DoH-lite request — the serialized
/// pseudo-headers a DoH POST carries (uncompressed; QPACK is out of
/// scope, the *byte count* is what matters for the transport
/// comparison).
pub const DOH_REQUEST_HEADERS: &[u8] =
    b":method POST :path /dns-query content-type application/dns-message";
/// The static header block of a DoH-lite response.
pub const DOH_RESPONSE_HEADERS: &[u8] = b":status 200 content-type application/dns-message";

/// Frame a DNS message for a DoQ stream (2-byte BE length prefix).
///
/// # Panics
/// Panics if the message exceeds the 65535-byte field (DNS messages
/// cannot).
pub fn encode_doq(dns: &[u8]) -> Vec<u8> {
    // lint:allow(no-panic-in-parsers): encode-side precondition documented above; wire input never reaches this
    let len = u16::try_from(dns.len()).expect("DNS message fits 16-bit length");
    let mut out = Vec::with_capacity(2 + dns.len());
    out.extend_from_slice(&len.to_be_bytes());
    out.extend_from_slice(dns);
    out
}

/// Decode the single DoQ message of a finished stream. Rejects
/// truncation *and* trailing garbage: RFC 9250 allows exactly one
/// message per stream.
pub fn decode_doq(stream: &[u8]) -> Result<&[u8], QuicError> {
    let (len_bytes, rest) = stream
        .split_first_chunk::<2>()
        .ok_or(QuicError::Truncated)?;
    let len = u16::from_be_bytes(*len_bytes) as usize;
    let body = rest.get(..len).ok_or(QuicError::Truncated)?;
    if rest.len() != len {
        return Err(QuicError::TrailingData);
    }
    Ok(body)
}

fn encode_h3(headers: &[u8], dns: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(headers.len() + dns.len() + 6);
    varint::encode_into(H3_HEADERS, &mut out);
    varint::encode_into(headers.len() as u64, &mut out);
    out.extend_from_slice(headers);
    varint::encode_into(H3_DATA, &mut out);
    varint::encode_into(dns.len() as u64, &mut out);
    out.extend_from_slice(dns);
    out
}

/// Frame a DNS query as a DoH-lite request stream.
pub fn encode_doh_request(dns: &[u8]) -> Vec<u8> {
    encode_h3(DOH_REQUEST_HEADERS, dns)
}

/// Frame a DNS response as a DoH-lite response stream.
pub fn encode_doh_response(dns: &[u8]) -> Vec<u8> {
    encode_h3(DOH_RESPONSE_HEADERS, dns)
}

/// Decode a DoH-lite stream: HEADERS frame then DATA frame, nothing
/// else. Returns the DNS message bytes.
pub fn decode_doh(stream: &[u8]) -> Result<&[u8], QuicError> {
    let rest = |at: usize| stream.get(at..).ok_or(QuicError::Truncated);
    let (t, mut at) = varint::decode(stream)?;
    if t != H3_HEADERS {
        return Err(QuicError::Malformed);
    }
    let (hlen, n) = varint::decode(rest(at)?)?;
    at += n;
    let hend = at.checked_add(hlen as usize).ok_or(QuicError::Malformed)?;
    stream.get(at..hend).ok_or(QuicError::Truncated)?;
    at = hend;
    let (t, n) = varint::decode(rest(at)?)?;
    if t != H3_DATA {
        return Err(QuicError::Malformed);
    }
    at += n;
    let (dlen, n) = varint::decode(rest(at)?)?;
    at += n;
    let dend = at.checked_add(dlen as usize).ok_or(QuicError::Malformed)?;
    let dns = stream.get(at..dend).ok_or(QuicError::Truncated)?;
    if stream.len() != dend {
        return Err(QuicError::TrailingData);
    }
    Ok(dns)
}

/// Frame a DNS message for the pipelined DoT-lite stream (same 2-byte
/// prefix as DoQ, but messages are concatenated on one stream).
pub fn encode_dot(dns: &[u8]) -> Vec<u8> {
    encode_doq(dns)
}

/// Incremental splitter for the DoT-lite byte stream: push whatever
/// contiguous bytes arrived, pop every complete length-prefixed
/// message.
#[derive(Debug, Default)]
pub struct DotReassembler {
    buf: Vec<u8>,
}

impl DotReassembler {
    /// An empty reassembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes buffered awaiting a complete message.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Append stream bytes and return every message they complete.
    pub fn push(&mut self, bytes: &[u8]) -> Vec<Vec<u8>> {
        self.buf.extend_from_slice(bytes);
        let mut out = Vec::new();
        loop {
            let Some((len_bytes, rest)) = self.buf.split_first_chunk::<2>() else {
                return out;
            };
            let len = u16::from_be_bytes(*len_bytes) as usize;
            let Some(msg) = rest.get(..len) else {
                return out;
            };
            out.push(msg.to_vec());
            self.buf.drain(..2 + len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doq_roundtrip_rejects_trailing_and_truncation() {
        let dns = vec![0xAB; 44];
        let framed = encode_doq(&dns);
        assert_eq!(decode_doq(&framed).unwrap(), dns.as_slice());
        let mut trailing = framed.clone();
        trailing.push(0);
        assert_eq!(decode_doq(&trailing), Err(QuicError::TrailingData));
        for cut in 0..framed.len() {
            assert!(decode_doq(&framed[..cut]).is_err(), "cut {cut}");
        }
        // Empty message is legal framing (2 zero bytes).
        assert_eq!(decode_doq(&encode_doq(&[])).unwrap(), &[] as &[u8]);
    }

    #[test]
    fn doh_roundtrip_both_directions() {
        let dns = vec![0x42; 70];
        for framed in [encode_doh_request(&dns), encode_doh_response(&dns)] {
            assert_eq!(decode_doh(&framed).unwrap(), dns.as_slice());
            let mut trailing = framed.clone();
            trailing.push(0);
            assert_eq!(decode_doh(&trailing), Err(QuicError::TrailingData));
            for cut in 0..framed.len() {
                assert!(decode_doh(&framed[..cut]).is_err(), "cut {cut}");
            }
        }
        // A DATA-first stream is not a DoH exchange.
        assert!(decode_doh(&encode_h3(b"", b"x")[3..]).is_err());
    }

    #[test]
    fn dot_reassembler_splits_pipelined_messages() {
        let msgs: Vec<Vec<u8>> = (1..4u8).map(|i| vec![i; i as usize * 10]).collect();
        let mut wire = Vec::new();
        for m in &msgs {
            wire.extend_from_slice(&encode_dot(m));
        }
        let mut r = DotReassembler::new();
        let mut got = Vec::new();
        // Feed in awkward 7-byte chunks.
        for chunk in wire.chunks(7) {
            got.extend(r.push(chunk));
        }
        assert_eq!(got, msgs);
        assert_eq!(r.pending(), 0);
    }
}
