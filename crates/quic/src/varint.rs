//! RFC 9000 §16 variable-length integers.
//!
//! The two most significant bits of the first byte encode the total
//! length (1, 2, 4 or 8 bytes); the remaining bits carry the value in
//! network byte order. Every frame field in the QUIC-lite codec —
//! frame types, stream IDs, offsets, lengths, packet numbers — is a
//! varint, exactly like real QUIC.

use crate::QuicError;

/// Largest value a varint can carry (2^62 - 1).
pub const VARINT_MAX: u64 = (1 << 62) - 1;

/// Number of bytes the varint encoding of `v` occupies.
///
/// # Panics
/// Panics if `v` exceeds [`VARINT_MAX`] (a codec-internal bug; all wire
/// inputs are range-checked at decode time).
pub fn len(v: u64) -> usize {
    match v {
        0..=0x3F => 1,
        0x40..=0x3FFF => 2,
        0x4000..=0x3FFF_FFFF => 4,
        0x4000_0000..=VARINT_MAX => 8,
        // lint:allow(no-panic-in-parsers): encode-side precondition documented above; decode range-checks all wire input
        _ => panic!("varint value out of range"),
    }
}

/// Append the varint encoding of `v` to `out`.
///
/// # Panics
/// Panics if `v` exceeds [`VARINT_MAX`].
pub fn encode_into(v: u64, out: &mut Vec<u8>) {
    match len(v) {
        1 => out.push(v as u8),
        2 => out.extend_from_slice(&(v as u16 | 0x4000).to_be_bytes()),
        4 => out.extend_from_slice(&(v as u32 | 0x8000_0000).to_be_bytes()),
        _ => out.extend_from_slice(&(v | 0xC000_0000_0000_0000).to_be_bytes()),
    }
}

/// Decode one varint from the front of `data`; returns the value and
/// the number of bytes consumed.
pub fn decode(data: &[u8]) -> Result<(u64, usize), QuicError> {
    let first = *data.first().ok_or(QuicError::Truncated)?;
    let n = 1usize << (first >> 6);
    let bytes = data.get(1..n).ok_or(QuicError::Truncated)?;
    let mut v = (first & 0x3F) as u64;
    for b in bytes {
        v = (v << 8) | *b as u64;
    }
    Ok((v, n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_boundaries() {
        for v in [
            0u64,
            1,
            0x3F,
            0x40,
            0x3FFF,
            0x4000,
            0x3FFF_FFFF,
            0x4000_0000,
            VARINT_MAX,
        ] {
            let mut buf = Vec::new();
            encode_into(v, &mut buf);
            assert_eq!(buf.len(), len(v));
            assert_eq!(decode(&buf).unwrap(), (v, buf.len()));
        }
    }

    #[test]
    fn rfc9000_appendix_a_examples() {
        // RFC 9000 A.1: the canonical worked examples.
        assert_eq!(decode(&[0x25]).unwrap(), (37, 1));
        assert_eq!(decode(&[0x7B, 0xBD]).unwrap(), (15293, 2));
        assert_eq!(decode(&[0x9D, 0x7F, 0x3E, 0x7D]).unwrap(), (494_878_333, 4));
        assert_eq!(
            decode(&[0xC2, 0x19, 0x7C, 0x5E, 0xFF, 0x14, 0xE8, 0x8C]).unwrap(),
            (151_288_809_941_952_652, 8)
        );
    }

    #[test]
    fn truncated_inputs_rejected() {
        assert_eq!(decode(&[]), Err(QuicError::Truncated));
        assert_eq!(decode(&[0x40]), Err(QuicError::Truncated));
        assert_eq!(decode(&[0x80, 0, 0]), Err(QuicError::Truncated));
        assert_eq!(decode(&[0xC0; 7]), Err(QuicError::Truncated));
    }
}
