//! Stream reassembly: the receive side of a QUIC-lite stream.
//!
//! STREAM frames may arrive out of order and duplicated (loss recovery
//! retransmits whole frames); [`RecvStream`] reassembles them into the
//! contiguous byte sequence the application layer consumes. Delivery is
//! *progressive* — newly contiguous bytes are surfaced as soon as they
//! exist — because DoT multiplexes its whole session onto one stream
//! that never finishes, while DoQ/DoH read one message per stream up to
//! the FIN.

use std::collections::BTreeMap;

/// Receive-side reassembly buffer for one stream.
#[derive(Debug, Default)]
pub struct RecvStream {
    /// Bytes delivered to the application so far (stream offset of the
    /// next expected byte).
    delivered: u64,
    /// Out-of-order segments, keyed by start offset.
    segments: BTreeMap<u64, Vec<u8>>,
    /// Stream length fixed by a FIN frame, once seen.
    fin_at: Option<u64>,
    /// Whether the FIN point has been delivered.
    finished: bool,
    /// Whether the FIN has been surfaced to the application.
    fin_notified: bool,
}

impl RecvStream {
    /// Create an empty stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether all bytes up to the FIN have been delivered.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// One-shot FIN notification: true the first time the stream is
    /// complete, false on every later call. Retransmitted frames that
    /// deliver nothing new must not re-announce the FIN — a duplicate
    /// announcement would make a request/response consumer answer the
    /// same stream twice.
    pub fn take_fin_notification(&mut self) -> bool {
        let fire = self.finished && !self.fin_notified;
        self.fin_notified |= fire;
        fire
    }

    /// Offset of the next byte the application will receive.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Insert a frame's bytes at `offset` (with optional FIN) and
    /// return any newly contiguous bytes. Duplicate and overlapping
    /// segments are tolerated (retransmissions resend whole frames).
    pub fn push(&mut self, offset: u64, data: &[u8], fin: bool) -> Vec<u8> {
        if fin {
            self.fin_at = Some(offset + data.len() as u64);
        }
        let end = offset + data.len() as u64;
        if end > self.delivered && !data.is_empty() {
            // Clip the already-delivered prefix, then stash.
            let skip = self.delivered.saturating_sub(offset) as usize;
            let start = offset.max(self.delivered);
            self.segments
                .entry(start)
                .and_modify(|existing| {
                    if existing.len() < data.len() - skip {
                        *existing = data[skip..].to_vec();
                    }
                })
                .or_insert_with(|| data[skip..].to_vec());
        }
        // Drain everything now contiguous.
        let mut out = Vec::new();
        while let Some((&start, _)) = self.segments.first_key_value() {
            if start > self.delivered {
                break;
            }
            let (start, seg) = self.segments.pop_first().expect("non-empty");
            let skip = (self.delivered - start) as usize;
            if skip < seg.len() {
                out.extend_from_slice(&seg[skip..]);
                self.delivered = start + seg.len() as u64;
            }
        }
        if self.fin_at == Some(self.delivered) {
            self.finished = true;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_delivery() {
        let mut s = RecvStream::new();
        assert_eq!(s.push(0, b"hello ", false), b"hello ");
        assert_eq!(s.push(6, b"world", true), b"world");
        assert!(s.is_finished());
    }

    #[test]
    fn out_of_order_and_duplicates() {
        let mut s = RecvStream::new();
        assert_eq!(s.push(6, b"world", true), b"");
        assert!(!s.is_finished());
        assert_eq!(s.push(6, b"world", true), b""); // duplicate
        assert_eq!(s.push(0, b"hello ", false), b"hello world");
        assert!(s.is_finished());
        assert_eq!(s.push(0, b"hello ", false), b""); // stale retransmit
        assert_eq!(s.delivered(), 11);
    }

    #[test]
    fn empty_fin_finishes() {
        let mut s = RecvStream::new();
        assert_eq!(s.push(0, b"msg", false), b"msg");
        assert_eq!(s.push(3, b"", true), b"");
        assert!(s.is_finished());
    }

    #[test]
    fn fin_notification_fires_exactly_once() {
        let mut s = RecvStream::new();
        assert_eq!(s.push(0, b"msg", true), b"msg");
        assert!(s.take_fin_notification());
        // A stale retransmit of the same frame completes nothing new.
        assert_eq!(s.push(0, b"msg", true), b"");
        assert!(!s.take_fin_notification());
    }

    #[test]
    fn overlapping_segments_keep_longest() {
        let mut s = RecvStream::new();
        assert_eq!(s.push(4, b"56", false), b"");
        assert_eq!(s.push(4, b"5678", false), b"");
        assert_eq!(s.push(0, b"1234", false), b"12345678");
    }
}
