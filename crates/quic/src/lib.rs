//! `doc-quic` — a minimal simulated QUIC transport ("QUIC-lite") for
//! the DNS-over-QUIC / DoH / DoT baselines the paper discusses only
//! analytically (§5.5 / Fig. 9, `doc-models::quic`).
//!
//! The crate provides, bottom to top:
//!
//! * [`varint`] — RFC 9000 variable-length integers (every field of
//!   the frame codec).
//! * [`frame`] — PADDING/PING/ACK/CRYPTO/STREAM frames, varint-framed
//!   with RFC 9000 §19 wire layouts (ACK reduced to one range).
//! * [`packet`] — long-header handshake packets (plaintext CRYPTO
//!   flights) and short-header 1-RTT packets protected with
//!   AES-128-CCM and HKDF-derived directional keys — the same crypto
//!   substrate (`doc-crypto`) that backs the DTLS record layer.
//! * [`stream`] — out-of-order stream reassembly with progressive
//!   delivery.
//! * [`recovery`] — RTT estimation (RFC 6298 smoothing, min-RTT
//!   window) and the pluggable [`CongestionController`] trait with its
//!   three implementations (`FixedRto` oracle, `Cubic`, `BbrLite`).
//! * [`conn`] — the sans-IO [`Connection`]: 1-RTT PSK handshake,
//!   per-query bidirectional streams, delayed ACKs and
//!   controller-driven loss recovery, pumped by explicit
//!   `doc_time::Instant` timestamps so `doc-netsim`'s event queue
//!   drives retransmission deterministically.
//! * [`doq`] — the three DNS framings carried on the streams: DoQ
//!   (RFC 9250: 2-byte length prefix, one query per stream), DoH-lite
//!   (HTTP/3-flavoured HEADERS+DATA frames) and DoT-lite (RFC 7858:
//!   pipelined length-prefixed messages on one stream).
//!
//! Everything is deterministic in its seeds; nothing does IO.

pub mod conn;
pub mod doq;
pub mod frame;
pub mod packet;
pub mod recovery;
pub mod stream;
pub mod varint;

pub use conn::{Connection, QuicEvent, Transmit};
pub use recovery::{CongestionController, ControllerKind, RttEstimator};

/// Errors produced by the QUIC-lite layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuicError {
    /// Input ended before a complete field/frame/message.
    Truncated,
    /// Structurally invalid input (bad type, inconsistent lengths).
    Malformed,
    /// AEAD open failed (bad key, tampered packet).
    Crypto,
    /// 1-RTT operation attempted before the handshake completed.
    NotEstablished,
    /// Extra bytes followed a complete framed message (DoQ/DoH streams
    /// carry exactly one).
    TrailingData,
}

impl core::fmt::Display for QuicError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            QuicError::Truncated => write!(f, "truncated QUIC-lite data"),
            QuicError::Malformed => write!(f, "malformed QUIC-lite data"),
            QuicError::Crypto => write!(f, "QUIC-lite packet failed decryption"),
            QuicError::NotEstablished => write!(f, "QUIC-lite handshake not complete"),
            QuicError::TrailingData => write!(f, "trailing bytes after framed DNS message"),
        }
    }
}

impl std::error::Error for QuicError {}

/// Establish a client/server [`Connection`] pair by pumping the
/// handshake in memory (the paper pre-initializes DTLS sessions the
/// same way; the in-band handshake cost is measured separately by the
/// conformance test and `session_setup`).
pub fn establish_pair(seed: u64, psk: &[u8]) -> (Connection, Connection) {
    establish_pair_with(seed, psk, ControllerKind::FixedRto)
}

/// [`establish_pair`] with an explicit congestion controller for both
/// endpoints.
pub fn establish_pair_with(
    seed: u64,
    psk: &[u8],
    controller: ControllerKind,
) -> (Connection, Connection) {
    let mut client = Connection::client_with(seed, psk, controller);
    let mut server = Connection::server_with(seed ^ 0x5EED, psk, controller);
    let t0 = doc_time::Instant::EPOCH;
    let mut c2s = client.connect(t0);
    for _ in 0..4 {
        let mut s2c = Vec::new();
        for d in c2s.drain(..) {
            for ev in server.handle_datagram(t0, &d) {
                if let QuicEvent::Transmit(reply) = ev {
                    s2c.push(reply);
                }
            }
        }
        for d in s2c {
            for ev in client.handle_datagram(t0, &d) {
                if let QuicEvent::Transmit(reply) = ev {
                    c2s.push(reply);
                }
            }
        }
        if client.is_established() && server.is_established() {
            break;
        }
    }
    assert!(client.is_established() && server.is_established());
    (client, server)
}

#[cfg(test)]
mod tests {
    use super::*;
    use doc_time::Instant;

    const PSK: &[u8] = b"doq-lite-psk-123";

    fn at(ms: u64) -> Instant {
        Instant::from_millis(ms)
    }

    #[test]
    fn handshake_is_one_round_trip() {
        let mut client = Connection::client(1, PSK);
        let mut server = Connection::server(2, PSK);
        let flight1 = client.connect(at(0));
        assert_eq!(flight1.len(), 1, "client first flight is one datagram");
        assert!(!client.is_established());
        let evs = server.handle_datagram(at(5), &flight1[0]);
        assert!(server.is_established(), "server established on flight 1");
        let replies: Vec<_> = evs
            .iter()
            .filter_map(|e| match e {
                QuicEvent::Transmit(d) => Some(d.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(replies.len(), 1, "server answers with one datagram");
        let evs = client.handle_datagram(at(10), &replies[0]);
        assert!(client.is_established(), "client established after 1 RTT");
        assert!(evs.contains(&QuicEvent::Established));
        // Handshake flight no longer retransmits.
        assert_eq!(client.in_flight(), 0);
    }

    #[test]
    fn one_query_per_stream_roundtrip() {
        let (mut client, mut server) = establish_pair(7, PSK);
        let sid = client.open_stream();
        assert_eq!(sid, 0);
        assert_eq!(client.open_stream(), 4);
        let framed = doq::encode_doq(b"pretend-dns-query");
        let pkts = client.send_stream(sid, &framed, true, at(100)).unwrap();
        assert_eq!(pkts.len(), 1);
        let evs = server.handle_datagram(at(105), &pkts[0]);
        let (data, fin) = evs
            .iter()
            .find_map(|e| match e {
                QuicEvent::Stream { id, data, fin } if *id == sid => Some((data.clone(), *fin)),
                _ => None,
            })
            .expect("stream delivered");
        assert!(fin);
        assert_eq!(doq::decode_doq(&data).unwrap(), b"pretend-dns-query");
    }

    #[test]
    fn lost_packet_is_retransmitted_and_recovered() {
        let (mut client, mut server) = establish_pair(9, PSK);
        let sid = client.open_stream();
        let framed = doq::encode_doq(b"lossy query");
        let pkts = client.send_stream(sid, &framed, true, at(0)).unwrap();
        drop(pkts); // the network ate the datagram
        assert_eq!(client.in_flight(), 1);
        let t = client.next_timeout().expect("RTO armed");
        assert_eq!(t, Instant::EPOCH + conn::INITIAL_RTO);
        let retrans = client.poll(t);
        assert_eq!(retrans.datagrams.len(), 1, "one retransmission");
        assert_eq!(
            retrans.next_timeout,
            Some(t + conn::INITIAL_RTO.saturating_mul(2)),
            "the retransmission doubles its RTO"
        );
        let evs = server.handle_datagram(t + conn::ACK_DELAY, &retrans.datagrams[0]);
        assert!(evs
            .iter()
            .any(|e| matches!(e, QuicEvent::Stream { fin: true, .. })));
        // Server acks after its delayed-ack timer; the ack clears the
        // client's in-flight entry.
        let ack_at = server.next_timeout().expect("delayed ack armed");
        let acks = server.poll(ack_at);
        assert_eq!(acks.datagrams.len(), 1);
        for d in &acks.datagrams {
            client.handle_datagram(ack_at + conn::ACK_DELAY, d);
        }
        assert_eq!(client.in_flight(), 0);
    }

    #[test]
    fn retries_are_bounded() {
        let (mut client, _server) = establish_pair(11, PSK);
        let sid = client.open_stream();
        client
            .send_stream(sid, &doq::encode_doq(b"x"), true, at(0))
            .unwrap();
        for _ in 0..=conn::MAX_RETRIES {
            let now = client.next_timeout().expect("armed");
            client.poll(now);
        }
        assert_eq!(client.in_flight(), 0, "abandoned after max retries");
        assert_eq!(client.abandoned(), 1);
        assert_eq!(client.next_timeout(), None);
    }

    #[test]
    fn send_before_handshake_is_an_error() {
        let mut client = Connection::client(3, PSK);
        assert_eq!(
            client.send_stream(0, b"x", true, at(0)),
            Err(QuicError::NotEstablished)
        );
    }

    #[test]
    fn wrong_psk_cannot_exchange_data() {
        let mut client = Connection::client(1, PSK);
        let mut server = Connection::server(2, b"some-other-psk!!");
        let flight1 = client.connect(at(0));
        let reply = server
            .handle_datagram(at(0), &flight1[0])
            .into_iter()
            .find_map(|e| match e {
                QuicEvent::Transmit(d) => Some(d),
                _ => None,
            })
            .expect("server replies");
        client.handle_datagram(at(5), &reply);
        // Both sides think they are established (randoms are public),
        // but traffic keys disagree: data packets are dropped on auth.
        let sid = client.open_stream();
        let pkts = client.send_stream(sid, b"secret", true, at(10)).unwrap();
        let evs = server.handle_datagram(at(15), &pkts[0]);
        assert!(
            evs.iter().all(|e| !matches!(e, QuicEvent::Stream { .. })),
            "mismatched keys must not deliver data"
        );
    }

    #[test]
    fn garbage_datagrams_are_dropped_not_panicked() {
        let (mut client, mut server) = establish_pair(13, PSK);
        for junk in [
            vec![],
            vec![0xFF],
            vec![packet::FLAGS_ONE_RTT, 1, 2, 3],
            vec![packet::FLAGS_HANDSHAKE; 40],
            vec![0x45; 200],
        ] {
            assert!(client.handle_datagram(at(0), &junk).is_empty());
            assert!(server.handle_datagram(at(0), &junk).is_empty());
        }
    }

    #[test]
    fn establish_pair_is_deterministic() {
        let (mut c1, mut s1) = establish_pair(42, PSK);
        let (mut c2, mut s2) = establish_pair(42, PSK);
        let sid = c1.open_stream();
        assert_eq!(sid, c2.open_stream());
        let p1 = c1.send_stream(sid, b"same", true, at(0)).unwrap();
        let p2 = c2.send_stream(sid, b"same", true, at(0)).unwrap();
        assert_eq!(p1, p2, "identical seeds give identical wire bytes");
        assert_eq!(
            s1.handle_datagram(at(1), &p1[0]),
            s2.handle_datagram(at(1), &p2[0])
        );
    }

    #[test]
    fn adaptive_controller_samples_rtt_and_lowers_rto() {
        let (mut client, mut server) = establish_pair_with(21, PSK, ControllerKind::Cubic);
        let sid = client.open_stream();
        let framed = doq::encode_doq(b"adaptive query");
        let pkts = client.send_stream(sid, &framed, true, at(0)).unwrap();
        assert_eq!(pkts.len(), 1, "within the initial window");
        server.handle_datagram(at(20), &pkts[0]);
        let ack_at = server.next_timeout().expect("delayed ack armed");
        let acks = server.poll(ack_at);
        for d in &acks.datagrams {
            client.handle_datagram(at(45), d);
        }
        assert_eq!(client.in_flight(), 0);
        let srtt = client.rtt().srtt().expect("RTT sampled from the ack");
        assert_eq!(u64::from(srtt), 45);
        // The next packet's RTO follows the estimator, far below the
        // fixed 300 ms oracle.
        let sid2 = client.open_stream();
        let pkts = client.send_stream(sid2, &framed, true, at(50)).unwrap();
        assert_eq!(pkts.len(), 1);
        let t = client.next_timeout().expect("RTO armed");
        assert!(
            t < at(50) + conn::INITIAL_RTO,
            "adaptive RTO {t} not below the fixed oracle"
        );
    }

    #[test]
    fn quota_exhaustion_queues_and_acks_release() {
        let (mut client, mut server) = establish_pair_with(23, PSK, ControllerKind::Cubic);
        let sid = client.open_stream();
        // 40 kB forces ~40 full packets against a 12 kB initial
        // window: the surplus must queue, not transmit.
        let big = vec![0xAB; 40 * 1024];
        let framed = doq::encode_doq(&big);
        let pkts = client.send_stream(sid, &framed, true, at(0)).unwrap();
        assert!(pkts.len() < 41, "everything transmitted despite the window");
        assert!(client.bytes_in_flight() <= recovery::INITIAL_WINDOW);
        // Deliver and ack the first burst; freed quota must release
        // queued frames as Transmit events.
        for d in &pkts {
            server.handle_datagram(at(10), d);
        }
        let ack_at = server.next_timeout().expect("delayed ack armed");
        let acks = server.poll(ack_at);
        let released: usize = acks
            .datagrams
            .iter()
            .flat_map(|d| client.handle_datagram(at(40), d))
            .filter(|e| matches!(e, QuicEvent::Transmit(_)))
            .count();
        assert!(released > 0, "acks released no queued packets");
    }
}
