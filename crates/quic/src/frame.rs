//! QUIC-lite frames: the varint-framed subset the simulated transports
//! need — PADDING, PING, ACK, CRYPTO and STREAM — with wire layouts
//! taken from RFC 9000 §19 (ACK reduced to a single range, STREAM
//! always length-delimited so frames can be concatenated).

use crate::{varint, QuicError};

/// Frame-type byte values (RFC 9000 §19; STREAM is a type *range*).
const TYPE_PADDING: u64 = 0x00;
const TYPE_PING: u64 = 0x01;
const TYPE_ACK: u64 = 0x02;
const TYPE_CRYPTO: u64 = 0x06;
/// STREAM frame base type; OR-ed with the FIN (0x01), LEN (0x02) and
/// OFF (0x04) bits. The codec always sets LEN.
const TYPE_STREAM_BASE: u64 = 0x08;

/// One QUIC-lite frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// A single padding byte.
    Padding,
    /// PING: ack-eliciting no-op (used as a keep-alive/probe).
    Ping,
    /// ACK with one range: acknowledges packet numbers
    /// `largest - first_range ..= largest`.
    Ack {
        /// Largest acknowledged packet number.
        largest: u64,
        /// Length of the contiguous range below `largest`.
        first_range: u64,
    },
    /// CRYPTO-lite: handshake bytes at an offset (the QUIC-lite
    /// handshake fits one frame, but the layout keeps the real shape).
    Crypto {
        /// Byte offset into the handshake stream.
        offset: u64,
        /// Handshake payload.
        data: Vec<u8>,
    },
    /// STREAM data for a bidirectional stream.
    Stream {
        /// Stream ID (client-initiated bidirectional: 0, 4, 8, …).
        id: u64,
        /// Byte offset of `data` within the stream.
        offset: u64,
        /// Whether this frame ends the sending side of the stream.
        fin: bool,
        /// Stream payload bytes.
        data: Vec<u8>,
    },
}

impl Frame {
    /// Whether the frame elicits an acknowledgement (everything but
    /// ACK and PADDING, per RFC 9000 §13.2.1).
    pub fn ack_eliciting(&self) -> bool {
        !matches!(self, Frame::Ack { .. } | Frame::Padding)
    }

    /// Whether a lost frame must be retransmitted (CRYPTO/STREAM carry
    /// application state; ACK/PING/PADDING are regenerated on demand).
    pub fn retransmittable(&self) -> bool {
        matches!(self, Frame::Crypto { .. } | Frame::Stream { .. })
    }

    /// Append the wire encoding to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Frame::Padding => varint::encode_into(TYPE_PADDING, out),
            Frame::Ping => varint::encode_into(TYPE_PING, out),
            Frame::Ack {
                largest,
                first_range,
            } => {
                varint::encode_into(TYPE_ACK, out);
                varint::encode_into(*largest, out);
                varint::encode_into(*first_range, out);
            }
            Frame::Crypto { offset, data } => {
                varint::encode_into(TYPE_CRYPTO, out);
                varint::encode_into(*offset, out);
                varint::encode_into(data.len() as u64, out);
                out.extend_from_slice(data);
            }
            Frame::Stream {
                id,
                offset,
                fin,
                data,
            } => {
                let mut t = TYPE_STREAM_BASE | 0x02; // LEN always set
                if *offset > 0 {
                    t |= 0x04;
                }
                if *fin {
                    t |= 0x01;
                }
                varint::encode_into(t, out);
                varint::encode_into(*id, out);
                if *offset > 0 {
                    varint::encode_into(*offset, out);
                }
                varint::encode_into(data.len() as u64, out);
                out.extend_from_slice(data);
            }
        }
    }

    /// Wire encoding as a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Decode one frame from the front of `data`; returns the frame and
    /// the number of bytes consumed.
    pub fn decode(data: &[u8]) -> Result<(Frame, usize), QuicError> {
        // Checked tail: `used` never exceeds `data.len()` by
        // construction, but every advance goes through `.get()` so the
        // decoder stays panic-free on any input.
        let rest = |used: usize| data.get(used..).ok_or(QuicError::Truncated);
        let (t, mut used) = varint::decode(data)?;
        let frame = match t {
            TYPE_PADDING => Frame::Padding,
            TYPE_PING => Frame::Ping,
            TYPE_ACK => {
                let (largest, n) = varint::decode(rest(used)?)?;
                used += n;
                let (first_range, n) = varint::decode(rest(used)?)?;
                used += n;
                if first_range > largest {
                    return Err(QuicError::Malformed);
                }
                Frame::Ack {
                    largest,
                    first_range,
                }
            }
            TYPE_CRYPTO => {
                let (offset, n) = varint::decode(rest(used)?)?;
                used += n;
                let (len, n) = varint::decode(rest(used)?)?;
                used += n;
                let end = used.checked_add(len as usize).ok_or(QuicError::Malformed)?;
                let bytes = data.get(used..end).ok_or(QuicError::Truncated)?;
                used = end;
                Frame::Crypto {
                    offset,
                    data: bytes.to_vec(),
                }
            }
            t if (TYPE_STREAM_BASE..TYPE_STREAM_BASE + 8).contains(&t) => {
                let bits = t - TYPE_STREAM_BASE;
                if bits & 0x02 == 0 {
                    // Length-less STREAM frames (extend to end of
                    // packet) are never produced by this codec.
                    return Err(QuicError::Malformed);
                }
                let (id, n) = varint::decode(rest(used)?)?;
                used += n;
                let offset = if bits & 0x04 != 0 {
                    let (off, n) = varint::decode(rest(used)?)?;
                    used += n;
                    off
                } else {
                    0
                };
                let (len, n) = varint::decode(rest(used)?)?;
                used += n;
                let end = used.checked_add(len as usize).ok_or(QuicError::Malformed)?;
                let bytes = data.get(used..end).ok_or(QuicError::Truncated)?;
                used = end;
                if offset.checked_add(len).is_none() {
                    return Err(QuicError::Malformed);
                }
                Frame::Stream {
                    id,
                    offset,
                    fin: bits & 0x01 != 0,
                    data: bytes.to_vec(),
                }
            }
            _ => return Err(QuicError::Malformed),
        };
        Ok((frame, used))
    }

    /// Decode every frame of a packet payload. Rejects any malformed or
    /// trailing bytes — a packet is either fully understood or dropped.
    pub fn decode_all(mut data: &[u8]) -> Result<Vec<Frame>, QuicError> {
        let mut out = Vec::new();
        while !data.is_empty() {
            let (frame, used) = Frame::decode(data)?;
            out.push(frame);
            data = data.get(used..).ok_or(QuicError::Malformed)?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_shapes() -> Vec<Frame> {
        vec![
            Frame::Padding,
            Frame::Ping,
            Frame::Ack {
                largest: 7000,
                first_range: 12,
            },
            Frame::Crypto {
                offset: 0,
                data: vec![1, 2, 3],
            },
            Frame::Stream {
                id: 4,
                offset: 0,
                fin: true,
                data: vec![9; 44],
            },
            Frame::Stream {
                id: 0,
                offset: 300,
                fin: false,
                data: vec![],
            },
        ]
    }

    #[test]
    fn frames_roundtrip_individually_and_concatenated() {
        let frames = all_shapes();
        let mut wire = Vec::new();
        for f in &frames {
            let one = f.encode();
            let (back, used) = Frame::decode(&one).unwrap();
            assert_eq!(&back, f);
            assert_eq!(used, one.len());
            wire.extend_from_slice(&one);
        }
        assert_eq!(Frame::decode_all(&wire).unwrap(), frames);
    }

    #[test]
    fn truncations_are_errors_not_panics() {
        for f in all_shapes() {
            let wire = f.encode();
            for cut in 0..wire.len() {
                assert!(
                    Frame::decode_all(&wire[..cut]).is_err() || cut == 0,
                    "{f:?} cut at {cut}"
                );
            }
        }
    }

    #[test]
    fn malformed_rejected() {
        // Unknown frame type.
        assert_eq!(Frame::decode(&[0x1F]), Err(QuicError::Malformed));
        // ACK range larger than largest.
        let mut bad = Vec::new();
        varint::encode_into(TYPE_ACK, &mut bad);
        varint::encode_into(1, &mut bad);
        varint::encode_into(2, &mut bad);
        assert_eq!(Frame::decode(&bad), Err(QuicError::Malformed));
        // Length-less STREAM frame.
        assert_eq!(
            Frame::decode(&[0x08, 0x00, 0x00]),
            Err(QuicError::Malformed)
        );
        // STREAM length overruns the buffer.
        let mut long = Vec::new();
        Frame::Stream {
            id: 0,
            offset: 0,
            fin: false,
            data: vec![1, 2, 3],
        }
        .encode_into(&mut long);
        long.truncate(long.len() - 1);
        assert_eq!(Frame::decode(&long), Err(QuicError::Truncated));
    }
}
