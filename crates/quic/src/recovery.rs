//! Loss recovery and congestion control for the QUIC-lite transport:
//! an RFC 6298-style [`RttEstimator`] feeding a pluggable
//! [`CongestionController`] (the s2n-quic `recovery/` split, scaled to
//! a simulated transport).
//!
//! Three controllers ship:
//!
//! * [`FixedRto`] — the original fixed 300 ms doubling RTO with an
//!   unlimited window. Kept byte-exact as the conformance oracle that
//!   `tests/quic_conformance.rs` pins against `doc-models::quic`.
//! * [`Cubic`] — RFC 8312-shaped cubic window growth with hybrid slow
//!   start (delay-increase exit) and β = 0.7 multiplicative decrease.
//! * [`BbrLite`] — a reduced BBR: bandwidth/min-RTT probing state
//!   machine (Startup → Drain → ProbeBw) sizing the window to a gain
//!   multiple of the estimated bandwidth-delay product.

use crate::conn::{ACK_DELAY, INITIAL_RTO};
use doc_time::{Instant, Millis};

/// Nominal maximum datagram size used as the congestion-window unit.
/// QUIC-lite datagrams are smaller (≤ ~1.1 kB), so gating sends on
/// whole-MSS quota is conservative.
pub const MSS: usize = 1200;
/// Initial congestion window (RFC 9002's 10 × max datagram size).
pub const INITIAL_WINDOW: usize = 10 * MSS;
/// Floor for every adaptive controller's window.
pub const MIN_WINDOW: usize = 2 * MSS;
/// Timer granularity floor for the RTO variance term.
pub const GRANULARITY: Millis = Millis::from_millis(1);
/// How long a min-RTT observation stays valid before the window
/// forgets it (route changes re-probe within this horizon).
pub const MIN_RTT_WINDOW: Millis = Millis::from_millis(10_000);

/// SRTT/RTTVAR smoothing per RFC 6298 plus a windowed min-RTT filter.
///
/// Samples are fed only from packets that were never retransmitted
/// (Karn's algorithm — the `Connection` enforces this).
#[derive(Debug, Clone, Default)]
pub struct RttEstimator {
    srtt: Option<Millis>,
    rttvar: Millis,
    min_rtt: Option<(Instant, Millis)>,
}

impl RttEstimator {
    /// A fresh estimator with no samples.
    pub fn new() -> RttEstimator {
        RttEstimator::default()
    }

    /// Feed one RTT sample taken at `now`.
    pub fn on_sample(&mut self, now: Instant, sample: Millis) {
        match self.srtt {
            None => {
                self.srtt = Some(sample);
                self.rttvar = Millis::from_millis(sample.as_millis() / 2);
            }
            Some(srtt) => {
                let s = sample.as_millis();
                let delta = srtt.as_millis().abs_diff(s);
                self.rttvar = Millis::from_millis((3 * self.rttvar.as_millis() + delta) / 4);
                self.srtt = Some(Millis::from_millis((7 * srtt.as_millis() + s) / 8));
            }
        }
        match self.min_rtt {
            Some((at, min))
                if sample > min && now.saturating_duration_since(at) < MIN_RTT_WINDOW => {}
            _ => self.min_rtt = Some((now, sample)),
        }
    }

    /// Whether at least one sample has been observed.
    pub fn has_sample(&self) -> bool {
        self.srtt.is_some()
    }

    /// The smoothed RTT, if any sample has been observed.
    pub fn srtt(&self) -> Option<Millis> {
        self.srtt
    }

    /// The smoothed RTT variance.
    pub fn rttvar(&self) -> Millis {
        self.rttvar
    }

    /// The windowed minimum RTT, if any sample has been observed.
    pub fn min_rtt(&self) -> Option<Millis> {
        self.min_rtt.map(|(_, min)| min)
    }

    /// Probe timeout: `SRTT + max(4·RTTVAR, granularity) + max ACK
    /// delay`, or the conservative handshake RTO before any sample.
    pub fn pto(&self) -> Millis {
        match self.srtt {
            None => INITIAL_RTO,
            Some(srtt) => srtt + self.rttvar.saturating_mul(4).max(GRANULARITY) + ACK_DELAY,
        }
    }
}

/// A pluggable congestion controller driven by the `Connection`'s
/// sans-IO event loop.
pub trait CongestionController: core::fmt::Debug + Send {
    /// A tracked (retransmittable) packet of `bytes` left at `now`.
    fn on_packet_sent(&mut self, now: Instant, bytes: usize);
    /// A tracked packet of `bytes` was acknowledged at `now`.
    fn on_ack(&mut self, now: Instant, bytes: usize, rtt: &RttEstimator);
    /// A tracked packet of `bytes` was declared lost at `now`.
    fn on_loss(&mut self, now: Instant, bytes: usize);
    /// Current congestion window in bytes.
    fn window(&self) -> usize;
    /// Retransmission timeout for a freshly sent packet.
    fn rto(&self, rtt: &RttEstimator) -> Millis {
        rtt.pto()
    }
    /// Bytes the connection may still put in flight — the pacing-aware
    /// send quota the driver consults before building packets.
    fn send_quota(&self, bytes_in_flight: usize) -> usize {
        self.window().saturating_sub(bytes_in_flight)
    }
    /// Stable identifier used in benchmark rows and logs.
    fn name(&self) -> &'static str;
}

/// Selects a [`CongestionController`] implementation when constructing
/// a `Connection`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControllerKind {
    /// Fixed 300 ms doubling RTO, unlimited window (the oracle).
    FixedRto,
    /// CUBIC with hybrid slow start.
    Cubic,
    /// Reduced BBR bandwidth/min-RTT prober.
    BbrLite,
}

impl ControllerKind {
    /// Instantiate the selected controller.
    pub fn build(self) -> Box<dyn CongestionController> {
        match self {
            ControllerKind::FixedRto => Box::new(FixedRto),
            ControllerKind::Cubic => Box::new(Cubic::new()),
            ControllerKind::BbrLite => Box::new(BbrLite::new()),
        }
    }

    /// The stable row identifier (`fixed_rto` / `cubic` / `bbr_lite`).
    pub fn name(self) -> &'static str {
        match self {
            ControllerKind::FixedRto => "fixed_rto",
            ControllerKind::Cubic => "cubic",
            ControllerKind::BbrLite => "bbr_lite",
        }
    }

    /// All controllers, in oracle-first order.
    pub const ALL: [ControllerKind; 3] = [
        ControllerKind::FixedRto,
        ControllerKind::Cubic,
        ControllerKind::BbrLite,
    ];
}

/// The original QUIC-lite recovery behavior: no window, no RTT
/// adaptation, a fixed [`INITIAL_RTO`] that the connection doubles per
/// retry. Every byte it emits is identical to the pre-recovery
/// transport, which is what the conformance suite pins.
#[derive(Debug, Default, Clone, Copy)]
pub struct FixedRto;

impl CongestionController for FixedRto {
    fn on_packet_sent(&mut self, _now: Instant, _bytes: usize) {}
    fn on_ack(&mut self, _now: Instant, _bytes: usize, _rtt: &RttEstimator) {}
    fn on_loss(&mut self, _now: Instant, _bytes: usize) {}
    fn window(&self) -> usize {
        usize::MAX
    }
    fn rto(&self, _rtt: &RttEstimator) -> Millis {
        INITIAL_RTO
    }
    fn name(&self) -> &'static str {
        "fixed_rto"
    }
}

/// CUBIC constants (RFC 8312): scaling factor and multiplicative
/// decrease.
const CUBIC_C: f64 = 0.4;
const CUBIC_BETA: f64 = 0.7;
/// Hybrid slow start: consecutive delay-increase ACKs before exiting.
const HYSTART_ACKS: u32 = 8;

/// RFC 8312-shaped CUBIC with hybrid slow start.
///
/// Window growth between loss events is monotone non-decreasing (the
/// cubic target is only ever applied as a non-negative increment);
/// every loss applies the β = 0.7 multiplicative decrease down to
/// [`MIN_WINDOW`].
#[derive(Debug)]
pub struct Cubic {
    cwnd: f64,
    ssthresh: f64,
    w_max: f64,
    k: f64,
    epoch_start: Option<Instant>,
    hystart_streak: u32,
}

impl Cubic {
    /// A fresh controller in slow start at [`INITIAL_WINDOW`].
    pub fn new() -> Cubic {
        Cubic {
            cwnd: INITIAL_WINDOW as f64,
            ssthresh: f64::INFINITY,
            w_max: 0.0,
            k: 0.0,
            epoch_start: None,
            hystart_streak: 0,
        }
    }

    fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }
}

impl Default for Cubic {
    fn default() -> Cubic {
        Cubic::new()
    }
}

impl CongestionController for Cubic {
    fn on_packet_sent(&mut self, _now: Instant, _bytes: usize) {}

    fn on_ack(&mut self, now: Instant, bytes: usize, rtt: &RttEstimator) {
        if self.in_slow_start() {
            self.cwnd += bytes as f64;
            // Hybrid slow start, delay-increase flavor: a sustained
            // streak of SRTT samples well above the min-RTT floor means
            // the queue is building — exit before the loss.
            if let (Some(srtt), Some(min)) = (rtt.srtt(), rtt.min_rtt()) {
                let threshold = (min.as_millis() / 8).max(4);
                if srtt.as_millis() > min.as_millis() + threshold {
                    self.hystart_streak += 1;
                    if self.hystart_streak >= HYSTART_ACKS {
                        self.ssthresh = self.cwnd;
                    }
                } else {
                    self.hystart_streak = 0;
                }
            }
            return;
        }
        // Congestion avoidance: grow toward the cubic target
        // W(t) = C·(t − K)³ + W_max (window in MSS units, t in s).
        let epoch = *self.epoch_start.get_or_insert(now);
        let t = now.saturating_duration_since(epoch).as_millis() as f64 / 1000.0;
        let w_max_mss = self.w_max / MSS as f64;
        let target_mss = CUBIC_C * (t - self.k).powi(3) + w_max_mss;
        let target = (target_mss * MSS as f64).max(MIN_WINDOW as f64);
        let delta = (target - self.cwnd).max(0.0);
        // Per-ACK portion of the distance to target, capped at one MSS
        // so bursts of ACKs cannot overshoot.
        self.cwnd += (delta * bytes as f64 / self.cwnd).min(MSS as f64);
    }

    fn on_loss(&mut self, _now: Instant, _bytes: usize) {
        self.w_max = self.cwnd;
        self.cwnd = (self.cwnd * CUBIC_BETA).max(MIN_WINDOW as f64);
        self.ssthresh = self.cwnd;
        self.epoch_start = None;
        let w_max_mss = self.w_max / MSS as f64;
        self.k = (w_max_mss * (1.0 - CUBIC_BETA) / CUBIC_C).cbrt();
        self.hystart_streak = 0;
    }

    fn window(&self) -> usize {
        self.cwnd as usize
    }

    fn name(&self) -> &'static str {
        "cubic"
    }
}

/// BBR-lite probing phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BbrMode {
    /// Exponential bandwidth search (gain 2.885) until the bottleneck
    /// estimate stops growing.
    Startup,
    /// One interval below unity gain to drain the startup queue.
    Drain,
    /// Steady state: cycle gains around 1.0 to re-probe for bandwidth.
    ProbeBw,
}

const BBR_STARTUP_GAIN: f64 = 2.885;
const BBR_DRAIN_GAIN: f64 = 0.75;
const BBR_CYCLE: [f64; 8] = [1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
/// Startup exits after this many intervals without ≥ 25 % bw growth.
const BBR_FULL_BW_ROUNDS: u32 = 3;

/// A reduced BBR: estimates bottleneck bandwidth as the windowed max
/// of per-interval delivery rates, pairs it with the estimator's
/// min-RTT to form a BDP, and walks the Startup → Drain → ProbeBw
/// state machine to size the window. Loss feeds a soft in-flight cap
/// (BBR is rate-based, not loss-backoff-based).
#[derive(Debug)]
pub struct BbrLite {
    mode: BbrMode,
    bw_window: [f64; 8],
    bw_idx: usize,
    interval_start: Option<Instant>,
    interval_bytes: usize,
    full_bw: f64,
    full_bw_rounds: u32,
    cycle_idx: usize,
    inflight_cap: usize,
    /// Last min-RTT observed via the estimator (ms), for the BDP.
    min_rtt_ms: f64,
}

impl BbrLite {
    /// A fresh controller in Startup.
    pub fn new() -> BbrLite {
        BbrLite {
            mode: BbrMode::Startup,
            bw_window: [0.0; 8],
            bw_idx: 0,
            interval_start: None,
            interval_bytes: 0,
            full_bw: 0.0,
            full_bw_rounds: 0,
            cycle_idx: 0,
            inflight_cap: usize::MAX,
            min_rtt_ms: 5.0,
        }
    }

    /// Windowed-max bottleneck bandwidth estimate (bytes per ms).
    fn btl_bw(&self) -> f64 {
        self.bw_window.iter().fold(0.0, |a, &b| a.max(b))
    }

    fn gain(&self) -> f64 {
        match self.mode {
            BbrMode::Startup => BBR_STARTUP_GAIN,
            BbrMode::Drain => BBR_DRAIN_GAIN,
            BbrMode::ProbeBw => BBR_CYCLE[self.cycle_idx % BBR_CYCLE.len()],
        }
    }

    fn advance_interval(&mut self, rate: f64) {
        self.bw_window[self.bw_idx % self.bw_window.len()] = rate;
        self.bw_idx += 1;
        self.inflight_cap = usize::MAX;
        let bw = self.btl_bw();
        match self.mode {
            BbrMode::Startup => {
                if bw >= self.full_bw * 1.25 || self.full_bw == 0.0 {
                    self.full_bw = bw;
                    self.full_bw_rounds = 0;
                } else {
                    self.full_bw_rounds += 1;
                    if self.full_bw_rounds >= BBR_FULL_BW_ROUNDS {
                        self.mode = BbrMode::Drain;
                    }
                }
            }
            BbrMode::Drain => self.mode = BbrMode::ProbeBw,
            BbrMode::ProbeBw => self.cycle_idx = self.cycle_idx.wrapping_add(1),
        }
    }
}

impl Default for BbrLite {
    fn default() -> BbrLite {
        BbrLite::new()
    }
}

impl CongestionController for BbrLite {
    fn on_packet_sent(&mut self, _now: Instant, _bytes: usize) {}

    fn on_ack(&mut self, now: Instant, bytes: usize, rtt: &RttEstimator) {
        self.interval_bytes += bytes;
        let start = *self.interval_start.get_or_insert(now);
        let min_rtt = rtt.min_rtt().unwrap_or(Millis::from_millis(5));
        self.min_rtt_ms = (min_rtt.as_millis() as f64).max(1.0);
        let interval = min_rtt.max(Millis::from_millis(5));
        let elapsed = now.saturating_duration_since(start);
        if elapsed >= interval {
            let rate = self.interval_bytes as f64 / elapsed.as_millis().max(1) as f64;
            self.interval_bytes = 0;
            self.interval_start = Some(now);
            self.advance_interval(rate);
        }
    }

    fn on_loss(&mut self, _now: Instant, _bytes: usize) {
        // Soft reaction: cap in-flight below the current window until
        // the next delivery-rate interval completes.
        self.inflight_cap = (self.window().saturating_mul(7) / 8).max(2 * MSS);
    }

    fn window(&self) -> usize {
        let bw = self.btl_bw();
        let base = if bw == 0.0 {
            // No delivery-rate estimate yet: run on the initial window
            // scaled by the phase gain.
            (INITIAL_WINDOW as f64 * self.gain()) as usize
        } else {
            let bdp = bw * self.min_rtt_ms;
            ((bdp * self.gain()) as usize).max(MIN_WINDOW)
        };
        base.clamp(MIN_WINDOW, self.inflight_cap.max(MIN_WINDOW))
    }

    fn name(&self) -> &'static str {
        "bbr_lite"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Millis {
        Millis::from_millis(v)
    }
    fn at(v: u64) -> Instant {
        Instant::from_millis(v)
    }

    #[test]
    fn rtt_first_sample_initializes_per_rfc6298() {
        let mut rtt = RttEstimator::new();
        assert!(!rtt.has_sample());
        assert_eq!(rtt.pto(), INITIAL_RTO);
        rtt.on_sample(at(0), ms(40));
        assert_eq!(rtt.srtt(), Some(ms(40)));
        assert_eq!(rtt.rttvar(), ms(20));
        assert_eq!(rtt.min_rtt(), Some(ms(40)));
        assert_eq!(rtt.pto(), ms(40) + ms(80) + ACK_DELAY);
    }

    #[test]
    fn rtt_min_window_expires() {
        let mut rtt = RttEstimator::new();
        rtt.on_sample(at(0), ms(10));
        rtt.on_sample(at(100), ms(50));
        assert_eq!(rtt.min_rtt(), Some(ms(10)));
        // Past the window, a larger sample replaces the stale min.
        rtt.on_sample(at(20_000), ms(50));
        assert_eq!(rtt.min_rtt(), Some(ms(50)));
    }

    #[test]
    fn fixed_rto_is_the_oracle() {
        let c = FixedRto;
        let mut rtt = RttEstimator::new();
        rtt.on_sample(at(0), ms(5));
        assert_eq!(c.rto(&rtt), INITIAL_RTO);
        assert_eq!(c.window(), usize::MAX);
        assert_eq!(c.send_quota(1 << 40), usize::MAX - (1 << 40));
    }

    #[test]
    fn cubic_slow_start_doubles_and_loss_backs_off() {
        let mut c = Cubic::new();
        let rtt = RttEstimator::new();
        let w0 = c.window();
        c.on_ack(at(10), MSS, &rtt);
        assert_eq!(c.window(), w0 + MSS);
        let before = c.window();
        c.on_loss(at(20), MSS);
        let after = c.window();
        assert!(after < before);
        assert!(after >= MIN_WINDOW);
        assert_eq!(after, ((before as f64) * CUBIC_BETA) as usize);
    }

    #[test]
    fn cubic_growth_is_monotone_after_loss_epoch() {
        let mut c = Cubic::new();
        let mut rtt = RttEstimator::new();
        rtt.on_sample(at(0), ms(20));
        c.on_loss(at(0), MSS);
        let mut last = c.window();
        for i in 1..200u64 {
            c.on_ack(at(i * 20), MSS, &rtt);
            assert!(c.window() >= last, "cubic window shrank without loss");
            last = c.window();
        }
        assert!(last > MIN_WINDOW, "cubic window never grew");
    }

    #[test]
    fn bbr_walks_startup_drain_probe() {
        let mut b = BbrLite::new();
        let mut rtt = RttEstimator::new();
        rtt.on_sample(at(0), ms(10));
        assert_eq!(b.mode, BbrMode::Startup);
        // Constant delivery rate: startup detects the plateau and
        // drains into ProbeBw.
        for i in 0..400u64 {
            b.on_ack(at(i * 2), MSS, &rtt);
        }
        assert_eq!(b.mode, BbrMode::ProbeBw);
        assert!(b.btl_bw() > 0.0);
        assert!(b.window() >= MIN_WINDOW);
    }

    #[test]
    fn bbr_loss_caps_inflight_until_next_interval() {
        let mut b = BbrLite::new();
        let w0 = b.window();
        b.on_loss(at(0), MSS);
        assert!(b.window() <= w0);
        assert!(b.window() >= MIN_WINDOW);
    }

    #[test]
    fn controller_kinds_build_their_names() {
        for kind in ControllerKind::ALL {
            assert_eq!(kind.build().name(), kind.name());
        }
    }
}
