//! Millisecond-typed time primitives shared by the sans-IO protocol
//! drivers (`doc-quic`) and the discrete-event simulator
//! (`doc-netsim`).
//!
//! Two newtypes keep points-in-time and durations from mixing:
//!
//! * [`Instant`] — an absolute simulated timestamp (milliseconds since
//!   the simulation epoch).
//! * [`Millis`] — a duration in milliseconds.
//!
//! All arithmetic is *saturating*: the simulator's virtual clock never
//! wraps, and a deadline computed from `Instant::EPOCH - something`
//! clamps to the epoch instead of panicking. `From<u64>` / `From<_> for
//! u64` escape hatches exist for code that genuinely needs the raw
//! count (serialization, statistics), so migration stays incremental.

/// A duration in milliseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Millis(u64);

impl Millis {
    /// The zero duration.
    pub const ZERO: Millis = Millis(0);
    /// The longest representable duration.
    pub const MAX: Millis = Millis(u64::MAX);

    /// Construct from a raw millisecond count.
    pub const fn from_millis(ms: u64) -> Millis {
        Millis(ms)
    }

    /// The raw millisecond count.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Saturating duration addition.
    pub const fn saturating_add(self, other: Millis) -> Millis {
        Millis(self.0.saturating_add(other.0))
    }

    /// Saturating duration subtraction (clamps at zero).
    pub const fn saturating_sub(self, other: Millis) -> Millis {
        Millis(self.0.saturating_sub(other.0))
    }

    /// Saturating multiplication by a scalar (RTO backoff doubling).
    pub const fn saturating_mul(self, factor: u64) -> Millis {
        Millis(self.0.saturating_mul(factor))
    }
}

impl From<u64> for Millis {
    fn from(ms: u64) -> Millis {
        Millis(ms)
    }
}

impl From<Millis> for u64 {
    fn from(ms: Millis) -> u64 {
        ms.0
    }
}

impl core::ops::Add for Millis {
    type Output = Millis;
    fn add(self, rhs: Millis) -> Millis {
        self.saturating_add(rhs)
    }
}

impl core::ops::Sub for Millis {
    type Output = Millis;
    fn sub(self, rhs: Millis) -> Millis {
        self.saturating_sub(rhs)
    }
}

impl core::ops::Mul<u64> for Millis {
    type Output = Millis;
    fn mul(self, rhs: u64) -> Millis {
        self.saturating_mul(rhs)
    }
}

impl core::fmt::Display for Millis {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}ms", self.0)
    }
}

/// An absolute point on the simulated clock, in milliseconds since the
/// simulation epoch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Instant(u64);

impl Instant {
    /// The simulation epoch (t = 0).
    pub const EPOCH: Instant = Instant(0);

    /// Construct from a raw millisecond timestamp.
    pub const fn from_millis(ms: u64) -> Instant {
        Instant(ms)
    }

    /// The raw millisecond timestamp.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// The duration elapsed since `earlier`, clamping to zero if
    /// `earlier` is in the future.
    pub const fn saturating_duration_since(self, earlier: Instant) -> Millis {
        Millis(self.0.saturating_sub(earlier.0))
    }

    /// This instant advanced by `d` (saturating).
    pub const fn saturating_add(self, d: Millis) -> Instant {
        Instant(self.0.saturating_add(d.0))
    }

    /// This instant rewound by `d` (clamping at the epoch).
    pub const fn saturating_sub(self, d: Millis) -> Instant {
        Instant(self.0.saturating_sub(d.0))
    }
}

impl From<u64> for Instant {
    fn from(ms: u64) -> Instant {
        Instant(ms)
    }
}

impl From<Instant> for u64 {
    fn from(at: Instant) -> u64 {
        at.0
    }
}

impl core::ops::Add<Millis> for Instant {
    type Output = Instant;
    fn add(self, rhs: Millis) -> Instant {
        self.saturating_add(rhs)
    }
}

impl core::ops::Sub<Millis> for Instant {
    type Output = Instant;
    fn sub(self, rhs: Millis) -> Instant {
        self.saturating_sub(rhs)
    }
}

impl core::ops::Sub for Instant {
    type Output = Millis;
    fn sub(self, rhs: Instant) -> Millis {
        self.saturating_duration_since(rhs)
    }
}

impl core::fmt::Display for Instant {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "t={}ms", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_saturates() {
        assert_eq!(Millis::MAX + Millis::from_millis(1), Millis::MAX);
        assert_eq!(Millis::ZERO - Millis::from_millis(5), Millis::ZERO);
        assert_eq!(Millis::MAX * 2, Millis::MAX);
        assert_eq!(Instant::EPOCH - Millis::from_millis(10), Instant::EPOCH);
        assert_eq!(
            Instant::EPOCH.saturating_duration_since(Instant::from_millis(7)),
            Millis::ZERO
        );
    }

    #[test]
    fn instants_and_durations_compose() {
        let t0 = Instant::from_millis(100);
        let t1 = t0 + Millis::from_millis(250);
        assert_eq!(t1, Instant::from_millis(350));
        assert_eq!(t1 - t0, Millis::from_millis(250));
        assert_eq!(t1 - Millis::from_millis(50), Instant::from_millis(300));
        assert!(t1 > t0);
    }

    #[test]
    fn escape_hatches_round_trip() {
        let at: Instant = 42u64.into();
        assert_eq!(u64::from(at), 42);
        let d: Millis = 300u64.into();
        assert_eq!(u64::from(d), 300);
        assert_eq!(Millis::from_millis(25).as_millis(), 25);
        assert_eq!(Instant::from_millis(9).as_millis(), 9);
    }
}
