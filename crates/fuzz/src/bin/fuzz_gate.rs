//! `fuzz_gate` — the bounded differential fuzzing campaign CI runs.
//!
//! With no arguments it fuzzes every built-in family for the default
//! iteration count under the default seed, exiting 0 on a clean run
//! and 2 with a full divergence report (shrunk counterexample, hex
//! dump, replay command) on the first disagreement. `./ci.sh fuzz`
//! invokes exactly this.
//!
//! ```text
//! fuzz_gate [--target NAME] [--seed N|0xN] [--iters N] [--list] [--emit-seeds]
//! ```

use std::process::ExitCode;

use doc_fuzz::{corpus, run_campaign, targets, Campaign};

fn parse_u64(s: &str) -> Result<u64, String> {
    let parsed = match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => s.parse(),
    };
    parsed.map_err(|_| format!("not a number: {s:?}"))
}

struct Args {
    target: Option<String>,
    seed: Option<u64>,
    iters: Option<u64>,
    list: bool,
    emit_seeds: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        target: None,
        seed: None,
        iters: None,
        list: false,
        emit_seeds: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--target" => args.target = Some(value("--target")?),
            "--seed" => args.seed = Some(parse_u64(&value("--seed")?)?),
            "--iters" => args.iters = Some(parse_u64(&value("--iters")?)?),
            "--list" => args.list = true,
            "--emit-seeds" => args.emit_seeds = true,
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

fn emit_seeds(selected: &[Box<dyn doc_fuzz::DifferentialTarget>]) -> std::io::Result<()> {
    for target in selected {
        let dir = corpus::corpus_root().join(target.name());
        std::fs::create_dir_all(&dir)?;
        for (i, seed) in target.seeds().iter().enumerate() {
            let path = dir.join(format!("seed-{i:02}.hex"));
            let comment = format!(
                "{} seed {i}: built-in valid message (fuzz_gate --emit-seeds)",
                target.name()
            );
            std::fs::write(&path, corpus::render(seed, &comment))?;
            println!("wrote {}", path.display());
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fuzz_gate: {e}");
            eprintln!(
                "usage: fuzz_gate [--target NAME] [--seed N] [--iters N] [--list] [--emit-seeds]"
            );
            return ExitCode::from(2);
        }
    };

    if args.list {
        for t in targets::all() {
            println!("{}", t.name());
        }
        return ExitCode::SUCCESS;
    }

    let selected: Vec<_> = match &args.target {
        Some(name) => match targets::by_name(name) {
            Some(t) => vec![t],
            None => {
                eprintln!("fuzz_gate: unknown target {name:?} (try --list)");
                return ExitCode::from(2);
            }
        },
        None => targets::all(),
    };

    if args.emit_seeds {
        return match emit_seeds(&selected) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("fuzz_gate: emitting seeds failed: {e}");
                ExitCode::from(2)
            }
        };
    }

    let cfg = Campaign {
        seed: args.seed.unwrap_or(doc_fuzz::DEFAULT_SEED),
        iterations: args.iters.unwrap_or(doc_fuzz::engine::DEFAULT_ITERATIONS),
        ..Campaign::default()
    };

    let mut total_iters = 0u64;
    let mut total_accepted = 0u64;
    for target in &selected {
        let started = std::time::Instant::now();
        match run_campaign(target.as_ref(), &cfg) {
            Ok(stats) => {
                total_iters += stats.iterations;
                total_accepted += stats.accepted;
                println!(
                    "{:6}: {} iterations ({} replayed), {} accepted, {} rejected, corpus {} [{:?}]",
                    stats.target,
                    stats.iterations,
                    stats.replayed,
                    stats.accepted,
                    stats.rejected,
                    stats.corpus_len,
                    started.elapsed(),
                );
            }
            Err(divergence) => {
                eprintln!("{divergence}");
                return ExitCode::from(2);
            }
        }
    }
    println!(
        "fuzz_gate: clean — {total_iters} iterations across {} targets (seed {:#x}, {total_accepted} accepted)",
        selected.len(),
        cfg.seed,
    );
    ExitCode::SUCCESS
}
