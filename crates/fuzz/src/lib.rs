//! `doc-fuzz` — a deterministic differential fuzzing harness.
//!
//! The proxy hot path runs on three parallel parser stacks: owned
//! decoders ([`doc_dns::Message`], [`doc_coap::CoapMessage`],
//! [`doc_dtls::record::Record`]), borrowed zero-copy views
//! ([`doc_dns::MessageView`], [`doc_coap::CoapView`],
//! [`doc_dtls::record::RecordView`]) and the QUIC-lite stream codecs.
//! Their equivalence was previously spot-checked by per-crate
//! proptests; this crate makes it a continuously-enforced invariant by
//! feeding one mutated corpus through *every* implementation of each
//! format and cross-checking:
//!
//! * **accept/reject equivalence** — both parsers admit exactly the
//!   same byte strings;
//! * **semantic equality** — accepted parses agree after `to_owned()`;
//! * **re-encode stability** — re-encoding an accepted parse decodes
//!   back to the same value (byte-exact where the framing is
//!   canonical, e.g. DoQ).
//!
//! Everything is deterministic and seedable: the same campaign seed
//! replays the same mutation stream, so any reported divergence can be
//! reproduced from the one-line replay command in its report. Minimal
//! counterexamples come from the vendored proptest stand-in's
//! shrinker ([`proptest::minimize`]).
//!
//! The [`target::DifferentialTarget`] trait is the extension point;
//! [`targets::all`] enumerates the five built-in parser families
//! (dns, coap, dtls, quic, json). The `fuzz_gate` binary runs a
//! bounded campaign over all of them and is wired into `./ci.sh fuzz`.

pub mod corpus;
pub mod engine;
pub mod hex;
pub mod mutate;
pub mod target;
pub mod targets;

pub use engine::{run_campaign, Campaign, CampaignStats, Divergence, DEFAULT_SEED};
pub use target::{DifferentialTarget, Outcome};
