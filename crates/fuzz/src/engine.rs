//! The deterministic campaign engine.
//!
//! A campaign over one target is a pure function of `(target name,
//! seed, iteration count, corpus files)`: the RNG is
//! [`TestRng::deterministic`] keyed on both, the corpus is loaded in
//! sorted file order, and targets are required to be pure. Running the
//! same campaign twice therefore produces byte-identical statistics —
//! and any divergence report carries everything needed to replay it.
//!
//! Each campaign starts by replaying every corpus entry unmutated
//! (seed entries must stay accepted, pinned crashers must stay fixed),
//! then runs the mutation loop: pick a base and a donor entry, derive
//! a mutant via [`crate::mutate::mutate`], and feed it to
//! [`DifferentialTarget::check`]. Accepted mutants join the in-memory
//! corpus (up to a cap), so the campaign walks deeper into each format
//! as it runs. A reported divergence is first shrunk with the proptest
//! stand-in's [`proptest::minimize`] byte-vector shrinker to a minimal
//! reproducer.

use std::collections::HashSet;

use proptest::collection::vec;
use proptest::prelude::any;
use proptest::test_runner::TestRng;

use crate::corpus;
use crate::hex;
use crate::mutate::{mutate, MAX_INPUT_LEN};
use crate::target::{DifferentialTarget, Outcome};

/// Default campaign seed — baked into `./ci.sh fuzz` so every CI run
/// replays the same campaign unless a seed is passed explicitly.
pub const DEFAULT_SEED: u64 = 0xD0C5EED;

/// Default per-target iteration count: five targets at this depth make
/// the 100k-iteration CI campaign.
pub const DEFAULT_ITERATIONS: u64 = 20_000;

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// RNG seed; combined with the target name, it determines the
    /// whole mutation stream.
    pub seed: u64,
    /// Mutation iterations per target (corpus replay is extra).
    pub iterations: u64,
    /// Cap on the in-memory corpus (seeds + disk entries + accepted
    /// mutants). Growth stops at the cap; the campaign keeps running.
    pub max_corpus: usize,
    /// Whether to load `tests/corpus/<family>/` from disk. Disabled by
    /// in-tree tests that must not depend on checked-in corpus files.
    pub load_disk_corpus: bool,
}

impl Default for Campaign {
    fn default() -> Self {
        Campaign {
            seed: DEFAULT_SEED,
            iterations: DEFAULT_ITERATIONS,
            max_corpus: 512,
            load_disk_corpus: true,
        }
    }
}

/// What a clean campaign did, for the gate's summary output. Equality
/// of two stats values is the determinism check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignStats {
    /// Target family name.
    pub target: String,
    /// Mutation iterations executed.
    pub iterations: u64,
    /// Corpus entries replayed before mutation started.
    pub replayed: usize,
    /// Mutants every implementation accepted (and agreed on).
    pub accepted: u64,
    /// Mutants every implementation rejected (identically).
    pub rejected: u64,
    /// Final in-memory corpus size.
    pub corpus_len: usize,
}

/// A divergence between implementations of one family: the campaign's
/// counterexample, already shrunk to a minimal reproducer.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Target family name.
    pub target: String,
    /// Campaign seed that produced it.
    pub seed: u64,
    /// Iteration at which the original counterexample appeared
    /// (`None` for a corpus-replay failure before mutation started).
    pub iteration: Option<u64>,
    /// The target's description of the disagreement, re-evaluated on
    /// the minimal input.
    pub cause: String,
    /// Minimal counterexample after shrinking.
    pub input: Vec<u8>,
    /// Length of the pre-shrink counterexample.
    pub original_len: usize,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "differential divergence in target `{}`", self.target)?;
        writeln!(f, "  campaign seed : {:#x}", self.seed)?;
        match self.iteration {
            Some(i) => writeln!(f, "  at iteration  : {i}")?,
            None => writeln!(f, "  at            : corpus replay (before mutation)")?,
        }
        writeln!(f, "  cause         : {}", self.cause)?;
        writeln!(
            f,
            "  counterexample: {} bytes (shrunk from {} bytes)",
            self.input.len(),
            self.original_len
        )?;
        f.write_str(&hex::dump(&self.input))?;
        writeln!(f, "  replay the campaign:")?;
        writeln!(
            f,
            "    cargo run --release -p doc-fuzz --bin fuzz_gate -- --target {} --seed {:#x}",
            self.target, self.seed
        )?;
        writeln!(
            f,
            "  pin after fixing: save the bytes above ({}) as tests/corpus/{}/*.hex",
            hex::to_hex(&self.input),
            self.target
        )
    }
}

/// FNV-1a over an input — the corpus dedup key.
fn fnv(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Run one campaign over one target. `Err` carries the shrunk
/// divergence; a malformed or unreadable corpus file panics, because a
/// corpus that cannot be replayed is itself a CI failure.
pub fn run_campaign(
    target: &dyn DifferentialTarget,
    cfg: &Campaign,
) -> Result<CampaignStats, Box<Divergence>> {
    let mut pool: Vec<Vec<u8>> = Vec::new();
    let mut seen: HashSet<u64> = HashSet::new();

    for entry in target.seeds() {
        if entry.len() <= MAX_INPUT_LEN && seen.insert(fnv(&entry)) {
            pool.push(entry);
        }
    }
    if cfg.load_disk_corpus {
        match corpus::load_family(target.name()) {
            Ok(entries) => {
                for (_, entry) in entries {
                    if entry.len() <= MAX_INPUT_LEN && seen.insert(fnv(&entry)) {
                        pool.push(entry);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => panic!("corpus for `{}` unreadable: {e}", target.name()),
        }
    }
    if pool.is_empty() {
        // The mutator grows an empty buffer, so a target without seeds
        // still fuzzes.
        pool.push(Vec::new());
    }

    // Replay phase: every pool entry must check clean before any
    // mutation — this is what makes pinned crashers regression tests.
    let replayed = pool.len();
    for entry in &pool {
        if let Err(cause) = target.check(entry) {
            return Err(shrink(target, cfg, None, cause, entry.clone()));
        }
    }

    let mut rng = TestRng::deterministic(target.name(), cfg.seed);
    let mut accepted = 0u64;
    let mut rejected = 0u64;
    for iteration in 0..cfg.iterations {
        let base = rng.below(pool.len() as u64) as usize;
        let donor = rng.below(pool.len() as u64) as usize;
        let input = mutate(&pool[base], &pool[donor], &mut rng);
        match target.check(&input) {
            Ok(Outcome::Accepted) => {
                accepted += 1;
                if pool.len() < cfg.max_corpus && seen.insert(fnv(&input)) {
                    pool.push(input);
                }
            }
            Ok(Outcome::Rejected) => rejected += 1,
            Err(cause) => return Err(shrink(target, cfg, Some(iteration), cause, input)),
        }
    }

    Ok(CampaignStats {
        target: target.name().to_string(),
        iterations: cfg.iterations,
        replayed,
        accepted,
        rejected,
        corpus_len: pool.len(),
    })
}

/// Shrink a counterexample to a minimal diverging input via the
/// proptest stand-in's byte-vector shrink ladder, then re-ask the
/// target for the cause on the minimal bytes (the minimal input may
/// diverge differently than the original).
fn shrink(
    target: &dyn DifferentialTarget,
    cfg: &Campaign,
    iteration: Option<u64>,
    original_cause: String,
    input: Vec<u8>,
) -> Box<Divergence> {
    let original_len = input.len();
    let strat = vec(any::<u8>(), 0..=original_len.max(1));
    let minimal = proptest::minimize(&strat, input, &|v: &Vec<u8>| target.check(v).is_err());
    let cause = match target.check(&minimal) {
        Err(c) => c,
        Ok(_) => original_cause,
    };
    Box::new(Divergence {
        target: target.name().to_string(),
        seed: cfg.seed,
        iteration,
        cause,
        input: minimal,
        original_len,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every built-in family survives a short campaign, exercises the
    /// accept path (not just shallow rejections), and is
    /// replay-deterministic: identical stats on identical seeds.
    #[test]
    fn short_campaigns_are_clean_and_deterministic() {
        let cfg = Campaign {
            iterations: 400,
            ..Campaign::default()
        };
        for target in crate::targets::all() {
            let first = run_campaign(target.as_ref(), &cfg)
                .unwrap_or_else(|d| panic!("unexpected divergence:\n{d}"));
            let second = run_campaign(target.as_ref(), &cfg).unwrap();
            assert_eq!(first, second, "campaign must be deterministic");
            assert!(
                first.accepted > 0,
                "{}: no mutant ever crossed the accept boundary",
                first.target
            );
            assert!(first.rejected > 0, "{}: nothing rejected?", first.target);
        }
    }
}
