//! The extension point: one [`DifferentialTarget`] per parser family.

/// What a parser family decided about one input, when all of its
/// implementations agreed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Every implementation accepted the input, the parses were
    /// semantically equal, and re-encoding was stable.
    Accepted,
    /// Every implementation rejected the input (with equal errors,
    /// where the family's errors are comparable).
    Rejected,
}

/// A parser family under differential test.
///
/// `check` is the whole contract: run one input through every
/// implementation of the family and return `Ok` if they agree —
/// [`Outcome::Accepted`] or [`Outcome::Rejected`] — or `Err` with a
/// human-readable description of the divergence. The engine treats any
/// `Err` as a counterexample: it shrinks the input to a minimal
/// reproducer and fails the campaign.
///
/// Implementations must be pure functions of `input`: no I/O, no
/// global state, no randomness. Determinism of the whole campaign
/// rests on it.
pub trait DifferentialTarget {
    /// Stable family name: the corpus directory under `tests/corpus/`
    /// and the `--target` selector of `fuzz_gate`.
    fn name(&self) -> &'static str;

    /// Built-in seed inputs: valid wire messages derived from the
    /// paper's query mixes. These bootstrap the mutation corpus even
    /// when no on-disk corpus exists, and `fuzz_gate --emit-seeds`
    /// writes them out as the initial `tests/corpus/<family>/` entries.
    fn seeds(&self) -> Vec<Vec<u8>>;

    /// Run `input` through every implementation and cross-check.
    fn check(&self, input: &[u8]) -> Result<Outcome, String>;
}
