//! Hex rendering and parsing for corpus files and divergence reports.

/// Render `bytes` as a classic offset/hex/ASCII dump, 16 bytes per
/// row — the form a divergence report embeds so a counterexample can
/// be eyeballed without tooling.
pub fn dump(bytes: &[u8]) -> String {
    if bytes.is_empty() {
        return "    (empty input)\n".to_string();
    }
    let mut out = String::new();
    for (row, chunk) in bytes.chunks(16).enumerate() {
        out.push_str(&format!("    {:04x}  ", row * 16));
        for i in 0..16 {
            match chunk.get(i) {
                Some(b) => out.push_str(&format!("{b:02x} ")),
                None => out.push_str("   "),
            }
            if i == 7 {
                out.push(' ');
            }
        }
        out.push_str(" |");
        for &b in chunk {
            out.push(if (0x20..0x7F).contains(&b) {
                b as char
            } else {
                '.'
            });
        }
        out.push_str("|\n");
    }
    out
}

/// Compact lowercase hex of `bytes` (no separators) — the form the
/// replay instructions quote for pinning a counterexample as a corpus
/// regression entry.
pub fn to_hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// Parse the corpus file format: hex digit pairs separated by
/// arbitrary whitespace, with `#` starting a comment that runs to the
/// end of the line.
pub fn from_hex(text: &str) -> Result<Vec<u8>, String> {
    let mut nibbles: Vec<u8> = Vec::new();
    for line in text.lines() {
        let line = line.split('#').next().unwrap_or("");
        for c in line.chars() {
            if c.is_whitespace() {
                continue;
            }
            let v = c
                .to_digit(16)
                .ok_or_else(|| format!("non-hex character {c:?}"))? as u8;
            nibbles.push(v);
        }
    }
    if !nibbles.len().is_multiple_of(2) {
        return Err("odd number of hex digits".to_string());
    }
    Ok(nibbles.chunks(2).map(|p| (p[0] << 4) | p[1]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_roundtrip_with_comments_and_whitespace() {
        let bytes: Vec<u8> = (0..=255).collect();
        assert_eq!(from_hex(&to_hex(&bytes)).unwrap(), bytes);
        let file = "# a comment\n00 ff\n  1e # trailing comment\n2B\n";
        assert_eq!(from_hex(file).unwrap(), vec![0x00, 0xFF, 0x1E, 0x2B]);
        assert!(from_hex("0").is_err());
        assert!(from_hex("zz").is_err());
    }

    #[test]
    fn dump_shows_offsets_hex_and_ascii() {
        let d = dump(b"doc-fuzz differential harness!!!");
        assert!(d.contains("0000"), "first row offset");
        assert!(d.contains("0010"), "second row offset");
        assert!(d.contains("64 6f 63"), "hex bytes");
        assert!(d.contains("|doc-fuzz"), "ascii gutter");
        assert!(dump(&[]).contains("empty"));
    }
}
