//! Crypto substrate: every AES backend against the scalar reference,
//! batched sealing against sequential, in-place open against the
//! copying open, both SHA-256 compression loops, and a full OSCORE
//! protect/unprotect round trip.
//!
//! Unlike the parser families, the input is not a wire message — it is
//! an entropy pool the target derives keys, nonces, AAD and plaintext
//! from. Each implementation pair must then agree *byte-exactly*:
//! the bitsliced and AES-NI backends must seal identically to the
//! scalar reference ([`Backend::Reference`]), `seal_suffix_batch` must
//! match per-packet `seal_suffix_in_place`, a tampered ciphertext must
//! fail on every backend and leave the in-place buffer restored, and
//! the SHA-NI and portable SHA-256 schedules must hash identically.
//! Any disagreement is a divergence the engine shrinks, so every CI
//! run cross-checks the vector paths against the reference on mutated
//! inputs — not just on the fixed known-answer vectors.

use doc_crypto::backend::Backend;
use doc_crypto::ccm::{AesCcm, SealRequest};
use doc_crypto::sha256::{sha256, sha256_portable};
use doc_oscore::context::SecurityContext;
use doc_oscore::protect::OscoreEndpoint;

use crate::target::{DifferentialTarget, Outcome};

/// Cap on the derived plaintext so mutated giants stay cheap (well
/// under CCM's `L = 2` length limit either way).
const MAX_PLAINTEXT: usize = 256;

pub struct CryptoTarget;

impl DifferentialTarget for CryptoTarget {
    fn name(&self) -> &'static str {
        "crypto"
    }

    fn seeds(&self) -> Vec<Vec<u8>> {
        // Entropy pools, not wire messages: the shortest accepted
        // input, a block-aligned pattern, a typical-DNS-sized pool and
        // a long one that exercises the batching split.
        vec![
            vec![0x00, 0x01, 0x02, 0x03],
            (0..16u8).collect(),
            (0..64u8).map(|i| i.wrapping_mul(37)).collect(),
            (0..200u8).map(|i| i ^ 0x5A).collect(),
        ]
    }

    fn check(&self, input: &[u8]) -> Result<Outcome, String> {
        if input.len() < 4 {
            return Ok(Outcome::Rejected);
        }
        let mut key = [0u8; 16];
        for (i, k) in key.iter_mut().enumerate() {
            *k = input[i % input.len()] ^ (i as u8).wrapping_mul(0x9E);
        }
        let mut nonce = [0u8; 13];
        for (i, n) in nonce.iter_mut().enumerate() {
            *n = input[input.len() - 1 - (i % input.len())] ^ (i as u8);
        }
        let aad = &input[..input.len().min(16)];
        let plaintext = &input[..input.len().min(MAX_PLAINTEXT)];

        // Every backend must seal byte-identically to the scalar
        // reference, and open what the reference sealed.
        let reference = AesCcm::with_backend(&key, 8, 2, Backend::Reference)
            .map_err(|e| format!("reference AesCcm construction failed: {e:?}"))?;
        let golden = reference
            .seal(&nonce, aad, plaintext)
            .map_err(|e| format!("reference seal failed: {e:?}"))?;
        for backend in Backend::available() {
            let ccm = AesCcm::with_backend(&key, 8, 2, backend)
                .map_err(|e| format!("{}: AesCcm construction failed: {e:?}", backend.label()))?;
            let sealed = ccm
                .seal(&nonce, aad, plaintext)
                .map_err(|e| format!("{}: seal failed: {e:?}", backend.label()))?;
            if sealed != golden {
                return Err(format!(
                    "{} seal diverges from the reference backend",
                    backend.label()
                ));
            }
            // In-place open == copying open, and the round trip holds.
            let opened = ccm.open(&nonce, aad, &golden).map_err(|e| {
                format!("{}: open of reference seal failed: {e:?}", backend.label())
            })?;
            if opened != plaintext {
                return Err(format!("{}: open round trip corrupted", backend.label()));
            }
            let mut buf = golden.clone();
            ccm.open_in_place(&nonce, aad, &mut buf)
                .map_err(|e| format!("{}: open_in_place rejected: {e:?}", backend.label()))?;
            if buf != plaintext {
                return Err(format!(
                    "{}: open_in_place disagrees with open",
                    backend.label()
                ));
            }
            // A tampered ciphertext must fail and restore the buffer.
            let mut tampered = golden.clone();
            let flip = input[1] as usize % tampered.len();
            tampered[flip] ^= 0x80;
            let before = tampered.clone();
            if ccm
                .open_suffix_in_place(&nonce, aad, &mut tampered, 0)
                .is_ok()
            {
                return Err(format!(
                    "{}: tampered ciphertext authenticated",
                    backend.label()
                ));
            }
            if tampered != before {
                return Err(format!(
                    "{}: failed open did not restore the buffer",
                    backend.label()
                ));
            }

            // Batched sealing must match per-packet sealing: split the
            // plaintext into chunks (some possibly empty) and compare.
            let pieces = 2 + (input[2] as usize % 3);
            let chunk = plaintext.len() / pieces + 1;
            let chunks: Vec<&[u8]> = plaintext.chunks(chunk).collect();
            let mut nonces = Vec::with_capacity(chunks.len());
            for (i, _) in chunks.iter().enumerate() {
                let mut n = nonce;
                n[0] = n[0].wrapping_add(i as u8 + 1);
                nonces.push(n);
            }
            let expect: Vec<Vec<u8>> = chunks
                .iter()
                .zip(nonces.iter())
                .map(|(c, n)| {
                    let mut buf = c.to_vec();
                    ccm.seal_suffix_in_place(n, aad, &mut buf, 0)
                        .map(|()| buf)
                        .map_err(|e| format!("{}: chunk seal failed: {e:?}", backend.label()))
                })
                .collect::<Result<_, _>>()?;
            let mut bufs: Vec<Vec<u8>> = chunks.iter().map(|c| c.to_vec()).collect();
            let mut reqs: Vec<SealRequest<'_>> = bufs
                .iter_mut()
                .zip(nonces.iter())
                .map(|(buf, n)| SealRequest {
                    nonce: n,
                    aad,
                    buf,
                    start: 0,
                })
                .collect();
            ccm.seal_suffix_batch(&mut reqs)
                .map_err(|e| format!("{}: seal_suffix_batch failed: {e:?}", backend.label()))?;
            if bufs != expect {
                return Err(format!(
                    "{}: seal_suffix_batch diverges from sequential sealing",
                    backend.label()
                ));
            }
        }

        // Both SHA-256 schedules over the raw input.
        if sha256(input) != sha256_portable(input) {
            return Err("sha256 dispatched/portable digests diverge".into());
        }

        // OSCORE protect/unprotect round trip over the derived pool:
        // client protects a FETCH carrying the plaintext, the server
        // must recover it bit-exactly through the in-place open path.
        let client_ctx = SecurityContext::derive(&key, aad, &[0x01], &[0x02]);
        let server_ctx = SecurityContext::derive(&key, aad, &[0x02], &[0x01]);
        let mut client = OscoreEndpoint::new(client_ctx, false);
        let mut server = OscoreEndpoint::new(server_ctx, false);
        let msg = doc_coap::CoapMessage::request(
            doc_coap::Code::FETCH,
            doc_coap::MsgType::Con,
            u16::from(input[0]) << 8 | u16::from(input[1]),
            vec![input[2]],
        )
        .with_payload(plaintext.to_vec());
        let (outer, binding) = client
            .protect_request(&msg)
            .map_err(|e| format!("oscore protect_request failed: {e:?}"))?;
        let (inner, unbinding) = server
            .unprotect_request(&outer)
            .map_err(|e| format!("oscore unprotect of own protect failed: {e:?}"))?;
        if inner.payload != plaintext {
            return Err("oscore round trip corrupted the payload".into());
        }
        if binding.kid != unbinding.kid || binding.piv != unbinding.piv {
            return Err("oscore request bindings disagree across the round trip".into());
        }
        Ok(Outcome::Accepted)
    }
}
