//! DTLS 1.2 records: owned [`Record::decode`]/[`Record::decode_all`]
//! vs zero-copy [`RecordView::decode`]/[`RecordView::iter`].
//!
//! Both decoders share one error enum and validate fields in the same
//! order, so rejection must produce *identical* errors. The datagram
//! walk is compared record-by-record: `decode_all` and the lazy view
//! iterator must agree on every record, and on where (and how) a
//! malformed datagram fails.
//!
//! Re-encoding is value-stable but deliberately not byte-stable: both
//! decoders accept the `{254,255}` protocol version initial
//! ClientHellos use, while the encoder always writes `{254,253}`
//! (DTLS 1.2) — the version is normalized away, not stored.

use doc_dtls::record::{ContentType, Record, RecordView};

use crate::target::{DifferentialTarget, Outcome};

pub struct DtlsTarget;

impl DifferentialTarget for DtlsTarget {
    fn name(&self) -> &'static str {
        "dtls"
    }

    fn seeds(&self) -> Vec<Vec<u8>> {
        let hello = Record {
            ctype: ContentType::Handshake,
            epoch: 0,
            seq: 0,
            payload: vec![0x01; 60],
        };
        let ccs = Record {
            ctype: ContentType::ChangeCipherSpec,
            epoch: 0,
            seq: 5,
            payload: vec![0x01],
        };
        let app = Record {
            ctype: ContentType::ApplicationData,
            epoch: 1,
            seq: 1,
            payload: (0..40).collect(),
        };
        let alert = Record {
            ctype: ContentType::Alert,
            epoch: 1,
            seq: 2,
            payload: vec![0x02, 0x28],
        };
        // A handshake flight: several records in one datagram.
        let mut flight = Vec::new();
        ccs.encode_into(&mut flight);
        app.encode_into(&mut flight);
        alert.encode_into(&mut flight);
        // The {254,255} version variant an initial ClientHello carries.
        let mut old_version = hello.encode();
        old_version[2] = 255;
        vec![hello.encode(), app.encode(), flight, old_version]
    }

    fn check(&self, input: &[u8]) -> Result<Outcome, String> {
        // Single-record decode from the front of the datagram.
        match (Record::decode(input), RecordView::decode(input)) {
            (Err(a), Err(b)) => {
                if a != b {
                    return Err(format!(
                        "front record: both reject, different errors: owned {a:?} vs view {b:?}"
                    ));
                }
            }
            (Ok(_), Err(e)) => {
                return Err(format!("front record: owned accepted, view rejected {e:?}"))
            }
            (Err(e), Ok(_)) => {
                return Err(format!("front record: view accepted, owned rejected {e:?}"))
            }
            (Ok((rec, used_o)), Ok((view, used_v))) => {
                if used_o != used_v {
                    return Err(format!(
                        "front record: consumed lengths differ: owned {used_o} vs view {used_v}"
                    ));
                }
                if view.to_owned() != rec {
                    return Err(format!(
                        "front record parses disagree: owned {rec:?} vs view {:?}",
                        view.to_owned()
                    ));
                }
            }
        }

        // Whole-datagram walk: eager Vec vs lazy iterator.
        let owned_all = Record::decode_all(input);
        let mut via_iter = Vec::new();
        let mut iter_err = None;
        for item in RecordView::iter(input) {
            match item {
                Ok(v) => via_iter.push(v.to_owned()),
                Err(e) => {
                    iter_err = Some(e);
                    break;
                }
            }
        }
        let records = match (owned_all, iter_err) {
            (Ok(recs), None) => {
                if recs != via_iter {
                    return Err(format!(
                        "datagram walks disagree: owned {recs:?} vs view {via_iter:?}"
                    ));
                }
                recs
            }
            (Ok(_), Some(e)) => {
                return Err(format!("decode_all accepted, view iterator failed {e:?}"))
            }
            (Err(e), None) => return Err(format!("view iterator clean, decode_all failed {e:?}")),
            (Err(a), Some(b)) => {
                if a != b {
                    return Err(format!(
                        "datagram walks reject differently: owned {a:?} vs view {b:?}"
                    ));
                }
                return Ok(Outcome::Rejected);
            }
        };

        // Value-stable re-encode of the whole flight, through both
        // decoders again.
        let mut wire = Vec::new();
        for rec in &records {
            rec.encode_into(&mut wire);
        }
        let back = Record::decode_all(&wire)
            .map_err(|e| format!("re-encoded flight rejected by decode_all: {e:?}"))?;
        if back != records {
            return Err("re-encode not value-stable (owned decode)".to_string());
        }
        let vback: Result<Vec<Record>, _> = RecordView::iter(&wire)
            .map(|r| r.map(|v| v.to_owned()))
            .collect();
        match vback {
            Ok(v) if v == records => Ok(Outcome::Accepted),
            Ok(_) => Err("re-encode not value-stable (view)".to_string()),
            Err(e) => Err(format!(
                "re-encoded flight rejected by view iterator: {e:?}"
            )),
        }
    }
}
