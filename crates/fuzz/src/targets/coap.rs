//! CoAP: owned [`CoapMessage::decode`] vs zero-copy [`CoapView::parse`].
//!
//! The CoAP pair is held to the strictest contract of the five
//! families: the two decoders share one error enum and walk the
//! message in the same order, so this target requires *identical
//! errors* on rejection, not just agreement that the input is bad —
//! any drift in option-header validation between the owned and view
//! parsers surfaces as a divergence even when both reject.
//!
//! Re-encoding is value-stable rather than byte-stable: option deltas
//! and lengths have redundant extended encodings (13/14 nibbles), so a
//! mutant may carry a non-minimal form the encoder normalizes.

use doc_coap::opt::CoapOption;
use doc_coap::OptionNumber;
use doc_coap::{CoapMessage, CoapView, Code, MsgType};

use crate::target::{DifferentialTarget, Outcome};

pub struct CoapTarget;

impl DifferentialTarget for CoapTarget {
    fn name(&self) -> &'static str {
        "coap"
    }

    fn seeds(&self) -> Vec<Vec<u8>> {
        // The DoC message shapes from the paper: FETCH request carrying
        // a DNS query, 2.05 Content response carrying the answer, plus
        // the empty-ACK/RST signalling messages.
        let dns_query = doc_dns::Message::query(
            0,
            doc_dns::Name::parse("sensor.iot.example.com").expect("valid name"),
            doc_dns::RecordType::Aaaa,
        )
        .encode();
        let fetch = CoapMessage::request(Code::FETCH, MsgType::Con, 0x1234, vec![0xC0, 0x01])
            .with_option(CoapOption::new(OptionNumber::URI_PATH, b"dns".to_vec()))
            .with_option(CoapOption::uint(OptionNumber::CONTENT_FORMAT, 553))
            .with_option(CoapOption::uint(OptionNumber::ACCEPT, 553))
            .with_payload(dns_query.clone());
        let get = CoapMessage::request(Code::GET, MsgType::Non, 0x0001, vec![0x01]);
        let response = CoapMessage::ack_reply(0x1234, vec![0xC0, 0x01], Code::CONTENT)
            .with_option(CoapOption::uint(OptionNumber::CONTENT_FORMAT, 553))
            .with_option(CoapOption::uint(OptionNumber::MAX_AGE, 54))
            .with_payload(dns_query);
        vec![
            fetch.encode(),
            get.encode(),
            response.encode(),
            CoapMessage::empty_ack(0x1234).encode(),
            CoapMessage::reset(0x9999).encode(),
        ]
    }

    fn check(&self, input: &[u8]) -> Result<Outcome, String> {
        let owned = CoapMessage::decode(input);
        let view = CoapView::parse(input);
        let msg = match (owned, view) {
            (Err(a), Err(b)) => {
                if a != b {
                    return Err(format!(
                        "both reject but with different errors: owned {a:?} vs view {b:?}"
                    ));
                }
                return Ok(Outcome::Rejected);
            }
            (Ok(_), Err(e)) => {
                return Err(format!("owned decode accepted, view rejected with {e:?}"))
            }
            (Err(e), Ok(_)) => {
                return Err(format!("view accepted, owned decode rejected with {e:?}"))
            }
            (Ok(msg), Ok(view)) => {
                let via_view = view.to_owned();
                if via_view != msg {
                    return Err(format!(
                        "accepted parses disagree: owned {msg:?} vs view {via_view:?}"
                    ));
                }
                msg
            }
        };
        let wire = msg.encode();
        let back = CoapMessage::decode(&wire)
            .map_err(|e| format!("re-encode rejected by owned decode: {e:?}"))?;
        if back != msg {
            return Err("re-encode not value-stable (owned decode)".to_string());
        }
        let vback =
            CoapView::parse(&wire).map_err(|e| format!("re-encode rejected by view: {e:?}"))?;
        if vback.to_owned() != msg {
            return Err("re-encode not value-stable (view)".to_string());
        }
        Ok(Outcome::Accepted)
    }
}
