//! The built-in parser families under differential test.

pub mod coap;
pub mod crypto;
pub mod dns;
pub mod dtls;
pub mod json;
pub mod quic;
pub mod sixlowpan;

use crate::target::DifferentialTarget;

/// Every built-in target, in the order the gate runs them.
pub fn all() -> Vec<Box<dyn DifferentialTarget>> {
    vec![
        Box::new(dns::DnsTarget),
        Box::new(coap::CoapTarget),
        Box::new(dtls::DtlsTarget),
        Box::new(quic::QuicTarget),
        Box::new(json::JsonTarget),
        Box::new(sixlowpan::SixlowpanTarget),
        Box::new(crypto::CryptoTarget),
    ]
}

/// Look up a target by its `--target` name.
pub fn by_name(name: &str) -> Option<Box<dyn DifferentialTarget>> {
    all().into_iter().find(|t| t.name() == name)
}

#[cfg(test)]
mod tests {
    #[test]
    fn at_least_seven_families_with_unique_names_and_seeds() {
        let targets = super::all();
        assert!(
            targets.len() >= 7,
            "the harness covers >= 7 differential families"
        );
        let mut names: Vec<_> = targets.iter().map(|t| t.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), targets.len(), "duplicate target name");
        for t in &targets {
            assert!(!t.seeds().is_empty(), "{}: no seeds", t.name());
            assert_eq!(Some(t.name()), super::by_name(t.name()).map(|t| t.name()));
        }
    }

    /// Every built-in seed must check clean — a seed that diverges
    /// would poison every campaign at replay time.
    #[test]
    fn all_seeds_check_clean_and_accepted() {
        for t in super::all() {
            for (i, seed) in t.seeds().iter().enumerate() {
                match t.check(seed) {
                    Ok(crate::target::Outcome::Accepted) => {}
                    Ok(crate::target::Outcome::Rejected) => {
                        panic!(
                            "{} seed {i} rejected:\n{}",
                            t.name(),
                            crate::hex::dump(seed)
                        )
                    }
                    Err(e) => panic!("{} seed {i} diverges: {e}", t.name()),
                }
            }
        }
    }
}
