//! QUIC-lite codecs: varints, frames, and the three DNS stream
//! framings (DoQ, DoH-lite, DoT-lite).
//!
//! This family has no owned/view pair; the differential here is
//! *encoder vs decoder* and *eager vs incremental*:
//!
//! * a decoded varint must re-encode canonically and decode back to
//!   the same value in no more bytes than the wire form (non-canonical
//!   encodings are accepted but never produced);
//! * a decoded frame sequence must survive re-encode → re-decode
//!   (frames normalize redundant wire choices, e.g. an OFF bit with
//!   offset 0, so the check is value-level);
//! * DoQ framing is fully canonical, so `encode_doq(decode_doq(x))`
//!   must reproduce `x` *byte-exactly*;
//! * the incremental [`DotReassembler`] must split a pipelined stream
//!   into exactly the messages whole-buffer reassembly produces, for
//!   any chunking, consuming exactly the framed prefix.

use doc_quic::doq::{
    decode_doh, decode_doq, encode_doh_request, encode_doh_response, encode_doq, encode_dot,
    DotReassembler,
};
use doc_quic::frame::Frame;
use doc_quic::varint;

use crate::target::{DifferentialTarget, Outcome};

pub struct QuicTarget;

impl DifferentialTarget for QuicTarget {
    fn name(&self) -> &'static str {
        "quic"
    }

    fn seeds(&self) -> Vec<Vec<u8>> {
        let dns = doc_dns::Message::query(
            0,
            doc_dns::Name::parse("sensor.iot.example.com").expect("valid name"),
            doc_dns::RecordType::Aaaa,
        )
        .encode();
        let mut frames = Vec::new();
        for f in [
            Frame::Ping,
            Frame::Ack {
                largest: 4242,
                first_range: 7,
            },
            Frame::Crypto {
                offset: 0,
                data: vec![0x17; 24],
            },
            Frame::Stream {
                id: 0,
                offset: 64,
                fin: true,
                data: dns.clone(),
            },
            Frame::Padding,
        ] {
            f.encode_into(&mut frames);
        }
        // A pipelined DoT stream of two messages.
        let mut dot = encode_dot(&dns);
        dot.extend_from_slice(&encode_dot(&[0xAB; 30]));
        vec![
            encode_doq(&dns),
            encode_doh_request(&dns),
            encode_doh_response(&dns),
            dot,
            frames,
        ]
    }

    fn check(&self, input: &[u8]) -> Result<Outcome, String> {
        let mut accepted = false;

        // Varint: decode → canonical re-encode → decode.
        if let Ok((v, used)) = varint::decode(input) {
            let mut canonical = Vec::new();
            varint::encode_into(v, &mut canonical);
            if canonical.len() > used {
                return Err(format!(
                    "varint {v} decoded from {used} bytes but re-encodes to {} — \
                     canonical form longer than an accepted wire form",
                    canonical.len()
                ));
            }
            match varint::decode(&canonical) {
                Ok((back, n)) if back == v && n == canonical.len() => {}
                other => {
                    return Err(format!(
                        "varint {v} canonical re-encode decodes to {other:?}"
                    ))
                }
            }
        }

        // Frames: decode_all → re-encode → decode_all, value-stable.
        if let Ok(frames) = Frame::decode_all(input) {
            if !input.is_empty() {
                accepted = true;
            }
            let mut wire = Vec::new();
            for f in &frames {
                f.encode_into(&mut wire);
            }
            match Frame::decode_all(&wire) {
                Ok(back) if back == frames => {}
                Ok(back) => {
                    return Err(format!(
                        "frame re-encode not value-stable: {frames:?} vs {back:?}"
                    ))
                }
                Err(e) => return Err(format!("re-encoded frames rejected: {e:?}")),
            }
        }

        // DoQ: fully canonical framing, byte-exact roundtrip.
        if let Ok(body) = decode_doq(input) {
            accepted = true;
            let reframed = encode_doq(body);
            if reframed != input {
                return Err(format!(
                    "DoQ framing not byte-canonical: {}-byte body reframes to {} bytes",
                    body.len(),
                    reframed.len()
                ));
            }
        }

        // DoH-lite: the carried DNS bytes survive both framings.
        if let Ok(body) = decode_doh(input) {
            accepted = true;
            for (label, framed) in [
                ("request", encode_doh_request(body)),
                ("response", encode_doh_response(body)),
            ] {
                match decode_doh(&framed) {
                    Ok(back) if back == body => {}
                    other => {
                        return Err(format!("DoH {label} reframing loses the body: {other:?}"))
                    }
                }
            }
        }

        // DoT-lite: incremental chunked reassembly vs one-shot, plus
        // exact accounting of consumed vs pending bytes.
        let mut whole = DotReassembler::new();
        let one_shot = whole.push(input);
        let mut chunked = DotReassembler::new();
        let mut incremental = Vec::new();
        for chunk in input.chunks(7) {
            incremental.extend(chunked.push(chunk));
        }
        if one_shot != incremental || whole.pending() != chunked.pending() {
            return Err(format!(
                "DoT reassembly depends on chunking: {} msgs/{} pending vs {} msgs/{} pending",
                one_shot.len(),
                whole.pending(),
                incremental.len(),
                chunked.pending()
            ));
        }
        let consumed: Vec<u8> = one_shot.iter().flat_map(|m| encode_dot(m)).collect();
        if whole.pending() > input.len() || consumed != input[..input.len() - whole.pending()] {
            return Err(
                "DoT reassembler consumed bytes that do not re-frame to the input".to_string(),
            );
        }
        if !one_shot.is_empty() && whole.pending() == 0 {
            accepted = true;
        }

        Ok(if accepted {
            Outcome::Accepted
        } else {
            Outcome::Rejected
        })
    }
}
