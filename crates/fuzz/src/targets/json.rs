//! The bench-gate JSON codec: parser vs serializer.
//!
//! The CI gate (`crates/bench/src/gate.rs`) trusts this parser with
//! machine-generated artifacts, so its differential pair is the
//! serializer added alongside it: every accepted document must
//! re-serialize to a form the parser accepts, parse back to the same
//! value, and reach a *fixed point* (serializing the re-parsed value
//! reproduces the same bytes — the compact form is canonical). The
//! gate's structural reader `parse_proxy` is run on every accepted
//! document as a must-not-panic check.
//!
//! This pairing already paid for itself while the harness was built:
//! the parser accepted `1e999` as `f64::INFINITY`, which the
//! serializer cannot represent — a value smuggled through `Num` that
//! no artifact check downstream expected. The parser now rejects
//! non-finite numbers, and the corpus pins that input.

use doc_bench::gate::parse_proxy;
use doc_bench::json;

use crate::target::{DifferentialTarget, Outcome};

pub struct JsonTarget;

impl DifferentialTarget for JsonTarget {
    fn name(&self) -> &'static str {
        "json"
    }

    fn seeds(&self) -> Vec<Vec<u8>> {
        [
            // The bench-gate artifact shape.
            r#"{"schema": "doc-bench/throughput-v1", "rows": [
                {"transport": "coap", "workers": 4, "rps": 52143.5, "p99_us": 813},
                {"transport": "doq", "workers": 4, "rps": 48217.0, "p99_us": 922}
            ], "meta": {"commit": "abc123", "warmup": true}}"#,
            // Scalars and corner values.
            "null",
            "[true, false, null, 0, -1, 1.5, 1e3, 0.25, \"x\"]",
            // Escapes and unicode.
            r#"{"s": "tab\t nl\n quote\" back\\ ué"}"#,
            // Deep-ish nesting (well under MAX_DEPTH).
            "[[[[[[[[[[1]]]]]]]]]]",
            "{}",
        ]
        .iter()
        .map(|s| s.as_bytes().to_vec())
        .collect()
    }

    fn check(&self, input: &[u8]) -> Result<Outcome, String> {
        // The parser's domain is strings; non-UTF-8 inputs are outside
        // it (the gate reads artifacts as text), not a divergence.
        let Ok(text) = std::str::from_utf8(input) else {
            return Ok(Outcome::Rejected);
        };
        let value = match json::parse(text) {
            Ok(v) => v,
            Err(_) => return Ok(Outcome::Rejected),
        };
        let compact = value.encode();
        let back = json::parse(&compact).map_err(|e| {
            format!("serialized form rejected by the parser: {e} (serialized: {compact:?})")
        })?;
        if back != value {
            return Err(format!(
                "value not preserved through serialize/parse: {value:?} vs {back:?}"
            ));
        }
        let fixed_point = back.encode();
        if fixed_point != compact {
            return Err(format!(
                "compact form is not a fixed point: {compact:?} vs {fixed_point:?}"
            ));
        }
        // The gate's structural reader must classify, never panic.
        let _ = parse_proxy(&value);
        Ok(Outcome::Accepted)
    }
}
