//! DNS: owned [`Message::decode`] vs zero-copy [`MessageView::parse`].
//!
//! The two decoders were written to accept and reject exactly the same
//! byte strings (the view's doc comment promises it); this target holds
//! them to it on every mutated input. Error *kinds* are allowed to
//! differ — the two walks visit the message in different orders, so a
//! doubly-broken input can legitimately trip a different first error —
//! but acceptance must agree, accepted parses must be semantically
//! identical after `to_owned()`, and re-encoding (compressed and
//! uncompressed) must be value-stable through both decoders.
//!
//! Re-encoding is checked at the *value* level, not byte-for-byte:
//! decoding lowercases names and drops RDATA trailing junk that some
//! name-typed records tolerate, so the wire form is not canonical even
//! though the decoded value is.

use std::net::{Ipv4Addr, Ipv6Addr};

use doc_datasets::records::TrafficMix;
use doc_datasets::{generate_corpus, Dataset};
use doc_dns::{Message, MessageView, Name, Rcode, Record, RecordClass, RecordData, RecordType};

use crate::target::{DifferentialTarget, Outcome};

pub struct DnsTarget;

impl DifferentialTarget for DnsTarget {
    fn name(&self) -> &'static str {
        "dns"
    }

    fn seeds(&self) -> Vec<Vec<u8>> {
        let mut seeds = Vec::new();
        // Queries and responses over names drawn from the paper's IoT
        // name-length model — realistic label structure, including the
        // long mDNS/UUID tail.
        for (i, entry) in generate_corpus(Dataset::IotTotal, TrafficMix::IotWithMdns, 6, 0xD0C)
            .iter()
            .enumerate()
        {
            let query = Message::query(0x1000 + i as u16, entry.name.clone(), entry.rtype);
            let answers = vec![
                Record::a(entry.name.clone(), 300, Ipv4Addr::new(192, 0, 2, i as u8)),
                Record::aaaa(
                    entry.name.clone(),
                    300,
                    Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, i as u16),
                ),
            ];
            let response = Message::response(&query, Rcode::NoError, answers);
            seeds.push(query.encode());
            seeds.push(response.encode());
            seeds.push(response.encode_uncompressed());
        }
        // An mDNS-style service response: PTR + SRV + TXT share name
        // suffixes, so the compressed encoding exercises pointer chains.
        let service = Name::parse("_coap._udp.local").expect("valid name");
        let instance = Name::parse("sensor-1a2b._coap._udp.local").expect("valid name");
        let host = Name::parse("sensor-1a2b.local").expect("valid name");
        let query = Message::query(0, service.clone(), RecordType::Ptr);
        let mut response = Message::response(
            &query,
            Rcode::NoError,
            vec![Record {
                name: service,
                rtype: RecordType::Ptr,
                rclass: RecordClass::In,
                ttl: 120,
                data: RecordData::Ptr(instance.clone()),
            }],
        );
        response.additional = vec![
            Record {
                name: instance.clone(),
                rtype: RecordType::Srv,
                rclass: RecordClass::In,
                ttl: 120,
                data: RecordData::Srv {
                    priority: 0,
                    weight: 0,
                    port: 5683,
                    target: host.clone(),
                },
            },
            Record {
                name: instance,
                rtype: RecordType::Txt,
                rclass: RecordClass::In,
                ttl: 120,
                data: RecordData::Txt(vec![b"path=/dns".to_vec(), b"if=core.dns".to_vec()]),
            },
            Record::a(host, 120, Ipv4Addr::new(192, 0, 2, 99)),
        ];
        seeds.push(response.encode());
        seeds
    }

    fn check(&self, input: &[u8]) -> Result<Outcome, String> {
        let owned = Message::decode(input);
        let view = MessageView::parse(input);
        let msg = match (owned, view) {
            (Err(_), Err(_)) => return Ok(Outcome::Rejected),
            (Ok(_), Err(e)) => {
                return Err(format!("owned decode accepted, view rejected with {e:?}"))
            }
            (Err(e), Ok(_)) => {
                return Err(format!("view accepted, owned decode rejected with {e:?}"))
            }
            (Ok(msg), Ok(view)) => {
                let via_view = view.to_owned();
                if via_view != msg {
                    return Err(format!(
                        "accepted parses disagree: owned {msg:?} vs view {via_view:?}"
                    ));
                }
                if view.min_ttl() != msg.min_ttl() {
                    return Err(format!(
                        "min_ttl disagrees: owned {:?} vs view {:?}",
                        msg.min_ttl(),
                        view.min_ttl()
                    ));
                }
                msg
            }
        };
        for (label, wire) in [
            ("compressed", msg.encode()),
            ("uncompressed", msg.encode_uncompressed()),
        ] {
            let back = Message::decode(&wire)
                .map_err(|e| format!("{label} re-encode rejected by owned decode: {e:?}"))?;
            if back != msg {
                return Err(format!("{label} re-encode not value-stable (owned decode)"));
            }
            let vback = MessageView::parse(&wire)
                .map_err(|e| format!("{label} re-encode rejected by view: {e:?}"))?;
            if vback.to_owned() != msg {
                return Err(format!("{label} re-encode not value-stable (view)"));
            }
        }
        Ok(Outcome::Accepted)
    }
}
