//! 6LoWPAN adaptation layer: fragment headers, IPHC compression, and
//! the fragment/reassemble pipeline cross-checked against each other.
//!
//! Three implementations of "move a datagram over 802.15.4 frames"
//! must agree:
//!
//! * [`FragmentHeader::decode`] vs [`FragmentHeader::encode`] —
//!   byte-exact roundtrip (every header bit is significant).
//! * [`CompressedIpUdp::decode`] vs [`CompressedIpUdp::encode`] —
//!   value-stable roundtrip only: the decoder tolerates TF/NH bits the
//!   encoder normalizes, so bytes may differ but a re-decode must
//!   yield the same header and payload.
//! * [`Fragmenter`] vs [`Reassembler`] — every fragmentation of an
//!   input-derived datagram must respect the MTU and reassemble to the
//!   original, regardless of arrival order or duplication.

use doc_sixlowpan::frag::{FragmentHeader, Fragmenter, Reassembler};
use doc_sixlowpan::iphc::CompressedIpUdp;

use crate::target::{DifferentialTarget, Outcome};

pub struct SixlowpanTarget;

/// Run one arrival order through a fresh reassembler.
fn reassemble(frames: &[Vec<u8>], label: &str) -> Result<Vec<u8>, String> {
    let mut reasm = Reassembler::new();
    let mut done = None;
    for f in frames {
        match reasm.push(f) {
            Ok(Some(d)) => done = Some(d),
            Ok(None) => {}
            Err(e) => return Err(format!("{label}: reassembler rejected own fragment: {e:?}")),
        }
    }
    done.ok_or_else(|| format!("{label}: all fragments pushed, no datagram completed"))
}

impl DifferentialTarget for SixlowpanTarget {
    fn name(&self) -> &'static str {
        "sixlowpan"
    }

    fn seeds(&self) -> Vec<Vec<u8>> {
        let mut frag1 = Vec::new();
        FragmentHeader {
            datagram_size: 300,
            tag: 0x0C0A,
            offset_units: 0,
            is_first: true,
        }
        .encode(&mut frag1);
        let mut fragn = Vec::new();
        FragmentHeader {
            datagram_size: 300,
            tag: 0x0C0A,
            offset_units: 12,
            is_first: false,
        }
        .encode(&mut fragn);
        let header = CompressedIpUdp {
            hop_limit: 64,
            src_iid: 0x0212_4B00_0001_0001,
            dst_iid: 0x0212_4B00_0001_0002,
            rpl_instance: 0,
            sender_rank: 256,
            src_port: 5683,
            dst_port: 5683,
            checksum: 0,
        };
        // A small DoC query fits one frame; the 80-byte payload forces
        // the pipeline stage through real FRAG1/FRAGN fragmentation.
        vec![
            frag1,
            fragn,
            header.encode(&[0x48, 0x05, 0x01, 0x02]),
            header.encode(&[0xAB; 80]),
        ]
    }

    fn check(&self, input: &[u8]) -> Result<Outcome, String> {
        // Fragment header: byte-exact roundtrip.
        let frag_ok = match FragmentHeader::decode(input) {
            Ok((hdr, hlen)) => {
                let mut back = Vec::new();
                hdr.encode(&mut back);
                if back.len() != hlen {
                    return Err(format!(
                        "fragment header length changed on re-encode: {hlen} -> {}",
                        back.len()
                    ));
                }
                if input.get(..hlen) != Some(back.as_slice()) {
                    return Err(format!(
                        "fragment header not byte-stable: {hdr:?} re-encodes differently"
                    ));
                }
                true
            }
            Err(_) => false,
        };

        // IPHC: value-stable roundtrip (header and payload survive).
        let iphc_ok = match CompressedIpUdp::decode(input) {
            Ok((hdr, payload)) => {
                let wire = hdr.encode(payload);
                match CompressedIpUdp::decode(&wire) {
                    Ok((hdr2, payload2)) => {
                        if hdr2 != hdr || payload2 != payload {
                            return Err(format!(
                                "IPHC not value-stable: {hdr:?} -> {hdr2:?} \
                                 (payload {} -> {} bytes)",
                                payload.len(),
                                payload2.len()
                            ));
                        }
                        true
                    }
                    Err(e) => {
                        return Err(format!("IPHC re-encode of {hdr:?} rejected: {e:?}"));
                    }
                }
            }
            Err(_) => false,
        };

        // Pipeline: an input-derived datagram through fragment →
        // reassemble, under three arrival orders. The datagram starts
        // with an IPHC dispatch, as every real 6LoWPAN datagram does.
        let mtu = 40 + (input.first().copied().unwrap_or(0) as usize % 88);
        let payload = input.get(..input.len().min(1200)).unwrap_or(&[]);
        let header = CompressedIpUdp {
            hop_limit: 255,
            src_iid: 1,
            dst_iid: 2,
            rpl_instance: 0,
            sender_rank: 128,
            src_port: 5683,
            dst_port: 61616,
            checksum: 0xBEEF,
        };
        let datagram = header.encode(payload);
        let frames = Fragmenter::new()
            .fragment(&datagram, mtu)
            .map_err(|e| format!("fragmenting {} bytes at mtu {mtu}: {e:?}", datagram.len()))?;
        for (i, f) in frames.iter().enumerate() {
            if f.len() > mtu {
                return Err(format!(
                    "fragment {i} is {} bytes, exceeds mtu {mtu}",
                    f.len()
                ));
            }
        }
        let in_order = reassemble(&frames, "in-order")?;
        let mut reversed = frames.clone();
        reversed.reverse();
        let rev = reassemble(&reversed, "reversed")?;
        let duplicated: Vec<Vec<u8>> = frames.iter().flat_map(|f| [f.clone(), f.clone()]).collect();
        let dup = reassemble(&duplicated, "duplicated")?;
        if in_order != datagram || rev != datagram || dup != datagram {
            return Err(format!(
                "reassembly diverges from the {}-byte datagram at mtu {mtu} \
                 (in-order {}, reversed {}, duplicated {})",
                datagram.len(),
                in_order.len(),
                rev.len(),
                dup.len()
            ));
        }

        Ok(if frag_ok || iphc_ok {
            Outcome::Accepted
        } else {
            Outcome::Rejected
        })
    }
}
