//! On-disk seed/regression corpus under `tests/corpus/<family>/`.
//!
//! Each family (one per [`crate::target::DifferentialTarget`]) owns a
//! directory of `*.hex` files: hex byte pairs separated by whitespace,
//! `#`-to-end-of-line comments — reviewable in a diff, unlike raw
//! binary blobs. Files come from two sources: seed entries emitted by
//! `fuzz_gate --emit-seeds` (valid messages from the paper's query
//! mixes) and minimized crashers pinned after a divergence was fixed,
//! so a past bug can never recur silently (`tests/corpus_replay.rs`
//! replays every entry in tier-1).

use std::path::PathBuf;

/// Workspace-relative corpus root (`tests/corpus/`).
pub fn corpus_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus")
}

/// Load every `*.hex` entry of `family`, sorted by file name (the
/// order is part of campaign determinism). Returns `(file_name,
/// bytes)` pairs; a malformed file is an error, not a skip — a corpus
/// entry that cannot be replayed is itself a regression.
pub fn load_family(family: &str) -> std::io::Result<Vec<(String, Vec<u8>)>> {
    let dir = corpus_root().join(family);
    let mut entries = Vec::new();
    for entry in std::fs::read_dir(&dir)? {
        let path = entry?.path();
        if path.extension().and_then(|e| e.to_str()) != Some("hex") {
            continue;
        }
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        let text = std::fs::read_to_string(&path)?;
        let bytes = crate::hex::from_hex(&text).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("{}: {e}", path.display()),
            )
        })?;
        entries.push((name, bytes));
    }
    entries.sort();
    Ok(entries)
}

/// Render `bytes` as corpus file content: a `#` comment header, then
/// 16 hex pairs per line.
pub fn render(bytes: &[u8], comment: &str) -> String {
    let mut out = String::new();
    for line in comment.lines() {
        out.push_str("# ");
        out.push_str(line);
        out.push('\n');
    }
    if bytes.is_empty() {
        out.push_str("# (empty input)\n");
    }
    for chunk in bytes.chunks(16) {
        let row: Vec<String> = chunk.iter().map(|b| format!("{b:02x}")).collect();
        out.push_str(&row.join(" "));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parses_back() {
        let bytes: Vec<u8> = (0..40).collect();
        let text = render(&bytes, "two\nlines");
        assert!(text.starts_with("# two\n# lines\n"));
        assert_eq!(crate::hex::from_hex(&text).unwrap(), bytes);
        assert_eq!(crate::hex::from_hex(&render(&[], "empty")).unwrap(), vec![]);
    }
}
