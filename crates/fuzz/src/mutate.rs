//! The structured mutation core.
//!
//! Generic byte fuzzing (bit flips, random overwrites, truncation,
//! splicing) finds shallow rejections quickly but rarely crosses the
//! accept boundary of a length-prefixed binary format. The mutators
//! here therefore also know the *shapes* the workspace's formats use,
//! without knowing the formats themselves:
//!
//! * 2-byte big-endian length fields (DNS counts, DoQ/DoT framing,
//!   DTLS record lengths, CoAP message IDs) — the interesting-u16
//!   mutator writes boundary values *and the actual remaining length*
//!   at a random offset, which forges a consistent length field often
//!   enough to walk deep into nested TLV structures;
//! * DNS compression pointers (`0b11......` + offset) — injected
//!   pointing at random earlier offsets to exercise pointer-chase
//!   validation in both decoder stacks;
//! * QUIC varint length-prefix boundaries (1/2/4/8-byte forms);
//! * CoAP option machinery bytes (`0xDD`/`0xEE` extended deltas,
//!   `0xFF` payload marker) via the interesting-byte table.
//!
//! All randomness flows through the vendored proptest stand-in's
//! [`TestRng`], so a campaign seed fully determines the mutation
//! stream.

use proptest::test_runner::TestRng;

/// Upper bound on mutated input length: large enough for multi-record
/// datagrams and pipelined DoT streams, small enough that a campaign
/// iteration (and shrinking a counterexample) stays cheap.
pub const MAX_INPUT_LEN: usize = 1024;

/// Byte values with structural meaning somewhere in the workspace's
/// formats: zero/all-ones, varint length prefixes (`0x40`, `0x80`,
/// `0xC0`), the DNS compression-pointer tag (`0xC0`), reserved DNS
/// label tags (`0x40`..`0xBF`), CoAP extended option nibbles
/// (`0xDD`, `0xEE`) and the CoAP payload marker (`0xFF`).
const INTERESTING_BYTES: &[u8] = &[
    0x00, 0x01, 0x3F, 0x40, 0x41, 0x7F, 0x80, 0xBF, 0xC0, 0xC1, 0xDD, 0xEE, 0xFE, 0xFF,
];

/// Wire encodings of QUIC varint boundary values (RFC 9000 §16):
/// the largest 1/2-byte values and the smallest 2/4/8-byte values.
const VARINT_BOUNDARIES: &[&[u8]] = &[
    &[0x3F],
    &[0x40, 0x40],
    &[0x7F, 0xFF],
    &[0x80, 0x00, 0x40, 0x00],
    &[0xBF, 0xFF, 0xFF, 0xFF],
    &[0xC0, 0x00, 0x00, 0x00, 0x40, 0x00, 0x00, 0x00],
];

/// Derive a mutated input from `base`, splicing material from `donor`
/// (another corpus entry). Applies 1–3 mutation operations, then caps
/// the result at [`MAX_INPUT_LEN`].
pub fn mutate(base: &[u8], donor: &[u8], rng: &mut TestRng) -> Vec<u8> {
    let mut out = base.to_vec();
    let rounds = 1 + rng.below(3);
    for _ in 0..rounds {
        mutate_once(&mut out, donor, rng);
    }
    out.truncate(MAX_INPUT_LEN);
    out
}

fn mutate_once(buf: &mut Vec<u8>, donor: &[u8], rng: &mut TestRng) {
    if buf.is_empty() {
        // Only growth is meaningful on an empty buffer.
        let n = 1 + rng.below(8) as usize;
        buf.extend((0..n).map(|_| rng.next_u64() as u8));
        return;
    }
    let len = buf.len();
    match rng.below(12) {
        // Flip one bit.
        0 => {
            let bit = rng.below(len as u64 * 8) as usize;
            buf[bit / 8] ^= 1 << (bit % 8);
        }
        // Overwrite one byte with a random value.
        1 => {
            let pos = rng.below(len as u64) as usize;
            buf[pos] = rng.next_u64() as u8;
        }
        // Overwrite one byte with a structurally interesting value.
        2 => {
            let pos = rng.below(len as u64) as usize;
            buf[pos] = INTERESTING_BYTES[rng.below(INTERESTING_BYTES.len() as u64) as usize];
        }
        // Write an interesting u16 (big-endian) — including the true
        // remaining length, which forges consistent length fields.
        3 => {
            if len >= 2 {
                let pos = rng.below(len as u64 - 1) as usize;
                let remaining = (len - pos - 2) as u16;
                let candidates = [
                    0u16,
                    1,
                    remaining,
                    remaining.wrapping_add(1),
                    remaining.wrapping_sub(1),
                    0x00FF,
                    0x8000,
                    0xFFFF,
                ];
                let v = candidates[rng.below(candidates.len() as u64) as usize];
                buf[pos..pos + 2].copy_from_slice(&v.to_be_bytes());
            }
        }
        // Truncate at a random point (possibly to empty).
        4 => {
            buf.truncate(rng.below(len as u64 + 1) as usize);
        }
        // Append random bytes.
        5 => {
            let n = 1 + rng.below(16) as usize;
            buf.extend((0..n).map(|_| rng.next_u64() as u8));
        }
        // Overwrite a window with donor bytes (splice in place).
        6 => {
            if !donor.is_empty() {
                let dst = rng.below(len as u64) as usize;
                let src = rng.below(donor.len() as u64) as usize;
                let n = (1 + rng.below(16) as usize)
                    .min(len - dst)
                    .min(donor.len() - src);
                buf[dst..dst + n].copy_from_slice(&donor[src..src + n]);
            }
        }
        // Insert a donor chunk at a random position.
        7 => {
            if !donor.is_empty() {
                let at = rng.below(len as u64 + 1) as usize;
                let src = rng.below(donor.len() as u64) as usize;
                let n = (1 + rng.below(16) as usize).min(donor.len() - src);
                buf.splice(at..at, donor[src..src + n].iter().copied());
            }
        }
        // Remove an interior chunk.
        8 => {
            let at = rng.below(len as u64) as usize;
            let n = (1 + rng.below(16) as usize).min(len - at);
            buf.drain(at..at + n);
        }
        // Inject a DNS-style compression pointer (0b11 tag + offset).
        9 => {
            if len >= 2 {
                let pos = rng.below(len as u64 - 1) as usize;
                buf[pos] = 0xC0 | rng.below(0x40) as u8;
                buf[pos + 1] = rng.next_u64() as u8;
            }
        }
        // Overwrite with a varint boundary encoding.
        10 => {
            let pat = VARINT_BOUNDARIES[rng.below(VARINT_BOUNDARIES.len() as u64) as usize];
            let pos = rng.below(len as u64) as usize;
            let n = pat.len().min(len - pos);
            buf[pos..pos + n].copy_from_slice(&pat[..n]);
        }
        // Self-concatenate — multi-record datagrams, pipelined DoT.
        _ => {
            let copy = buf.clone();
            buf.extend_from_slice(&copy);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutation_is_deterministic_and_bounded() {
        let base: Vec<u8> = (0..100).collect();
        let donor = vec![0xAA; 40];
        let mut a = TestRng::deterministic("mutate", 7);
        let mut b = TestRng::deterministic("mutate", 7);
        for _ in 0..2000 {
            let x = mutate(&base, &donor, &mut a);
            let y = mutate(&base, &donor, &mut b);
            assert_eq!(x, y, "same seed, same mutation stream");
            assert!(x.len() <= MAX_INPUT_LEN);
        }
    }

    #[test]
    fn mutation_changes_inputs_and_recovers_from_empty() {
        let base: Vec<u8> = (0..32).collect();
        let mut rng = TestRng::deterministic("mutate-change", 0);
        let mut changed = 0;
        for _ in 0..200 {
            if mutate(&base, &base, &mut rng) != base {
                changed += 1;
            }
        }
        assert!(
            changed > 150,
            "mutations mostly change the input: {changed}"
        );
        // An empty base must still produce work.
        let out = mutate(&[], &[], &mut rng);
        assert!(!out.is_empty());
    }
}
