//! Proof that the harness *detects*: a deliberately broken decoder is
//! differentially tested against the real varint codec, and the
//! campaign must (a) find the disagreement, (b) shrink it to the
//! provably minimal counterexample, (c) emit an actionable report, and
//! (d) reproduce the identical finding when replayed with the same
//! seed. A fuzzing gate whose failure path is untested is just a
//! random-number generator with good intentions.

use doc_fuzz::{run_campaign, Campaign, DifferentialTarget, Outcome};
use doc_quic::varint;

/// The real varint codec vs a decoder with a classic length-table bug:
/// the 2-byte prefix (first byte `01......`) is read as a 1-byte form.
/// An input diverges iff its first byte is in `0x40..=0x7F`, so the
/// minimal counterexample is exactly `[0x40]` — reachable by the
/// greedy shrinker (prefix truncation keeps the diverging first byte;
/// the integer ladder walks it down to the 0x40 boundary).
struct BrokenVarint;

fn broken_decode(data: &[u8]) -> Result<(u64, usize), ()> {
    let first = *data.first().ok_or(())?;
    // BUG under test: prefix 1 should map to 2 bytes.
    let n = match first >> 6 {
        0 | 1 => 1,
        2 => 4,
        _ => 8,
    };
    let bytes = data.get(..n).ok_or(())?;
    let mut v = (first & 0x3F) as u64;
    for &b in &bytes[1..] {
        v = (v << 8) | b as u64;
    }
    Ok((v, n))
}

impl DifferentialTarget for BrokenVarint {
    fn name(&self) -> &'static str {
        "broken-varint"
    }

    fn seeds(&self) -> Vec<Vec<u8>> {
        // Valid for both decoders (no 0x40..=0x7F first byte): the
        // campaign must *discover* the diverging region by mutation.
        vec![
            vec![0x00],
            vec![0x3F],
            vec![0x80, 0x01, 0x02, 0x03],
            vec![0xC0, 0, 0, 0, 0x40, 0, 0, 0],
        ]
    }

    fn check(&self, input: &[u8]) -> Result<Outcome, String> {
        match (varint::decode(input), broken_decode(input)) {
            (Err(_), Err(())) => Ok(Outcome::Rejected),
            (Ok(real), Ok(broken)) if real == broken => Ok(Outcome::Accepted),
            (real, broken) => Err(format!(
                "varint decoders disagree: real {real:?} vs broken {broken:?}"
            )),
        }
    }
}

fn campaign() -> Campaign {
    Campaign {
        iterations: 5_000,
        // The broken target has no corpus directory; nothing to load.
        load_disk_corpus: false,
        ..Campaign::default()
    }
}

#[test]
fn injected_bug_is_found_shrunk_and_reported() {
    let divergence =
        run_campaign(&BrokenVarint, &campaign()).expect_err("the broken decoder must be caught");

    // (b) Shrunk to the provably minimal counterexample.
    assert_eq!(
        divergence.input,
        vec![0x40],
        "shrinker must reach the one-byte boundary input"
    );
    assert!(
        divergence.original_len >= divergence.input.len(),
        "original counterexample cannot be smaller than the minimum"
    );
    assert!(
        divergence.iteration.is_some(),
        "found by mutation, not replay"
    );

    // (c) The report is self-contained: target, seed, hex dump of the
    // counterexample, and a copy-pasteable replay command.
    let report = divergence.to_string();
    for needle in [
        "divergence in target `broken-varint`",
        "0xd0c5eed",
        "shrunk from",
        "0000  40",
        "--target broken-varint --seed 0xd0c5eed",
        "tests/corpus/broken-varint/",
        "decoders disagree",
    ] {
        assert!(
            report.contains(needle),
            "report missing {needle:?}:\n{report}"
        );
    }
}

#[test]
fn divergence_replays_identically_under_the_same_seed() {
    let first = run_campaign(&BrokenVarint, &campaign()).expect_err("caught");
    let second = run_campaign(&BrokenVarint, &campaign()).expect_err("caught");
    assert_eq!(first.iteration, second.iteration);
    assert_eq!(first.input, second.input);
    assert_eq!(first.cause, second.cause);

    // A different seed may find a different original counterexample,
    // but the shrunk minimum is the same boundary byte.
    let other = run_campaign(
        &BrokenVarint,
        &Campaign {
            seed: 0xABCD,
            ..campaign()
        },
    )
    .expect_err("caught under any seed");
    assert_eq!(other.input, vec![0x40]);
    assert_eq!(other.seed, 0xABCD);
}
