//! Regenerates Fig. 5: memory consumption (ROM/RAM) of each DNS
//! transport with the CoAP example application present.

use doc_core::transport::TransportKind;
use doc_models::buildsize::build_profile;

fn main() {
    println!("Fig. 5. Memory consumption per DNS transport (with CoAP example app)");
    for (panel, pick_rom) in [("(a) ROM", true), ("(b) RAM", false)] {
        println!("\n{panel} [bytes]");
        for t in [
            TransportKind::Udp,
            TransportKind::Dtls,
            TransportKind::Coap,
            TransportKind::Coaps,
            TransportKind::Oscore,
        ] {
            let with_get = t.coap_based();
            let p = build_profile(t, with_get);
            let total = if pick_rom { p.rom() } else { p.ram() };
            print!("{:<10} total {:>6}  =", t.name(), total);
            for (m, rom, ram) in &p.rows {
                let v = if pick_rom { *rom } else { *ram };
                print!(" {}:{}", m.name(), v);
            }
            println!();
        }
    }
    println!();
    let coap = build_profile(TransportKind::Coap, false);
    let coaps = build_profile(TransportKind::Coaps, false);
    let oscore = build_profile(TransportKind::Oscore, false);
    println!(
        "Deltas: DTLS adds {} B ROM / {} B RAM; OSCORE adds {} B ROM; OSCORE saves {} B vs DTLS",
        coaps.rom() - coap.rom(),
        coaps.ram() - coap.ram(),
        oscore.rom() - coap.rom(),
        coaps.rom() - oscore.rom(),
    );
    let get = build_profile(TransportKind::Coap, true);
    println!(
        "GET support adds {} B ROM and {} B RAM",
        get.rom() - coap.rom(),
        get.ram() - coap.ram()
    );
}
