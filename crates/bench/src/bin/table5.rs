//! Regenerates Table 5: comparison of request methods considered for
//! DoC — derived from the implementation's own behaviour, not a static
//! table.

use doc_bench::check;
use doc_core::method::DocMethod;

fn main() {
    println!("Table 5. Comparison of request methods considered for DoC");
    let methods = [DocMethod::Get, DocMethod::Post, DocMethod::Fetch];
    println!(
        "{:<36} {:>5} {:>5} {:>5}",
        "Feature", "GET", "POST", "FETCH"
    );
    type MethodPredicate = fn(DocMethod) -> bool;
    let rows: [(&str, MethodPredicate); 3] = [
        ("Cacheable", |m| m.cacheable()),
        ("Application data carried in body", |m| m.body_carried()),
        ("Block-wise transferable query", |m| m.blockwise_query()),
    ];
    for (label, get) in rows {
        print!("{label:<36}");
        for m in methods {
            print!(" {:>5}", check(get(m)));
        }
        println!();
    }
}
