//! Regenerates Fig. 9: relative link-layer data DNS over QUIC requires
//! compared to DTLSv1.2 / CoAPSv1.2 / OSCORE, swept over the QUIC
//! header size for 0-RTT and 1-RTT packets.

use doc_core::transport::{PacketItem, TransportKind};
use doc_models::quic::{quic_penalty, QuicHandshake};

fn main() {
    for hs in [QuicHandshake::ZeroRtt, QuicHandshake::OneRtt] {
        let (lo, hi) = hs.header_range();
        println!(
            "Fig. 9 — {} (QUIC header {lo}..{hi} bytes), penalty [%]",
            hs.name()
        );
        println!(
            "{:<10} {:<16} {}",
            "compared",
            "message",
            (lo..=hi)
                .step_by(8)
                .map(|h| format!("{h:>6}"))
                .collect::<String>()
        );
        for kind in [
            TransportKind::Dtls,
            TransportKind::Coaps,
            TransportKind::Oscore,
        ] {
            for item in [
                PacketItem::Query,
                PacketItem::ResponseA,
                PacketItem::ResponseAaaa,
            ] {
                print!("{:<10} {:<16}", kind.name(), item.name());
                for h in (lo..=hi).step_by(8) {
                    print!("{:>6.1}", quic_penalty(kind, item, h));
                }
                println!();
            }
        }
        println!();
    }
}
