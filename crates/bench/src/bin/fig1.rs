//! Regenerates Fig. 1: distribution of name lengths (density %) for the
//! IoT aggregate and the IXP sample, as a text histogram.

use doc_datasets::lengths::{Dataset, LengthModel};
use doc_datasets::stats::density_histogram;

fn print_panel(title: &str, dataset: Dataset) {
    println!("{title}");
    let model = LengthModel::for_dataset(dataset);
    let sample = model.sample_many(0xF161, 40_000);
    let hist = density_histogram(&sample, 85);
    // Bucket by 5 characters like the figure's x-axis ticks.
    println!("  len  density");
    for start in (0..=85).step_by(5) {
        let end = (start + 5).min(86);
        let d: f64 = hist[start..end].iter().sum::<f64>() / (end - start) as f64;
        let bar = "#".repeat((d * 8.0).round() as usize);
        println!("  {start:>3}  {d:>5.2}% {bar}");
    }
    println!();
}

fn main() {
    println!("Fig. 1. Distribution of name lengths (density per length, 5-char buckets)");
    print_panel("(a) IoT devices", Dataset::IotTotal);
    print_panel("(b) Internet devices (IXP)", Dataset::Ixp);
}
