//! Regenerates Fig. 6: maximum link-layer packet sizes for each
//! transport when resolving a 24-character name (single A or AAAA
//! record), including session-setup packets. All sizes come from real
//! packet construction (see `doc-core::transport`).

use doc_core::method::DocMethod;
use doc_core::transport::{dissect, session_setup, PacketItem, TransportKind};
use doc_sixlowpan::single_frame_limit;

fn main() {
    println!("Fig. 6. Link-layer packet sizes, 24-char name, single record");
    println!(
        "(single-frame UDP payload budget: {} bytes; frames > 1 mean 6LoWPAN fragmentation)\n",
        single_frame_limit()
    );
    println!(
        "{:<34} {:>6} {:>6} {:>5} {:>7} {:>4} {:>7} {:>7}",
        "packet", "l2+6lo", "dtls", "coap", "oscore", "dns", "frames", "total"
    );
    for kind in [
        TransportKind::Udp,
        TransportKind::Dtls,
        TransportKind::Coap,
        TransportKind::Coaps,
        TransportKind::Oscore,
    ] {
        let methods: &[DocMethod] = if kind.coap_based() {
            &[DocMethod::Fetch, DocMethod::Get, DocMethod::Post]
        } else {
            &[DocMethod::Fetch]
        };
        for &method in methods {
            // OSCORE uses only FETCH in the paper.
            if kind == TransportKind::Oscore && method != DocMethod::Fetch {
                continue;
            }
            for item in [
                PacketItem::Query,
                PacketItem::ResponseA,
                PacketItem::ResponseAaaa,
            ] {
                // Responses do not depend on the method; print once.
                if item != PacketItem::Query && method != methods[0] {
                    continue;
                }
                let d = dissect(kind, method, item);
                let label = if kind.coap_based() && item == PacketItem::Query {
                    format!("{} [{}]", d.label, method.name())
                } else {
                    d.label.clone()
                };
                println!(
                    "{:<34} {:>6} {:>6} {:>5} {:>7} {:>4} {:>7} {:>7}",
                    label, d.l2_sixlo, d.dtls, d.coap, d.oscore, d.dns, d.frames, d.total
                );
            }
        }
        // Session setup packets.
        for d in session_setup(kind) {
            println!(
                "{:<34} {:>6} {:>6} {:>5} {:>7} {:>4} {:>7} {:>7}",
                format!("{} [setup] {}", kind.name(), d.label),
                d.l2_sixlo,
                d.dtls,
                d.coap,
                d.oscore,
                d.dns,
                d.frames,
                d.total
            );
        }
        println!();
    }
}
