//! Regenerates Table 1: comparison of DNS transport features.

use doc_bench::check;
use doc_models::transport_features;

fn main() {
    println!("Table 1. Comparison of DNS transport features (DNS over …)");
    let features = doc_models::features::transport_features();
    let _ = transport_features; // re-exported alias
    let header: Vec<&str> = features.iter().map(|f| f.transport).collect();
    println!("{:<35} {}", "Protocol Feature", header.join("  "));
    type FeatureGetter = Box<dyn Fn(&doc_models::FeatureMatrix) -> bool>;
    let rows: Vec<(&str, FeatureGetter)> = vec![
        ("Message Segmentation", Box::new(|f| f.segmentation)),
        ("Message Authentication", Box::new(|f| f.authentication)),
        ("Message Encryption", Box::new(|f| f.encryption)),
        (
            "Message Format Multiplexing",
            Box::new(|f| f.format_multiplexing),
        ),
        (
            "Shares protocol with application",
            Box::new(|f| f.shares_protocol_with_app),
        ),
        (
            "Suitability for Constrained IoT",
            Box::new(|f| f.iot_suitable),
        ),
        (
            "Content Secure En-route Caching",
            Box::new(|f| f.secure_enroute_caching),
        ),
    ];
    for (label, get) in rows {
        let cells: Vec<String> = features
            .iter()
            .map(|f| format!("{:^width$}", check(get(f)), width = f.transport.len()))
            .collect();
        println!("{:<35} {}", label, cells.join("  "));
    }
}
