//! Regenerates Fig. 10: link utilization (frames and kBytes per link)
//! for four-answer AAAA queries under every caching configuration —
//! opaque forwarder vs caching proxy × client DNS cache × client CoAP
//! cache × DoH-like vs EOL TTLs.

use doc_core::experiment::{run, ExperimentConfig};
use doc_core::policy::CachePolicy;
use doc_netsim::Tag;

fn main() {
    println!(
        "Fig. 10. Link utilization, 50 AAAA queries over 8 names, 4 records/answer, TTL 2-8 s"
    );
    println!("links: '2 hops' = clients<->forwarder, '1 hop' = forwarder<->border router\n");
    println!(
        "{:<52} {:>7} {:>7} {:>8} {:>8} {:>7} {:>7}",
        "scenario", "frames2", "frames1", "kB2", "kB1", "q-frac", "success"
    );
    for proxy_cache in [false, true] {
        for client_coap_cache in [false, true] {
            for client_dns_cache in [false, true] {
                for policy in [CachePolicy::DohLike, CachePolicy::EolTtls] {
                    let mut frames = [0u64; 2];
                    let mut bytes = [0u64; 2];
                    let mut qbytes = 0u64;
                    let mut success = 0.0;
                    let reps = 5;
                    for rep in 0..reps {
                        let cfg = ExperimentConfig {
                            proxy_cache,
                            client_coap_cache,
                            client_dns_cache,
                            policy,
                            num_queries: 50,
                            num_names: 8,
                            answers_per_response: 4,
                            ttl_range: (2, 8),
                            loss_permille: 80,
                            seed: 0xF16_0010 + rep,
                            ..Default::default()
                        };
                        let r = run(&cfg);
                        frames[0] += r.client_proxy.frames;
                        frames[1] += r.proxy_br.frames;
                        bytes[0] += r.client_proxy.bytes;
                        bytes[1] += r.proxy_br.bytes;
                        qbytes += r.proxy_br.bytes_by_tag[Tag::Query.index()];
                        success += r.success_rate();
                    }
                    let label = format!(
                        "{} fwd | {} | {} | {}",
                        if proxy_cache { "proxy" } else { "opaque" },
                        if client_coap_cache {
                            "CoAP$ "
                        } else {
                            "noCoAP$"
                        },
                        if client_dns_cache { "DNS$ " } else { "noDNS$" },
                        policy.name()
                    );
                    println!(
                        "{:<52} {:>7} {:>7} {:>8.1} {:>8.1} {:>7.2} {:>7.2}",
                        label,
                        frames[0] / reps,
                        frames[1] / reps,
                        bytes[0] as f64 / reps as f64 / 1000.0,
                        bytes[1] as f64 / reps as f64 / 1000.0,
                        qbytes as f64 / bytes[1] as f64,
                        success / reps as f64,
                    );
                }
            }
        }
    }
}
