//! `bench_gate` — the parsed CI gate over the `BENCH_*.json`
//! artifacts.
//!
//! Usage (subcommands, one artifact each):
//!
//! ```text
//! bench_gate proxy  PATH [--require-scaling]
//! bench_gate crypto PATH
//! bench_gate codecs PATH
//! ```
//!
//! * `codecs PATH` — validate a `doc-bench/codecs/v2` artifact
//!   (schema + row shapes + the 0 allocs/iter invariant on every
//!   `*_view`/`*_into` row).
//! * `proxy PATH` — validate a `doc-bench/proxy/v4` artifact
//!   (schema + 1/2/4/8-worker CoAP rows + doq/doh/dot rows +
//!   per-worker steal counts + percentile sanity + the zero-alloc
//!   bound `allocs_per_req < 1` on the 4-worker CoAP sim-path row +
//!   the congested-bottleneck `recovery` rows: all three congestion
//!   controllers present, both adaptive controllers' p99 below the
//!   fixed-RTO oracle's).
//! * `crypto PATH` — validate a `doc-bench/crypto/v1` artifact
//!   (schema + per-backend 1/4/8 CCM seal sweep; on full measurement
//!   windows also the vectorization bounds: AES-NI seal ≥ 2× the
//!   scalar reference, batch-8 ≥ 1.3× batch-1 on the multi-block
//!   backends).
//! * `--require-scaling` (proxy only) — additionally enforce the
//!   4-vs-1 worker throughput ratio; the required ratio depends on the
//!   parallelism recorded in the artifact (≥ 2× on ≥ 4 cores, a
//!   no-collapse bound on fewer — a 1-core container cannot
//!   demonstrate a parallel speedup).
//!
//! Several subcommands may be chained in one invocation:
//!
//! ```text
//! bench_gate codecs BENCH_codecs.json proxy BENCH_proxy.json --require-scaling
//! ```
//!
//! Exit status 0 = every requested gate passed. Any parse error,
//! schema drift, missing field, failed bound, or unknown argument
//! (including the pre-subcommand `--codecs/--proxy/--crypto` flag
//! spellings, whose deprecation window has ended) exits 1 with a
//! usage diagnostic.

use doc_bench::{gate, json};

fn fail(msg: &str) -> ! {
    eprintln!("bench_gate: FAIL: {msg}");
    std::process::exit(1);
}

fn load(path: &str) -> json::Json {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    json::parse(&text).unwrap_or_else(|e| fail(&format!("{path}: {e}")))
}

/// One requested check: which gate, over which artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Codecs,
    Proxy,
    Crypto,
}

const USAGE: &str = "usage: bench_gate {proxy|crypto|codecs} PATH ... [--require-scaling]";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut checks: Vec<(Kind, String)> = Vec::new();
    let mut require_scaling = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut subcommand = |kind: Kind, name: &str| {
            let path = it
                .next()
                .unwrap_or_else(|| fail(&format!("{name} needs a path")))
                .clone();
            checks.push((kind, path));
        };
        match arg.as_str() {
            "codecs" => subcommand(Kind::Codecs, "codecs"),
            "proxy" => subcommand(Kind::Proxy, "proxy"),
            "crypto" => subcommand(Kind::Crypto, "crypto"),
            "--require-scaling" => require_scaling = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown argument {other} ({USAGE})")),
        }
    }
    if checks.is_empty() {
        fail(&format!("nothing to check ({USAGE})"));
    }
    if require_scaling && !checks.iter().any(|(k, _)| *k == Kind::Proxy) {
        fail("--require-scaling only applies to the proxy gate");
    }
    for (kind, path) in checks {
        let doc = load(&path);
        let result = match kind {
            Kind::Codecs => gate::check_codecs(&doc),
            Kind::Proxy => gate::check_proxy(&doc, require_scaling),
            Kind::Crypto => gate::check_crypto(&doc),
        };
        match result {
            Ok(summary) => println!("bench_gate: OK {path}: {summary}"),
            Err(e) => fail(&format!("{path}: {e}")),
        }
    }
}
