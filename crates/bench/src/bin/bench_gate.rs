//! `bench_gate` — the parsed CI gate over the `BENCH_*.json`
//! artifacts.
//!
//! Usage:
//!
//! ```text
//! bench_gate [--codecs PATH] [--proxy PATH] [--crypto PATH] [--require-scaling]
//! ```
//!
//! * `--codecs PATH` — validate a `doc-bench/codecs/v2` artifact
//!   (schema + row shapes + the 0 allocs/iter invariant on every
//!   `*_view`/`*_into` row).
//! * `--proxy PATH` — validate a `doc-bench/proxy/v2` artifact
//!   (schema + 1/2/4/8-worker CoAP rows + doq/doh/dot rows +
//!   percentile sanity).
//! * `--crypto PATH` — validate a `doc-bench/crypto/v1` artifact
//!   (schema + per-backend 1/4/8 CCM seal sweep; on full measurement
//!   windows also the vectorization bounds: AES-NI seal ≥ 2× the
//!   scalar reference, batch-8 ≥ 1.3× batch-1 on the multi-block
//!   backends).
//! * `--require-scaling` — additionally enforce the 4-vs-1 worker
//!   throughput ratio; the required ratio depends on the parallelism
//!   recorded in the artifact (≥ 2× on ≥ 4 cores, a no-collapse bound
//!   on fewer — a 1-core container cannot demonstrate a parallel
//!   speedup).
//!
//! Exit status 0 = every requested gate passed. Any parse error,
//! schema drift, missing field, or failed bound exits 1 with a
//! diagnostic — unlike the `grep` pipeline it replaces, which happily
//! "passed" on files it could not actually interpret.

use doc_bench::{gate, json};

fn fail(msg: &str) -> ! {
    eprintln!("bench_gate: FAIL: {msg}");
    std::process::exit(1);
}

fn load(path: &str) -> json::Json {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    json::parse(&text).unwrap_or_else(|e| fail(&format!("{path}: {e}")))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut codecs_path: Option<String> = None;
    let mut proxy_path: Option<String> = None;
    let mut crypto_path: Option<String> = None;
    let mut require_scaling = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--codecs" => {
                codecs_path = Some(
                    it.next()
                        .unwrap_or_else(|| fail("--codecs needs a path"))
                        .clone(),
                )
            }
            "--proxy" => {
                proxy_path = Some(
                    it.next()
                        .unwrap_or_else(|| fail("--proxy needs a path"))
                        .clone(),
                )
            }
            "--crypto" => {
                crypto_path = Some(
                    it.next()
                        .unwrap_or_else(|| fail("--crypto needs a path"))
                        .clone(),
                )
            }
            "--require-scaling" => require_scaling = true,
            "--help" | "-h" => {
                println!(
                    "usage: bench_gate [--codecs PATH] [--proxy PATH] [--crypto PATH] [--require-scaling]"
                );
                return;
            }
            other => fail(&format!("unknown argument {other}")),
        }
    }
    if codecs_path.is_none() && proxy_path.is_none() && crypto_path.is_none() {
        fail("nothing to check: pass --codecs, --proxy and/or --crypto");
    }
    if let Some(path) = codecs_path {
        match gate::check_codecs(&load(&path)) {
            Ok(summary) => println!("bench_gate: OK {path}: {summary}"),
            Err(e) => fail(&format!("{path}: {e}")),
        }
    }
    if let Some(path) = proxy_path {
        match gate::check_proxy(&load(&path), require_scaling) {
            Ok(summary) => println!("bench_gate: OK {path}: {summary}"),
            Err(e) => fail(&format!("{path}: {e}")),
        }
    }
    if let Some(path) = crypto_path {
        match gate::check_crypto(&load(&path)) {
            Ok(summary) => println!("bench_gate: OK {path}: {summary}"),
            Err(e) => fail(&format!("{path}: {e}")),
        }
    }
}
