//! Regenerates Table 4: queried record types in the IN class.

use doc_datasets::records::{record_mix, TrafficMix};

fn main() {
    println!("Table 4. Queried record types in IN class");
    for mix in [
        TrafficMix::IotWithMdns,
        TrafficMix::IotWithoutMdns,
        TrafficMix::Ixp,
    ] {
        print!("{:<14}", mix.name());
        for share in record_mix(mix) {
            print!(" {}={:.1}%", share.rtype, share.permyriad as f64 / 100.0);
        }
        println!();
    }
}
