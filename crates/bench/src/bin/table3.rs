//! Regenerates Table 3: statistical key properties of queried domain
//! names, from the calibrated corpus generators.

use doc_datasets::lengths::{Dataset, LengthModel};
use doc_datasets::stats::LengthStats;

fn main() {
    println!("Table 3. Name-length statistics (synthetic corpora calibrated to the paper)");
    println!(
        "{:<12} {:>8} {:>4} {:>4} {:>5} {:>6} {:>6} {:>4} {:>4} {:>4}",
        "Data source", "names", "min", "max", "mode", "mu", "sigma", "Q1", "Q2", "Q3"
    );
    for d in [
        Dataset::YourThings,
        Dataset::IotFinder,
        Dataset::MonIotr,
        Dataset::IotTotal,
        Dataset::Ixp,
    ] {
        let model = LengthModel::for_dataset(d);
        let n = d.unique_names().unwrap_or(10_000);
        let sample = model.sample_many(0xD0C ^ n as u64, n.max(8_000));
        let s = LengthStats::from_lengths(&sample);
        println!(
            "{:<12} {:>8} {:>4} {:>4} {:>5} {:>6.1} {:>6.1} {:>4} {:>4} {:>4}",
            d.name(),
            d.unique_names()
                .map(|x| x.to_string())
                .unwrap_or_else(|| "—".into()),
            s.min,
            s.max,
            s.mode,
            s.mean,
            s.sigma,
            s.q1,
            s.q2,
            s.q3
        );
    }
    println!();
    println!("Paper row (IoT total): 2336 names, min 2, max 83, mode 24, mu 25.9, sigma 11.3, Q 19/24/30");
}
