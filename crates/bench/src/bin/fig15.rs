//! Regenerates Fig. 15: resolution times with block-wise transfer
//! (FETCH, block sizes 16/32/64 vs none) over CoAP and CoAPSv1.2.

use doc_bench::cdf_rows;
use doc_core::experiment::{run, ExperimentConfig};
use doc_core::transport::TransportKind;
use doc_dns::RecordType;

fn main() {
    let probes = [250u64, 1000, 2500, 5000, 10_000, 20_000, 40_000, 80_000];
    for (panel, rtype) in [
        ("(a) A record", RecordType::A),
        ("(b) AAAA record", RecordType::Aaaa),
    ] {
        println!("Fig. 15 {panel} — CDF of resolution time [ms], FETCH with block-wise transfer");
        print!("{:<26}", "transport/blocksize");
        for p in probes {
            print!(" {p:>6}");
        }
        println!();
        for transport in [TransportKind::Coap, TransportKind::Coaps] {
            let mut sizes: Vec<Option<usize>> = vec![None, Some(16), Some(32)];
            if rtype == RecordType::Aaaa {
                // Paper: "Block size 64 was only used with AAAA records".
                sizes.push(Some(64));
            }
            for block in sizes {
                let mut all = Vec::new();
                let mut total = 0usize;
                for rep in 0..6u64 {
                    let cfg = ExperimentConfig {
                        transport,
                        record_type: rtype,
                        block_size: block,
                        num_queries: 50,
                        num_names: 50,
                        loss_permille: 120,
                        seed: 0xF16_0015 + rep,
                        ..Default::default()
                    };
                    let r = run(&cfg);
                    total += r.queries.len();
                    all.extend(r.sorted_latencies());
                }
                all.sort_unstable();
                let label = format!(
                    "{} {}",
                    transport.name(),
                    block
                        .map(|b| format!("{b} B"))
                        .unwrap_or_else(|| "no blockwise".into())
                );
                print!("{label:<26}");
                for (_, frac) in cdf_rows(&all, total, &probes) {
                    print!(" {:>6.3}", frac);
                }
                println!();
            }
        }
        println!();
    }
    println!("(smaller blocks mean more exchanges: completion rates drop — Appendix D)");
}
