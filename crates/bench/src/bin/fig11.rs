//! Regenerates Fig. 11: CoAP (re-)transmission and cache-hit events at
//! the clients, as offsets from the initial DNS query, for the three
//! highlighted scenarios (opaque forwarder, DoH-like proxy caching,
//! EOL-TTLs proxy caching) × {FETCH, GET, POST}.

use doc_core::experiment::{run, EventKind, ExperimentConfig};
use doc_core::method::DocMethod;
use doc_core::policy::CachePolicy;

fn main() {
    println!("Fig. 11. Client events vs time of initial DNS query");
    println!("(counts per offset band; retransmissions follow the exponential back-off bands)\n");
    let bands = [
        (0u64, 100u64),
        (100, 2000),
        (2000, 4500),     // 1st retransmission region
        (4500, 9500),     // 2nd
        (9500, 20_000),   // 3rd
        (20_000, 45_000), // 4th
    ];
    for method in [DocMethod::Fetch, DocMethod::Get, DocMethod::Post] {
        for (scenario, proxy_cache, policy) in [
            ("Opaque forwarder", false, CachePolicy::EolTtls),
            ("DoH-like (w/ caching)", true, CachePolicy::DohLike),
            ("EOL TTLs (w/ caching)", true, CachePolicy::EolTtls),
        ] {
            let mut tx = vec![0u32; bands.len()];
            let mut rtx = vec![0u32; bands.len()];
            let mut hits = 0u32;
            let mut validations = 0u32;
            for rep in 0..5u64 {
                let cfg = ExperimentConfig {
                    method,
                    proxy_cache,
                    client_coap_cache: proxy_cache, // blue scenarios
                    policy,
                    num_queries: 50,
                    num_names: 8,
                    answers_per_response: 4,
                    ttl_range: (2, 8),
                    loss_permille: 80,
                    seed: 0xF16_0011 + rep,
                    ..Default::default()
                };
                let r = run(&cfg);
                for e in &r.events {
                    match e.kind {
                        EventKind::Transmission | EventKind::Retransmission => {
                            for (i, (lo, hi)) in bands.iter().enumerate() {
                                if e.offset_ms >= *lo && e.offset_ms < *hi {
                                    if e.kind == EventKind::Transmission {
                                        tx[i] += 1;
                                    } else {
                                        rtx[i] += 1;
                                    }
                                }
                            }
                        }
                        EventKind::CacheHit => hits += 1,
                        EventKind::CacheValidation => validations += 1,
                    }
                }
            }
            println!("{} / {}:", method.name(), scenario);
            print!("  tx per band   ");
            for t in &tx {
                print!(" {t:>5}");
            }
            println!();
            print!("  retx per band ");
            for t in &rtx {
                print!(" {t:>5}");
            }
            println!();
            println!("  cache hits {hits}, validations {validations} (5 runs)");
        }
        println!();
    }
}
