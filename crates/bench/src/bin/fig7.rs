//! Regenerates Fig. 7: resolution-time CDFs for 50 queries
//! (Poisson λ = 5 /s) per transport and method, for A and AAAA records.

use doc_bench::cdf_rows;
use doc_core::experiment::{run, ExperimentConfig};
use doc_core::method::DocMethod;
use doc_core::transport::{TransportKind, TRANSPORT_MATRIX};
use doc_dns::RecordType;

fn main() {
    let probes = [100u64, 250, 500, 1000, 2500, 5000, 10_000, 20_000, 40_000];
    for (panel, rtype) in [
        ("(a) A record", RecordType::A),
        ("(b) AAAA record", RecordType::Aaaa),
    ] {
        println!("Fig. 7 {panel} — CDF of resolution time [ms] over 50 queries");
        print!("{:<22}", "transport/method");
        for p in probes {
            print!(" {p:>6}");
        }
        println!();
        // Rows come from the shared transport × method matrix (the same
        // table the end-to-end suite and the throughput bench use), so
        // a new transport appears here automatically.
        let configs: Vec<(String, TransportKind, DocMethod)> = TRANSPORT_MATRIX
            .iter()
            .map(|&(transport, method)| {
                let label = if transport.coap_based() {
                    format!("{} {}", transport.name(), method.name())
                } else {
                    transport.name().to_string()
                };
                (label, transport, method)
            })
            .collect();
        for (label, transport, method) in configs {
            // Average over 10 repetitions like the paper ("All runs are
            // repeated 10 times").
            let mut all = Vec::new();
            let mut total = 0usize;
            for rep in 0..10u64 {
                let cfg = ExperimentConfig {
                    transport,
                    method,
                    record_type: rtype,
                    num_queries: 50,
                    num_names: 50,
                    loss_permille: 120,
                    seed: 0xF16_0007 + rep,
                    ..Default::default()
                };
                let r = run(&cfg);
                total += r.queries.len();
                all.extend(r.sorted_latencies());
            }
            all.sort_unstable();
            print!("{label:<22}");
            for (_, frac) in cdf_rows(&all, total, &probes) {
                print!(" {:>6.3}", frac);
            }
            println!();
        }
        println!();
    }
}
