//! Regenerates Fig. 12: block-wise transfers of a 96-byte body in
//! 32-byte blocks — Block1 for requests, Block2 for responses.

use doc_coap::block::{Block1Sender, Block2Server, BlockAssembler, BlockOpt};

fn main() {
    println!("Fig. 12. Block-wise transfer of a 96-byte body, 32-byte blocks\n");

    println!("(a) Block1 for requests");
    let body: Vec<u8> = (0..96u8).collect();
    let mut sender = Block1Sender::new(body.clone(), 32).expect("valid block size");
    let mut assembler = BlockAssembler::new();
    let mut mid = 1;
    while let Some((slice, block)) = sender.next_block() {
        println!(
            "  C -> S  POST [MID:{mid}] Block1: {block} ({} bytes)",
            slice.len()
        );
        match assembler.push(block, &slice).expect("in order") {
            Some(full) => {
                assert_eq!(full, body);
                println!("  S -> C  2.04 Changed [MID:{mid}] Block1: {block}  (body complete)");
            }
            None => {
                println!("  S -> C  2.31 Continue [MID:{mid}] Block1: {block}");
            }
        }
        mid += 1;
    }

    println!("\n(b) Block2 for responses");
    let server = Block2Server::new(body.clone(), 32).expect("valid block size");
    let mut assembler = BlockAssembler::new();
    let mut num = 0u32;
    let mut mid = 1;
    loop {
        let (slice, block) = server.block(num, 32).expect("in range");
        if num == 0 {
            println!("  C -> S  GET [MID:{mid}]");
        } else {
            println!(
                "  C -> S  GET [MID:{mid}] Block2: {}",
                BlockOpt::new(num, false, 32).expect("valid")
            );
        }
        println!(
            "  S -> C  2.05 Content [MID:{mid}] Block2: {block} ({} bytes)",
            slice.len()
        );
        if let Some(full) = assembler.push(block, &slice).expect("in order") {
            assert_eq!(full, body);
            println!("  (body complete: {} bytes reassembled)", full.len());
            break;
        }
        num += 1;
        mid += 1;
    }
}
