//! Regenerates Fig. 8: code sizes of UDP-based DNS transports,
//! including DNS over QUIC (Quant).

use doc_models::buildsize::fig8_profiles;

fn main() {
    println!("Fig. 8. Code sizes of UDP-based DNS transports [bytes ROM]");
    println!(
        "{:<12} {:>10} {:>10} {:>12} {:>10}",
        "transport", "dns/coap", "crypto", "application", "total"
    );
    for p in fig8_profiles() {
        println!(
            "{:<12} {:>10} {:>10} {:>12} {:>10}",
            p.label,
            p.transport_rom,
            p.crypto_rom,
            p.application_rom,
            p.total()
        );
    }
    let profiles = fig8_profiles();
    let quic = profiles.iter().find(|p| p.label == "QUIC").expect("QUIC");
    let max_other = profiles
        .iter()
        .filter(|p| p.label != "QUIC")
        .map(|p| p.total())
        .max()
        .expect("non-empty");
    println!(
        "\nQUIC/largest-IoT-transport ratio: {:.2}x (paper: \"nearly double\")",
        quic.total() as f64 / max_other as f64
    );
}
