//! Regenerates Fig. 14: link-layer packet sizes with block-wise
//! transfer for block sizes 16/32/64 and the FETCH/GET/POST methods.

use doc_core::method::DocMethod;
use doc_core::transport::{dissect, dissect_blockwise, PacketItem, TransportKind};

fn main() {
    println!("Fig. 14. Packet sizes with block-wise transfer (CoAP, 24-char name)\n");
    println!("No blockwise:");
    for method in [DocMethod::Fetch, DocMethod::Get] {
        let d = dissect(TransportKind::Coap, method, PacketItem::Query);
        println!(
            "  Query [{}]: total {} bytes, {} frame(s)",
            method.name(),
            d.total,
            d.frames
        );
    }
    for item in [PacketItem::ResponseA, PacketItem::ResponseAaaa] {
        let d = dissect(TransportKind::Coap, DocMethod::Fetch, item);
        println!(
            "  {}: total {} bytes, {} frame(s)",
            item.name(),
            d.total,
            d.frames
        );
    }
    for block in [16usize, 32, 64] {
        println!("\nBlocksize: {block} bytes");
        // Queries (FETCH/POST can block; GET cannot).
        for method in [DocMethod::Fetch, DocMethod::Get] {
            if block == 64 {
                // Paper: "Block size 64 was only used with AAAA records"
                // for queries nothing changes (42 < 64).
            }
            let parts = dissect_blockwise(method, PacketItem::Query, block, false);
            for d in &parts {
                println!(
                    "  {:<24} total {:>4} bytes, {} frame(s)",
                    d.label, d.total, d.frames
                );
            }
        }
        for item in [PacketItem::ResponseA, PacketItem::ResponseAaaa] {
            let parts = dissect_blockwise(DocMethod::Fetch, item, block, false);
            for d in &parts {
                println!(
                    "  {:<24} total {:>4} bytes, {} frame(s)",
                    d.label, d.total, d.frames
                );
            }
        }
    }
    println!("\n(32-byte blocks keep every packet in one frame; 64-byte blocks re-fragment AAAA responses — Appendix D)");
}
