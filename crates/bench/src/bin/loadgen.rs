//! `doc-bench` — the standalone closed-loop load generator.
//!
//! Replays the paper's DoC query mix against the sharded multi-worker
//! proxy front-end and prints one summary row per worker count:
//!
//! ```text
//! cargo run --release -p doc-bench --bin doc-bench -- \
//!     --workers 1,2,4,8 --requests 200000 --concurrency 256 \
//!     --names 256 --shards 16 --json BENCH_proxy.json
//! ```
//!
//! All flags are optional; the defaults match the `throughput` bench.
//! `--transport coap|doq|doh|dot` selects the wire format the pool
//! serves (default `coap`). With `--json PATH` the run also emits the
//! rows in the `doc-bench/proxy/v4` format — note the full `bench_gate`
//! check additionally requires the complete transport row set, which
//! the `throughput` bench produces.

use doc_bench::alloc_counter::{alloc_count, CountingAllocator};
use doc_bench::throughput::{
    proxy_json, recovery_rows, run_load, LoadSpec, ThroughputRow, WORKER_SWEEP,
};
use doc_core::pool::ServeMode;

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

const USAGE: &str = "usage: doc-bench [--workers N,N,..] [--requests N] [--concurrency N] \
                     [--names N] [--shards N] [--get-permille N] \
                     [--transport coap|doq|doh|dot] [--json PATH]";

fn usage() -> ! {
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn print_row(r: &ThroughputRow) {
    println!(
        "{:<5} {:>3} workers  {:>10.0} req/s  p50 {:>8.1} µs  p99 {:>8.1} µs  {:>6.1} allocs/req  hit rate {:>5.1}%",
        r.mode.label(),
        r.workers,
        r.req_per_s,
        r.p50_us,
        r.p99_us,
        r.allocs_per_req,
        r.cache_hit_rate * 100.0
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workers: Vec<usize> = WORKER_SWEEP.to_vec();
    let mut base = LoadSpec::default();
    let mut json_path: Option<String> = None;
    let mut it = args.iter();
    let parse_num =
        |v: Option<&String>| -> u64 { v.and_then(|s| s.parse().ok()).unwrap_or_else(|| usage()) };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workers" => {
                let list = it.next().unwrap_or_else(|| usage());
                workers = list
                    .split(',')
                    .map(|w| w.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
                if workers.is_empty() {
                    usage();
                }
            }
            "--requests" => base.total_requests = parse_num(it.next()),
            "--concurrency" => base.concurrency = parse_num(it.next()) as usize,
            "--names" => base.unique_names = parse_num(it.next()) as u32,
            "--shards" => base.shards = parse_num(it.next()) as usize,
            "--get-permille" => base.get_permille = parse_num(it.next()) as u32,
            "--transport" => {
                base.mode = match it.next().map(String::as_str) {
                    Some("coap") => ServeMode::Coap,
                    Some("doq") => ServeMode::Doq,
                    Some("doh") => ServeMode::DohLite,
                    Some("dot") => ServeMode::Dot,
                    _ => usage(),
                }
            }
            "--json" => json_path = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            _ => usage(),
        }
    }
    println!(
        "doc-bench load generator: {} requests/run, concurrency {}, {} names, {} shards, GET {}‰",
        base.total_requests, base.concurrency, base.unique_names, base.shards, base.get_permille
    );
    let mut rows = Vec::new();
    for w in workers {
        let spec = LoadSpec {
            workers: w,
            ..base.clone()
        };
        let row = run_load(&spec, &alloc_count);
        print_row(&row);
        rows.push(row);
    }
    if let Some(path) = json_path {
        // The artifact must satisfy the v4 schema, so the ad-hoc
        // loadgen run carries the same deterministic recovery rows
        // the full bench emits.
        std::fs::write(&path, proxy_json(&rows, &recovery_rows())).expect("write JSON artifact");
        println!("wrote {path}");
    }
}
