//! Regenerates the Fig. 3 message sequence: two DoC clients resolving
//! the same name via a caching proxy under the DoH-like scheme, showing
//! the failed revalidation after a TTL change (steps 3/4) — and the
//! same timeline under EOL TTLs, where the revalidation succeeds.

use doc_coap::msg::{CoapMessage, Code, MsgType};
use doc_coap::opt::OptionNumber;
use doc_core::method::{build_request, DocMethod};
use doc_core::policy::CachePolicy;
use doc_core::proxy::{CoapProxy, ProxyAction};
use doc_core::server::{DocServer, MockUpstream};
use doc_dns::{Message, Name, RecordType};

fn query_bytes(name: &Name) -> Vec<u8> {
    let mut q = Message::query(0, name.clone(), RecordType::Aaaa);
    q.canonicalize_id();
    q.encode()
}

fn fetch(name: &Name, mid: u16, tok: u8) -> CoapMessage {
    build_request(
        DocMethod::Fetch,
        &query_bytes(name),
        MsgType::Con,
        mid,
        vec![tok],
    )
    .unwrap()
}

fn via_proxy(
    proxy: &CoapProxy,
    server: &DocServer,
    req: &CoapMessage,
    now: u64,
    log: &mut Vec<String>,
    who: &str,
) -> CoapMessage {
    match proxy.handle_client_request(req, now) {
        ProxyAction::Respond(resp) => {
            log.push(format!(
                "t={now:>5}ms  {who} <- P   : {} served from CoAP cache (Max-Age={})",
                code_name(resp.code),
                resp.max_age()
            ));
            *resp
        }
        ProxyAction::Forward {
            request,
            exchange_id,
        } => {
            let reval = request.option(OptionNumber::ETAG).is_some();
            log.push(format!(
                "t={now:>5}ms  P -> S    : forward {}{}",
                if reval {
                    "revalidation (ETag)"
                } else {
                    "full fetch"
                },
                ""
            ));
            let upstream = server.handle_request(&request, now);
            log.push(format!(
                "t={now:>5}ms  S -> P    : {} (Max-Age={}, payload={}B)",
                code_name(upstream.code),
                upstream.max_age(),
                upstream.payload.len()
            ));
            let resp = proxy
                .handle_upstream_response(exchange_id, &upstream, now)
                .expect("known exchange");
            log.push(format!(
                "t={now:>5}ms  {who} <- P   : {} (Max-Age={}, payload={}B)",
                code_name(resp.code),
                resp.max_age(),
                resp.payload.len()
            ));
            resp
        }
    }
}

fn code_name(c: Code) -> String {
    match c {
        Code::CONTENT => "2.05 Content".into(),
        Code::VALID => "2.03 Valid".into(),
        other => other.to_string(),
    }
}

fn run(policy: CachePolicy) {
    println!("--- {} ---", policy.name());
    let name = Name::parse("example.org").unwrap();
    let up = MockUpstream::new(3, 10, 10);
    up.add_aaaa(name.clone(), 1);
    let server = DocServer::new(policy, up);
    let proxy = CoapProxy::new(8);
    let mut log = Vec::new();

    // 1: C2's query is answered by S (filling caches).
    log.push("t=    0ms  C2 -> P   : DoC FETCH example.org AAAA".into());
    let r1 = via_proxy(&proxy, &server, &fetch(&name, 1, 2), 0, &mut log, "C2");
    let e1 = r1.option(OptionNumber::ETAG).unwrap().value.clone();

    // 2: C1's query hits the proxy cache.
    log.push("t= 4000ms  C1 -> P   : DoC FETCH example.org AAAA".into());
    via_proxy(&proxy, &server, &fetch(&name, 2, 1), 4_000, &mut log, "C1");

    // 3: TTL expires; a background query refreshes the RRset at the NS
    // (changing TTLs and, under DoH-like, the ETag).
    server.handle_request(&fetch(&name, 3, 9), 12_000);
    log.push("t=12000ms  (NS)      : RRset refreshed, TTLs changed".into());

    // 4: C1 revalidates its stale copy (ETag e1) through the proxy.
    let mut req = fetch(&name, 4, 1);
    req.set_option(doc_coap::opt::CoapOption::new(OptionNumber::ETAG, e1));
    log.push("t=14000ms  C1 -> P   : DoC FETCH w/ ETag e1 (revalidation)".into());
    let r4 = via_proxy(&proxy, &server, &req, 14_000, &mut log, "C1");

    for l in &log {
        println!("  {l}");
    }
    println!(
        "  => revalidation {}",
        if r4.code == Code::VALID {
            "SUCCEEDED (2.03, no payload transfer)"
        } else {
            "FAILED (full 2.05 transfer, the Fig. 3 step-4 problem)"
        }
    );
    println!(
        "  server stats: {} validations, {} full responses",
        server.stats().validations,
        server.stats().full_responses
    );
    println!();
}

fn main() {
    println!("Fig. 3. Name resolution with caching proxy: DoH-like vs EOL TTLs\n");
    run(CachePolicy::DohLike);
    run(CachePolicy::EolTtls);
}
