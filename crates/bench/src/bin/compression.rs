//! Regenerates the §7 compression result: `application/dns+cbor`
//! encodings of DNS responses vs their wire format ("the wire-format of
//! an AAAA response packet compresses from 70 bytes down to 24 bytes —
//! a reduction by 66%"), plus a sweep over the calibrated IoT corpus.

use doc_datasets::corpus::generate_corpus;
use doc_datasets::lengths::Dataset;
use doc_datasets::records::TrafficMix;
use doc_dns::cbor_fmt;
use doc_dns::{Message, Name, Question, Rcode, Record, RecordType};
use std::net::Ipv6Addr;

fn aaaa_response(name: &Name, ttl: u32) -> (Question, Message) {
    let q = Question::new(name.clone(), RecordType::Aaaa);
    let query = Message::query(0, name.clone(), RecordType::Aaaa);
    let resp = Message::response(
        &query,
        Rcode::NoError,
        vec![Record::aaaa(
            name.clone(),
            ttl,
            Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 1),
        )],
    );
    (q, resp)
}

fn main() {
    println!("§7 compression: application/dns-message vs application/dns+cbor\n");

    // The paper's headline case: 24-char name, one AAAA record.
    let name = doc_core::transport::experiment_name(0);
    let (q, resp) = aaaa_response(&name, 86_400);
    let wire = resp.encode().len();
    let cbor = cbor_fmt::encode_response(&resp, &q).len();
    println!(
        "24-char name, 1 AAAA, day TTL : wire {wire} B -> cbor {cbor} B ({:.0}% reduction)",
        (1.0 - cbor as f64 / wire as f64) * 100.0
    );
    let (q, resp) = aaaa_response(&name, 20);
    let wire = resp.encode().len();
    let cbor = cbor_fmt::encode_response(&resp, &q).len();
    println!(
        "24-char name, 1 AAAA, 20s TTL: wire {wire} B -> cbor {cbor} B ({:.0}% reduction)",
        (1.0 - cbor as f64 / wire as f64) * 100.0
    );

    // Queries compress too.
    let query_wire = {
        let mut m = Message::query(0, name.clone(), RecordType::Aaaa);
        m.canonicalize_id();
        m.encode().len()
    };
    let query_cbor = cbor_fmt::encode_query(&Question::new(name, RecordType::Aaaa)).len();
    println!(
        "24-char name query           : wire {query_wire} B -> cbor {query_cbor} B ({:.0}% reduction)",
        (1.0 - query_cbor as f64 / query_wire as f64) * 100.0
    );

    // Sweep over the calibrated IoT corpus.
    println!("\nCorpus sweep (IoT total, 2336 names, 1 AAAA each, 300 s TTL):");
    let corpus = generate_corpus(Dataset::IotTotal, TrafficMix::IotWithoutMdns, 2336, 0xC0);
    let mut total_wire = 0usize;
    let mut total_cbor = 0usize;
    for c in &corpus {
        let (q, resp) = aaaa_response(&c.name, 300);
        total_wire += resp.encode().len();
        total_cbor += cbor_fmt::encode_response(&resp, &q).len();
    }
    println!(
        "  total wire {total_wire} B -> cbor {total_cbor} B (mean reduction {:.1}%)",
        (1.0 - total_cbor as f64 / total_wire as f64) * 100.0
    );
}
