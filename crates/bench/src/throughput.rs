//! Closed-loop proxy throughput harness.
//!
//! Replays the paper's DoC query mix (FETCH-dominant with a GET
//! minority, A/AAAA answers, names drawn from the experiment name
//! shape of Table 3) against the multi-worker front-end
//! ([`doc_core::pool::ProxyPool`]): the calling thread feeds
//! pre-encoded request datagrams into the bounded SPMC ring, N workers
//! run the sans-IO view path against the sharded proxy/server, and the
//! load is *closed-loop* — in-flight requests are bounded by the ring
//! capacity, so the system is measured at saturation without unbounded
//! queueing.
//!
//! Reported per run: requests/s, p50/p99 sojourn latency (ring enqueue
//! → reply), heap allocations per request (the caller supplies the
//! allocation counter, since the counting `#[global_allocator]` must
//! live in the final binary), and the proxy cache hit rate.

use doc_core::policy::CachePolicy;
use doc_core::pool::{Datagram, ProxyPool, ServeMode};
use doc_core::server::{DocServer, MockUpstream};
use doc_core::transport::experiment_name;
use doc_core::{CoapProxy, DocMethod};
use doc_dns::{Message, RecordType};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Configuration of one throughput run.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Worker-thread count.
    pub workers: usize,
    /// Cache/table shard count for proxy and server.
    pub shards: usize,
    /// Total requests replayed in the measured window.
    pub total_requests: u64,
    /// Ring capacity = closed-loop in-flight bound.
    pub concurrency: usize,
    /// Distinct names in the replayed mix.
    pub unique_names: u32,
    /// GET share of the mix in permille (rest is FETCH, the paper's
    /// preferred method; CoAP mode only).
    pub get_permille: u32,
    /// Upstream TTL in seconds (large = cache-hit steady state).
    pub ttl_s: u32,
    /// Wire format the pool serves (CoAP proxy path or a DoQ/DoH/DoT
    /// stream framing).
    pub mode: ServeMode,
}

impl Default for LoadSpec {
    fn default() -> Self {
        LoadSpec {
            workers: 1,
            shards: 16,
            total_requests: 50_000,
            concurrency: 256,
            unique_names: 256,
            get_permille: 300,
            ttl_s: 3600,
            mode: ServeMode::Coap,
        }
    }
}

/// Result of one throughput run (one `BENCH_proxy.json` row).
#[derive(Debug, Clone)]
pub struct ThroughputRow {
    /// Wire format of this run (`transport` field of the artifact).
    pub mode: ServeMode,
    /// Worker-thread count of this run.
    pub workers: usize,
    /// Requests replayed.
    pub requests: u64,
    /// Replies produced (must equal `requests` on a healthy run).
    pub replies: u64,
    /// Wall-clock time of the measured window, nanoseconds.
    pub elapsed_ns: u64,
    /// Closed-loop throughput.
    pub req_per_s: f64,
    /// Median sojourn latency (ring enqueue → reply), microseconds.
    pub p50_us: f64,
    /// 99th-percentile sojourn latency, microseconds.
    pub p99_us: f64,
    /// Heap allocations per request across the whole path.
    pub allocs_per_req: f64,
    /// Proxy cache hit rate over the measured window.
    pub cache_hit_rate: f64,
    /// Successful cross-worker steals, one entry per worker.
    pub steals_per_worker: Vec<u64>,
}

/// Pre-encoded replay mix: one wire datagram per (name, method,
/// record-type) combination, cycled by the load loop.
pub struct QueryMix {
    wires: Vec<Vec<u8>>,
}

impl QueryMix {
    /// The pre-encoded request datagrams.
    pub fn wires(&self) -> &[Vec<u8>] {
        &self.wires
    }
}

/// Build the replay mix and the zone behind it.
///
/// Names follow the 24-character experiment shape; record types
/// alternate A/AAAA (the paper's evaluation queries both); methods are
/// FETCH with a `get_permille` GET share. Tokens/MIDs are derived from
/// the mix index — they are echo-only fields, not cache-key inputs.
pub fn build_mix(spec: &LoadSpec, upstream: &MockUpstream) -> QueryMix {
    let mut wires = Vec::with_capacity(spec.unique_names as usize);
    for i in 0..spec.unique_names {
        let name = experiment_name(i);
        let rtype = if i % 2 == 0 {
            RecordType::Aaaa
        } else {
            RecordType::A
        };
        match rtype {
            RecordType::Aaaa => upstream.add_aaaa(name.clone(), 1),
            _ => upstream.add_a(name.clone(), 1),
        }
        let mut q = Message::query(0, name, rtype);
        q.canonicalize_id();
        let wire = match spec.mode {
            ServeMode::Coap => {
                let method = if (i * 1000 / spec.unique_names.max(1)) < spec.get_permille {
                    DocMethod::Get
                } else {
                    DocMethod::Fetch
                };
                doc_core::method::build_request(
                    method,
                    &q.encode(),
                    doc_coap::msg::MsgType::Con,
                    i as u16,
                    vec![i as u8, (i >> 8) as u8],
                )
                .expect("experiment queries are well-formed")
                .encode()
            }
            ServeMode::Doq | ServeMode::Dot => doc_quic::doq::encode_doq(&q.encode()),
            ServeMode::DohLite => doc_quic::doq::encode_doh_request(&q.encode()),
        };
        wires.push(wire);
    }
    QueryMix { wires }
}

/// Percentile (nearest-rank) of an unsorted latency sample, in µs.
fn percentile_us(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = ((p * sorted_ns.len() as f64).ceil() as usize).clamp(1, sorted_ns.len());
    sorted_ns[rank - 1] as f64 / 1000.0
}

/// Run one closed-loop measurement.
///
/// `alloc_count` reads the binary's counting global allocator (pass
/// `|| 0` to skip allocation accounting). The cache is primed with one
/// single-threaded pass over the mix before timing starts, so the
/// measured window exercises the steady-state (cache-hit dominated)
/// hot path the sharding targets.
pub fn run_load(spec: &LoadSpec, alloc_count: &dyn Fn() -> u64) -> ThroughputRow {
    let upstream = MockUpstream::with_shards(0xD0C, spec.ttl_s, spec.ttl_s, spec.shards);
    let proxy = Arc::new(CoapProxy::with_shards(
        spec.unique_names as usize * 4,
        spec.shards,
    ));
    let mix_upstream = &upstream;
    let mix = build_mix(spec, mix_upstream);
    let server = Arc::new(DocServer::with_shards(
        CachePolicy::EolTtls,
        upstream,
        spec.shards,
    ));
    // The wire-buffer recycling loop: workers return every spent
    // `Datagram::wire` here and the producer takes them back instead
    // of allocating — after warmup the closed loop runs on a fixed
    // set of buffers (this is what holds `allocs_per_req` below 1).
    let recycle = Arc::new(doc_core::BufferPool::new());
    let pool = ProxyPool::with_mode(
        spec.workers,
        Arc::clone(&proxy),
        Arc::clone(&server),
        spec.mode,
    )
    .with_wire_recycling(Arc::clone(&recycle));

    // Prime: every mix entry once, single-threaded.
    let mut scratch = Vec::new();
    for (i, wire) in mix.wires.iter().enumerate() {
        let served = pool.serve(
            &Datagram {
                peer: i as u64 % 64,
                seq: i as u64,
                at: doc_netsim::Instant::from_millis(1),
                wire: wire.clone(),
            },
            &mut scratch,
        );
        assert!(served.is_some(), "mix entry {i} must be servable");
    }
    // Hit accounting: CoAP measures the proxy response cache; the
    // stream modes have no CoAP proxy, so the steady-state signal is
    // the upstream's own TTL cache (primed above, long TTLs).
    let hits_before = match spec.mode {
        ServeMode::Coap => proxy.cache_stats().hits,
        _ => server.upstream.cache_hits(),
    };

    // Measured closed-loop window.
    let total = spec.total_requests;
    let enqueue_ns: Vec<AtomicU64> = (0..total).map(|_| AtomicU64::new(0)).collect();
    // Full capacity per bucket: with work stealing a single worker can
    // end up recording most of the run, and a mid-window realloc would
    // both skew latency and count against `allocs_per_req`.
    let latency_buckets: Vec<Mutex<Vec<u64>>> = (0..spec.workers)
        .map(|_| Mutex::new(Vec::with_capacity(total as usize)))
        .collect();
    let epoch = Instant::now();
    let allocs_before = alloc_count();
    let stats = pool.run(
        spec.concurrency,
        (0..total).map(|seq| {
            enqueue_ns[seq as usize].store(epoch.elapsed().as_nanos() as u64, Ordering::Relaxed);
            let mut wire = recycle.take();
            wire.extend_from_slice(&mix.wires[(seq % mix.wires.len() as u64) as usize]);
            Datagram {
                peer: seq % 64,
                seq,
                at: doc_netsim::Instant::from_millis(1),
                wire,
            }
        }),
        &|reply| {
            let done = epoch.elapsed().as_nanos() as u64;
            let enq = enqueue_ns[reply.seq as usize].load(Ordering::Relaxed);
            latency_buckets[reply.worker]
                .lock()
                .unwrap()
                .push(done.saturating_sub(enq));
        },
    );
    let elapsed = epoch.elapsed();
    let allocs = alloc_count().saturating_sub(allocs_before);

    let mut latencies: Vec<u64> = Vec::with_capacity(total as usize);
    for b in &latency_buckets {
        latencies.append(&mut b.lock().unwrap());
    }
    latencies.sort_unstable();
    let hits = match spec.mode {
        ServeMode::Coap => proxy.cache_stats().hits,
        _ => server.upstream.cache_hits(),
    } - hits_before;
    ThroughputRow {
        mode: spec.mode,
        workers: spec.workers,
        requests: total,
        replies: stats.replies,
        elapsed_ns: elapsed.as_nanos() as u64,
        req_per_s: stats.replies as f64 / elapsed.as_secs_f64().max(1e-9),
        p50_us: percentile_us(&latencies, 0.50),
        p99_us: percentile_us(&latencies, 0.99),
        allocs_per_req: allocs as f64 / total.max(1) as f64,
        cache_hit_rate: f64::from(hits) / total.max(1) as f64,
        steals_per_worker: stats.steals_per_worker,
    }
}

/// Run the congested-bottleneck recovery scenario once per congestion
/// controller, producing the `recovery` rows of the proxy artifact.
/// The scenario is virtual-time deterministic, so the rows — and the
/// p99 ordering the gate asserts over them — are reproducible on any
/// machine.
pub fn recovery_rows() -> Vec<doc_core::bottleneck::BottleneckResult> {
    doc_quic::recovery::ControllerKind::ALL
        .iter()
        .map(|&controller| {
            doc_core::bottleneck::run_bottleneck(&doc_core::bottleneck::BottleneckConfig {
                controller,
                ..Default::default()
            })
        })
        .collect()
}

/// Render the `BENCH_proxy.json` artifact (schema `doc-bench/proxy/v4`)
/// for a set of runs, recording the measuring machine's parallelism so
/// the gate can scale its expectations. Every throughput row carries
/// its `transport` label (`coap`, `doq`, `doh`, `dot`) and its
/// per-worker steal counts; the `recovery` rows record the congested-
/// bottleneck scenario per congestion controller.
pub fn proxy_json(
    rows: &[ThroughputRow],
    recovery: &[doc_core::bottleneck::BottleneckResult],
) -> String {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut json = format!(
        "{{\n  \"schema\": \"doc-bench/proxy/v4\",\n  \"machine\": {{\"available_parallelism\": {cores}}},\n  \"rows\": [\n"
    );
    for (i, r) in rows.iter().enumerate() {
        let steals = r
            .steals_per_worker
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        json.push_str(&format!(
            "    {{\"transport\": \"{}\", \"workers\": {}, \"requests\": {}, \"req_per_s\": {:.1}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"allocs_per_req\": {:.2}, \"cache_hit_rate\": {:.4}, \"steals_per_worker\": [{}]}}{}\n",
            r.mode.label(),
            r.workers,
            r.requests,
            r.req_per_s,
            r.p50_us,
            r.p99_us,
            r.allocs_per_req,
            r.cache_hit_rate,
            steals,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n  \"recovery\": [\n");
    for (i, r) in recovery.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"controller\": \"{}\", \"loss_permille\": {}, \"queries\": {}, \"resolved\": {}, \"p50_ms\": {}, \"p99_ms\": {}}}{}\n",
            r.controller,
            r.loss_permille,
            r.queries,
            r.resolved,
            r.p50_ms,
            r.p99_ms,
            if i + 1 < recovery.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    json
}

/// The standard worker sweep of the throughput bench (CoAP rows).
pub const WORKER_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// The stream-transport rows of the bench, derived from the shared
/// transport matrix so a new transport cannot be dropped from the
/// artifact without also dropping it from the end-to-end suite.
pub fn stream_modes() -> Vec<ServeMode> {
    let mut modes: Vec<ServeMode> = doc_core::transport::TRANSPORT_MATRIX
        .iter()
        .filter(|(kind, _)| kind.stream_based())
        .map(|&(kind, _)| ServeMode::for_transport(kind))
        .collect();
    modes.dedup();
    modes
}

/// Read an env-var override for a numeric knob.
pub fn env_u64(var: &str, default: u64) -> u64 {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_covers_methods_and_names() {
        let spec = LoadSpec {
            unique_names: 10,
            get_permille: 300,
            ..LoadSpec::default()
        };
        let upstream = MockUpstream::new(1, 60, 60);
        let mix = build_mix(&spec, &upstream);
        assert_eq!(mix.wires().len(), 10);
        let gets = mix
            .wires
            .iter()
            .filter(|w| {
                doc_coap::view::CoapView::parse(w).unwrap().code == doc_coap::msg::Code::GET
            })
            .count();
        assert_eq!(gets, 3, "300‰ of 10 names are GET");
        // All wires must be distinct requests (distinct names).
        let mut uniq = mix.wires.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), 10);
    }

    #[test]
    fn small_load_run_is_sane() {
        let spec = LoadSpec {
            workers: 2,
            total_requests: 500,
            concurrency: 16,
            unique_names: 8,
            ..LoadSpec::default()
        };
        let row = run_load(&spec, &|| 0);
        assert_eq!(row.requests, 500);
        assert_eq!(row.replies, 500);
        assert!(row.req_per_s > 0.0);
        assert!(row.p50_us <= row.p99_us);
        assert!(
            row.cache_hit_rate > 0.95,
            "primed steady state must be hit-dominated, got {}",
            row.cache_hit_rate
        );
    }

    #[test]
    fn percentiles_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).map(|i| i * 1000).collect();
        assert_eq!(percentile_us(&sorted, 0.50), 50.0);
        assert_eq!(percentile_us(&sorted, 0.99), 99.0);
        assert_eq!(percentile_us(&[], 0.5), 0.0);
    }

    #[test]
    fn stream_mode_load_runs_are_sane() {
        for mode in stream_modes() {
            let spec = LoadSpec {
                workers: 2,
                total_requests: 300,
                concurrency: 16,
                unique_names: 8,
                mode,
                ..LoadSpec::default()
            };
            let row = run_load(&spec, &|| 0);
            assert_eq!(row.replies, 300, "{mode:?}");
            assert!(row.req_per_s > 0.0, "{mode:?}");
            assert!(
                row.cache_hit_rate > 0.95,
                "{mode:?}: primed upstream must be hit-dominated, got {}",
                row.cache_hit_rate
            );
        }
    }

    #[test]
    fn stream_modes_cover_doq_doh_dot() {
        assert_eq!(
            stream_modes(),
            vec![ServeMode::Doq, ServeMode::DohLite, ServeMode::Dot]
        );
    }

    #[test]
    fn proxy_json_round_trips_through_the_gate() {
        let row = |mode, workers: usize| ThroughputRow {
            mode,
            workers,
            requests: 100,
            replies: 100,
            elapsed_ns: 1_000_000,
            req_per_s: 1000.0 * workers as f64,
            p50_us: 10.0,
            p99_us: 90.0,
            allocs_per_req: 0.5,
            cache_hit_rate: 0.99,
            steals_per_worker: vec![0; workers],
        };
        let mut rows: Vec<ThroughputRow> = WORKER_SWEEP
            .iter()
            .map(|&w| row(ServeMode::Coap, w))
            .collect();
        rows.extend(stream_modes().into_iter().map(|m| row(m, 4)));
        let json = proxy_json(&rows, &recovery_rows());
        let doc = crate::json::parse(&json).expect("emitted JSON parses");
        crate::gate::check_proxy(&doc, false).expect("emitted JSON passes the structural gate");
    }

    #[test]
    fn recovery_rows_cover_all_controllers_and_order_p99() {
        let rows = recovery_rows();
        let names: Vec<&str> = rows.iter().map(|r| r.controller).collect();
        assert_eq!(names, vec!["fixed_rto", "cubic", "bbr_lite"]);
        let fixed = rows[0].p99_ms;
        for adaptive in &rows[1..] {
            assert!(
                adaptive.p99_ms < fixed,
                "{}: p99 {} not below fixed_rto {}",
                adaptive.controller,
                adaptive.p99_ms,
                fixed
            );
        }
    }
}
