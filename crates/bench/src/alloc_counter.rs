//! A shared allocation-counting `GlobalAlloc` wrapper.
//!
//! The `encode` and `throughput` benches and the `doc-bench` load
//! generator all report heap allocations per operation. The counter
//! type and its event tally live here once; each binary only opts in
//! with the two lines Rust requires to be in the final crate:
//!
//! ```ignore
//! #[global_allocator]
//! static GLOBAL: doc_bench::alloc_counter::CountingAllocator =
//!     doc_bench::alloc_counter::CountingAllocator;
//! ```
//!
//! Counted events are alloc/realloc/alloc_zeroed — frees are not
//! events of interest for the allocs/op bounds. Keeping one impl
//! guarantees `BENCH_codecs.json` and `BENCH_proxy.json` count
//! allocations identically.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator wrapper that counts every allocation event.
pub struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Total allocation events since process start.
pub fn alloc_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

// SAFETY: a pure pass-through to `System` — every pointer returned or
// accepted comes from / goes to the system allocator unmodified, so
// `System`'s own `GlobalAlloc` contract carries over verbatim. The
// only added behavior is a `Relaxed` counter bump, which touches no
// allocator state and cannot unwind.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: caller upholds `GlobalAlloc::alloc`'s contract (non-zero
    // layout); forwarded to `System.alloc` under the same contract.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same layout the caller passed, same contract.
        unsafe { System.alloc(layout) }
    }
    // SAFETY: `ptr` was produced by `self.alloc`-family methods, which
    // all return `System` pointers, so releasing via `System.dealloc`
    // with the same layout is exactly the paired deallocation.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr`/`layout` pair originates from `System` (above).
        unsafe { System.dealloc(ptr, layout) }
    }
    // SAFETY: same pairing argument as `dealloc` — `ptr` originates
    // from `System`, and the caller upholds the realloc contract.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `ptr`/`layout` pair originates from `System` (above).
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    // SAFETY: caller upholds the layout contract; forwarded verbatim.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same layout the caller passed, same contract.
        unsafe { System.alloc_zeroed(layout) }
    }
}
