//! A shared allocation-counting `GlobalAlloc` wrapper.
//!
//! The `encode` and `throughput` benches and the `doc-bench` load
//! generator all report heap allocations per operation. The counter
//! type and its event tally live here once; each binary only opts in
//! with the two lines Rust requires to be in the final crate:
//!
//! ```ignore
//! #[global_allocator]
//! static GLOBAL: doc_bench::alloc_counter::CountingAllocator =
//!     doc_bench::alloc_counter::CountingAllocator;
//! ```
//!
//! Counted events are alloc/realloc/alloc_zeroed — frees are not
//! events of interest for the allocs/op bounds. Keeping one impl
//! guarantees `BENCH_codecs.json` and `BENCH_proxy.json` count
//! allocations identically.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator wrapper that counts every allocation event.
pub struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Total allocation events since process start.
pub fn alloc_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}
