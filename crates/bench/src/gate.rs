//! Parsed, schema-validating CI gates over the `BENCH_*.json`
//! artifacts.
//!
//! Replaces the original `grep`-based zero-alloc check in `ci.sh`,
//! which only pattern-matched text lines: it could not tell a schema
//! drift, a truncated file, or a renamed field from a passing run. The
//! checks here parse the documents with [`crate::json`], validate the
//! schema version and row shapes, and only then apply the numeric
//! gates:
//!
//! * **codecs** (`BENCH_codecs.json`, schema `doc-bench/codecs/v2`):
//!   every `*_view`/`*_into` row must report exactly 0 allocs/iter —
//!   the machine-independent zero-copy invariant of PRs 2/3.
//! * **proxy** (`BENCH_proxy.json`, schema `doc-bench/proxy/v4`):
//!   per-transport rows — a 1/2/4/8-worker CoAP sweep plus at least
//!   one row each for the DoQ/DoH/DoT stream workloads — with sane
//!   req/s and latency percentiles and (v4) per-worker steal counts
//!   sized to the row's worker count, plus one congested-bottleneck
//!   `recovery` row per congestion controller whose p99 ordering
//!   (both adaptive controllers beat the fixed-RTO oracle under
//!   loss) is always enforced — the scenario is virtual-time
//!   deterministic, so the bound is machine-independent. The
//!   zero-alloc gate — `allocs_per_req < 1` on the 4-worker CoAP
//!   (sim-path) row — is always enforced: buffer recycling is not a
//!   machine property. The worker-scaling gate is optional; its
//!   required 4-vs-1 speedup depends on how many cores the measuring
//!   machine actually had (recorded in the artifact): a 1-core
//!   container cannot prove a parallel speedup, only that the pool
//!   does not collapse.

use crate::json::Json;

/// Worker counts every proxy artifact must report for the CoAP rows.
pub const REQUIRED_WORKER_ROWS: [u32; 4] = [1, 2, 4, 8];

/// Stream-transport rows every proxy artifact must carry at least once
/// (schema v2; the PR-5 DoQ/DoH/DoT workloads).
pub const REQUIRED_STREAM_TRANSPORTS: [&str; 3] = ["doq", "doh", "dot"];

/// Required 4-worker/1-worker throughput ratio given the parallelism
/// of the machine that produced the measurement.
///
/// * ≥ 4 cores: the tentpole claim — ≥ 2× at 4 workers.
/// * 2–3 cores: some real parallelism must show up.
/// * 1 core: threads cannot beat one core; require only that the pool
///   does not collapse under oversubscription.
pub fn required_scaling(available_parallelism: u32) -> f64 {
    match available_parallelism {
        0 | 1 => 0.40,
        2 | 3 => 1.15,
        _ => 2.0,
    }
}

fn field_f64(row: &Json, name: &str, ctx: &str) -> Result<f64, String> {
    row.get(name)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{ctx}: missing or non-numeric field \"{name}\""))
}

fn field_str<'a>(row: &'a Json, name: &str, ctx: &str) -> Result<&'a str, String> {
    row.get(name)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{ctx}: missing or non-string field \"{name}\""))
}

fn check_schema(doc: &Json, expected: &str) -> Result<(), String> {
    let schema = field_str(doc, "schema", "document root")?;
    if schema != expected {
        return Err(format!(
            "schema mismatch: expected \"{expected}\", found \"{schema}\""
        ));
    }
    Ok(())
}

/// Validate `BENCH_codecs.json`: schema `doc-bench/codecs/v2`, well-
/// formed rows, and the zero-alloc invariant on every `*_view`/`*_into`
/// row. Returns a human-readable summary on success.
pub fn check_codecs(doc: &Json) -> Result<String, String> {
    check_schema(doc, "doc-bench/codecs/v2")?;
    let rows = doc
        .get("benchmarks")
        .and_then(Json::as_arr)
        .ok_or("document root: missing \"benchmarks\" array")?;
    if rows.is_empty() {
        return Err("\"benchmarks\" array is empty".into());
    }
    let mut zero_copy_rows = 0;
    for (i, row) in rows.iter().enumerate() {
        let ctx = format!("benchmarks[{i}]");
        let name = field_str(row, "name", &ctx)?;
        let ns = field_f64(row, "ns_per_iter", &ctx)?;
        let allocs = field_f64(row, "allocs_per_iter", &ctx)?;
        if !ns.is_finite() || ns <= 0.0 {
            return Err(format!("{ctx} ({name}): ns_per_iter {ns} is not positive"));
        }
        if !allocs.is_finite() || allocs < 0.0 {
            return Err(format!("{ctx} ({name}): allocs_per_iter {allocs} invalid"));
        }
        if name.contains("_view") || name.contains("_into") {
            zero_copy_rows += 1;
            if allocs != 0.0 {
                return Err(format!(
                    "zero-copy row \"{name}\" reports {allocs} allocs/iter (must be exactly 0)"
                ));
            }
        }
    }
    if zero_copy_rows == 0 {
        return Err("no *_view/*_into rows found — zero-alloc gate would be vacuous".into());
    }
    Ok(format!(
        "codecs: {} rows, {} zero-copy rows all at 0 allocs/iter",
        rows.len(),
        zero_copy_rows
    ))
}

/// One parsed row of the proxy artifact.
#[derive(Debug, Clone)]
pub struct ProxyRow {
    /// Transport label (`coap`, `doq`, `doh`, `dot`).
    pub transport: String,
    /// Worker-thread count of the run.
    pub workers: u32,
    /// Closed-loop throughput.
    pub req_per_s: f64,
    /// Median sojourn latency (enqueue → reply), microseconds.
    pub p50_us: f64,
    /// 99th-percentile sojourn latency, microseconds.
    pub p99_us: f64,
    /// Heap allocations per request over the measured window.
    pub allocs_per_req: f64,
    /// Successful cross-worker steals, one entry per worker (v4).
    pub steals_per_worker: Vec<u64>,
}

/// One parsed `recovery` row of the proxy artifact: the congested-
/// bottleneck scenario outcome for one congestion controller.
#[derive(Debug, Clone)]
pub struct RecoveryRow {
    /// Controller label (`fixed_rto`, `cubic`, `bbr_lite`).
    pub controller: String,
    /// Per-frame loss the scenario ran at, permille.
    pub loss_permille: u32,
    /// Queries issued.
    pub queries: u32,
    /// Queries resolved before the deadline.
    pub resolved: u32,
    /// Median resolution latency, ms.
    pub p50_ms: f64,
    /// 99th-percentile resolution latency, ms.
    pub p99_ms: f64,
}

/// Congestion controllers every artifact's `recovery` section must
/// cover (the conformance oracle plus both adaptive controllers).
pub const REQUIRED_CONTROLLERS: [&str; 3] = ["fixed_rto", "cubic", "bbr_lite"];

/// Validate `BENCH_proxy.json` structure and return the parsed
/// throughput rows, recovery rows, and the recorded machine
/// parallelism. Schema v4: every throughput row carries its
/// `transport` and a `steals_per_worker` array with exactly one entry
/// per worker; the CoAP rows must sweep 1/2/4/8 workers; each stream
/// transport (doq/doh/dot) must appear at least once; and the
/// `recovery` section must carry one congested-bottleneck row per
/// congestion controller.
pub fn parse_proxy(doc: &Json) -> Result<(Vec<ProxyRow>, Vec<RecoveryRow>, u32), String> {
    check_schema(doc, "doc-bench/proxy/v4")?;
    let cores = doc
        .get("machine")
        .and_then(|m| m.get("available_parallelism"))
        .and_then(Json::as_f64)
        .ok_or("document root: missing machine.available_parallelism")? as u32;
    if cores == 0 {
        return Err("machine.available_parallelism is 0".into());
    }
    let rows_json = doc
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or("document root: missing \"rows\" array")?;
    let mut rows = Vec::new();
    for (i, row) in rows_json.iter().enumerate() {
        let ctx = format!("rows[{i}]");
        let steals_json = row
            .get("steals_per_worker")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("{ctx}: missing \"steals_per_worker\" array (schema v4)"))?;
        let mut steals_per_worker = Vec::new();
        for (j, s) in steals_json.iter().enumerate() {
            let v = s
                .as_f64()
                .ok_or_else(|| format!("{ctx}: steals_per_worker[{j}] is not a number"))?;
            if !v.is_finite() || v < 0.0 {
                return Err(format!("{ctx}: steals_per_worker[{j}] {v} invalid"));
            }
            steals_per_worker.push(v as u64);
        }
        let parsed = ProxyRow {
            transport: field_str(row, "transport", &ctx)?.to_string(),
            workers: field_f64(row, "workers", &ctx)? as u32,
            req_per_s: field_f64(row, "req_per_s", &ctx)?,
            p50_us: field_f64(row, "p50_us", &ctx)?,
            p99_us: field_f64(row, "p99_us", &ctx)?,
            allocs_per_req: field_f64(row, "allocs_per_req", &ctx)?,
            steals_per_worker,
        };
        let known = parsed.transport == "coap"
            || REQUIRED_STREAM_TRANSPORTS.contains(&parsed.transport.as_str());
        if !known {
            return Err(format!("{ctx}: unknown transport \"{}\"", parsed.transport));
        }
        if parsed.steals_per_worker.len() != parsed.workers as usize {
            return Err(format!(
                "{ctx}: steals_per_worker has {} entries for {} workers",
                parsed.steals_per_worker.len(),
                parsed.workers
            ));
        }
        if parsed.req_per_s <= 0.0 || !parsed.req_per_s.is_finite() {
            return Err(format!("{ctx}: req_per_s {} invalid", parsed.req_per_s));
        }
        if parsed.p50_us > parsed.p99_us {
            return Err(format!(
                "{ctx}: p50 {}µs exceeds p99 {}µs",
                parsed.p50_us, parsed.p99_us
            ));
        }
        rows.push(parsed);
    }
    for w in REQUIRED_WORKER_ROWS {
        if !rows.iter().any(|r| r.transport == "coap" && r.workers == w) {
            return Err(format!("missing coap row for {w} workers"));
        }
    }
    for t in REQUIRED_STREAM_TRANSPORTS {
        if !rows.iter().any(|r| r.transport == t) {
            return Err(format!("missing row for transport \"{t}\""));
        }
    }
    let recovery_json = doc
        .get("recovery")
        .and_then(Json::as_arr)
        .ok_or("document root: missing \"recovery\" array (schema v3)")?;
    let mut recovery = Vec::new();
    for (i, row) in recovery_json.iter().enumerate() {
        let ctx = format!("recovery[{i}]");
        let parsed = RecoveryRow {
            controller: field_str(row, "controller", &ctx)?.to_string(),
            loss_permille: field_f64(row, "loss_permille", &ctx)? as u32,
            queries: field_f64(row, "queries", &ctx)? as u32,
            resolved: field_f64(row, "resolved", &ctx)? as u32,
            p50_ms: field_f64(row, "p50_ms", &ctx)?,
            p99_ms: field_f64(row, "p99_ms", &ctx)?,
        };
        if !REQUIRED_CONTROLLERS.contains(&parsed.controller.as_str()) {
            return Err(format!(
                "{ctx}: unknown controller \"{}\"",
                parsed.controller
            ));
        }
        if parsed.resolved == 0 || parsed.resolved > parsed.queries {
            return Err(format!(
                "{ctx} ({}): resolved {} out of range for {} queries",
                parsed.controller, parsed.resolved, parsed.queries
            ));
        }
        if parsed.p50_ms > parsed.p99_ms {
            return Err(format!(
                "{ctx} ({}): p50 {}ms exceeds p99 {}ms",
                parsed.controller, parsed.p50_ms, parsed.p99_ms
            ));
        }
        recovery.push(parsed);
    }
    for c in REQUIRED_CONTROLLERS {
        if !recovery.iter().any(|r| r.controller == c) {
            return Err(format!("missing recovery row for controller \"{c}\""));
        }
    }
    Ok((rows, recovery, cores))
}

/// Allocations-per-request ceiling on the 4-worker CoAP (sim-path)
/// row: the recycled-buffer pool path must stay below one heap
/// allocation per request in steady state.
pub const MAX_ALLOCS_PER_REQ: f64 = 1.0;

/// Validate `BENCH_proxy.json`; with `require_scaling`, also enforce
/// the 4-vs-1 worker throughput ratio for the measuring machine's
/// parallelism. Two gates are always enforced, because neither
/// depends on the measuring machine: the congested-bottleneck
/// ordering — both adaptive controllers beat the fixed-RTO oracle's
/// p99 under loss (deterministic virtual time) — and the zero-alloc
/// gate — `allocs_per_req <` [`MAX_ALLOCS_PER_REQ`] on the 4-worker
/// CoAP sim-path row (buffer recycling either works or it doesn't).
/// Returns a human-readable summary on success.
pub fn check_proxy(doc: &Json, require_scaling: bool) -> Result<String, String> {
    let (rows, recovery, cores) = parse_proxy(doc)?;
    let sim_row = rows
        .iter()
        .find(|r| r.transport == "coap" && r.workers == 4)
        .expect("presence checked in parse_proxy");
    if sim_row.allocs_per_req >= MAX_ALLOCS_PER_REQ {
        return Err(format!(
            "zero-alloc gate failed: coap 4-worker allocs_per_req {} >= {MAX_ALLOCS_PER_REQ} \
             (the recycled pool path must not allocate per request)",
            sim_row.allocs_per_req
        ));
    }
    let p99 = |c: &str| {
        recovery
            .iter()
            .find(|r| r.controller == c)
            .map(|r| r.p99_ms)
            .expect("presence checked in parse_proxy")
    };
    let fixed_p99 = p99("fixed_rto");
    for adaptive in ["cubic", "bbr_lite"] {
        if p99(adaptive) >= fixed_p99 {
            return Err(format!(
                "recovery gate failed: {adaptive} p99 {}ms not below fixed_rto p99 {}ms \
                 under the congested bottleneck",
                p99(adaptive),
                fixed_p99
            ));
        }
    }
    let rate = |w: u32| {
        rows.iter()
            .find(|r| r.transport == "coap" && r.workers == w)
            .map(|r| r.req_per_s)
            .expect("presence checked in parse_proxy")
    };
    let ratio = rate(4) / rate(1);
    let mut summary = format!(
        "proxy: {} rows, {} recovery rows (fixed_rto p99 {fixed_p99}ms, cubic {}ms, \
         bbr_lite {}ms), coap@4w {:.2} allocs/req ({} steals), machine parallelism \
         {cores}, 4w/1w throughput ratio {ratio:.2}",
        rows.len(),
        recovery.len(),
        p99("cubic"),
        p99("bbr_lite"),
        sim_row.allocs_per_req,
        sim_row.steals_per_worker.iter().sum::<u64>()
    );
    if require_scaling {
        let required = required_scaling(cores);
        if ratio < required {
            return Err(format!(
                "worker scaling gate failed: 4-worker/1-worker throughput ratio {ratio:.2} \
                 < required {required:.2} (machine parallelism {cores}; \
                 1w {:.0} req/s, 4w {:.0} req/s)",
                rate(1),
                rate(4)
            ));
        }
        summary.push_str(&format!(" >= required {required:.2}"));
    }
    Ok(summary)
}

/// One parsed row of the crypto artifact.
#[derive(Debug, Clone)]
pub struct CryptoRow {
    /// Operation name (`ccm/seal`, `ccm/open`, `aes128/encrypt_block`,
    /// `sha256/hash_1k`).
    pub name: String,
    /// Backend label the row was measured on.
    pub backend: String,
    /// Packets (or blocks) per call of the measured routine.
    pub batch: u32,
    /// Per-operation time (per packet for CCM rows).
    pub ns_per_op: f64,
}

/// CCM batch sizes every backend row-set must sweep.
pub const REQUIRED_CRYPTO_BATCHES: [u32; 3] = [1, 4, 8];

/// AES-NI batch-1 seal must beat the scalar reference by this factor
/// (only checked when the measuring machine has AES-NI).
pub const REQUIRED_AESNI_SPEEDUP: f64 = 2.0;

/// Batch-8 sealing must beat batch-1 by this factor on the multi-block
/// backends (`aesni`, `soft`). The scalar reference encrypts one block
/// per call either way — batching only adds bookkeeping there, so it
/// is deliberately exempt.
pub const REQUIRED_BATCH_GAIN: f64 = 1.3;

/// Validate `BENCH_crypto.json` (schema `doc-bench/crypto/v1`): row
/// shapes, the per-backend 1/4/8 CCM seal sweep (`reference` and
/// `soft` always; `aesni` when the artifact says the machine has it),
/// and — when the artifact was produced with a full measurement window
/// (`measure_ms` ≥ 100) — the vectorization bounds: AES-NI ≥ 2× the
/// reference at batch 1, and batch-8 ≥ 1.3× batch-1 on the
/// multi-block backends. Returns a human-readable summary on success.
pub fn check_crypto(doc: &Json) -> Result<String, String> {
    check_schema(doc, "doc-bench/crypto/v1")?;
    let aes_ni = doc
        .get("machine")
        .and_then(|m| m.get("aes_ni"))
        .and_then(Json::as_bool)
        .ok_or("document root: missing boolean machine.aes_ni")?;
    let measure_ms = field_f64(doc, "measure_ms", "document root")?;
    let rows_json = doc
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or("document root: missing \"rows\" array")?;
    let mut rows = Vec::new();
    for (i, row) in rows_json.iter().enumerate() {
        let ctx = format!("rows[{i}]");
        let parsed = CryptoRow {
            name: field_str(row, "name", &ctx)?.to_string(),
            backend: field_str(row, "backend", &ctx)?.to_string(),
            batch: field_f64(row, "batch", &ctx)? as u32,
            ns_per_op: field_f64(row, "ns_per_op", &ctx)?,
        };
        if !["reference", "soft", "aesni", "scalar", "shani"].contains(&parsed.backend.as_str()) {
            return Err(format!("{ctx}: unknown backend \"{}\"", parsed.backend));
        }
        if !parsed.ns_per_op.is_finite() || parsed.ns_per_op <= 0.0 {
            return Err(format!(
                "{ctx} ({}): ns_per_op {} is not positive",
                parsed.name, parsed.ns_per_op
            ));
        }
        rows.push(parsed);
    }
    let seal_ns = |backend: &str, batch: u32| {
        rows.iter()
            .find(|r| r.name == "ccm/seal" && r.backend == backend && r.batch == batch)
            .map(|r| r.ns_per_op)
            .ok_or(format!(
                "missing ccm/seal row for backend \"{backend}\" batch {batch}"
            ))
    };
    let mut backends = vec!["reference", "soft"];
    if aes_ni {
        backends.push("aesni");
    }
    for backend in &backends {
        for batch in REQUIRED_CRYPTO_BATCHES {
            seal_ns(backend, batch)?;
        }
    }
    if !rows
        .iter()
        .any(|r| r.name == "sha256/hash_1k" && r.backend == "scalar")
    {
        return Err("missing sha256/hash_1k row for backend \"scalar\"".into());
    }
    let mut summary = format!(
        "crypto: {} rows, backends [{}], measure window {measure_ms}ms",
        rows.len(),
        backends.join(", ")
    );
    if measure_ms < 100.0 {
        summary.push_str(" (smoke window — timing gates skipped)");
        return Ok(summary);
    }
    if aes_ni {
        let speedup = seal_ns("reference", 1)? / seal_ns("aesni", 1)?;
        if speedup < REQUIRED_AESNI_SPEEDUP {
            return Err(format!(
                "aesni seal gate failed: {speedup:.2}x the reference at batch 1 \
                 < required {REQUIRED_AESNI_SPEEDUP:.1}x"
            ));
        }
        summary.push_str(&format!(", aesni/reference seal {speedup:.2}x"));
    }
    for backend in ["soft", "aesni"] {
        if backend == "aesni" && !aes_ni {
            continue;
        }
        let gain = seal_ns(backend, 1)? / seal_ns(backend, 8)?;
        if gain < REQUIRED_BATCH_GAIN {
            return Err(format!(
                "batch gate failed: {backend} batch-8 seal is {gain:.2}x batch-1 \
                 < required {REQUIRED_BATCH_GAIN:.1}x"
            ));
        }
        summary.push_str(&format!(", {backend} batch gain {gain:.2}x"));
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn codecs_doc(allocs_view: f64) -> String {
        format!(
            r#"{{"schema": "doc-bench/codecs/v2", "benchmarks": [
                {{"name": "dns/encode_query_into", "ns_per_iter": 100.0, "allocs_per_iter": 0.0, "wire_bytes": 42}},
                {{"name": "dns/decode_query_view", "ns_per_iter": 50.0, "allocs_per_iter": {allocs_view}, "wire_bytes": 42}},
                {{"name": "dns/decode_query", "ns_per_iter": 200.0, "allocs_per_iter": 8.0, "wire_bytes": 42}}
            ]}}"#
        )
    }

    fn recovery_rows(fixed_p99: f64, cubic_p99: f64, bbr_p99: f64) -> String {
        let row = |c: &str, p99: f64| {
            format!(
                r#"{{"controller": "{c}", "loss_permille": 20, "queries": 100, "resolved": 100, "p50_ms": 17, "p99_ms": {p99}}}"#
            )
        };
        format!(
            "[{},{},{}]",
            row("fixed_rto", fixed_p99),
            row("cubic", cubic_p99),
            row("bbr_lite", bbr_p99)
        )
    }

    fn proxy_doc_with_recovery(cores: u32, r1: f64, r4: f64, recovery: &str) -> String {
        let row = |t: &str, w: u32, r: f64| {
            let steals = vec!["0"; w as usize].join(", ");
            format!(
                r#"{{"transport": "{t}", "workers": {w}, "req_per_s": {r}, "p50_us": 10.0, "p99_us": 50.0, "allocs_per_req": 0.5, "requests": 1000, "steals_per_worker": [{steals}]}}"#
            )
        };
        format!(
            r#"{{"schema": "doc-bench/proxy/v4", "machine": {{"available_parallelism": {cores}}}, "rows": [{},{},{},{},{},{},{}], "recovery": {recovery}}}"#,
            row("coap", 1, r1),
            row("coap", 2, (r1 + r4) / 2.0),
            row("coap", 4, r4),
            row("coap", 8, r4),
            row("doq", 4, r4),
            row("doh", 4, r4),
            row("dot", 4, r4)
        )
    }

    fn proxy_doc(cores: u32, r1: f64, r4: f64) -> String {
        proxy_doc_with_recovery(cores, r1, r4, &recovery_rows(322.0, 79.0, 83.0))
    }

    #[test]
    fn codecs_gate_passes_clean_artifact() {
        let doc = parse(&codecs_doc(0.0)).unwrap();
        let summary = check_codecs(&doc).unwrap();
        assert!(summary.contains("2 zero-copy rows"));
    }

    #[test]
    fn codecs_gate_rejects_nonzero_alloc_view_row() {
        let doc = parse(&codecs_doc(0.5)).unwrap();
        let err = check_codecs(&doc).unwrap_err();
        assert!(err.contains("decode_query_view"), "{err}");
    }

    #[test]
    fn codecs_gate_rejects_schema_drift_and_shape_errors() {
        let wrong_schema = parse(r#"{"schema": "doc-bench/codecs/v1", "benchmarks": []}"#).unwrap();
        assert!(check_codecs(&wrong_schema).unwrap_err().contains("schema"));
        let empty = parse(r#"{"schema": "doc-bench/codecs/v2", "benchmarks": []}"#).unwrap();
        assert!(check_codecs(&empty).unwrap_err().contains("empty"));
        let missing_field = parse(
            r#"{"schema": "doc-bench/codecs/v2", "benchmarks": [{"name": "a_view", "ns_per_iter": 1.0}]}"#,
        )
        .unwrap();
        assert!(check_codecs(&missing_field)
            .unwrap_err()
            .contains("allocs_per_iter"));
    }

    #[test]
    fn proxy_gate_scaling_threshold_follows_parallelism() {
        assert_eq!(required_scaling(1), 0.40);
        assert_eq!(required_scaling(2), 1.15);
        assert_eq!(required_scaling(4), 2.0);
        assert_eq!(required_scaling(16), 2.0);
        // 4 cores, 2.5× scaling: passes.
        let good = parse(&proxy_doc(4, 100_000.0, 250_000.0)).unwrap();
        assert!(check_proxy(&good, true).is_ok());
        // 4 cores, 1.5× scaling: fails the tentpole gate.
        let bad = parse(&proxy_doc(4, 100_000.0, 150_000.0)).unwrap();
        assert!(check_proxy(&bad, true).unwrap_err().contains("scaling"));
        // 1 core, 0.8× — fine there (no collapse), and the same
        // artifact passes without the scaling gate anywhere.
        let one_core = parse(&proxy_doc(1, 100_000.0, 80_000.0)).unwrap();
        assert!(check_proxy(&one_core, true).is_ok());
        assert!(check_proxy(&bad, false).is_ok());
    }

    #[test]
    fn proxy_gate_requires_all_worker_rows() {
        let doc = parse(
            r#"{"schema": "doc-bench/proxy/v4", "machine": {"available_parallelism": 4},
                "rows": [{"transport": "coap", "workers": 1, "req_per_s": 1.0, "p50_us": 1.0, "p99_us": 2.0, "allocs_per_req": 1.0, "steals_per_worker": [0]}]}"#,
        )
        .unwrap();
        assert!(check_proxy(&doc, false).unwrap_err().contains("2 workers"));
    }

    #[test]
    fn proxy_gate_requires_stream_transport_rows() {
        // A v2 artifact with only the CoAP sweep must be rejected: the
        // DoQ/DoH/DoT workloads cannot silently drop out of CI.
        let row = |w: u32| {
            let steals = vec!["0"; w as usize].join(", ");
            format!(
                r#"{{"transport": "coap", "workers": {w}, "req_per_s": 1.0, "p50_us": 1.0, "p99_us": 2.0, "allocs_per_req": 0.5, "steals_per_worker": [{steals}]}}"#
            )
        };
        let doc = parse(&format!(
            r#"{{"schema": "doc-bench/proxy/v4", "machine": {{"available_parallelism": 4}}, "rows": [{},{},{},{}]}}"#,
            row(1),
            row(2),
            row(4),
            row(8)
        ))
        .unwrap();
        let err = check_proxy(&doc, false).unwrap_err();
        assert!(err.contains("doq"), "{err}");
        // v1 artifacts (no transport field) fail the schema check.
        let v1 = parse(r#"{"schema": "doc-bench/proxy/v1", "machine": {"available_parallelism": 4}, "rows": []}"#).unwrap();
        assert!(check_proxy(&v1, false).unwrap_err().contains("schema"));
        // Unknown transport labels are rejected.
        let doc = parse(
            r#"{"schema": "doc-bench/proxy/v4", "machine": {"available_parallelism": 4},
                "rows": [{"transport": "smtp", "workers": 1, "req_per_s": 1.0, "p50_us": 1.0, "p99_us": 2.0, "allocs_per_req": 1.0, "steals_per_worker": [0]}]}"#,
        )
        .unwrap();
        assert!(check_proxy(&doc, false)
            .unwrap_err()
            .contains("unknown transport"));
    }

    /// Crypto artifact with tunable aesni batch-1/batch-8 seal times
    /// (reference pinned at 2000ns b1, and — like the real scalar
    /// path — *slower* per packet when batched).
    fn crypto_doc(aes_ni: bool, measure_ms: u32, aesni_b1: f64, aesni_b8: f64) -> String {
        let row = |name: &str, backend: &str, batch: u32, ns: f64| {
            format!(
                r#"{{"name": "{name}", "backend": "{backend}", "batch": {batch}, "ns_per_op": {ns}, "bytes_per_op": 64}}"#
            )
        };
        let mut rows = vec![
            row("ccm/seal", "reference", 1, 2000.0),
            row("ccm/seal", "reference", 4, 2400.0),
            row("ccm/seal", "reference", 8, 2500.0),
            row("ccm/seal", "soft", 1, 9000.0),
            row("ccm/seal", "soft", 4, 5000.0),
            row("ccm/seal", "soft", 8, 4500.0),
            row("sha256/hash_1k", "scalar", 1, 5000.0),
        ];
        if aes_ni {
            rows.push(row("ccm/seal", "aesni", 1, aesni_b1));
            rows.push(row("ccm/seal", "aesni", 4, (aesni_b1 + aesni_b8) / 2.0));
            rows.push(row("ccm/seal", "aesni", 8, aesni_b8));
        }
        format!(
            r#"{{"schema": "doc-bench/crypto/v1", "machine": {{"aes_ni": {aes_ni}, "sha_ni": false}}, "active_backend": "{}", "measure_ms": {measure_ms}, "rows": [{}]}}"#,
            if aes_ni { "aesni" } else { "soft" },
            rows.join(",")
        )
    }

    #[test]
    fn crypto_gate_passes_clean_artifact() {
        let doc = parse(&crypto_doc(true, 200, 450.0, 300.0)).unwrap();
        let summary = check_crypto(&doc).unwrap();
        assert!(summary.contains("aesni/reference seal 4.44x"), "{summary}");
        assert!(summary.contains("aesni batch gain 1.50x"), "{summary}");
        // No AES-NI: the aesni rows and speedup gate are not required.
        let no_ni = parse(&crypto_doc(false, 200, 0.0, 0.0)).unwrap();
        assert!(check_crypto(&no_ni).is_ok());
    }

    #[test]
    fn crypto_gate_enforces_aesni_speedup_and_batch_gain() {
        // aesni only 1.6× the reference at batch 1: below the 2× bar.
        let slow = parse(&crypto_doc(true, 200, 1250.0, 800.0)).unwrap();
        assert!(check_crypto(&slow).unwrap_err().contains("aesni seal gate"));
        // Batched sealing barely better than unbatched on aesni.
        let flat = parse(&crypto_doc(true, 200, 450.0, 400.0)).unwrap();
        assert!(check_crypto(&flat).unwrap_err().contains("batch gate"));
        // The reference backend rows are batched-slower by construction
        // in every passing fixture above — proving it is exempt.
    }

    #[test]
    fn crypto_gate_skips_timing_on_smoke_windows() {
        // Same failing numbers, 25ms window: schema still validated,
        // timing gates skipped.
        let doc = parse(&crypto_doc(true, 25, 1250.0, 1250.0)).unwrap();
        let summary = check_crypto(&doc).unwrap();
        assert!(summary.contains("smoke window"), "{summary}");
    }

    #[test]
    fn crypto_gate_rejects_shape_errors() {
        let v0 = parse(r#"{"schema": "doc-bench/crypto/v0", "rows": []}"#).unwrap();
        assert!(check_crypto(&v0).unwrap_err().contains("schema"));
        // machine.aes_ni true but no aesni rows: the sweep is required.
        let mut doc = crypto_doc(false, 200, 0.0, 0.0);
        doc = doc.replace(r#""aes_ni": false"#, r#""aes_ni": true"#);
        let err = check_crypto(&parse(&doc).unwrap()).unwrap_err();
        assert!(err.contains(r#"backend "aesni" batch 1"#), "{err}");
        // Unknown backend label.
        let bad = crypto_doc(true, 200, 450.0, 300.0).replace("\"soft\"", "\"neon\"");
        assert!(check_crypto(&parse(&bad).unwrap())
            .unwrap_err()
            .contains("unknown backend"));
        // Non-positive timing.
        let zero =
            crypto_doc(true, 200, 450.0, 300.0).replace("\"ns_per_op\": 9000", "\"ns_per_op\": 0");
        assert!(check_crypto(&parse(&zero).unwrap())
            .unwrap_err()
            .contains("not positive"));
    }

    #[test]
    fn proxy_gate_requires_recovery_rows_and_orders_p99() {
        // All three controllers present with the adaptive ones faster:
        // passes (covered by proxy_doc). An adaptive p99 at or above
        // the oracle's fails the ordering gate.
        let slow_cubic = parse(&proxy_doc_with_recovery(
            4,
            1.0,
            2.0,
            &recovery_rows(322.0, 322.0, 79.0),
        ))
        .unwrap();
        let err = check_proxy(&slow_cubic, false).unwrap_err();
        assert!(err.contains("cubic p99"), "{err}");
        let slow_bbr = parse(&proxy_doc_with_recovery(
            4,
            1.0,
            2.0,
            &recovery_rows(322.0, 79.0, 400.0),
        ))
        .unwrap();
        let err = check_proxy(&slow_bbr, false).unwrap_err();
        assert!(err.contains("bbr_lite p99"), "{err}");
        // A controller row missing entirely is a schema violation.
        let doc = parse(&proxy_doc_with_recovery(
            4,
            1.0,
            2.0,
            r#"[{"controller": "fixed_rto", "loss_permille": 20, "queries": 100, "resolved": 100, "p50_ms": 17, "p99_ms": 322}]"#,
        ))
        .unwrap();
        let missing = check_proxy(&doc, false).unwrap_err();
        assert!(missing.contains("missing recovery row"), "{missing}");
        // Unknown controller labels and impossible resolved counts are
        // rejected.
        let unknown = recovery_rows(322.0, 79.0, 83.0).replace("\"cubic\"", "\"reno\"");
        let doc = parse(&proxy_doc_with_recovery(4, 1.0, 2.0, &unknown)).unwrap();
        assert!(check_proxy(&doc, false)
            .unwrap_err()
            .contains("unknown controller"));
        let none_resolved =
            recovery_rows(322.0, 79.0, 83.0).replace("\"resolved\": 100", "\"resolved\": 0");
        let doc = parse(&proxy_doc_with_recovery(4, 1.0, 2.0, &none_resolved)).unwrap();
        assert!(check_proxy(&doc, false).unwrap_err().contains("resolved"));
        // A v2 artifact (no recovery section) fails the schema check.
        let v2 = parse(r#"{"schema": "doc-bench/proxy/v2", "machine": {"available_parallelism": 4}, "rows": []}"#).unwrap();
        assert!(check_proxy(&v2, false).unwrap_err().contains("schema"));
    }

    #[test]
    fn proxy_gate_rejects_inverted_percentiles() {
        let doc = parse(
            r#"{"schema": "doc-bench/proxy/v4", "machine": {"available_parallelism": 4},
                "rows": [{"transport": "coap", "workers": 1, "req_per_s": 1.0, "p50_us": 9.0, "p99_us": 2.0, "allocs_per_req": 1.0, "steals_per_worker": [0]}]}"#,
        )
        .unwrap();
        assert!(check_proxy(&doc, false).unwrap_err().contains("p50"));
    }

    #[test]
    fn proxy_gate_requires_steal_counts_per_worker() {
        // v3 artifacts (no steals_per_worker field) fail the schema
        // version check outright.
        let v3 = parse(r#"{"schema": "doc-bench/proxy/v3", "machine": {"available_parallelism": 4}, "rows": []}"#).unwrap();
        assert!(check_proxy(&v3, false).unwrap_err().contains("schema"));
        // A v4 row without the array is rejected…
        let missing = proxy_doc(4, 1.0, 2.0).replacen(r#", "steals_per_worker": [0]"#, "", 1);
        let err = check_proxy(&parse(&missing).unwrap(), false).unwrap_err();
        assert!(err.contains("steals_per_worker"), "{err}");
        // …and so is one whose length does not match its worker count.
        let short = proxy_doc(4, 1.0, 2.0).replacen(
            r#""steals_per_worker": [0, 0, 0, 0]"#,
            r#""steals_per_worker": [0, 0]"#,
            1,
        );
        let err = check_proxy(&parse(&short).unwrap(), false).unwrap_err();
        assert!(err.contains("2 entries for 4 workers"), "{err}");
    }

    #[test]
    fn proxy_gate_enforces_zero_alloc_on_sim_path() {
        // The 4-worker coap row is the sim-path measurement: at or
        // above 1 alloc/req the recycling pass has regressed, and the
        // gate fails regardless of the scaling flag.
        let doc = proxy_doc(4, 100_000.0, 250_000.0);
        let coap4 = r#""transport": "coap", "workers": 4, "req_per_s": 250000, "p50_us": 10.0, "p99_us": 50.0, "allocs_per_req": 0.5"#;
        let leaky = doc.replacen("\"allocs_per_req\": 0.5", "\"allocs_per_req\": 19.0", 3);
        // Sanity: the replacement must actually have hit the coap@4 row.
        assert!(!leaky.contains(coap4));
        let err = check_proxy(&parse(&leaky).unwrap(), false).unwrap_err();
        assert!(err.contains("zero-alloc gate"), "{err}");
        // Stream rows may allocate; only the coap sim path is gated.
        let stream_leaky = proxy_doc(4, 100_000.0, 250_000.0).replace(
            r#""transport": "doq", "workers": 4, "req_per_s": 250000, "p50_us": 10.0, "p99_us": 50.0, "allocs_per_req": 0.5"#,
            r#""transport": "doq", "workers": 4, "req_per_s": 250000, "p50_us": 10.0, "p99_us": 50.0, "allocs_per_req": 12.0"#,
        );
        check_proxy(&parse(&stream_leaky).unwrap(), false)
            .expect("stream-row allocations are not gated");
    }
}
