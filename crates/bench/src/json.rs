//! A minimal JSON parser for the CI bench gates.
//!
//! The build environment is offline (no serde), and the gate only has
//! to read the small `BENCH_*.json` artifacts this workspace itself
//! emits — so a strict, dependency-free recursive-descent parser is
//! the right size. It accepts exactly RFC 8259 JSON (objects, arrays,
//! strings with escapes, numbers, booleans, null) and rejects
//! everything else with a byte-offset error, which is the point: the
//! previous `grep`-based gate silently matched garbage.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true`/`false`
    Bool(bool),
    /// Any number (parsed as f64, which covers the bench artifacts).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (sorted keys; duplicate keys are rejected).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member `key` of an object, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serialize back to a compact JSON document. Re-parsing the
    /// output yields a value equal to `self`: `f64`'s `Display` is the
    /// shortest decimal that parses back to the same bits (and never
    /// produces exponent or non-finite forms for values [`parse`]
    /// admits), and object keys are unique and already sorted by the
    /// `BTreeMap`.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.encode_into(&mut out);
        out
    }

    /// Append the compact serialization of `self` to `out`.
    pub fn encode_into(&self, out: &mut String) {
        use std::fmt::Write;
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write!(out, "{n}").expect("write to String"),
            Json::Str(s) => encode_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.encode_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    encode_string(key, out);
                    out.push(':');
                    value.encode_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn encode_string(s: &str, out: &mut String) {
    use std::fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32).expect("write to String"),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure at a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset in the input where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Maximum container nesting depth. The recursive-descent parser
/// recurses once per `[`/`{`, so without a bound a pathological
/// document like 100 000 open brackets would overflow the stack — a
/// *panic*, exactly what a gate must never do on bad input. The bench
/// artifacts nest 3 deep.
pub const MAX_DEPTH: usize = 128;

/// Parse a complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            at: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn enter(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        Ok(())
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        self.enter()?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            if map.insert(key.clone(), val).is_some() {
                return Err(self.err(&format!("duplicate key \"{key}\"")));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are not paired up — the bench
                            // artifacts are ASCII; reject instead of
                            // mis-decoding.
                            let c = char::from_u32(cp)
                                .ok_or_else(|| self.err("surrogate \\u escape unsupported"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is &str, so slicing
                    // on char boundaries is safe via chars()).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // RFC 8259 int part: a lone `0`, or a nonzero digit followed
        // by any digits — `01` is not a JSON number.
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    return Err(self.err("leading zero in number"));
                }
            }
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("digit required after decimal point"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("digit required in exponent"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        // Overflowing literals like `1e999` parse to infinity, which
        // would smuggle a non-finite value through `Num` — and could
        // never be serialized back to valid JSON. Reject them (found
        // by the differential fuzz harness's re-encode check).
        match text.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(Json::Num(v)),
            Ok(_) => Err(self.err("number overflows the finite f64 range")),
            Err(_) => Err(self.err("invalid number")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bench_shaped_document() {
        let doc = r#"{
  "schema": "doc-bench/codecs/v2",
  "benchmarks": [
    {"name": "dns/encode_query_into", "ns_per_iter": 99.6, "allocs_per_iter": 0.000, "wire_bytes": 42},
    {"name": "dns/decode_response", "ns_per_iter": 370.0, "allocs_per_iter": 12.000, "wire_bytes": 58}
  ]
}"#;
        let v = parse(doc).unwrap();
        assert_eq!(
            v.get("schema").and_then(Json::as_str),
            Some("doc-bench/codecs/v2")
        );
        let rows = v.get("benchmarks").and_then(Json::as_arr).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[0].get("allocs_per_iter").and_then(Json::as_f64),
            Some(0.0)
        );
        assert_eq!(rows[1].get("wire_bytes").and_then(Json::as_f64), Some(58.0));
    }

    #[test]
    fn parses_scalars_and_nesting() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse(" -12.5e2 ").unwrap(), Json::Num(-1250.0));
        assert_eq!(parse(r#""a\nbA""#).unwrap(), Json::Str("a\nbA".into()));
        let v = parse(r#"[1, [2, {"x": []}]]"#).unwrap();
        assert!(matches!(v, Json::Arr(_)));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1,}",
            "tru",
            "1 2",
            "\"unterminated",
            "{\"a\":1,\"a\":2}",
            "nan",
            "[01x]",
            "[01]",
            "{\"x\": 1.}",
            "[1e]",
            "[-]",
            "[.5]",
        ] {
            assert!(parse(bad).is_err(), "accepted: {bad:?}");
        }
        // ...while every RFC 8259 number form still parses.
        for good in ["0", "-0", "-0.5", "10", "1e9", "1.25E-2"] {
            assert!(parse(good).is_ok(), "rejected: {good:?}");
        }
    }

    #[test]
    fn non_finite_numbers_rejected() {
        assert!(parse("1e999").is_err());
        assert!(parse("-1e999").is_err());
        assert!(parse("[1e400]").is_err());
        assert!(parse("1e308").is_ok()); // largest finite decade
    }

    #[test]
    fn encode_roundtrips_compact_form() {
        let doc = r#"{"a":[1,2.5,-3,true,null,"x\n\"y\\z"],"b":{"k":0.1},"c":""}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.encode(), doc, "compact form is canonical");
        assert_eq!(parse(&v.encode()).unwrap(), v);
        // Control characters escape as \u00XX and survive the trip.
        let v = parse("\"\\u0001\\u001f\"").unwrap();
        assert_eq!(v.encode(), "\"\\u0001\\u001f\"");
        assert_eq!(parse(&v.encode()).unwrap(), v);
    }

    #[test]
    fn error_carries_offset() {
        let e = parse("[1, x]").unwrap_err();
        assert_eq!(e.at, 4);
        assert!(e.to_string().contains("byte 4"));
    }

    /// The malformed-input corpus: every pathological shape an
    /// attacker-controlled (or merely corrupted) artifact could take
    /// must produce an `Err`, never a panic, a stack overflow, or a
    /// silent acceptance. This is the gate binary's first line of
    /// defence — `bench_gate` runs unattended in CI.
    #[test]
    fn malformed_corpus_errors_instead_of_panicking() {
        let corpus: Vec<String> = vec![
            // Unterminated strings, in every position.
            "\"never ends".into(),
            "{\"key".into(),
            "{\"key\": \"value".into(),
            "[\"a\", \"b".into(),
            "\"ends in escape\\".into(),
            // Bad escapes.
            "\"\\q\"".into(),
            "\"\\u12\"".into(),
            "\"\\uZZZZ\"".into(),
            "\"\\uD800\"".into(), // lone surrogate
            "\"\\x41\"".into(),
            // Duplicate keys (RFC 8259 allows, this gate rejects —
            // a duplicated "req_per_s" must not silently win).
            "{\"a\": 1, \"a\": 2}".into(),
            "{\"rows\": [], \"rows\": []}".into(),
            // Deep nesting: far past MAX_DEPTH; without the depth
            // bound these overflow the parser's stack.
            "[".repeat(100_000),
            format!("{}1{}", "[".repeat(100_000), "]".repeat(100_000)),
            "{\"a\":".repeat(50_000) + "1",
            format!("{}null{}", "[[[[[[".repeat(30_000), "]]]]]]".repeat(30_000)),
            // Structural garbage.
            "{]".into(),
            "[}".into(),
            "{,}".into(),
            "[1 2]".into(),
            "{\"a\" 1}".into(),
            "{1: 2}".into(),
            "+1".into(),
            "Infinity".into(),
            "NaN".into(),
            "'single'".into(),
            "\u{FEFF}{}".into(), // BOM is not JSON whitespace
        ];
        for bad in &corpus {
            let head: String = bad.chars().take(40).collect();
            assert!(parse(bad).is_err(), "silently accepted: {head:?}…");
        }
        // The depth bound is exact: MAX_DEPTH nests parse, one more
        // does not.
        let ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(parse(&ok).is_ok());
        let over = format!(
            "{}1{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        let err = parse(&over).unwrap_err();
        assert!(err.msg.contains("nesting"), "{err}");
        // Sibling containers do not accumulate depth.
        let wide = format!("[{}]", vec!["[1]"; 1000].join(","));
        assert!(parse(&wide).is_ok());
    }
}
