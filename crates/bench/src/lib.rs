//! `doc-bench` — the evaluation harness.
//!
//! One binary per table/figure of the paper (see DESIGN.md's experiment
//! index) regenerates the corresponding rows/series on stdout:
//!
//! | target | reproduces |
//! |---|---|
//! | `table1` | Table 1 — transport feature matrix |
//! | `table3` | Table 3 — name-length statistics |
//! | `table4` | Table 4 — record-type mix |
//! | `table5` | Table 5 — method comparison |
//! | `fig1` | Fig. 1 — name-length densities |
//! | `fig3` | Fig. 3 — DoH-like caching sequence |
//! | `fig5` | Fig. 5 — ROM/RAM per transport |
//! | `fig6` | Fig. 6 — link-layer packet sizes |
//! | `fig7` | Fig. 7 — resolution-time CDFs |
//! | `fig8` | Fig. 8 — code sizes incl. QUIC |
//! | `fig9` | Fig. 9 — DoQ penalty sweep |
//! | `fig10` | Fig. 10 — link utilization under caching |
//! | `fig11` | Fig. 11 — retransmission/cache-event scatter |
//! | `fig12` | Fig. 12 — block-wise transfer sequences |
//! | `fig14` | Fig. 14 — block-wise packet sizes |
//! | `fig15` | Fig. 15 — block-wise resolution CDFs |
//! | `compression` | §7 — dns+cbor compression |
//!
//! `cargo bench -p doc-bench` additionally runs the Criterion
//! micro-benchmarks (`codecs`, `crypto`, `ablations`).

pub mod alloc_counter;
pub mod gate;
pub mod json;
pub mod throughput;

/// Render a labelled CDF as text rows (latency ms → cumulative
/// fraction) at the given probe points.
pub fn cdf_rows(latencies_ms: &[u64], total: usize, probes: &[u64]) -> Vec<(u64, f64)> {
    probes
        .iter()
        .map(|&p| {
            let n = latencies_ms.iter().filter(|&&l| l <= p).count();
            (p, n as f64 / total.max(1) as f64)
        })
        .collect()
}

/// Pretty-print a fraction as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:5.1}%", x * 100.0)
}

/// A `✓`/`✘` cell.
pub fn check(b: bool) -> &'static str {
    if b {
        "✓"
    } else {
        "✘"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_rows_monotone() {
        let lat = vec![10, 20, 30, 40, 1000];
        let rows = cdf_rows(&lat, 5, &[0, 15, 35, 2000]);
        assert_eq!(rows[0].1, 0.0);
        assert_eq!(rows[1].1, 0.2);
        assert_eq!(rows[2].1, 0.6);
        assert_eq!(rows[3].1, 1.0);
        assert!(rows.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn cdf_counts_failures_via_total() {
        // 5 queries, only 3 resolved: CDF tops out at 0.6.
        let lat = vec![10, 20, 30];
        let rows = cdf_rows(&lat, 5, &[100]);
        assert_eq!(rows[0].1, 0.6);
    }

    #[test]
    fn format_helpers() {
        assert_eq!(pct(0.5), " 50.0%");
        assert_eq!(check(true), "✓");
        assert_eq!(check(false), "✘");
    }
}
