//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! ETag strategies, cache-key canonicalization, compression formats
//! and block sizes.

use criterion::{criterion_group, criterion_main, Criterion};
use doc_core::policy::{prepare_response, CachePolicy};
use doc_core::transport::{dns_response_bytes, experiment_name};
use doc_dns::{cbor_fmt, Message, Question, RecordType};
use std::hint::black_box;

fn ablation_benches(c: &mut Criterion) {
    let name = experiment_name(0);
    let response = Message::decode(&dns_response_bytes(&name, RecordType::Aaaa, 300)).unwrap();

    // ETag strategy ablation: DoH-like hashes the full (TTL-bearing)
    // payload; EOL TTLs rewrites TTLs first. Same cost class, but EOL
    // buys stable ETags.
    c.bench_function("ablation/prepare_response_doh_like", |b| {
        b.iter(|| prepare_response(CachePolicy::DohLike, black_box(&response)))
    });
    c.bench_function("ablation/prepare_response_eol_ttls", |b| {
        b.iter(|| prepare_response(CachePolicy::EolTtls, black_box(&response)))
    });

    // DNS-ID canonicalization: the cost of the deterministic cache key.
    c.bench_function("ablation/canonicalize_and_encode", |b| {
        b.iter(|| {
            let mut m = response.clone();
            m.canonicalize_id();
            m.sort_answers();
            m.encode()
        })
    });

    // Message format ablation: wire format vs dns+cbor.
    let q = Question::new(name.clone(), RecordType::Aaaa);
    c.bench_function("ablation/encode_wire_format", |b| {
        b.iter(|| black_box(&response).encode())
    });
    c.bench_function("ablation/encode_dns_cbor", |b| {
        b.iter(|| cbor_fmt::encode_response(black_box(&response), black_box(&q)))
    });

    // Block-size ablation: slicing a response body.
    for size in [16usize, 32, 64] {
        c.bench_function(format!("ablation/block2_slice_{size}B"), |b| {
            let body = dns_response_bytes(&name, RecordType::Aaaa, 300);
            b.iter(|| {
                let server = doc_coap::block::Block2Server::new(body.clone(), size).unwrap();
                let mut num = 0;
                let mut total = 0usize;
                loop {
                    let (slice, block) = server.block(num, size).unwrap();
                    total += slice.len();
                    if !block.more {
                        break;
                    }
                    num += 1;
                }
                total
            })
        });
    }
}

criterion_group!(benches, ablation_benches);
criterion_main!(benches);
