//! Criterion micro-benchmarks for the protocol codecs that every
//! figure's packet construction relies on.

use criterion::{criterion_group, criterion_main, Criterion};
use doc_coap::msg::{CoapMessage, Code, MsgType};
use doc_coap::opt::{CoapOption, OptionNumber};
use doc_core::method::{build_request, DocMethod};
use doc_core::transport::{dns_query_bytes, dns_response_bytes, experiment_name};
use doc_dns::{cbor_fmt, Message, Question, RecordType};
use std::hint::black_box;

fn dns_benches(c: &mut Criterion) {
    let name = experiment_name(0);
    let query = dns_query_bytes(&name, RecordType::Aaaa);
    let response = dns_response_bytes(&name, RecordType::Aaaa, 300);
    c.bench_function("dns/encode_query", |b| {
        let mut m = Message::query(0, name.clone(), RecordType::Aaaa);
        m.canonicalize_id();
        b.iter(|| black_box(&m).encode())
    });
    c.bench_function("dns/decode_query", |b| {
        b.iter(|| Message::decode(black_box(&query)).unwrap())
    });
    c.bench_function("dns/decode_response", |b| {
        b.iter(|| Message::decode(black_box(&response)).unwrap())
    });
    c.bench_function("dns/cbor_encode_response", |b| {
        let msg = Message::decode(&response).unwrap();
        let q = Question::new(name.clone(), RecordType::Aaaa);
        b.iter(|| cbor_fmt::encode_response(black_box(&msg), black_box(&q)))
    });
}

fn coap_benches(c: &mut Criterion) {
    let name = experiment_name(0);
    let query = dns_query_bytes(&name, RecordType::Aaaa);
    let fetch = build_request(DocMethod::Fetch, &query, MsgType::Con, 1, vec![1, 2]).unwrap();
    let wire = fetch.encode();
    c.bench_function("coap/encode_fetch", |b| {
        b.iter(|| black_box(&fetch).encode())
    });
    c.bench_function("coap/decode_fetch", |b| {
        b.iter(|| CoapMessage::decode(black_box(&wire)).unwrap())
    });
    c.bench_function("coap/cache_key_fetch", |b| {
        b.iter(|| doc_coap::cache::cache_key(black_box(&fetch)))
    });
    c.bench_function("coap/build_get_request", |b| {
        b.iter(|| {
            build_request(DocMethod::Get, black_box(&query), MsgType::Con, 1, vec![1]).unwrap()
        })
    });
    let resp = CoapMessage::ack_response(&fetch, Code::CONTENT)
        .with_option(CoapOption::new(OptionNumber::ETAG, vec![1; 8]))
        .with_option(CoapOption::uint(OptionNumber::MAX_AGE, 300))
        .with_payload(dns_response_bytes(&name, RecordType::Aaaa, 300));
    c.bench_function("coap/encode_response", |b| {
        b.iter(|| black_box(&resp).encode())
    });
}

fn security_benches(c: &mut Criterion) {
    use doc_oscore::context::SecurityContext;
    use doc_oscore::protect::OscoreEndpoint;
    let name = experiment_name(0);
    let query = dns_query_bytes(&name, RecordType::Aaaa);
    let fetch = build_request(DocMethod::Fetch, &query, MsgType::Con, 1, vec![1, 2]).unwrap();
    let secret = b"0123456789abcdef";
    c.bench_function("oscore/derive_context", |b| {
        b.iter(|| SecurityContext::derive(black_box(secret), b"salt", &[], &[1]))
    });
    c.bench_function("oscore/protect_request", |b| {
        let mut ep = OscoreEndpoint::new(SecurityContext::derive(secret, b"s", &[], &[1]), false);
        b.iter(|| ep.protect_request(black_box(&fetch)).unwrap())
    });
    c.bench_function("oscore/roundtrip", |b| {
        let mut client =
            OscoreEndpoint::new(SecurityContext::derive(secret, b"s", &[], &[1]), false);
        let mut server =
            OscoreEndpoint::new(SecurityContext::derive(secret, b"s", &[1], &[]), false);
        b.iter(|| {
            let (outer, _) = client.protect_request(black_box(&fetch)).unwrap();
            server.unprotect_request(&outer).unwrap()
        })
    });
    c.bench_function("dtls/protect_record", |b| {
        let cs = doc_dtls::record::CipherState::new(&[7u8; 16], [1, 2, 3, 4]);
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            cs.seal(
                doc_dtls::record::ContentType::ApplicationData,
                1,
                seq,
                black_box(&query),
            )
            .unwrap()
        })
    });
}

fn sixlowpan_benches(c: &mut Criterion) {
    c.bench_function("sixlowpan/fragment_plan_250B", |b| {
        b.iter(|| doc_sixlowpan::fragment_plan(black_box(250)))
    });
    c.bench_function("sixlowpan/fragment_reassemble_250B", |b| {
        let datagram = vec![0xA5u8; 250];
        b.iter(|| {
            let mut f = doc_sixlowpan::frag::Fragmenter::new();
            let frames = f.fragment(black_box(&datagram), 102).unwrap();
            let mut r = doc_sixlowpan::frag::Reassembler::new();
            let mut out = None;
            for fr in &frames {
                if let Some(d) = r.push(fr).unwrap() {
                    out = Some(d);
                }
            }
            out.unwrap()
        })
    });
}

criterion_group!(
    benches,
    dns_benches,
    coap_benches,
    security_benches,
    sixlowpan_benches
);
criterion_main!(benches);
