//! Crypto-substrate micro-benchmarks: every AES backend (scalar
//! reference / bitsliced soft / AES-NI), batched vs. unbatched CCM
//! sealing, the in-place open path, and both SHA-256 compression loops.
//!
//! Emits `BENCH_crypto.json` (schema `doc-bench/crypto/v1`) at the
//! workspace root (override the path with `BENCH_CRYPTO_JSON`): one row
//! per (operation, backend, batch size), with `ns_per_op` normalized
//! **per packet** on the CCM rows so batch-1 and batch-8 rows compare
//! directly. `bench_gate --crypto` validates the artifact and enforces
//! the vectorization claims on full measurement windows:
//!
//! * AES-NI seal ≥ 2× the scalar reference at batch 1 (when the
//!   machine has AES-NI);
//! * batch-8 sealing ≥ 1.3× batch-1 on the multi-block backends
//!   (AES-NI and soft) — the scalar reference encrypts one block at a
//!   time either way, gains nothing from batching, and is exempt.
//!
//! The same bounds are asserted in-process on full windows so
//! `cargo bench -p doc-bench --bench crypto` fails loudly without the
//! gate; smoke runs (`BENCH_MEASURE_MS` < 100) print the observed
//! ratios instead. The batch-1 rows drive `seal_suffix_in_place` (the
//! single-packet DTLS/OSCORE path); larger batches drive
//! `seal_suffix_batch` (what the proxy pool's drain amortizes).

use std::time::{Duration, Instant};

use doc_bench::alloc_counter::CountingAllocator;
use doc_crypto::aes::Aes128;
use doc_crypto::backend::{sha_ni_active, sha_ni_detected, Backend};
use doc_crypto::ccm::{AesCcm, SealRequest};
use doc_crypto::sha256::{sha256, sha256_portable};

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

struct Row {
    name: &'static str,
    backend: &'static str,
    batch: usize,
    /// Per-operation time: per packet for CCM rows (regardless of
    /// batch size), per block for AES rows, per hash for SHA rows.
    ns_per_op: f64,
    bytes_per_op: usize,
}

fn env_ms(var: &str, default_ms: u64) -> Duration {
    Duration::from_millis(
        std::env::var(var)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default_ms),
    )
}

/// Warm up, size an iteration count from the observed rate, then time.
/// `ops_per_iter` divides the per-iteration time so multi-packet
/// routines report per-packet numbers.
fn run(
    name: &'static str,
    backend: &'static str,
    batch: usize,
    bytes_per_op: usize,
    ops_per_iter: usize,
    mut routine: impl FnMut(),
) -> Row {
    let warmup = env_ms("BENCH_WARMUP_MS", 50);
    let measure = env_ms("BENCH_MEASURE_MS", 200);
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    while warm_start.elapsed() < warmup {
        routine();
        warm_iters += 1;
    }
    let per_iter = warm_start.elapsed().as_nanos().max(1) / u128::from(warm_iters.max(1));
    let iters = (measure.as_nanos() / per_iter.max(1)).clamp(1, u128::from(u64::MAX)) as u64;
    let start = Instant::now();
    for _ in 0..iters {
        routine();
    }
    let elapsed = start.elapsed();
    Row {
        name,
        backend,
        batch,
        ns_per_op: elapsed.as_nanos() as f64 / (iters as f64 * ops_per_iter as f64),
        bytes_per_op,
    }
}

fn emit_json(rows: &[Row], measure_ms: u64, active: &str, path: &str) -> std::io::Result<()> {
    let mut json = format!(
        "{{\n  \"schema\": \"doc-bench/crypto/v1\",\n  \"machine\": {{\"aes_ni\": {}, \"sha_ni\": {}}},\n  \"active_backend\": \"{}\",\n  \"measure_ms\": {},\n  \"rows\": [\n",
        Backend::available().contains(&Backend::AesNi),
        sha_ni_detected(),
        active,
        measure_ms,
    );
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"backend\": \"{}\", \"batch\": {}, \"ns_per_op\": {:.1}, \"bytes_per_op\": {}}}{}\n",
            r.name,
            r.backend,
            r.batch,
            r.ns_per_op,
            r.bytes_per_op,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(path, json)
}

/// Representative DoC payload size: a ~64-byte DNS response wire.
const PAYLOAD_LEN: usize = 64;
/// CCM batch sizes every backend is swept over.
const BATCHES: [usize; 3] = [1, 4, 8];

fn main() {
    let key = [0x42u8; 16];
    let payload: Vec<u8> = (0..PAYLOAD_LEN as u8).collect();
    let mut rows: Vec<Row> = Vec::new();

    for backend in Backend::available() {
        let label = backend.label();
        let ccm = AesCcm::with_backend(&key, 8, 2, backend).expect("static parameters are valid");

        // Raw block throughput: 8 blocks per pass, reported per block.
        let aes = Aes128::with_backend(&key, backend);
        let mut blocks = [[0u8; 16]; 8];
        rows.push(run("aes128/encrypt_block", label, 8, 16, 8, || {
            aes.encrypt_blocks(std::hint::black_box(&mut blocks));
        }));

        for batch in BATCHES {
            let mut bufs: Vec<Vec<u8>> = vec![Vec::with_capacity(PAYLOAD_LEN + 16); batch];
            let nonces: Vec<[u8; 13]> = (0..batch).map(|i| [(i * 29) as u8; 13]).collect();
            rows.push(run("ccm/seal", label, batch, PAYLOAD_LEN, batch, || {
                if batch == 1 {
                    let buf = &mut bufs[0];
                    buf.clear();
                    buf.extend_from_slice(&payload);
                    ccm.seal_suffix_in_place(&nonces[0], b"aad", buf, 0)
                        .expect("parameters are valid");
                } else {
                    let mut reqs: Vec<SealRequest<'_>> = bufs
                        .iter_mut()
                        .zip(nonces.iter())
                        .map(|(buf, nonce)| {
                            buf.clear();
                            buf.extend_from_slice(&payload);
                            SealRequest {
                                nonce,
                                aad: b"aad",
                                buf,
                                start: 0,
                            }
                        })
                        .collect();
                    ccm.seal_suffix_batch(&mut reqs)
                        .expect("parameters are valid");
                }
                std::hint::black_box(&mut bufs);
            }));
        }

        // In-place open of one sealed 64-byte packet (includes the
        // copy-in, like a receive path refilling its scratch buffer).
        let nonce = [7u8; 13];
        let sealed = ccm
            .seal(&nonce, b"aad", &payload)
            .expect("parameters are valid");
        let mut buf: Vec<u8> = Vec::with_capacity(sealed.len());
        rows.push(run("ccm/open", label, 1, PAYLOAD_LEN, 1, || {
            buf.clear();
            buf.extend_from_slice(std::hint::black_box(&sealed));
            ccm.open_in_place(&nonce, b"aad", &mut buf)
                .expect("sealed bytes authenticate");
            std::hint::black_box(buf.len());
        }));
    }

    // SHA-256: the portable schedule and the dispatched path (SHA-NI
    // when the machine has it — otherwise both rows measure scalar).
    let msg = vec![0xA5u8; 1024];
    rows.push(run("sha256/hash_1k", "scalar", 1, msg.len(), 1, || {
        std::hint::black_box(sha256_portable(std::hint::black_box(&msg)));
    }));
    let sha_label = if sha_ni_active() { "shani" } else { "scalar" };
    rows.push(run("sha256/hash_1k", sha_label, 1, msg.len(), 1, || {
        std::hint::black_box(sha256(std::hint::black_box(&msg)));
    }));

    println!(
        "{:<22} {:>10} {:>6} {:>12} {:>8}",
        "benchmark", "backend", "batch", "ns/op", "bytes"
    );
    for r in &rows {
        println!(
            "{:<22} {:>10} {:>6} {:>12.1} {:>8}",
            r.name, r.backend, r.batch, r.ns_per_op, r.bytes_per_op
        );
    }

    // In-process guardrails, enforced only on full measurement windows
    // (smoke runs just print the observed ratios).
    let measure_ms = env_ms("BENCH_MEASURE_MS", 200).as_millis() as u64;
    let full_measurement = measure_ms >= 100;
    let ns_of = |name: &str, backend: &str, batch: usize| {
        rows.iter()
            .find(|r| r.name == name && r.backend == backend && r.batch == batch)
            .map(|r| r.ns_per_op)
            .expect("row present")
    };
    if Backend::available().contains(&Backend::AesNi) {
        let speedup = ns_of("ccm/seal", "reference", 1) / ns_of("ccm/seal", "aesni", 1);
        if full_measurement {
            assert!(
                speedup >= 2.0,
                "aesni seal is only {speedup:.2}x the reference (claimed: >=2x)"
            );
        } else {
            println!("note: aesni/reference seal speedup {speedup:.2}x (smoke run, not asserted)");
        }
    }
    for backend in ["soft", "aesni"] {
        if !Backend::available().iter().any(|b| b.label() == backend) {
            continue;
        }
        let gain = ns_of("ccm/seal", backend, 1) / ns_of("ccm/seal", backend, 8);
        if full_measurement {
            assert!(
                gain >= 1.3,
                "{backend} batch-8 seal gains only {gain:.2}x over batch-1 (claimed: >=1.3x)"
            );
        } else {
            println!(
                "note: {backend} batch-8/batch-1 seal gain {gain:.2}x (smoke run, not asserted)"
            );
        }
    }

    let active = Backend::active().label();
    let path = std::env::var("BENCH_CRYPTO_JSON")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_crypto.json").into());
    emit_json(&rows, measure_ms, active, &path).expect("write BENCH_crypto.json");
    println!("\nwrote {path}");
}
