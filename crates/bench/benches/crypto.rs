//! Criterion micro-benchmarks for the cryptographic substrate.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use doc_crypto::aes::Aes128;
use doc_crypto::ccm::AesCcm;
use doc_crypto::hkdf;
use doc_crypto::hmac::hmac_sha256;
use doc_crypto::sha256::sha256;
use std::hint::black_box;

fn crypto_benches(c: &mut Criterion) {
    c.bench_function("crypto/aes128_block", |b| {
        let aes = Aes128::new(&[7u8; 16]);
        let block = [42u8; 16];
        b.iter(|| aes.encrypt(black_box(&block)))
    });

    let mut group = c.benchmark_group("crypto/ccm");
    for size in [42usize, 70, 256, 1024] {
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("seal_{size}B"), |b| {
            let ccm = AesCcm::cose_ccm_16_64_128(&[1u8; 16]);
            let nonce = [9u8; 13];
            let data = vec![0xABu8; size];
            b.iter(|| {
                ccm.seal(black_box(&nonce), b"aad", black_box(&data))
                    .unwrap()
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("crypto/sha256");
    for size in [64usize, 1024, 16_384] {
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("{size}B"), |b| {
            let data = vec![0x5Au8; size];
            b.iter(|| sha256(black_box(&data)))
        });
    }
    group.finish();

    c.bench_function("crypto/hmac_sha256_64B", |b| {
        let data = [3u8; 64];
        b.iter(|| hmac_sha256(b"key", black_box(&data)))
    });
    c.bench_function("crypto/hkdf_expand_32B", |b| {
        b.iter(|| hkdf::hkdf(b"salt", b"ikm", b"info", 32))
    });
    c.bench_function("crypto/base64url_roundtrip_42B", |b| {
        let data = [0x77u8; 42];
        b.iter(|| {
            let e = doc_crypto::base64url::encode(black_box(&data));
            doc_crypto::base64url::decode(&e).unwrap()
        })
    });
    c.bench_function("crypto/dtls_prf_40B", |b| {
        let mut out = [0u8; 40];
        b.iter(|| {
            doc_crypto::prf::prf(b"master secret bytes", b"key expansion", b"seed", &mut out);
            out
        })
    });
}

criterion_group!(benches, crypto_benches);
criterion_main!(benches);
