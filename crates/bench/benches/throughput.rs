//! Multi-worker proxy throughput bench: the scale-out companion of the
//! `encode` codec bench.
//!
//! Replays the DoC query mix closed-loop through the sharded
//! proxy/server behind the SPMC-ring worker pool at 1/2/4/8 workers,
//! adds one row per stream transport (DoQ/DoH/DoT framing over the
//! same pool), prints a summary table, and emits `BENCH_proxy.json`
//! (schema `doc-bench/proxy/v3`, path overridable via
//! `BENCH_PROXY_JSON`) for the `bench_gate` CI check. The artifact
//! also carries one congested-bottleneck `recovery` row per
//! congestion controller (fixed_rto / cubic / bbr_lite), produced by
//! the deterministic virtual-time scenario in
//! `doc_core::bottleneck`; `bench_gate proxy` asserts the adaptive
//! controllers beat the fixed-RTO oracle's p99 under loss.
//!
//! Knobs (environment):
//!
//! * `BENCH_PROXY_REQUESTS` — requests per worker-count run (default
//!   200 000; `ci.sh` smoke uses a small value).
//! * `BENCH_PROXY_CONCURRENCY` — ring capacity / closed-loop in-flight
//!   bound (default 256).
//! * `BENCH_PROXY_NAMES` — distinct names in the mix (default 256).
//! * `BENCH_PROXY_SHARDS` — cache shard count (default 16).
//!
//! The run itself asserts only machine-independent invariants (every
//! request answered, hit-dominated steady state). The 4-vs-1 scaling
//! bound is enforced by `bench_gate --require-scaling`, which scales
//! its expectation to the parallelism recorded in the artifact: the
//! ≥ 2× tentpole bound applies on ≥ 4-core machines (e.g. the CI
//! runner); a 1-core container can only demonstrate that
//! oversubscription does not collapse throughput.

use doc_bench::alloc_counter::{alloc_count, CountingAllocator};
use doc_bench::throughput::{
    env_u64, proxy_json, recovery_rows, run_load, stream_modes, LoadSpec, WORKER_SWEEP,
};

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn main() {
    let base = LoadSpec {
        total_requests: env_u64("BENCH_PROXY_REQUESTS", 200_000),
        concurrency: env_u64("BENCH_PROXY_CONCURRENCY", 256) as usize,
        unique_names: env_u64("BENCH_PROXY_NAMES", 256) as u32,
        shards: env_u64("BENCH_PROXY_SHARDS", 16) as usize,
        ..LoadSpec::default()
    };
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "proxy throughput: {} requests/run, concurrency {}, {} names, {} shards, machine parallelism {}",
        base.total_requests, base.concurrency, base.unique_names, base.shards, cores
    );
    println!(
        "{:<10} {:<8} {:>12} {:>10} {:>10} {:>12} {:>10}",
        "transport", "workers", "req/s", "p50 µs", "p99 µs", "allocs/req", "hit rate"
    );
    let mut rows = Vec::new();
    // CoAP worker sweep (the scale-out tentpole) followed by one row
    // per stream transport (DoQ/DoH/DoT application hot path) at the
    // 4-worker point — the row set bench_gate's v2 schema requires.
    let mut specs: Vec<LoadSpec> = WORKER_SWEEP
        .iter()
        .map(|&w| LoadSpec {
            workers: w,
            ..base.clone()
        })
        .collect();
    specs.extend(stream_modes().into_iter().map(|mode| LoadSpec {
        workers: 4,
        mode,
        ..base.clone()
    }));
    for spec in specs {
        let row = run_load(&spec, &alloc_count);
        println!(
            "{:<10} {:<8} {:>12.0} {:>10.1} {:>10.1} {:>12.1} {:>9.1}%",
            row.mode.label(),
            row.workers,
            row.req_per_s,
            row.p50_us,
            row.p99_us,
            row.allocs_per_req,
            row.cache_hit_rate * 100.0
        );
        // Machine-independent sanity: a healthy closed loop answers
        // every request, from a hit-dominated steady state.
        assert_eq!(
            row.replies,
            row.requests,
            "lost replies at {} workers ({})",
            row.workers,
            row.mode.label()
        );
        assert!(
            row.cache_hit_rate > 0.9,
            "steady state not hit-dominated at {} workers ({}): {}",
            row.workers,
            row.mode.label(),
            row.cache_hit_rate
        );
        rows.push(row);
    }
    // Congested-bottleneck recovery scenario: one row per congestion
    // controller, deterministic in virtual time.
    println!(
        "{:<10} {:>8} {:>8} {:>9} {:>8} {:>8}",
        "controller", "loss\u{2030}", "queries", "resolved", "p50 ms", "p99 ms"
    );
    let recovery = recovery_rows();
    for r in &recovery {
        println!(
            "{:<10} {:>8} {:>8} {:>9} {:>8} {:>8}",
            r.controller, r.loss_permille, r.queries, r.resolved, r.p50_ms, r.p99_ms
        );
    }
    // Default to the workspace root (cargo runs benches with the
    // package directory as CWD), same as the encode bench.
    let path = std::env::var("BENCH_PROXY_JSON")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_proxy.json").into());
    std::fs::write(&path, proxy_json(&rows, &recovery)).expect("write BENCH_proxy.json");
    println!("wrote {path} (gate with: cargo run -p doc-bench --bin bench_gate -- proxy {path})");
}
