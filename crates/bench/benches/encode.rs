//! Codec micro-benchmarks with heap-allocation accounting, covering
//! both directions of the zero-copy rewrite:
//!
//! * **Encode** (PR 2): every `encode_into` hot path performs **zero**
//!   heap allocations with a reused output buffer, and `dns/encode_query`
//!   is ≥ 2× faster than the seed's linear suffix-table encoder.
//! * **Decode** (PR 3): the borrowed `MessageView`/`CoapView` parsers
//!   perform **zero** heap allocations and are ≥ 2× faster than the
//!   owned decoders on the same wire bytes; `oscore/protect_request`
//!   (measured wire-to-wire via `protect_request_into`) performs ≤ 4
//!   allocations per request — down from 16 with the per-request CBOR
//!   AAD tree.
//!
//! A counting global allocator attributes allocations to each timed
//! batch; results are printed as a table and emitted as
//! `BENCH_codecs.json` (schema `doc-bench/codecs/v2`) at the workspace
//! root (override the path with the `BENCH_CODECS_JSON` environment
//! variable) so CI can track the perf trajectory across PRs. The
//! allocation bounds are exact and machine-independent and are asserted
//! on every run; the ≥ 2× decode speedups are ratios on the same
//! machine and are asserted too. Runs via
//! `cargo bench -p doc-bench --bench encode`.

use std::time::{Duration, Instant};

use doc_bench::alloc_counter::{alloc_count, CountingAllocator};
use doc_coap::msg::CoapMessage;
use doc_coap::view::CoapView;
use doc_core::method::{build_request, DocMethod};
use doc_core::transport::{dns_query_bytes, dns_response_bytes, experiment_name};
use doc_dns::view::MessageView;
use doc_dns::{Message, RecordType};
use doc_oscore::context::SecurityContext;
use doc_oscore::protect::OscoreEndpoint;

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

struct Sample {
    name: &'static str,
    ns_per_iter: f64,
    allocs_per_iter: f64,
    wire_bytes: usize,
}

fn env_ms(var: &str, default_ms: u64) -> Duration {
    Duration::from_millis(
        std::env::var(var)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default_ms),
    )
}

/// Warm up, size a batch from the observed rate, then time the batch
/// while counting allocator events.
fn run(name: &'static str, wire_bytes: usize, mut routine: impl FnMut()) -> Sample {
    let warmup = env_ms("BENCH_WARMUP_MS", 50);
    let measure = env_ms("BENCH_MEASURE_MS", 200);
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    while warm_start.elapsed() < warmup {
        routine();
        warm_iters += 1;
    }
    let per_iter = warm_start.elapsed().as_nanos().max(1) / u128::from(warm_iters.max(1));
    let batch = (measure.as_nanos() / per_iter.max(1)).clamp(1, u128::from(u64::MAX)) as u64;
    let allocs_before = alloc_count();
    let start = Instant::now();
    for _ in 0..batch {
        routine();
    }
    let elapsed = start.elapsed();
    let allocs = alloc_count() - allocs_before;
    Sample {
        name,
        ns_per_iter: elapsed.as_nanos() as f64 / batch as f64,
        allocs_per_iter: allocs as f64 / batch as f64,
        wire_bytes,
    }
}

fn emit_json(samples: &[Sample], path: &str) -> std::io::Result<()> {
    let mut json = String::from("{\n  \"schema\": \"doc-bench/codecs/v2\",\n  \"benchmarks\": [\n");
    for (i, s) in samples.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"ns_per_iter\": {:.1}, \"allocs_per_iter\": {:.3}, \"wire_bytes\": {}}}{}\n",
            s.name,
            s.ns_per_iter,
            s.allocs_per_iter,
            s.wire_bytes,
            if i + 1 < samples.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(path, json)
}

fn main() {
    let name = experiment_name(0);
    let query_wire = dns_query_bytes(&name, RecordType::Aaaa);
    let response_wire = dns_response_bytes(&name, RecordType::Aaaa, 300);
    let mut query = Message::query(0, name.clone(), RecordType::Aaaa);
    query.canonicalize_id();
    let response = Message::decode(&response_wire).unwrap();
    let fetch = build_request(
        DocMethod::Fetch,
        &query_wire,
        doc_coap::msg::MsgType::Con,
        1,
        vec![1, 2],
    )
    .unwrap();
    let coap_resp = CoapMessage::ack_response(&fetch, doc_coap::msg::Code::CONTENT)
        .with_option(doc_coap::opt::CoapOption::new(
            doc_coap::opt::OptionNumber::ETAG,
            vec![1; 8],
        ))
        .with_option(doc_coap::opt::CoapOption::uint(
            doc_coap::opt::OptionNumber::MAX_AGE,
            300,
        ))
        .with_payload(response_wire.clone());

    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut samples = Vec::new();

    // Allocating variants (one exact-capacity output Vec per call) —
    // `dns/encode_query` is the seed-comparison headline.
    samples.push(run("dns/encode_query", query_wire.len(), || {
        std::hint::black_box(std::hint::black_box(&query).encode());
    }));
    samples.push(run("dns/encode_response", response_wire.len(), || {
        std::hint::black_box(std::hint::black_box(&response).encode());
    }));
    samples.push(run("coap/encode_fetch", fetch.encoded_len(), || {
        std::hint::black_box(std::hint::black_box(&fetch).encode());
    }));

    // Zero-allocation variants: reused output buffer, stack-resident
    // compression state.
    samples.push(run("dns/encode_query_into", query_wire.len(), || {
        buf.clear();
        std::hint::black_box(&query).encode_into(&mut buf);
        std::hint::black_box(buf.len());
    }));
    samples.push(run("dns/encode_response_into", response_wire.len(), || {
        buf.clear();
        std::hint::black_box(&response).encode_into(&mut buf);
        std::hint::black_box(buf.len());
    }));
    samples.push(run("coap/encode_fetch_into", fetch.encoded_len(), || {
        buf.clear();
        std::hint::black_box(&fetch).encode_into(&mut buf);
        std::hint::black_box(buf.len());
    }));
    samples.push(run(
        "coap/encode_response_into",
        coap_resp.encoded_len(),
        || {
            buf.clear();
            std::hint::black_box(&coap_resp).encode_into(&mut buf);
            std::hint::black_box(buf.len());
        },
    ));

    // Decode paths: owned decoders vs. borrowed views. The view rows
    // parse (full validation walk) and then touch the same fields a hot
    // path reads — question/record fields for DNS, the option run and
    // payload for CoAP — all without leaving the original buffer.
    let fetch_wire = fetch.encode();
    samples.push(run("dns/decode_query", query_wire.len(), || {
        std::hint::black_box(Message::decode(std::hint::black_box(&query_wire)).unwrap());
    }));
    samples.push(run("dns/decode_query_view", query_wire.len(), || {
        let v = MessageView::parse(std::hint::black_box(&query_wire)).unwrap();
        let q = v.question().unwrap();
        std::hint::black_box((q.qtype, q.qname.label_count()));
    }));
    samples.push(run("dns/decode_response", response_wire.len(), || {
        std::hint::black_box(Message::decode(std::hint::black_box(&response_wire)).unwrap());
    }));
    samples.push(run("dns/decode_response_view", response_wire.len(), || {
        let v = MessageView::parse(std::hint::black_box(&response_wire)).unwrap();
        std::hint::black_box((v.min_ttl(), v.record_count()));
    }));
    samples.push(run("coap/decode_fetch", fetch_wire.len(), || {
        std::hint::black_box(CoapMessage::decode(std::hint::black_box(&fetch_wire)).unwrap());
    }));
    samples.push(run("coap/decode_fetch_view", fetch_wire.len(), || {
        let v = CoapView::parse(std::hint::black_box(&fetch_wire)).unwrap();
        let opts = v.options().count();
        std::hint::black_box((v.code, opts, v.payload().len()));
    }));

    // Protected-path end-to-end serializers (seal-in-place). The
    // protect-request row measures the wire-direct path a client/server
    // actually drives: serialize + seal into a reused buffer.
    let secret = b"0123456789abcdef";
    let mut oscore_ep =
        OscoreEndpoint::new(SecurityContext::derive(secret, b"s", &[], &[1]), false);
    let protected_len = {
        let (outer, _) = oscore_ep.protect_request(&fetch).unwrap();
        outer.encoded_len()
    };
    samples.push(run("oscore/protect_request", protected_len, || {
        buf.clear();
        std::hint::black_box(
            oscore_ep
                .protect_request_into(std::hint::black_box(&fetch), &mut buf)
                .unwrap(),
        );
    }));
    let cs = doc_dtls::record::CipherState::new(&[7u8; 16], [1, 2, 3, 4]);
    let mut seq = 0u64;
    samples.push(run(
        "dtls/seal_record",
        query_wire.len() + doc_dtls::record::CipherState::OVERHEAD,
        || {
            seq += 1;
            std::hint::black_box(
                cs.seal(
                    doc_dtls::record::ContentType::ApplicationData,
                    1,
                    seq,
                    std::hint::black_box(&query_wire),
                )
                .unwrap(),
            );
        },
    ));

    println!(
        "{:<28} {:>12} {:>14} {:>10}",
        "benchmark", "ns/iter", "allocs/iter", "bytes"
    );
    for s in &samples {
        println!(
            "{:<28} {:>12.1} {:>14.3} {:>10}",
            s.name, s.ns_per_iter, s.allocs_per_iter, s.wire_bytes
        );
    }

    // Measured guardrails for the zero-copy claims. The allocation
    // counts are exact and machine-independent; the decode speedups are
    // same-machine ratios, asserted with the claimed 2× bound.
    for s in &samples {
        if s.name.ends_with("_into") || s.name.ends_with("_view") {
            assert_eq!(
                s.allocs_per_iter, 0.0,
                "{} must not allocate on the hot path",
                s.name
            );
        }
        if s.name == "oscore/protect_request" {
            assert!(
                s.allocs_per_iter <= 4.0,
                "oscore/protect_request allocates {} per iter (bound: 4)",
                s.allocs_per_iter
            );
        }
    }
    let ns_of = |name: &str| {
        samples
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.ns_per_iter)
            .expect("benchmark present")
    };
    // The speedup bound is a same-machine ratio, but still timing:
    // only enforce it on full measurement windows (the default run),
    // not on the shortened smoke runs CI uses, where scheduler noise
    // over a few milliseconds could fail the build without any code
    // change. The allocation bounds above are exact and always apply.
    let full_measurement = env_ms("BENCH_MEASURE_MS", 200) >= Duration::from_millis(100);
    for (owned, view) in [
        ("dns/decode_response", "dns/decode_response_view"),
        ("coap/decode_fetch", "coap/decode_fetch_view"),
    ] {
        let speedup = ns_of(owned) / ns_of(view);
        if full_measurement {
            assert!(
                speedup >= 2.0,
                "{view} is only {speedup:.2}x faster than {owned} (claimed: ≥2x)"
            );
        } else if speedup < 2.0 {
            println!(
                "note: {view} measured {speedup:.2}x vs {owned} (smoke run; bound not enforced)"
            );
        }
    }

    let path = std::env::var("BENCH_CODECS_JSON")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_codecs.json").into());
    emit_json(&samples, &path).expect("write BENCH_codecs.json");
    println!("\nwrote {path}");
}
