//! Encode-path micro-benchmarks with heap-allocation accounting.
//!
//! The zero-copy encode rewrite (hashed in-place name compression,
//! direct option/uint writes, seal-in-place protection) claims two
//! things that this target *measures* rather than asserts:
//!
//! 1. `dns/encode_query` is ≥ 2× faster than the seed's linear
//!    suffix-table encoder (≈ 650 ns release on the reference machine);
//! 2. the `encode_into` hot paths perform **zero** heap allocations
//!    with a reused output buffer.
//!
//! A counting global allocator attributes allocations to each timed
//! batch; results are printed as a table and emitted as
//! `BENCH_codecs.json` at the workspace root (override the path with
//! the `BENCH_CODECS_JSON` environment variable) so CI can track the
//! perf trajectory across PRs. Runs via
//! `cargo bench -p doc-bench --bench encode`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use doc_coap::msg::CoapMessage;
use doc_core::method::{build_request, DocMethod};
use doc_core::transport::{dns_query_bytes, dns_response_bytes, experiment_name};
use doc_dns::{Message, RecordType};
use doc_oscore::context::SecurityContext;
use doc_oscore::protect::OscoreEndpoint;

/// System allocator wrapper that counts every allocation event
/// (alloc/realloc/alloc_zeroed — frees are not events of interest).
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

struct Sample {
    name: &'static str,
    ns_per_iter: f64,
    allocs_per_iter: f64,
    wire_bytes: usize,
}

fn env_ms(var: &str, default_ms: u64) -> Duration {
    Duration::from_millis(
        std::env::var(var)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default_ms),
    )
}

/// Warm up, size a batch from the observed rate, then time the batch
/// while counting allocator events.
fn run(name: &'static str, wire_bytes: usize, mut routine: impl FnMut()) -> Sample {
    let warmup = env_ms("BENCH_WARMUP_MS", 50);
    let measure = env_ms("BENCH_MEASURE_MS", 200);
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    while warm_start.elapsed() < warmup {
        routine();
        warm_iters += 1;
    }
    let per_iter = warm_start.elapsed().as_nanos().max(1) / u128::from(warm_iters.max(1));
    let batch = (measure.as_nanos() / per_iter.max(1)).clamp(1, u128::from(u64::MAX)) as u64;
    let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
    let start = Instant::now();
    for _ in 0..batch {
        routine();
    }
    let elapsed = start.elapsed();
    let allocs = ALLOCATIONS.load(Ordering::Relaxed) - allocs_before;
    Sample {
        name,
        ns_per_iter: elapsed.as_nanos() as f64 / batch as f64,
        allocs_per_iter: allocs as f64 / batch as f64,
        wire_bytes,
    }
}

fn emit_json(samples: &[Sample], path: &str) -> std::io::Result<()> {
    let mut json = String::from("{\n  \"schema\": \"doc-bench/codecs/v1\",\n  \"benchmarks\": [\n");
    for (i, s) in samples.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"ns_per_iter\": {:.1}, \"allocs_per_iter\": {:.3}, \"wire_bytes\": {}}}{}\n",
            s.name,
            s.ns_per_iter,
            s.allocs_per_iter,
            s.wire_bytes,
            if i + 1 < samples.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(path, json)
}

fn main() {
    let name = experiment_name(0);
    let query_wire = dns_query_bytes(&name, RecordType::Aaaa);
    let response_wire = dns_response_bytes(&name, RecordType::Aaaa, 300);
    let mut query = Message::query(0, name.clone(), RecordType::Aaaa);
    query.canonicalize_id();
    let response = Message::decode(&response_wire).unwrap();
    let fetch = build_request(
        DocMethod::Fetch,
        &query_wire,
        doc_coap::msg::MsgType::Con,
        1,
        vec![1, 2],
    )
    .unwrap();
    let coap_resp = CoapMessage::ack_response(&fetch, doc_coap::msg::Code::CONTENT)
        .with_option(doc_coap::opt::CoapOption::new(
            doc_coap::opt::OptionNumber::ETAG,
            vec![1; 8],
        ))
        .with_option(doc_coap::opt::CoapOption::uint(
            doc_coap::opt::OptionNumber::MAX_AGE,
            300,
        ))
        .with_payload(response_wire.clone());

    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut samples = Vec::new();

    // Allocating variants (one exact-capacity output Vec per call) —
    // `dns/encode_query` is the seed-comparison headline.
    samples.push(run("dns/encode_query", query_wire.len(), || {
        std::hint::black_box(std::hint::black_box(&query).encode());
    }));
    samples.push(run("dns/encode_response", response_wire.len(), || {
        std::hint::black_box(std::hint::black_box(&response).encode());
    }));
    samples.push(run("coap/encode_fetch", fetch.encoded_len(), || {
        std::hint::black_box(std::hint::black_box(&fetch).encode());
    }));

    // Zero-allocation variants: reused output buffer, stack-resident
    // compression state.
    samples.push(run("dns/encode_query_into", query_wire.len(), || {
        buf.clear();
        std::hint::black_box(&query).encode_into(&mut buf);
        std::hint::black_box(buf.len());
    }));
    samples.push(run("dns/encode_response_into", response_wire.len(), || {
        buf.clear();
        std::hint::black_box(&response).encode_into(&mut buf);
        std::hint::black_box(buf.len());
    }));
    samples.push(run("coap/encode_fetch_into", fetch.encoded_len(), || {
        buf.clear();
        std::hint::black_box(&fetch).encode_into(&mut buf);
        std::hint::black_box(buf.len());
    }));
    samples.push(run(
        "coap/encode_response_into",
        coap_resp.encoded_len(),
        || {
            buf.clear();
            std::hint::black_box(&coap_resp).encode_into(&mut buf);
            std::hint::black_box(buf.len());
        },
    ));

    // Protected-path end-to-end serializers (seal-in-place).
    let secret = b"0123456789abcdef";
    let mut oscore_ep =
        OscoreEndpoint::new(SecurityContext::derive(secret, b"s", &[], &[1]), false);
    let protected_len = {
        let (outer, _) = oscore_ep.protect_request(&fetch).unwrap();
        outer.encoded_len()
    };
    samples.push(run("oscore/protect_request", protected_len, || {
        std::hint::black_box(
            oscore_ep
                .protect_request(std::hint::black_box(&fetch))
                .unwrap(),
        );
    }));
    let cs = doc_dtls::record::CipherState::new(&[7u8; 16], [1, 2, 3, 4]);
    let mut seq = 0u64;
    samples.push(run(
        "dtls/seal_record",
        query_wire.len() + doc_dtls::record::CipherState::OVERHEAD,
        || {
            seq += 1;
            std::hint::black_box(
                cs.seal(
                    doc_dtls::record::ContentType::ApplicationData,
                    1,
                    seq,
                    std::hint::black_box(&query_wire),
                )
                .unwrap(),
            );
        },
    ));

    println!(
        "{:<28} {:>12} {:>14} {:>10}",
        "benchmark", "ns/iter", "allocs/iter", "bytes"
    );
    for s in &samples {
        println!(
            "{:<28} {:>12.1} {:>14.3} {:>10}",
            s.name, s.ns_per_iter, s.allocs_per_iter, s.wire_bytes
        );
    }

    // Measured guardrails for the zero-copy claims. Timing thresholds
    // are deliberately loose (shared machines); the allocation counts
    // are exact and must be exactly zero.
    for s in &samples {
        if s.name.ends_with("_into") {
            assert_eq!(
                s.allocs_per_iter, 0.0,
                "{} must not allocate on the hot path",
                s.name
            );
        }
    }

    let path = std::env::var("BENCH_CODECS_JSON")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_codecs.json").into());
    emit_json(&samples, &path).expect("write BENCH_codecs.json");
    println!("\nwrote {path}");
}
