//! CoAP option numbers and their properties (RFC 7252 §5.10 / §5.4).
//!
//! Option numbers encode their own semantics in the low bits: bit 0 =
//! Critical, bit 1 = Unsafe (for proxies), and `(num & 0x1e) == 0x1c`
//! marks NoCacheKey options, which are excluded from the cache key.

/// Well-known CoAP option numbers used in this workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OptionNumber(pub u16);

impl OptionNumber {
    /// If-Match (RFC 7252).
    pub const IF_MATCH: OptionNumber = OptionNumber(1);
    /// Uri-Host (RFC 7252).
    pub const URI_HOST: OptionNumber = OptionNumber(3);
    /// ETag (RFC 7252).
    pub const ETAG: OptionNumber = OptionNumber(4);
    /// If-None-Match (RFC 7252).
    pub const IF_NONE_MATCH: OptionNumber = OptionNumber(5);
    /// Observe (RFC 7641).
    pub const OBSERVE: OptionNumber = OptionNumber(6);
    /// Uri-Port (RFC 7252).
    pub const URI_PORT: OptionNumber = OptionNumber(7);
    /// Location-Path (RFC 7252).
    pub const LOCATION_PATH: OptionNumber = OptionNumber(8);
    /// OSCORE (RFC 8613).
    pub const OSCORE: OptionNumber = OptionNumber(9);
    /// Uri-Path (RFC 7252).
    pub const URI_PATH: OptionNumber = OptionNumber(11);
    /// Content-Format (RFC 7252).
    pub const CONTENT_FORMAT: OptionNumber = OptionNumber(12);
    /// Max-Age (RFC 7252).
    pub const MAX_AGE: OptionNumber = OptionNumber(14);
    /// Uri-Query (RFC 7252).
    pub const URI_QUERY: OptionNumber = OptionNumber(15);
    /// Accept (RFC 7252).
    pub const ACCEPT: OptionNumber = OptionNumber(17);
    /// Location-Query (RFC 7252).
    pub const LOCATION_QUERY: OptionNumber = OptionNumber(20);
    /// Block2 (RFC 7959).
    pub const BLOCK2: OptionNumber = OptionNumber(23);
    /// Block1 (RFC 7959).
    pub const BLOCK1: OptionNumber = OptionNumber(27);
    /// Size2 (RFC 7959).
    pub const SIZE2: OptionNumber = OptionNumber(28);
    /// Proxy-Uri (RFC 7252).
    pub const PROXY_URI: OptionNumber = OptionNumber(35);
    /// Proxy-Scheme (RFC 7252).
    pub const PROXY_SCHEME: OptionNumber = OptionNumber(39);
    /// Size1 (RFC 7252).
    pub const SIZE1: OptionNumber = OptionNumber(60);
    /// Echo (RFC 9175) — used by OSCORE replay-window initialization
    /// (the paper's Fig. 6 "4.01 Unauthorized + Query w/ Echo" flow).
    pub const ECHO: OptionNumber = OptionNumber(252);
    /// No-Response (RFC 7967).
    pub const NO_RESPONSE: OptionNumber = OptionNumber(258);

    /// Critical options must be understood by the receiver (bit 0).
    pub fn is_critical(self) -> bool {
        self.0 & 1 != 0
    }

    /// Unsafe options must be forwarded opaquely / block proxying (bit 1).
    pub fn is_unsafe_to_forward(self) -> bool {
        self.0 & 2 != 0
    }

    /// NoCacheKey options are excluded from the cache key
    /// (`(num & 0x1e) == 0x1c`, only meaningful for Safe options).
    pub fn is_no_cache_key(self) -> bool {
        !self.is_unsafe_to_forward() && (self.0 & 0x1e) == 0x1c
    }
}

impl core::fmt::Display for OptionNumber {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let name = match *self {
            OptionNumber::IF_MATCH => "If-Match",
            OptionNumber::URI_HOST => "Uri-Host",
            OptionNumber::ETAG => "ETag",
            OptionNumber::IF_NONE_MATCH => "If-None-Match",
            OptionNumber::OBSERVE => "Observe",
            OptionNumber::URI_PORT => "Uri-Port",
            OptionNumber::LOCATION_PATH => "Location-Path",
            OptionNumber::OSCORE => "OSCORE",
            OptionNumber::URI_PATH => "Uri-Path",
            OptionNumber::CONTENT_FORMAT => "Content-Format",
            OptionNumber::MAX_AGE => "Max-Age",
            OptionNumber::URI_QUERY => "Uri-Query",
            OptionNumber::ACCEPT => "Accept",
            OptionNumber::LOCATION_QUERY => "Location-Query",
            OptionNumber::BLOCK2 => "Block2",
            OptionNumber::BLOCK1 => "Block1",
            OptionNumber::SIZE2 => "Size2",
            OptionNumber::PROXY_URI => "Proxy-Uri",
            OptionNumber::PROXY_SCHEME => "Proxy-Scheme",
            OptionNumber::SIZE1 => "Size1",
            OptionNumber::ECHO => "Echo",
            OptionNumber::NO_RESPONSE => "No-Response",
            _ => return write!(f, "Option({})", self.0),
        };
        write!(f, "{name}")
    }
}

/// One option instance: number plus raw value bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoapOption {
    /// Option number.
    pub number: OptionNumber,
    /// Raw option value.
    pub value: Vec<u8>,
}

impl CoapOption {
    /// Construct an option from a number and value bytes.
    pub fn new(number: OptionNumber, value: Vec<u8>) -> Self {
        CoapOption { number, value }
    }

    /// Construct a uint-valued option (RFC 7252 §3.2 encoding: shortest
    /// big-endian form, zero encodes as empty).
    pub fn uint(number: OptionNumber, v: u32) -> Self {
        CoapOption {
            number,
            value: encode_uint_value(v),
        }
    }

    /// Decode this option's value as a uint.
    pub fn as_uint(&self) -> u32 {
        decode_uint_value(&self.value)
    }

    /// Decode this option's value as UTF-8 (lossy).
    pub fn as_str(&self) -> String {
        String::from_utf8_lossy(&self.value).into_owned()
    }
}

/// Encode an option uint value in the shortest big-endian form.
pub fn encode_uint_value(v: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(4);
    encode_uint_into(v, &mut out);
    out
}

/// Append an option uint value in the shortest big-endian form — the
/// allocation-free counterpart of [`encode_uint_value`].
pub fn encode_uint_into(v: u32, out: &mut Vec<u8>) {
    let bytes = v.to_be_bytes();
    let skip = bytes.iter().take_while(|&&b| b == 0).count();
    out.extend_from_slice(&bytes[skip..]);
}

/// Decode an option uint value (empty = 0). Values longer than 4 bytes
/// saturate to `u32::MAX` — the conservative reading for Max-Age, where
/// truncating to the first bytes would *shorten* a freshness lifetime a
/// peer declared to be enormous. (We never emit such values ourselves.)
pub fn decode_uint_value(value: &[u8]) -> u32 {
    // Leading zero octets are tolerated (non-shortest form); only
    // significant bytes beyond 4 saturate.
    let significant = &value[value.iter().take_while(|&&b| b == 0).count()..];
    if significant.len() > 4 {
        return u32::MAX;
    }
    significant
        .iter()
        .fold(0u32, |v, &b| (v << 8) | u32::from(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_per_rfc7252_table_4() {
        // Critical: If-Match(1), Uri-Host(3), Uri-Path(11), Uri-Query(15),
        // Accept(17), Block1(27), Block2(23), Proxy-Uri(35).
        for opt in [
            OptionNumber::IF_MATCH,
            OptionNumber::URI_HOST,
            OptionNumber::URI_PATH,
            OptionNumber::URI_QUERY,
            OptionNumber::ACCEPT,
            OptionNumber::BLOCK1,
            OptionNumber::BLOCK2,
            OptionNumber::PROXY_URI,
        ] {
            assert!(opt.is_critical(), "{opt} should be critical");
        }
        // Elective: ETag(4), Observe(6), Location-Path(8), Content-Format(12),
        // Max-Age(14), Size1(60), Echo(252).
        for opt in [
            OptionNumber::ETAG,
            OptionNumber::OBSERVE,
            OptionNumber::LOCATION_PATH,
            OptionNumber::CONTENT_FORMAT,
            OptionNumber::MAX_AGE,
            OptionNumber::SIZE1,
            OptionNumber::ECHO,
        ] {
            assert!(!opt.is_critical(), "{opt} should be elective");
        }
    }

    #[test]
    fn unsafe_options() {
        // Unsafe-to-forward per RFC 7252 Table 4: the URI options,
        // Max-Age and the Proxy options.
        assert!(OptionNumber::MAX_AGE.is_unsafe_to_forward());
        assert!(OptionNumber::PROXY_URI.is_unsafe_to_forward());
        assert!(OptionNumber::URI_HOST.is_unsafe_to_forward());
        assert!(OptionNumber::URI_PATH.is_unsafe_to_forward());
        assert!(OptionNumber::URI_QUERY.is_unsafe_to_forward());
        // Block1/Block2 are also Unsafe (RFC 7959 Table 1: a proxy
        // must understand them to forward block-wise transfers).
        assert!(OptionNumber::BLOCK1.is_unsafe_to_forward());
        assert!(OptionNumber::BLOCK2.is_unsafe_to_forward());
        // Safe-to-forward: ETag, Accept, Content-Format.
        assert!(!OptionNumber::ETAG.is_unsafe_to_forward());
        assert!(!OptionNumber::ACCEPT.is_unsafe_to_forward());
        assert!(!OptionNumber::CONTENT_FORMAT.is_unsafe_to_forward());
    }

    #[test]
    fn no_cache_key() {
        // Per RFC 7252 §5.4.6 Size1 (60 = 0b111100) is NoCacheKey.
        assert!(OptionNumber::SIZE1.is_no_cache_key());
        assert!(!OptionNumber::URI_PATH.is_no_cache_key());
        assert!(!OptionNumber::ETAG.is_no_cache_key());
        // Max-Age is Unsafe, so NoCacheKey flag does not apply.
        assert!(!OptionNumber::MAX_AGE.is_no_cache_key());
    }

    #[test]
    fn uint_value_shortest_form() {
        assert_eq!(encode_uint_value(0), Vec::<u8>::new());
        assert_eq!(encode_uint_value(60), vec![60]);
        assert_eq!(encode_uint_value(0x1234), vec![0x12, 0x34]);
        assert_eq!(encode_uint_value(0x0100_0000), vec![1, 0, 0, 0]);
    }

    #[test]
    fn uint_value_roundtrip() {
        for v in [0u32, 1, 59, 255, 256, 65535, 65536, u32::MAX] {
            assert_eq!(decode_uint_value(&encode_uint_value(v)), v);
        }
    }

    #[test]
    fn uint_value_longer_than_4_bytes_saturates() {
        // Regression: the decoder used to *truncate* to the first four
        // bytes, reading 0x0100000000 (2^32) as 0x01000000.
        assert_eq!(decode_uint_value(&[1, 0, 0, 0, 0]), u32::MAX);
        assert_eq!(decode_uint_value(&[0xFF; 9]), u32::MAX);
        // Non-shortest (zero-padded) forms are values, not saturation.
        assert_eq!(decode_uint_value(&[0, 0, 0, 0, 60]), 60);
        assert_eq!(decode_uint_value(&[0, 0, 0, 0, 0]), 0);
    }

    #[test]
    fn option_constructors() {
        let o = CoapOption::uint(OptionNumber::MAX_AGE, 300);
        assert_eq!(o.as_uint(), 300);
        let s = CoapOption::new(OptionNumber::URI_PATH, b"dns".to_vec());
        assert_eq!(s.as_str(), "dns");
    }

    #[test]
    fn display_names() {
        assert_eq!(OptionNumber::BLOCK2.to_string(), "Block2");
        assert_eq!(OptionNumber(9999).to_string(), "Option(9999)");
    }
}
