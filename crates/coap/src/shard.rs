//! Sharded, lock-striped containers for the scale-out request path.
//!
//! The paper's evaluation is strictly single-node, but the proxy and
//! server hot paths are embarrassingly parallel *between* cache keys:
//! two requests for different names never touch the same cache entry.
//! This module exploits that with classic lock striping:
//!
//! * [`ShardedCache<K, V>`] — a generic hash map split over a fixed
//!   power-of-two number of shards, each behind its own [`Mutex`].
//!   Workers touching different shards never contend.
//! * [`ShardedResponseCache`] — the CoAP response cache sharded the
//!   same way, with each shard being a full unsharded
//!   [`ResponseCache`]. Shard selection reuses the FNV-1a hash that
//!   [`cache_key`]/[`cache_key_view`] already computed while building
//!   the key, and the per-shard maps consume that same hash through a
//!   pass-through hasher — key bytes are hashed exactly once per
//!   request, at key-derivation time.
//!
//! With a single shard, `ShardedResponseCache` is observationally
//! identical to `ResponseCache` (same FIFO eviction order, same stats,
//! same `Lookup` results) — the equivalence the property tests in
//! `tests/sharded_cache.rs` pin down. With `n` shards the key space is
//! partitioned, so per-key behaviour is still identical as long as no
//! shard overflows its slice of the capacity (`capacity / n` entries,
//! rounded up); only the eviction *victim order* under capacity
//! pressure differs from the global FIFO.
//!
//! [`cache_key`]: crate::cache::cache_key
//! [`cache_key_view`]: crate::cache::cache_key_view

use crate::cache::{CacheKey, CacheStats, Lookup, ResponseCache};
use crate::msg::CoapMessage;
use std::collections::HashMap;
use std::hash::{BuildHasher, BuildHasherDefault, Hash, Hasher};
// `doc_check::sync::Mutex` is a passthrough to `std::sync::Mutex`
// outside model executions; under `check_gate` it lets the model
// checker explore this module's lock interleavings (see
// `crates/check`).
use doc_check::sync::Mutex;

/// FNV-1a, the stable 64-bit hash used for shard selection and for the
/// sharded maps. Deterministic across runs and processes (unlike
/// `RandomState`), so shard placement is reproducible in tests and
/// experiments.
#[derive(Clone, Copy)]
pub struct Fnv1a(u64);

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(FNV_OFFSET)
    }
}

impl Fnv1a {
    /// Hash a byte slice in one call (the form the cache-key builders
    /// use).
    pub fn hash_bytes(bytes: &[u8]) -> u64 {
        let mut h = Fnv1a::default();
        h.write(bytes);
        h.finish()
    }
}

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
    }
}

/// A hasher that passes a pre-computed 64-bit hash straight through.
///
/// [`CacheKey`] hashes itself by emitting the FNV-1a value computed
/// once at key-derivation time; this hasher hands that value to the
/// map unchanged, so storing or probing a key never re-walks its
/// bytes.
#[derive(Default, Clone, Copy)]
pub struct PassThroughHasher(u64);

impl Hasher for PassThroughHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        // Only fixed-width writes are expected; fold defensively so a
        // stray byte-wise write still produces a usable value.
        for &b in bytes {
            self.0 = self.0.rotate_left(8) ^ u64::from(b);
        }
    }
    fn write_u64(&mut self, n: u64) {
        self.0 = n;
    }
}

/// `BuildHasher` for maps keyed by pre-hashed values.
pub type BuildPassThrough = BuildHasherDefault<PassThroughHasher>;

/// Round a requested shard count up to a power of two (at least 1) so
/// shard selection is a mask, not a modulo.
fn shard_count(requested: usize) -> usize {
    requested.max(1).next_power_of_two()
}

/// Pick the shard index from a finalizer-mixed copy of the hash.
///
/// Two constraints: (a) the per-shard hash maps derive their bucket
/// index from the low bits of the *raw* hash, so shard selection must
/// not reuse those bits or every key in shard `s` would share them,
/// collapsing each map onto 1/shards of its buckets; (b) FNV-1a's last
/// step is `(h ^ byte) * prime` with prime `2^40 + 2^8 + 0xb3`, so the
/// final input byte only perturbs bits 0..18 and 40..48 — raw bits
/// 32..40 are dead to it, and keys differing only in their last byte
/// would all pile into one shard. A multiplicative finalizer (odd
/// Weyl constant) avalanches every input bit into the mixed value's
/// high half; taking shard bits from there satisfies both.
fn shard_index(hash: u64, mask: u64) -> usize {
    let mixed = hash.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    ((mixed >> 32) & mask) as usize
}

/// A lock-striped hash map: a fixed power-of-two number of shards,
/// each a `HashMap` behind its own mutex. Shard selection hashes the
/// key with the map's own (deterministic) hasher, so an operation
/// takes exactly one lock and workers on different shards proceed in
/// parallel.
pub struct ShardedCache<K, V, S = BuildHasherDefault<Fnv1a>> {
    shards: Box<[Mutex<HashMap<K, V, S>>]>,
    mask: u64,
    build: S,
}

impl<K: Hash + Eq, V, S: BuildHasher + Default + Clone> ShardedCache<K, V, S> {
    /// Create a cache striped over `shards` locks (rounded up to a
    /// power of two).
    pub fn new(shards: usize) -> Self {
        let n = shard_count(shards);
        let shards: Vec<_> = (0..n)
            .map(|_| Mutex::new(HashMap::with_hasher(S::default())))
            .collect();
        ShardedCache {
            shards: shards.into_boxed_slice(),
            mask: (n - 1) as u64,
            build: S::default(),
        }
    }

    /// Number of shards (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, key: &K) -> &Mutex<HashMap<K, V, S>> {
        let h = self.build.hash_one(key);
        &self.shards[shard_index(h, self.mask)]
    }

    /// Insert, returning the previous value.
    pub fn insert(&self, key: K, value: V) -> Option<V> {
        self.shard(&key).lock().unwrap().insert(key, value)
    }

    /// Remove, returning the value.
    pub fn remove(&self, key: &K) -> Option<V> {
        self.shard(key).lock().unwrap().remove(key)
    }

    /// Clone the value for `key` out of its shard.
    pub fn get_cloned(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        self.shard(key).lock().unwrap().get(key).cloned()
    }

    /// Run `f` with the locked shard map that owns `key` — the escape
    /// hatch for read-modify-write sequences (entry API, conditional
    /// removal) that must be atomic under one lock.
    pub fn with_shard_mut<R>(&self, key: &K, f: impl FnOnce(&mut HashMap<K, V, S>) -> R) -> R {
        f(&mut self.shard(key).lock().unwrap())
    }

    /// Total entries across shards (takes every lock in order).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().unwrap().is_empty())
    }

    /// Drop every entry.
    pub fn clear(&self) {
        for s in self.shards.iter() {
            s.lock().unwrap().clear();
        }
    }
}

impl<K: Hash + Eq, V, S: BuildHasher + Default + Clone> Default for ShardedCache<K, V, S> {
    fn default() -> Self {
        Self::new(8)
    }
}

/// The CoAP response cache, lock-striped over [`ResponseCache`]
/// shards.
///
/// Shard selection is `key.precomputed_hash() & mask` — the FNV-1a
/// value derived while the key bytes were assembled, so the request
/// path never hashes key bytes a second time. Total capacity is split
/// evenly (`capacity / shards`, rounded up, at least 1 per shard) and
/// each shard runs the unsharded FIFO eviction locally.
pub struct ShardedResponseCache {
    shards: Box<[Mutex<ResponseCache>]>,
    mask: u64,
}

impl ShardedResponseCache {
    /// Create a cache of ~`capacity` total entries striped over
    /// `shards` locks (rounded up to a power of two).
    pub fn new(capacity: usize, shards: usize) -> Self {
        let n = shard_count(shards);
        let per_shard = capacity.div_ceil(n).max(1);
        let shards: Vec<_> = (0..n)
            .map(|_| Mutex::new(ResponseCache::new(per_shard)))
            .collect();
        ShardedResponseCache {
            shards: shards.into_boxed_slice(),
            mask: (n - 1) as u64,
        }
    }

    /// Number of shards (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<ResponseCache> {
        &self.shards[shard_index(key.precomputed_hash(), self.mask)]
    }

    /// Look up a request's cache key (see [`ResponseCache::lookup`]).
    pub fn lookup(&self, key: &CacheKey, now: u64) -> Lookup {
        self.shard(key).lock().unwrap().lookup(key, now)
    }

    /// Zero-alloc fresh-hit fast path (see
    /// [`ResponseCache::serve_hit_into`]): on a fresh entry the
    /// client-facing reply wire is encoded into `out` under the shard
    /// lock and `true` is returned; a miss or stale entry returns
    /// `false` without touching statistics, and the caller falls back
    /// to [`ShardedResponseCache::lookup`].
    #[allow(clippy::too_many_arguments)]
    pub fn serve_hit_into(
        &self,
        key: &CacheKey,
        now: u64,
        client_mid: u16,
        client_token: &[u8],
        client_etag: Option<&[u8]>,
        out: &mut Vec<u8>,
    ) -> bool {
        self.shard(key).lock().unwrap().serve_hit_into(
            key,
            now,
            client_mid,
            client_token,
            client_etag,
            out,
        )
    }

    /// Store a success response (see [`ResponseCache::insert`]).
    pub fn insert(&self, key: CacheKey, response: CoapMessage, now: u64) {
        self.shard(&key).lock().unwrap().insert(key, response, now)
    }

    /// Refresh a stale entry after `2.03 Valid` (see
    /// [`ResponseCache::revalidate`]).
    pub fn revalidate(&self, key: &CacheKey, valid: &CoapMessage, now: u64) -> Option<CoapMessage> {
        self.shard(key).lock().unwrap().revalidate(key, valid, now)
    }

    /// Remove an entry.
    pub fn invalidate(&self, key: &CacheKey) {
        self.shard(key).lock().unwrap().invalidate(key)
    }

    /// Drop every entry in every shard.
    pub fn clear(&self) {
        for s in self.shards.iter() {
            s.lock().unwrap().clear();
        }
    }

    /// Total entries across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Aggregated statistics across shards.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for s in self.shards.iter() {
            let st = s.lock().unwrap().stats();
            total.hits += st.hits;
            total.misses += st.misses;
            total.stale += st.stale;
            total.revalidations += st.revalidations;
            total.evictions += st.evictions;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::cache_key;
    use crate::msg::{Code, MsgType};
    use crate::opt::{CoapOption, OptionNumber};
    use std::sync::Arc;

    fn fetch_req(payload: &[u8]) -> CoapMessage {
        CoapMessage::request(Code::FETCH, MsgType::Con, 1, vec![1])
            .with_option(CoapOption::new(OptionNumber::URI_PATH, b"dns".to_vec()))
            .with_payload(payload.to_vec())
    }

    fn response(max_age: u32, payload: &[u8]) -> CoapMessage {
        CoapMessage {
            mtype: MsgType::Ack,
            code: Code::CONTENT,
            message_id: 1,
            token: vec![1],
            options: vec![CoapOption::uint(OptionNumber::MAX_AGE, max_age)],
            payload: payload.to_vec(),
        }
    }

    #[test]
    fn fnv_is_deterministic_and_spreads() {
        assert_eq!(Fnv1a::hash_bytes(b"abc"), Fnv1a::hash_bytes(b"abc"));
        assert_ne!(Fnv1a::hash_bytes(b"abc"), Fnv1a::hash_bytes(b"abd"));
        // Reference vector: FNV-1a 64 of empty input is the offset
        // basis.
        assert_eq!(Fnv1a::hash_bytes(b""), FNV_OFFSET);
    }

    #[test]
    fn shard_counts_round_to_powers_of_two() {
        assert_eq!(ShardedCache::<u64, u64>::new(0).shard_count(), 1);
        assert_eq!(ShardedCache::<u64, u64>::new(1).shard_count(), 1);
        assert_eq!(ShardedCache::<u64, u64>::new(3).shard_count(), 4);
        assert_eq!(ShardedCache::<u64, u64>::new(8).shard_count(), 8);
        assert_eq!(ShardedResponseCache::new(50, 6).shard_count(), 8);
    }

    #[test]
    fn sharded_cache_basic_map_ops() {
        let c: ShardedCache<String, u32> = ShardedCache::new(4);
        assert!(c.is_empty());
        assert_eq!(c.insert("a".into(), 1), None);
        assert_eq!(c.insert("a".into(), 2), Some(1));
        assert_eq!(c.get_cloned(&"a".into()), Some(2));
        c.with_shard_mut(&"b".to_string(), |m| {
            *m.entry("b".into()).or_insert(0) += 7;
        });
        assert_eq!(c.get_cloned(&"b".into()), Some(7));
        assert_eq!(c.len(), 2);
        assert_eq!(c.remove(&"a".into()), Some(2));
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn sharded_response_cache_hits_and_stats() {
        let cache = ShardedResponseCache::new(64, 8);
        for i in 0..32u8 {
            let key = cache_key(&fetch_req(&[i]));
            cache.insert(key, response(60, &[i]), 0);
        }
        assert_eq!(cache.len(), 32);
        for i in 0..32u8 {
            let key = cache_key(&fetch_req(&[i]));
            match cache.lookup(&key, 1_000) {
                Lookup::Fresh(r) => assert_eq!(r.payload, vec![i]),
                other => panic!("expected fresh for {i}, got {other:?}"),
            }
        }
        assert_eq!(
            cache.lookup(&cache_key(&fetch_req(b"nope")), 0),
            Lookup::Miss
        );
        let st = cache.stats();
        assert_eq!(st.hits, 32);
        assert_eq!(st.misses, 1);
    }

    #[test]
    fn capacity_splits_across_shards() {
        // 8 shards × ceil(16/8)=2 entries: total stays bounded.
        let cache = ShardedResponseCache::new(16, 8);
        for i in 0..64u8 {
            cache.insert(cache_key(&fetch_req(&[i])), response(60, &[i]), 0);
        }
        assert!(cache.len() <= 16, "len {} over capacity", cache.len());
        assert!(cache.stats().evictions >= 48);
    }

    #[test]
    fn single_shard_keeps_global_fifo_eviction() {
        // shards=1 must evict in exactly the unsharded FIFO order.
        let sharded = ShardedResponseCache::new(2, 1);
        let mut flat = ResponseCache::new(2);
        for i in 0..5u8 {
            let key = cache_key(&fetch_req(&[i]));
            sharded.insert(key.clone(), response(60, &[i]), 0);
            flat.insert(key, response(60, &[i]), 0);
        }
        for i in 0..5u8 {
            let key = cache_key(&fetch_req(&[i]));
            assert_eq!(sharded.lookup(&key, 1), flat.lookup(&key, 1), "key {i}");
        }
    }

    #[test]
    fn concurrent_access_keeps_entries_intact() {
        let cache = Arc::new(ShardedResponseCache::new(256, 8));
        let threads: Vec<_> = (0..4u8)
            .map(|t| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    for round in 0..200u8 {
                        let i = round.wrapping_mul(31).wrapping_add(t) % 64;
                        let key = cache_key(&fetch_req(&[i]));
                        cache.insert(key.clone(), response(60, &[i]), 0);
                        if let Lookup::Fresh(r) = cache.lookup(&key, 1) {
                            assert_eq!(r.payload, vec![i], "cross-key response bleed");
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
    }
}
