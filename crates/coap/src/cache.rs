//! CoAP response caching (RFC 7252 §5.6) with ETag validation.
//!
//! This is the mechanism the whole §4.2/§6 evaluation of the paper
//! turns on:
//!
//! * The **cache key** is the request method plus all options that are
//!   not NoCacheKey — and, for FETCH (RFC 8132 §2.1), the request
//!   payload. GET keys on the URI options (which for DoC carry the
//!   base64url `dns=` variable). POST responses are not cacheable,
//!   which is why POST "does not allow for caching" (Table 5).
//! * **Freshness**: a cached response is fresh while its age is below
//!   the `Max-Age` option value (default 60 s). Serving a cached
//!   response rewrites `Max-Age` to the remaining freshness — the
//!   behaviour DoC clients rely on to restore DNS TTLs.
//! * **Validation**: a stale entry with an ETag can be revalidated; a
//!   `2.03 Valid` response refreshes the entry (new Max-Age) without
//!   re-transferring the payload.

use crate::msg::{encode_raw_option_into, CoapMessage, Code, MsgType};
use crate::opt::{CoapOption, OptionNumber};
use crate::shard::{BuildPassThrough, Fnv1a};
use crate::view::CoapView;
use std::collections::HashMap;

/// A computed cache key: opaque bytes plus their FNV-1a hash, computed
/// once at derivation time. The hash does double duty — it selects the
/// shard in [`crate::shard::ShardedResponseCache`] and, through a
/// pass-through hasher, indexes the per-shard map — so key bytes are
/// never hashed a second time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheKey {
    hash: u64,
    data: Vec<u8>,
}

impl CacheKey {
    fn from_bytes(data: Vec<u8>) -> Self {
        CacheKey {
            hash: Fnv1a::hash_bytes(&data),
            data,
        }
    }

    /// The FNV-1a hash computed when the key was derived.
    pub fn precomputed_hash(&self) -> u64 {
        self.hash
    }

    /// Recover the key's byte buffer for reuse. Pairs with
    /// [`cache_key_view_reusing`]: a caller that derives keys in a loop
    /// hands the same buffer back and forth and allocates nothing in
    /// steady state.
    pub fn into_bytes(self) -> Vec<u8> {
        self.data
    }
}

impl std::hash::Hash for CacheKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Emit only the precomputed value; paired with a pass-through
        // hasher this makes map operations hash-free.
        state.write_u64(self.hash);
    }
}

/// Does this method allow response caching?
///
/// Table 5 of the paper: GET ✓, POST ✘, FETCH ✓.
pub fn is_cacheable_method(code: Code) -> bool {
    matches!(code, Code::GET | Code::FETCH)
}

/// Compute the cache key of a request (RFC 7252 §5.6 / RFC 8132 §2.1).
pub fn cache_key(msg: &CoapMessage) -> CacheKey {
    let mut data = Vec::with_capacity(32 + msg.payload.len());
    data.push(msg.code.0);
    let mut opts: Vec<&CoapOption> = msg
        .options
        .iter()
        .filter(|o| is_cache_key_option(o.number))
        .collect();
    // Stable sort by option *number only*: repeatable options (Uri-Path,
    // Uri-Query) keep their relative order, because that order is
    // semantic — `/a/b` and `/b/a` are different resources. Sorting by
    // (number, value) collapsed such permutations into one key, a
    // cross-resource cache-poisoning bug.
    opts.sort_by_key(|o| o.number.0);
    for o in opts {
        data.extend_from_slice(&o.number.0.to_be_bytes());
        data.extend_from_slice(&(o.value.len() as u16).to_be_bytes());
        data.extend_from_slice(&o.value);
    }
    if msg.code == Code::FETCH {
        data.extend_from_slice(&msg.payload);
    }
    CacheKey::from_bytes(data)
}

/// Whether an option participates in the cache key (shared between the
/// owned and view key derivations so they can never diverge).
fn is_cache_key_option(number: OptionNumber) -> bool {
    // NoCacheKey options and the ETag used for revalidation are not
    // part of the key; Block options describe transfer, not content
    // identity.
    !number.is_no_cache_key()
        && number != OptionNumber::ETAG
        && number != OptionNumber::BLOCK1
        && number != OptionNumber::BLOCK2
        && number != OptionNumber::MAX_AGE
}

/// Compute the cache key of a borrowed request view — byte-identical to
/// [`cache_key`] of the equivalent owned message.
///
/// No sort is needed: wire options are already in ascending number
/// order (deltas are unsigned), and repeatable options keep their wire
/// order, which is exactly the stable-by-number order the owned path
/// produces. The only allocation is the key's own buffer.
pub fn cache_key_view(msg: &CoapView<'_>) -> CacheKey {
    // lint:allow(no-alloc-in-into): the key's own buffer is this function's output, sized exactly once
    cache_key_view_reusing(msg, Vec::with_capacity(32 + msg.payload().len()))
}

/// Like [`cache_key_view`], but the key's bytes are written into a
/// caller-supplied buffer (cleared at entry, capacity preserved).
/// Combined with [`CacheKey::into_bytes`] this makes per-request key
/// derivation allocation-free once the buffer is warm — the pool
/// workers' hot path.
pub fn cache_key_view_reusing(msg: &CoapView<'_>, mut data: Vec<u8>) -> CacheKey {
    data.clear();
    data.push(msg.code.0);
    for o in msg.options().filter(|o| is_cache_key_option(o.number)) {
        data.extend_from_slice(&o.number.0.to_be_bytes());
        data.extend_from_slice(&(o.value.len() as u16).to_be_bytes());
        data.extend_from_slice(o.value);
    }
    if msg.code == Code::FETCH {
        data.extend_from_slice(msg.payload());
    }
    CacheKey::from_bytes(data)
}

/// One cached response.
#[derive(Debug, Clone)]
struct Entry {
    response: CoapMessage,
    stored_at_ms: u64,
    max_age_ms: u64,
}

impl Entry {
    fn age_ms(&self, now: u64) -> u64 {
        now.saturating_sub(self.stored_at_ms)
    }
    fn is_fresh(&self, now: u64) -> bool {
        self.age_ms(now) < self.max_age_ms
    }
    fn remaining_s(&self, now: u64) -> u32 {
        ((self.max_age_ms.saturating_sub(self.age_ms(now))) / 1000) as u32
    }
}

/// Result of a cache lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lookup {
    /// No entry.
    Miss,
    /// Fresh entry: a response ready to serve, with `Max-Age` already
    /// rewritten to the remaining freshness.
    Fresh(CoapMessage),
    /// Stale entry carrying this ETag — eligible for revalidation.
    Stale {
        /// The ETag to send in the revalidation request.
        etag: Vec<u8>,
        /// The stale response body (served again on `2.03 Valid`).
        response: CoapMessage,
    },
    /// Stale entry without an ETag — must be re-fetched in full.
    StaleNoEtag,
}

/// Cache statistics (the counters behind Fig. 11's cache-hit events).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Fresh hits served without network traffic.
    pub hits: u32,
    /// Lookups that found nothing.
    pub misses: u32,
    /// Lookups that found a stale entry (revalidation possible).
    pub stale: u32,
    /// Successful `2.03 Valid` revalidations.
    pub revalidations: u32,
    /// Entries evicted due to capacity.
    pub evictions: u32,
}

/// An LRU-ish response cache (FIFO eviction, matching the small
/// fixed-size caches of `CONFIG_NANOCOAP_CACHE_ENTRIES` in Table 6).
pub struct ResponseCache {
    entries: HashMap<CacheKey, Entry, BuildPassThrough>,
    order: Vec<CacheKey>,
    capacity: usize,
    stats: CacheStats,
}

impl ResponseCache {
    /// Create a cache bounded to `capacity` entries (the paper's
    /// clients use 8, the proxy 50 — Table 6).
    pub fn new(capacity: usize) -> Self {
        ResponseCache {
            entries: HashMap::default(),
            order: Vec::new(),
            capacity: capacity.max(1),
            stats: CacheStats::default(),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up a request's cache key.
    pub fn lookup(&mut self, key: &CacheKey, now: u64) -> Lookup {
        match self.entries.get(key) {
            None => {
                self.stats.misses += 1;
                Lookup::Miss
            }
            Some(e) if e.is_fresh(now) => {
                self.stats.hits += 1;
                let mut resp = e.response.clone();
                resp.set_option(CoapOption::uint(OptionNumber::MAX_AGE, e.remaining_s(now)));
                Lookup::Fresh(resp)
            }
            Some(e) => {
                self.stats.stale += 1;
                match e.response.option(OptionNumber::ETAG) {
                    Some(etag) => Lookup::Stale {
                        etag: etag.value.clone(),
                        response: e.response.clone(),
                    },
                    None => Lookup::StaleNoEtag,
                }
            }
        }
    }

    /// Zero-alloc fresh-hit fast path: if `key` holds a fresh entry,
    /// encode the client-facing reply straight into `out` (cleared at
    /// entry) and return `true`, counting a hit. The reply is
    /// byte-identical to what [`ResponseCache::lookup`]'s `Fresh` arm
    /// plus the proxy's owned reply construction would produce: the
    /// cached response re-keyed to the client's MID/token, `mtype`
    /// forced to Ack, `Max-Age` rewritten to the remaining freshness —
    /// or a payload-free `2.03 Valid` when `client_etag` matches the
    /// entry's ETag.
    ///
    /// A miss or stale entry returns `false` *without* touching the
    /// statistics; the caller falls back to `lookup`, which classifies
    /// and counts the outcome.
    pub fn serve_hit_into(
        &mut self,
        key: &CacheKey,
        now: u64,
        client_mid: u16,
        client_token: &[u8],
        client_etag: Option<&[u8]>,
        out: &mut Vec<u8>,
    ) -> bool {
        let Some(e) = self.entries.get(key) else {
            return false;
        };
        if !e.is_fresh(now) {
            return false;
        }
        self.stats.hits += 1;
        let remaining = e.remaining_s(now);
        out.clear();
        let entry_etag = e
            .response
            .option(OptionNumber::ETAG)
            .map(|o| o.value.as_slice());
        if client_etag.is_some() && client_etag == entry_etag {
            // The client already holds the representation: a tiny
            // `2.03 Valid` carrying only ETag + decayed Max-Age.
            debug_assert!(client_token.len() <= 8);
            out.push(0x40 | (MsgType::Ack.to_bits() << 4) | client_token.len() as u8);
            out.push(Code::VALID.0);
            out.extend_from_slice(&client_mid.to_be_bytes());
            out.extend_from_slice(client_token);
            let mut prev = 0u16;
            if let Some(etag) = entry_etag {
                prev = encode_raw_option_into(prev, OptionNumber::ETAG.0, etag, out);
            }
            let mut scratch = [0u8; 4];
            encode_raw_option_into(
                prev,
                OptionNumber::MAX_AGE.0,
                uint_value_bytes(remaining, &mut scratch),
                out,
            );
        } else {
            encode_entry_reply_into(&e.response, client_mid, client_token, remaining, out);
        }
        true
    }

    /// Store a (success) response under `key`. Non-success responses
    /// and responses to non-cacheable methods should not be inserted by
    /// the caller.
    pub fn insert(&mut self, key: CacheKey, response: CoapMessage, now: u64) {
        let max_age_ms = response.max_age() as u64 * 1000;
        if !self.entries.contains_key(&key) {
            if self.entries.len() >= self.capacity {
                // FIFO eviction.
                let victim = self.order.remove(0);
                self.entries.remove(&victim);
                self.stats.evictions += 1;
            }
            self.order.push(key.clone());
        }
        self.entries.insert(
            key,
            Entry {
                response,
                stored_at_ms: now,
                max_age_ms,
            },
        );
    }

    /// Refresh a stale entry after a `2.03 Valid`: the entry's timer is
    /// reset and the options carried by the 2.03 response replace their
    /// counterparts on the cached response (RFC 7252 §5.9.1.3 — in
    /// particular Max-Age *and* ETag, so a server that rotated the ETag
    /// while confirming the payload leaves us revalidating with the new
    /// tag, not a dead one). Returns the refreshed cached response
    /// (full payload) or `None` if the entry vanished.
    pub fn revalidate(
        &mut self,
        key: &CacheKey,
        valid: &CoapMessage,
        now: u64,
    ) -> Option<CoapMessage> {
        debug_assert_eq!(valid.code, Code::VALID);
        let e = self.entries.get_mut(key)?;
        e.stored_at_ms = now;
        e.max_age_ms = valid.max_age() as u64 * 1000;
        // Replace whole option runs: drop every cached instance of a
        // number the 2.03 carries, then adopt the 2.03's instances (so
        // repeatable options keep all their values and their order).
        for opt in &valid.options {
            e.response.remove_option(opt.number);
        }
        for opt in &valid.options {
            e.response.options.push(opt.clone());
        }
        // A 2.03 without an explicit Max-Age means the default 60 s
        // (RFC 7252 §5.10.5); make the served copy say so.
        e.response
            .set_option(CoapOption::uint(OptionNumber::MAX_AGE, valid.max_age()));
        self.stats.revalidations += 1;
        Some(e.response.clone())
    }

    /// Remove an entry (e.g. after the origin replaced the payload).
    pub fn invalidate(&mut self, key: &CacheKey) {
        self.entries.remove(key);
        self.order.retain(|k| k != key);
    }

    /// Drop every entry.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.order.clear();
    }
}

/// Shortest-form big-endian bytes of a uint option value, borrowed
/// from a caller stack buffer — the non-allocating sibling of the
/// owned uint-option constructor (`0` encodes as the empty string).
fn uint_value_bytes(v: u32, buf: &mut [u8; 4]) -> &[u8] {
    *buf = v.to_be_bytes();
    let skip = buf.iter().take_while(|&&b| b == 0).count();
    &buf[skip..]
}

/// Encode the client-facing reply for a fresh cached response directly
/// into `out`: the cached message with the client's MID and token,
/// `mtype` forced to Ack, and every `Max-Age` instance replaced by one
/// carrying `remaining_s`. Byte-identical to cloning the entry,
/// calling `set_option(Max-Age)` and re-encoding, without owning
/// anything: the substituted Max-Age is emitted at its stable-sorted
/// position (after every option numbered below it, before any above),
/// which is exactly where the owned path's remove-then-append plus
/// stable sort lands it.
fn encode_entry_reply_into(
    resp: &CoapMessage,
    client_mid: u16,
    client_token: &[u8],
    remaining_s: u32,
    out: &mut Vec<u8>,
) {
    debug_assert!(client_token.len() <= 8);
    out.push(0x40 | (MsgType::Ack.to_bits() << 4) | client_token.len() as u8);
    out.push(resp.code.0);
    out.extend_from_slice(&client_mid.to_be_bytes());
    out.extend_from_slice(client_token);
    let mut scratch = [0u8; 4];
    let max_age_value = uint_value_bytes(remaining_s, &mut scratch);
    // Stream the options in stable (number, original index) order via
    // repeated minimum scans — option lists are a handful of entries,
    // so this beats building a sorted copy and allocates nothing.
    let mut prev = 0u16;
    let mut max_age_emitted = false;
    let mut last: Option<(u16, usize)> = None;
    loop {
        let mut next: Option<(u16, usize)> = None;
        for (i, o) in resp.options.iter().enumerate() {
            if o.number == OptionNumber::MAX_AGE {
                continue;
            }
            let cand = (o.number.0, i);
            if Some(cand) > last && (next.is_none() || Some(cand) < next) {
                next = Some(cand);
            }
        }
        let Some((num, idx)) = next else {
            break;
        };
        if !max_age_emitted && num > OptionNumber::MAX_AGE.0 {
            prev = encode_raw_option_into(prev, OptionNumber::MAX_AGE.0, max_age_value, out);
            max_age_emitted = true;
        }
        prev = encode_raw_option_into(prev, num, &resp.options[idx].value, out);
        last = Some((num, idx));
    }
    if !max_age_emitted {
        encode_raw_option_into(prev, OptionNumber::MAX_AGE.0, max_age_value, out);
    }
    if !resp.payload.is_empty() {
        out.push(0xFF);
        out.extend_from_slice(&resp.payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::MsgType;

    fn fetch_req(payload: &[u8]) -> CoapMessage {
        CoapMessage::request(Code::FETCH, MsgType::Con, 1, vec![1])
            .with_option(CoapOption::new(OptionNumber::URI_PATH, b"dns".to_vec()))
            .with_payload(payload.to_vec())
    }

    fn get_req(query: &str) -> CoapMessage {
        CoapMessage::request(Code::GET, MsgType::Con, 1, vec![1])
            .with_option(CoapOption::new(OptionNumber::URI_PATH, b"dns".to_vec()))
            .with_option(CoapOption::new(
                OptionNumber::URI_QUERY,
                format!("dns={query}").into_bytes(),
            ))
    }

    fn response(max_age: u32, etag: Option<&[u8]>, payload: &[u8]) -> CoapMessage {
        let mut r = CoapMessage {
            mtype: MsgType::Ack,
            code: Code::CONTENT,
            message_id: 1,
            token: vec![1],
            options: vec![CoapOption::uint(OptionNumber::MAX_AGE, max_age)],
            payload: payload.to_vec(),
        };
        if let Some(e) = etag {
            r.set_option(CoapOption::new(OptionNumber::ETAG, e.to_vec()));
        }
        r
    }

    /// A `2.03 Valid` revalidation response (ETag + Max-Age, no body).
    fn valid_response(max_age: u32, etag: Option<&[u8]>) -> CoapMessage {
        let mut r = response(max_age, etag, b"");
        r.code = Code::VALID;
        r
    }

    #[test]
    fn method_cacheability_table5() {
        assert!(is_cacheable_method(Code::GET));
        assert!(is_cacheable_method(Code::FETCH));
        assert!(!is_cacheable_method(Code::POST));
        assert!(!is_cacheable_method(Code::PUT));
    }

    #[test]
    fn fetch_key_includes_payload() {
        let k1 = cache_key(&fetch_req(b"query-a"));
        let k2 = cache_key(&fetch_req(b"query-b"));
        let k3 = cache_key(&fetch_req(b"query-a"));
        assert_ne!(k1, k2);
        assert_eq!(k1, k3);
    }

    #[test]
    fn post_key_ignores_payload() {
        // POST bodies are not part of the cache key — the formal reason
        // POST cannot use response caches (paper §4.1).
        let mut p1 = fetch_req(b"query-a");
        p1.code = Code::POST;
        let mut p2 = fetch_req(b"query-b");
        p2.code = Code::POST;
        assert_eq!(cache_key(&p1), cache_key(&p2));
    }

    #[test]
    fn get_key_includes_uri_query() {
        let k1 = cache_key(&get_req("AAAA"));
        let k2 = cache_key(&get_req("BBBB"));
        assert_ne!(k1, k2);
        assert_eq!(k1, cache_key(&get_req("AAAA")));
    }

    /// The view-based key derivation must be byte-identical to the
    /// owned one — same key, same cache entry.
    #[test]
    fn view_key_matches_owned_key() {
        let mut with_extras = fetch_req(b"query-a");
        with_extras.set_option(CoapOption::new(OptionNumber::ETAG, vec![9, 9]));
        with_extras.set_option(CoapOption::uint(OptionNumber::MAX_AGE, 5));
        with_extras.set_option(CoapOption::uint(OptionNumber::SIZE1, 99));
        let mut get = get_req("AAAA");
        get.options.push(CoapOption::new(
            OptionNumber::URI_QUERY,
            b"extra=1".to_vec(),
        ));
        for msg in [fetch_req(b"q"), with_extras, get] {
            let wire = msg.encode();
            let view = crate::view::CoapView::parse(&wire).unwrap();
            assert_eq!(cache_key_view(&view), cache_key(&msg), "{msg:?}");
        }
    }

    #[test]
    fn method_distinguishes_keys() {
        let f = fetch_req(b"x");
        let mut g = fetch_req(b"x");
        g.code = Code::GET;
        assert_ne!(cache_key(&f), cache_key(&g));
    }

    #[test]
    fn etag_block_maxage_not_in_key() {
        let base = fetch_req(b"q");
        let mut with_extras = base.clone();
        with_extras.set_option(CoapOption::new(OptionNumber::ETAG, vec![9, 9]));
        with_extras.set_option(CoapOption::uint(OptionNumber::MAX_AGE, 5));
        with_extras.set_option(CoapOption::new(OptionNumber::BLOCK2, vec![0x06]));
        with_extras.set_option(CoapOption::uint(OptionNumber::SIZE1, 99));
        assert_eq!(cache_key(&base), cache_key(&with_extras));
    }

    #[test]
    fn fresh_hit_rewrites_max_age() {
        let mut cache = ResponseCache::new(8);
        let key = cache_key(&fetch_req(b"q"));
        cache.insert(key.clone(), response(10, None, b"data"), 0);
        match cache.lookup(&key, 4_000) {
            Lookup::Fresh(resp) => {
                assert_eq!(resp.max_age(), 6);
                assert_eq!(resp.payload, b"data");
            }
            other => panic!("expected fresh, got {other:?}"),
        }
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn expiry_goes_stale() {
        let mut cache = ResponseCache::new(8);
        let key = cache_key(&fetch_req(b"q"));
        cache.insert(key.clone(), response(5, Some(&[0xE1]), b"data"), 0);
        match cache.lookup(&key, 5_000) {
            Lookup::Stale { etag, .. } => assert_eq!(etag, vec![0xE1]),
            other => panic!("expected stale, got {other:?}"),
        }
        assert_eq!(cache.stats().stale, 1);
    }

    #[test]
    fn stale_without_etag() {
        let mut cache = ResponseCache::new(8);
        let key = cache_key(&fetch_req(b"q"));
        cache.insert(key.clone(), response(5, None, b"data"), 0);
        assert_eq!(cache.lookup(&key, 6_000), Lookup::StaleNoEtag);
    }

    #[test]
    fn revalidation_resets_timer() {
        let mut cache = ResponseCache::new(8);
        let key = cache_key(&fetch_req(b"q"));
        cache.insert(key.clone(), response(5, Some(&[0xE1]), b"data"), 0);
        assert!(matches!(cache.lookup(&key, 6_000), Lookup::Stale { .. }));
        // 2.03 Valid arrives with new Max-Age 7.
        let refreshed = cache
            .revalidate(&key, &valid_response(7, Some(&[0xE1])), 6_000)
            .unwrap();
        assert_eq!(refreshed.payload, b"data");
        assert_eq!(refreshed.max_age(), 7);
        match cache.lookup(&key, 9_000) {
            Lookup::Fresh(r) => assert_eq!(r.max_age(), 4),
            other => panic!("expected fresh after revalidation, got {other:?}"),
        }
        assert_eq!(cache.stats().revalidations, 1);
    }

    /// Regression for the cache-key collision: two permutations of the
    /// same Uri-Path segments are different resources and must key
    /// differently (`/a/b` vs `/b/a`).
    #[test]
    fn uri_path_permutations_key_distinctly() {
        let path = |segs: &[&str]| {
            let mut m = CoapMessage::request(Code::GET, MsgType::Con, 1, vec![1]);
            for s in segs {
                m.options.push(CoapOption::new(
                    OptionNumber::URI_PATH,
                    s.as_bytes().to_vec(),
                ));
            }
            m
        };
        assert_ne!(cache_key(&path(&["a", "b"])), cache_key(&path(&["b", "a"])));
        assert_eq!(cache_key(&path(&["a", "b"])), cache_key(&path(&["a", "b"])));
        // Insertion order of *different* option numbers still does not
        // matter (the sort by number is what RFC 7252 §5.6 wants).
        let mut q1 = path(&["dns"]);
        q1.options.push(CoapOption::new(
            OptionNumber::URI_QUERY,
            b"dns=AAAA".to_vec(),
        ));
        let mut q2 = CoapMessage::request(Code::GET, MsgType::Con, 1, vec![1]);
        q2.options.push(CoapOption::new(
            OptionNumber::URI_QUERY,
            b"dns=AAAA".to_vec(),
        ));
        q2.options
            .push(CoapOption::new(OptionNumber::URI_PATH, b"dns".to_vec()));
        assert_eq!(cache_key(&q1), cache_key(&q2));
        // Repeated Uri-Query permutations are likewise distinct keys.
        let query = |a: &str, b: &str| {
            let mut m = CoapMessage::request(Code::GET, MsgType::Con, 1, vec![1]);
            for q in [a, b] {
                m.options.push(CoapOption::new(
                    OptionNumber::URI_QUERY,
                    q.as_bytes().to_vec(),
                ));
            }
            m
        };
        assert_ne!(
            cache_key(&query("x=1", "y=2")),
            cache_key(&query("y=2", "x=1"))
        );
    }

    /// Regression for dead-ETag revalidation: a server may answer
    /// `2.03 Valid` *and* rotate the ETag; the refreshed entry must
    /// carry the new tag so the next revalidation can succeed.
    #[test]
    fn revalidation_adopts_rotated_etag() {
        let mut cache = ResponseCache::new(8);
        let key = cache_key(&fetch_req(b"q"));
        cache.insert(key.clone(), response(5, Some(&[0xE1]), b"data"), 0);
        // Stale at t=6 s; server confirms payload but rotates to 0xE2.
        let etag1 = match cache.lookup(&key, 6_000) {
            Lookup::Stale { etag, .. } => etag,
            other => panic!("expected stale, got {other:?}"),
        };
        assert_eq!(etag1, vec![0xE1]);
        let refreshed = cache
            .revalidate(&key, &valid_response(5, Some(&[0xE2])), 6_000)
            .unwrap();
        assert_eq!(refreshed.payload, b"data", "payload survives refresh");
        assert_eq!(
            refreshed.option(OptionNumber::ETAG).unwrap().value,
            vec![0xE2]
        );
        // Next staleness exposes the *new* tag for revalidation.
        match cache.lookup(&key, 12_000) {
            Lookup::Stale { etag, .. } => assert_eq!(etag, vec![0xE2]),
            other => panic!("expected stale with rotated etag, got {other:?}"),
        }
    }

    #[test]
    fn revalidation_without_max_age_defaults_to_60s() {
        let mut cache = ResponseCache::new(8);
        let key = cache_key(&fetch_req(b"q"));
        cache.insert(key.clone(), response(5, Some(&[0xE1]), b"data"), 0);
        let mut valid = valid_response(0, Some(&[0xE1]));
        valid.remove_option(OptionNumber::MAX_AGE);
        let refreshed = cache.revalidate(&key, &valid, 6_000).unwrap();
        assert_eq!(refreshed.max_age(), 60);
        assert!(matches!(cache.lookup(&key, 60_000), Lookup::Fresh(_)));
    }

    #[test]
    fn zero_max_age_is_immediately_stale() {
        // EOL-TTLs responses whose records expired carry Max-Age 0.
        let mut cache = ResponseCache::new(8);
        let key = cache_key(&fetch_req(b"q"));
        cache.insert(key.clone(), response(0, Some(&[1]), b"x"), 0);
        assert!(matches!(cache.lookup(&key, 0), Lookup::Stale { .. }));
    }

    #[test]
    fn capacity_eviction_fifo() {
        let mut cache = ResponseCache::new(2);
        let k1 = cache_key(&fetch_req(b"1"));
        let k2 = cache_key(&fetch_req(b"2"));
        let k3 = cache_key(&fetch_req(b"3"));
        cache.insert(k1.clone(), response(60, None, b"1"), 0);
        cache.insert(k2.clone(), response(60, None, b"2"), 0);
        cache.insert(k3.clone(), response(60, None, b"3"), 0);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.lookup(&k1, 1), Lookup::Miss);
        assert!(matches!(cache.lookup(&k2, 1), Lookup::Fresh(_)));
        assert!(matches!(cache.lookup(&k3, 1), Lookup::Fresh(_)));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn reinsert_updates_in_place() {
        let mut cache = ResponseCache::new(2);
        let k = cache_key(&fetch_req(b"1"));
        cache.insert(k.clone(), response(60, None, b"old"), 0);
        cache.insert(k.clone(), response(60, None, b"new"), 10);
        assert_eq!(cache.len(), 1);
        match cache.lookup(&k, 20) {
            Lookup::Fresh(r) => assert_eq!(r.payload, b"new"),
            other => panic!("{other:?}"),
        }
    }

    /// The wire-direct hit path must produce byte-identical replies to
    /// the owned path (lookup → clone → re-key → encode) in every
    /// shape: plain hit, decayed Max-Age, options above/below Max-Age,
    /// ETag-match 2.03, empty payload, zero remaining seconds.
    #[test]
    fn serve_hit_into_matches_owned_path_bytes() {
        let mut shaped = response(300, Some(&[0xE7, 0x01]), b"payload-bytes");
        // Options straddling Max-Age (14): Uri-Path (11) below... and
        // Proxy-Uri (35) / Size1 (60) above, plus a repeatable option.
        shaped
            .options
            .push(CoapOption::new(OptionNumber::URI_PATH, b"dns".to_vec()));
        shaped
            .options
            .push(CoapOption::new(OptionNumber::URI_PATH, b"sub".to_vec()));
        shaped.set_option(CoapOption::uint(OptionNumber::SIZE1, 99));
        let cases = [
            response(300, None, b"data"),
            response(300, Some(&[0xE1]), b"data"),
            response(10, Some(&[0xE1]), b""),
            shaped,
        ];
        for (i, resp) in cases.into_iter().enumerate() {
            for (now, client_etag) in [
                (0u64, None),
                (4_000, None),
                (9_999, Some(vec![0xE1])),
                (0, Some(vec![0x99])), // non-matching ETag: full reply
            ] {
                let mut cache = ResponseCache::new(8);
                let key = cache_key(&fetch_req(b"q"));
                cache.insert(key.clone(), resp.clone(), 0);
                let mut wire = vec![0xAA; 7]; // stale garbage must be cleared
                let hit = cache.serve_hit_into(
                    &key,
                    now,
                    0x1234,
                    &[9, 8, 7],
                    client_etag.as_deref(),
                    &mut wire,
                );
                assert!(hit, "case {i} now {now}");
                // Owned reference: lookup's Fresh arm + the proxy's
                // reply construction.
                let cached = match cache.lookup(&key, now) {
                    Lookup::Fresh(c) => c,
                    other => panic!("case {i}: {other:?}"),
                };
                let entry_etag = cached.option(OptionNumber::ETAG).map(|o| o.value.clone());
                let expect = if client_etag.is_some() && client_etag == entry_etag {
                    let mut v = CoapMessage::ack_reply(0x1234, vec![9, 8, 7], Code::VALID);
                    if let Some(e) = entry_etag {
                        v.set_option(CoapOption::new(OptionNumber::ETAG, e));
                    }
                    v.set_option(CoapOption::uint(OptionNumber::MAX_AGE, cached.max_age()));
                    v
                } else {
                    let mut full = cached.clone();
                    full.message_id = 0x1234;
                    full.token = vec![9, 8, 7];
                    full.mtype = MsgType::Ack;
                    full
                };
                assert_eq!(wire, expect.encode(), "case {i} now {now}");
                assert_eq!(cache.stats().hits, 2, "hit path and lookup each count");
            }
        }
    }

    /// Miss and stale outcomes leave the statistics untouched so the
    /// fallback `lookup` counts them exactly once.
    #[test]
    fn serve_hit_into_declines_miss_and_stale_without_counting() {
        let mut cache = ResponseCache::new(8);
        let key = cache_key(&fetch_req(b"q"));
        let mut out = Vec::new();
        assert!(!cache.serve_hit_into(&key, 0, 1, &[1], None, &mut out));
        cache.insert(key.clone(), response(5, Some(&[0xE1]), b"data"), 0);
        assert!(!cache.serve_hit_into(&key, 6_000, 1, &[1], None, &mut out));
        assert_eq!(cache.stats(), CacheStats::default());
    }

    /// Key derivation into a recycled buffer matches the allocating
    /// derivations, and the buffer round-trips through the key.
    #[test]
    fn reused_key_buffer_matches_and_round_trips() {
        let mut buf = Vec::new();
        for msg in [fetch_req(b"query-a"), get_req("AAAA")] {
            let wire = msg.encode();
            let view = crate::view::CoapView::parse(&wire).unwrap();
            let key = cache_key_view_reusing(&view, std::mem::take(&mut buf));
            assert_eq!(key, cache_key(&msg));
            assert_eq!(key, cache_key_view(&view));
            buf = key.into_bytes();
            assert!(!buf.is_empty());
        }
    }

    #[test]
    fn invalidate_and_clear() {
        let mut cache = ResponseCache::new(4);
        let k = cache_key(&fetch_req(b"1"));
        cache.insert(k.clone(), response(60, None, b"x"), 0);
        cache.invalidate(&k);
        assert!(cache.is_empty());
        cache.insert(k.clone(), response(60, None, b"x"), 0);
        cache.clear();
        assert_eq!(cache.lookup(&k, 0), Lookup::Miss);
    }
}
