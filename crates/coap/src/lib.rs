//! `doc-coap` — Constrained Application Protocol substrate.
//!
//! A from-scratch CoAP implementation covering the protocol surface the
//! DoC paper exercises:
//!
//! * [`msg`] — the RFC 7252 message codec: 4-byte header, token,
//!   option delta/length encoding, payload marker; all request methods
//!   including FETCH/PATCH/iPATCH (RFC 8132).
//! * [`opt`] — option numbers and their Critical/Unsafe/NoCacheKey
//!   classes, plus typed accessors (`Max-Age`, `ETag`,
//!   `Content-Format`, `Uri-Path`, `Uri-Query`, `Block1/2`, `Echo`,
//!   the OSCORE option …).
//! * [`block`] — RFC 7959 block-wise transfer: BLOCK option value
//!   codec, body slicing/reassembly state machines for Block1
//!   (requests) and Block2 (responses) as used in Appendix A/D of the
//!   paper.
//! * [`reliability`] — the RFC 7252 §4 message layer as a sans-IO state
//!   machine: CON retransmission with exponential back-off
//!   (`ACK_TIMEOUT = 2 s`, `ACK_RANDOM_FACTOR = 1.5`,
//!   `MAX_RETRANSMIT = 4`), MID deduplication, token-based
//!   request/response matching. Driven by virtual time from
//!   `doc-netsim`.
//! * [`cache`] — the RFC 7252 §5.6 freshness model: cache keys over
//!   method + options (minus NoCacheKey) + payload (FETCH) or URI
//!   (GET), Max-Age expiry, and ETag-based validation (2.03 Valid).
//! * [`view`] — borrowed, zero-allocation [`CoapView`]s over wire
//!   bytes for the decode hot path: lazy option iteration over borrowed
//!   values, borrowed token/payload, with a `to_owned()` escape hatch.
//!
//! The implementation is deterministic (seeded jitter) so that testbed
//! experiments are exactly reproducible.
//!
//! # Example
//!
//! Build the FETCH request the DoC client sends, encode it to the
//! wire, and decode it back:
//!
//! ```
//! use doc_coap::msg::{Code, CoapMessage, MsgType};
//! use doc_coap::opt::{CoapOption, OptionNumber};
//!
//! let request = CoapMessage::request(Code::FETCH, MsgType::Con, 0x1d0c, vec![0xC0])
//!     .with_option(CoapOption::new(OptionNumber::URI_PATH, b"dns".to_vec()))
//!     .with_option(CoapOption::uint(OptionNumber::CONTENT_FORMAT, 553))
//!     .with_payload(b"\x00\x00...".to_vec()); // DNS query bytes
//!
//! let wire = request.encode();
//! let back = CoapMessage::decode(&wire).unwrap();
//! assert_eq!(back.code, Code::FETCH);
//! assert_eq!(back.uri_path(), "/dns");
//! assert_eq!(back.payload, request.payload);
//! ```

pub mod block;
pub mod cache;
pub mod msg;
pub mod opt;
pub mod reliability;
pub mod shard;
pub mod view;

pub use block::BlockOpt;
pub use msg::{CoapMessage, Code, MsgType};
pub use opt::OptionNumber;
pub use view::{CoapView, OptionView};

/// Errors produced by the CoAP layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoapError {
    /// Datagram shorter than a CoAP header or truncated mid-structure.
    Truncated,
    /// Version field was not 1.
    BadVersion,
    /// Token length > 8 or other header inconsistency.
    BadHeader,
    /// Option delta/length used a reserved (0xF) nibble illegally.
    BadOption,
    /// A BLOCK option value was malformed (e.g. SZX = 7).
    BadBlock,
    /// Block-wise reassembly saw an unexpected block number.
    BlockSequence,
    /// Message too large for the configured buffer.
    TooLarge,
}

impl core::fmt::Display for CoapError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CoapError::Truncated => write!(f, "truncated CoAP message"),
            CoapError::BadVersion => write!(f, "unsupported CoAP version"),
            CoapError::BadHeader => write!(f, "invalid CoAP header"),
            CoapError::BadOption => write!(f, "invalid CoAP option encoding"),
            CoapError::BadBlock => write!(f, "invalid BLOCK option"),
            CoapError::BlockSequence => write!(f, "unexpected block number"),
            CoapError::TooLarge => write!(f, "message exceeds buffer"),
        }
    }
}

impl std::error::Error for CoapError {}
