//! Borrowed, zero-copy view over a CoAP wire message.
//!
//! [`CoapView`] is the decode-side counterpart of `encode_into`: where
//! [`CoapMessage::decode`] copies the token, every option value and the
//! payload into owned `Vec`s, a view keeps them as slices of the
//! original datagram and walks the option run lazily. Parsing validates
//! the whole message up front with exactly the accept/reject behaviour
//! of the owned decoder (property-tested), so the option iterator is
//! infallible.
//!
//! Views are for messages that do not outlive their datagram — the
//! proxy/server request hot path, cache-key derivation, OSCORE outer
//! parsing. [`CoapView::to_owned`] is the escape hatch for the moment a
//! message must be stored (cache insertion, outstanding exchanges).

use crate::msg::{read_ext, CoapMessage, Code, MsgType};
use crate::opt::{decode_uint_value, CoapOption, OptionNumber};
use crate::CoapError;

/// One option as seen on the wire: number plus a borrowed value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptionView<'a> {
    /// Option number.
    pub number: OptionNumber,
    /// Raw option value (borrowed from the datagram).
    pub value: &'a [u8],
}

impl OptionView<'_> {
    /// Decode this option's value as a uint (RFC 7252 §3.2).
    pub fn as_uint(&self) -> u32 {
        decode_uint_value(self.value)
    }

    /// Materialize an owned [`CoapOption`].
    pub fn to_owned(&self) -> CoapOption {
        CoapOption::new(self.number, self.value.to_vec())
    }
}

/// A validated, borrowed view of a CoAP wire message.
#[derive(Debug, Clone, Copy)]
pub struct CoapView<'a> {
    /// Message type (CON/NON/ACK/RST).
    pub mtype: MsgType,
    /// Request/response code.
    pub code: Code,
    /// Message ID.
    pub message_id: u16,
    token: &'a [u8],
    /// The option run (everything between token and payload marker).
    options_wire: &'a [u8],
    payload: &'a [u8],
}

impl<'a> CoapView<'a> {
    /// Parse and fully validate `data`, accepting and rejecting exactly
    /// the inputs [`CoapMessage::decode`] does, without allocating.
    pub fn parse(data: &'a [u8]) -> Result<Self, CoapError> {
        let (header, _) = data.split_first_chunk::<4>().ok_or(CoapError::Truncated)?;
        let &[first, code_byte, mid_hi, mid_lo] = header;
        let ver = first >> 6;
        if ver != 1 {
            return Err(CoapError::BadVersion);
        }
        let mtype = MsgType::from_bits(first >> 4);
        let tkl = (first & 0x0F) as usize;
        if tkl > 8 {
            return Err(CoapError::BadHeader);
        }
        let code = Code(code_byte);
        let message_id = u16::from_be_bytes([mid_hi, mid_lo]);
        let token = data.get(4..4 + tkl).ok_or(CoapError::Truncated)?;

        // Validate the option run and locate the payload.
        let options_start = 4 + tkl;
        let mut pos = options_start;
        let mut number = 0u16;
        let mut options_end = data.len();
        let mut payload: &[u8] = &[];
        while let Some(&byte) = data.get(pos) {
            if byte == 0xFF {
                options_end = pos;
                pos += 1;
                payload = data.get(pos..).ok_or(CoapError::Truncated)?;
                if payload.is_empty() {
                    return Err(CoapError::Truncated);
                }
                break;
            }
            pos += 1;
            let delta = read_ext(byte >> 4, data, &mut pos)?;
            let len = read_ext(byte & 0x0F, data, &mut pos)? as usize;
            number = number
                .checked_add(u16::try_from(delta).map_err(|_| CoapError::BadOption)?)
                .ok_or(CoapError::BadOption)?;
            if data.get(pos..pos + len).is_none() {
                return Err(CoapError::Truncated);
            }
            pos += len;
        }
        Ok(CoapView {
            mtype,
            code,
            message_id,
            token,
            options_wire: data
                .get(options_start..options_end)
                .ok_or(CoapError::Truncated)?,
            payload,
        })
    }

    /// The token (borrowed).
    pub fn token(&self) -> &'a [u8] {
        self.token
    }

    /// The payload (borrowed; empty when absent).
    pub fn payload(&self) -> &'a [u8] {
        self.payload
    }

    /// Iterate the options lazily, in wire order (ascending numbers).
    pub fn options(&self) -> OptionIter<'a> {
        OptionIter {
            wire: self.options_wire,
            pos: 0,
            number: 0,
        }
    }

    /// First option with the given number.
    pub fn option(&self, number: OptionNumber) -> Option<OptionView<'a>> {
        self.options().find(|o| o.number == number)
    }

    /// All options with the given number (e.g. repeated Uri-Path).
    pub fn options_of(&self, number: OptionNumber) -> impl Iterator<Item = OptionView<'a>> {
        self.options().filter(move |o| o.number == number)
    }

    /// Max-Age value (default 60 per RFC 7252 §5.10.5 when absent).
    pub fn max_age(&self) -> u32 {
        self.option(OptionNumber::MAX_AGE)
            .map(|o| o.as_uint())
            .unwrap_or(60)
    }

    /// Materialize a fully owned [`CoapMessage`] — the escape hatch for
    /// the moment a message must outlive its datagram. Options come out
    /// in wire order (ascending numbers), which every encoder and the
    /// cache key treat identically to the original order.
    pub fn to_owned(&self) -> CoapMessage {
        CoapMessage {
            mtype: self.mtype,
            code: self.code,
            message_id: self.message_id,
            token: self.token.to_vec(),
            options: self.options().map(|o| o.to_owned()).collect(),
            payload: self.payload.to_vec(),
        }
    }
}

/// Lazy iterator over a validated option run.
#[derive(Debug, Clone)]
pub struct OptionIter<'a> {
    wire: &'a [u8],
    pos: usize,
    number: u16,
}

impl<'a> Iterator for OptionIter<'a> {
    type Item = OptionView<'a>;

    fn next(&mut self) -> Option<OptionView<'a>> {
        let byte = *self.wire.get(self.pos)?;
        self.pos += 1;
        let delta = read_ext(byte >> 4, self.wire, &mut self.pos).ok()?;
        let len = read_ext(byte & 0x0F, self.wire, &mut self.pos).ok()? as usize;
        self.number = self.number.checked_add(delta as u16)?;
        let value = self.wire.get(self.pos..self.pos + len)?;
        self.pos += len;
        Some(OptionView {
            number: OptionNumber(self.number),
            value,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fetch_request() -> CoapMessage {
        CoapMessage::request(Code::FETCH, MsgType::Con, 0x1234, vec![0xAB, 0xCD])
            .with_option(CoapOption::new(OptionNumber::URI_PATH, b"dns".to_vec()))
            .with_option(CoapOption::uint(OptionNumber::CONTENT_FORMAT, 553))
            .with_payload(b"dns query bytes".to_vec())
    }

    #[test]
    fn view_agrees_with_owned_decode() {
        let m = fetch_request();
        let wire = m.encode();
        let view = CoapView::parse(&wire).unwrap();
        let owned = CoapMessage::decode(&wire).unwrap();
        assert_eq!(view.to_owned(), owned);
        assert_eq!(view.code, owned.code);
        assert_eq!(view.message_id, owned.message_id);
        assert_eq!(view.token(), &owned.token[..]);
        assert_eq!(view.payload(), &owned.payload[..]);
        let view_opts: Vec<(u16, &[u8])> = view.options().map(|o| (o.number.0, o.value)).collect();
        let owned_opts: Vec<(u16, &[u8])> = owned
            .options
            .iter()
            .map(|o| (o.number.0, &o.value[..]))
            .collect();
        assert_eq!(view_opts, owned_opts);
    }

    #[test]
    fn option_accessors() {
        let wire = fetch_request().encode();
        let view = CoapView::parse(&wire).unwrap();
        assert_eq!(
            view.option(OptionNumber::CONTENT_FORMAT).unwrap().as_uint(),
            553
        );
        assert!(view.option(OptionNumber::ETAG).is_none());
        assert_eq!(view.options_of(OptionNumber::URI_PATH).count(), 1);
        assert_eq!(view.max_age(), 60);
    }

    #[test]
    fn extended_deltas_and_lengths() {
        let m = CoapMessage::request(Code::GET, MsgType::Con, 1, vec![])
            .with_option(CoapOption::new(OptionNumber::ECHO, vec![0x5A; 300]))
            .with_option(CoapOption::new(OptionNumber::NO_RESPONSE, vec![2]));
        let wire = m.encode();
        let view = CoapView::parse(&wire).unwrap();
        assert_eq!(view.option(OptionNumber::ECHO).unwrap().value.len(), 300);
        assert_eq!(view.option(OptionNumber::NO_RESPONSE).unwrap().value, [2]);
    }

    #[test]
    fn rejections_match_owned() {
        let cases: Vec<Vec<u8>> = vec![
            vec![],                          // empty
            vec![0x40, 0x01, 0, 1],          // minimal valid
            vec![0x80, 0x01, 0, 1],          // version 2
            vec![0x49, 0x01, 0, 1],          // TKL 9
            vec![0x42, 0x01, 0, 1, 0xAA],    // truncated token
            vec![0x40, 0x01, 0, 1, 0xFF],    // marker, no payload
            vec![0x40, 0x01, 0, 1, 0xF0],    // reserved nibble
            vec![0x40, 0x01, 0, 1, 0x43, 1], // truncated option value
        ];
        for wire in cases {
            let owned = CoapMessage::decode(&wire);
            let view = CoapView::parse(&wire);
            assert_eq!(owned.is_ok(), view.is_ok(), "{wire:02X?}");
            if let (Err(a), Err(b)) = (owned, view) {
                assert_eq!(a, b, "{wire:02X?}");
            }
        }
    }

    #[test]
    fn parse_never_panics_on_fuzz_corpus() {
        let mut state = 0x12345678u64;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 33) as u8
            })
            .collect();
        for start in (0..data.len() - 64).step_by(7) {
            for len in [1usize, 4, 5, 13, 29, 64] {
                let slice = &data[start..start + len];
                let view = CoapView::parse(slice);
                let owned = CoapMessage::decode(slice);
                assert_eq!(view.is_ok(), owned.is_ok());
                if let Ok(v) = view {
                    for o in v.options() {
                        let _ = (o.number, o.value.len());
                    }
                }
            }
        }
    }
}
