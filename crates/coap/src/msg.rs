//! CoAP message codec (RFC 7252 §3).
//!
//! ```text
//!  0                   1                   2                   3
//!  0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! |Ver| T |  TKL  |      Code     |          Message ID           |
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! |   Token (if any, TKL bytes) ...                               |
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! |   Options (if any) ...  | 0xFF | Payload (if any) ...         |
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! ```

use crate::opt::{CoapOption, OptionNumber};
use crate::CoapError;

/// Message types (RFC 7252 §4.2/§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgType {
    /// Confirmable — retransmitted until acknowledged.
    Con,
    /// Non-confirmable.
    Non,
    /// Acknowledgement.
    Ack,
    /// Reset.
    Rst,
}

impl MsgType {
    fn to_bits(self) -> u8 {
        match self {
            MsgType::Con => 0,
            MsgType::Non => 1,
            MsgType::Ack => 2,
            MsgType::Rst => 3,
        }
    }
    fn from_bits(b: u8) -> Self {
        match b & 3 {
            0 => MsgType::Con,
            1 => MsgType::Non,
            2 => MsgType::Ack,
            _ => MsgType::Rst,
        }
    }
}

/// A CoAP code: class (3 bits) . detail (5 bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Code(pub u8);

impl Code {
    /// 0.00 Empty.
    pub const EMPTY: Code = Code(0x00);
    /// 0.01 GET.
    pub const GET: Code = Code(0x01);
    /// 0.02 POST.
    pub const POST: Code = Code(0x02);
    /// 0.03 PUT.
    pub const PUT: Code = Code(0x03);
    /// 0.04 DELETE.
    pub const DELETE: Code = Code(0x04);
    /// 0.05 FETCH (RFC 8132) — the paper's preferred DoC method.
    pub const FETCH: Code = Code(0x05);
    /// 0.06 PATCH (RFC 8132).
    pub const PATCH: Code = Code(0x06);
    /// 0.07 iPATCH (RFC 8132).
    pub const IPATCH: Code = Code(0x07);
    /// 2.01 Created.
    pub const CREATED: Code = Code(0x41);
    /// 2.02 Deleted.
    pub const DELETED: Code = Code(0x42);
    /// 2.03 Valid — confirms a cache entry on ETag revalidation.
    pub const VALID: Code = Code(0x43);
    /// 2.04 Changed.
    pub const CHANGED: Code = Code(0x44);
    /// 2.05 Content.
    pub const CONTENT: Code = Code(0x45);
    /// 2.31 Continue (RFC 7959 Block1 flow).
    pub const CONTINUE: Code = Code(0x5F);
    /// 4.00 Bad Request.
    pub const BAD_REQUEST: Code = Code(0x80);
    /// 4.01 Unauthorized — OSCORE replay-window init (Echo) response.
    pub const UNAUTHORIZED: Code = Code(0x81);
    /// 4.02 Bad Option.
    pub const BAD_OPTION: Code = Code(0x82);
    /// 4.04 Not Found.
    pub const NOT_FOUND: Code = Code(0x84);
    /// 4.05 Method Not Allowed.
    pub const METHOD_NOT_ALLOWED: Code = Code(0x85);
    /// 4.08 Request Entity Incomplete (RFC 7959).
    pub const REQUEST_ENTITY_INCOMPLETE: Code = Code(0x88);
    /// 4.13 Request Entity Too Large (RFC 7959).
    pub const REQUEST_ENTITY_TOO_LARGE: Code = Code(0x8D);
    /// 4.15 Unsupported Content-Format.
    pub const UNSUPPORTED_CONTENT_FORMAT: Code = Code(0x8F);
    /// 5.00 Internal Server Error.
    pub const INTERNAL_SERVER_ERROR: Code = Code(0xA0);
    /// 5.02 Bad Gateway.
    pub const BAD_GATEWAY: Code = Code(0xA2);
    /// 5.04 Gateway Timeout.
    pub const GATEWAY_TIMEOUT: Code = Code(0xA4);

    /// Code class (0 = request, 2 = success, 4 = client error, 5 =
    /// server error).
    pub fn class(self) -> u8 {
        self.0 >> 5
    }

    /// Code detail.
    pub fn detail(self) -> u8 {
        self.0 & 0x1F
    }

    /// Is this a request method code?
    pub fn is_request(self) -> bool {
        self.class() == 0 && self.0 != 0
    }

    /// Is this a response code?
    pub fn is_response(self) -> bool {
        matches!(self.class(), 2 | 4 | 5)
    }

    /// Is this a successful response?
    pub fn is_success(self) -> bool {
        self.class() == 2
    }
}

impl core::fmt::Display for Code {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}.{:02}", self.class(), self.detail())
    }
}

/// A decoded CoAP message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoapMessage {
    /// Message type (CON/NON/ACK/RST).
    pub mtype: MsgType,
    /// Request/response code.
    pub code: Code,
    /// Message ID (message-layer correlation).
    pub message_id: u16,
    /// Token (request/response correlation), up to 8 bytes.
    pub token: Vec<u8>,
    /// Options, kept sorted by option number on encode.
    pub options: Vec<CoapOption>,
    /// Payload (may be empty).
    pub payload: Vec<u8>,
}

impl CoapMessage {
    /// Build a request with the given method.
    pub fn request(method: Code, mtype: MsgType, message_id: u16, token: Vec<u8>) -> Self {
        debug_assert!(method.is_request());
        CoapMessage {
            mtype,
            code: method,
            message_id,
            token,
            options: Vec::new(),
            payload: Vec::new(),
        }
    }

    /// Build a piggybacked (ACK) response to `req`.
    pub fn ack_response(req: &CoapMessage, code: Code) -> Self {
        CoapMessage {
            mtype: MsgType::Ack,
            code,
            message_id: req.message_id,
            token: req.token.clone(),
            options: Vec::new(),
            payload: Vec::new(),
        }
    }

    /// Build an empty ACK for `message_id` (separate-response flow).
    pub fn empty_ack(message_id: u16) -> Self {
        CoapMessage {
            mtype: MsgType::Ack,
            code: Code::EMPTY,
            message_id,
            token: Vec::new(),
            options: Vec::new(),
            payload: Vec::new(),
        }
    }

    /// Build a Reset message for `message_id`.
    pub fn reset(message_id: u16) -> Self {
        CoapMessage {
            mtype: MsgType::Rst,
            code: Code::EMPTY,
            message_id,
            token: Vec::new(),
            options: Vec::new(),
            payload: Vec::new(),
        }
    }

    /// Add an option (builder style).
    pub fn with_option(mut self, opt: CoapOption) -> Self {
        self.options.push(opt);
        self
    }

    /// Add a payload (builder style).
    pub fn with_payload(mut self, payload: Vec<u8>) -> Self {
        self.payload = payload;
        self
    }

    /// First option with the given number.
    pub fn option(&self, number: OptionNumber) -> Option<&CoapOption> {
        self.options.iter().find(|o| o.number == number)
    }

    /// All options with the given number (e.g. repeated Uri-Path).
    pub fn options_of(&self, number: OptionNumber) -> impl Iterator<Item = &CoapOption> {
        self.options.iter().filter(move |o| o.number == number)
    }

    /// Set (replacing) a single-instance option.
    pub fn set_option(&mut self, opt: CoapOption) {
        self.options.retain(|o| o.number != opt.number);
        self.options.push(opt);
    }

    /// Remove all instances of an option.
    pub fn remove_option(&mut self, number: OptionNumber) {
        self.options.retain(|o| o.number != number);
    }

    /// Max-Age value (default 60 per RFC 7252 §5.10.5 when absent).
    pub fn max_age(&self) -> u32 {
        self.option(OptionNumber::MAX_AGE)
            .map(|o| o.as_uint())
            .unwrap_or(60)
    }

    /// The reconstructed Uri-Path ("/a/b" form).
    pub fn uri_path(&self) -> String {
        let segs: Vec<String> = self
            .options_of(OptionNumber::URI_PATH)
            .map(|o| o.as_str())
            .collect();
        format!("/{}", segs.join("/"))
    }

    /// Encode to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.token.len() + 16 + self.payload.len());
        assert!(self.token.len() <= 8, "token too long");
        out.push(0x40 | (self.mtype.to_bits() << 4) | self.token.len() as u8);
        out.push(self.code.0);
        out.extend_from_slice(&self.message_id.to_be_bytes());
        out.extend_from_slice(&self.token);

        let mut opts: Vec<&CoapOption> = self.options.iter().collect();
        opts.sort_by_key(|o| o.number.0);
        let mut prev = 0u16;
        for opt in opts {
            let delta = opt.number.0 - prev;
            prev = opt.number.0;
            let len = opt.value.len();
            let (dn, dext) = nibble_parts(delta as u32);
            let (ln, lext) = nibble_parts(len as u32);
            out.push((dn << 4) | ln);
            out.extend_from_slice(&dext);
            out.extend_from_slice(&lext);
            out.extend_from_slice(&opt.value);
        }
        if !self.payload.is_empty() {
            out.push(0xFF);
            out.extend_from_slice(&self.payload);
        }
        out
    }

    /// Decode from wire bytes.
    pub fn decode(data: &[u8]) -> Result<Self, CoapError> {
        if data.len() < 4 {
            return Err(CoapError::Truncated);
        }
        let ver = data[0] >> 6;
        if ver != 1 {
            return Err(CoapError::BadVersion);
        }
        let mtype = MsgType::from_bits(data[0] >> 4);
        let tkl = (data[0] & 0x0F) as usize;
        if tkl > 8 {
            return Err(CoapError::BadHeader);
        }
        let code = Code(data[1]);
        let message_id = u16::from_be_bytes([data[2], data[3]]);
        let token = data.get(4..4 + tkl).ok_or(CoapError::Truncated)?.to_vec();

        let mut pos = 4 + tkl;
        let mut options = Vec::new();
        let mut number = 0u16;
        let mut payload = Vec::new();
        while pos < data.len() {
            let byte = data[pos];
            if byte == 0xFF {
                pos += 1;
                if pos == data.len() {
                    // Payload marker followed by zero-length payload is
                    // a format error (RFC 7252 §3).
                    return Err(CoapError::Truncated);
                }
                payload = data[pos..].to_vec();
                break;
            }
            pos += 1;
            let delta = read_ext(byte >> 4, data, &mut pos)?;
            let len = read_ext(byte & 0x0F, data, &mut pos)? as usize;
            number = number
                .checked_add(u16::try_from(delta).map_err(|_| CoapError::BadOption)?)
                .ok_or(CoapError::BadOption)?;
            let value = data
                .get(pos..pos + len)
                .ok_or(CoapError::Truncated)?
                .to_vec();
            pos += len;
            options.push(CoapOption::new(OptionNumber(number), value));
        }
        Ok(CoapMessage {
            mtype,
            code,
            message_id,
            token,
            options,
            payload,
        })
    }

    /// Encoded size without building the buffer (used by the packet-size
    /// analyses of Fig. 6/14).
    pub fn encoded_len(&self) -> usize {
        self.encode().len()
    }
}

/// Split a delta/length value into its nibble and extension bytes.
fn nibble_parts(v: u32) -> (u8, Vec<u8>) {
    if v < 13 {
        (v as u8, Vec::new())
    } else if v < 269 {
        (13, vec![(v - 13) as u8])
    } else {
        (14, ((v - 269) as u16).to_be_bytes().to_vec())
    }
}

/// Read an extended delta/length value.
fn read_ext(nibble: u8, data: &[u8], pos: &mut usize) -> Result<u32, CoapError> {
    match nibble {
        0..=12 => Ok(nibble as u32),
        13 => {
            let b = *data.get(*pos).ok_or(CoapError::Truncated)?;
            *pos += 1;
            Ok(b as u32 + 13)
        }
        14 => {
            let b = data.get(*pos..*pos + 2).ok_or(CoapError::Truncated)?;
            *pos += 2;
            Ok(u16::from_be_bytes([b[0], b[1]]) as u32 + 269)
        }
        _ => Err(CoapError::BadOption),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fetch_request() -> CoapMessage {
        CoapMessage::request(Code::FETCH, MsgType::Con, 0x1234, vec![0xAB, 0xCD])
            .with_option(CoapOption::new(OptionNumber::URI_PATH, b"dns".to_vec()))
            .with_option(CoapOption::uint(OptionNumber::CONTENT_FORMAT, 553))
            .with_payload(b"dns query bytes".to_vec())
    }

    #[test]
    fn header_roundtrip() {
        let m = fetch_request();
        let wire = m.encode();
        let back = CoapMessage::decode(&wire).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn minimal_empty_message() {
        let ack = CoapMessage::empty_ack(7);
        let wire = ack.encode();
        assert_eq!(wire.len(), 4);
        let back = CoapMessage::decode(&wire).unwrap();
        assert_eq!(back.code, Code::EMPTY);
        assert_eq!(back.mtype, MsgType::Ack);
        assert_eq!(back.message_id, 7);
    }

    #[test]
    fn code_display() {
        assert_eq!(Code::CONTENT.to_string(), "2.05");
        assert_eq!(Code::VALID.to_string(), "2.03");
        assert_eq!(Code::CONTINUE.to_string(), "2.31");
        assert_eq!(Code::UNAUTHORIZED.to_string(), "4.01");
        assert_eq!(Code::FETCH.to_string(), "0.05");
    }

    #[test]
    fn code_classification() {
        assert!(Code::FETCH.is_request());
        assert!(Code::GET.is_request());
        assert!(!Code::EMPTY.is_request());
        assert!(Code::CONTENT.is_response());
        assert!(Code::CONTENT.is_success());
        assert!(!Code::BAD_REQUEST.is_success());
        assert!(Code::BAD_REQUEST.is_response());
    }

    #[test]
    fn option_sorting_on_encode() {
        // Insert out of order; wire must use ascending deltas.
        let m = CoapMessage::request(Code::GET, MsgType::Con, 1, vec![])
            .with_option(CoapOption::uint(OptionNumber::MAX_AGE, 300))
            .with_option(CoapOption::new(OptionNumber::URI_PATH, b"dns".to_vec()))
            .with_option(CoapOption::new(OptionNumber::ETAG, vec![1, 2, 3, 4]));
        let back = CoapMessage::decode(&m.encode()).unwrap();
        let nums: Vec<u16> = back.options.iter().map(|o| o.number.0).collect();
        assert_eq!(nums, vec![4, 11, 14]);
    }

    #[test]
    fn repeated_uri_path() {
        let m = CoapMessage::request(Code::GET, MsgType::Con, 1, vec![])
            .with_option(CoapOption::new(OptionNumber::URI_PATH, b"dns".to_vec()))
            .with_option(CoapOption::new(OptionNumber::URI_PATH, b"query".to_vec()));
        let back = CoapMessage::decode(&m.encode()).unwrap();
        assert_eq!(back.uri_path(), "/dns/query");
        assert_eq!(back.options_of(OptionNumber::URI_PATH).count(), 2);
    }

    #[test]
    fn large_option_delta_and_length() {
        // Echo (252) needs the 1-byte extended delta; a 300-byte value
        // needs the 2-byte extended length.
        let m = CoapMessage::request(Code::GET, MsgType::Con, 1, vec![])
            .with_option(CoapOption::new(OptionNumber::ECHO, vec![0x5A; 300]))
            .with_option(CoapOption::new(OptionNumber::NO_RESPONSE, vec![2]));
        let back = CoapMessage::decode(&m.encode()).unwrap();
        assert_eq!(back.option(OptionNumber::ECHO).unwrap().value.len(), 300);
        assert_eq!(
            back.option(OptionNumber::NO_RESPONSE).unwrap().value,
            vec![2]
        );
    }

    #[test]
    fn max_age_default() {
        let m = CoapMessage::request(Code::GET, MsgType::Con, 1, vec![]);
        assert_eq!(m.max_age(), 60);
        let m = m.with_option(CoapOption::uint(OptionNumber::MAX_AGE, 0));
        assert_eq!(m.max_age(), 0);
    }

    #[test]
    fn set_and_remove_option() {
        let mut m = fetch_request();
        m.set_option(CoapOption::uint(OptionNumber::CONTENT_FORMAT, 999));
        assert_eq!(
            m.option(OptionNumber::CONTENT_FORMAT).unwrap().as_uint(),
            999
        );
        assert_eq!(m.options_of(OptionNumber::CONTENT_FORMAT).count(), 1);
        m.remove_option(OptionNumber::CONTENT_FORMAT);
        assert!(m.option(OptionNumber::CONTENT_FORMAT).is_none());
    }

    #[test]
    fn reject_bad_version() {
        let mut wire = fetch_request().encode();
        wire[0] = (wire[0] & 0x3F) | 0x80; // version 2
        assert_eq!(CoapMessage::decode(&wire), Err(CoapError::BadVersion));
    }

    #[test]
    fn reject_token_too_long() {
        let wire = [0x49u8, 0x01, 0, 1]; // TKL 9
        assert_eq!(CoapMessage::decode(&wire), Err(CoapError::BadHeader));
    }

    #[test]
    fn reject_truncated_token() {
        let wire = [0x42u8, 0x01, 0, 1, 0xAA]; // TKL 2 but 1 byte present
        assert_eq!(CoapMessage::decode(&wire), Err(CoapError::Truncated));
    }

    #[test]
    fn reject_empty_payload_after_marker() {
        let mut wire = CoapMessage::request(Code::GET, MsgType::Con, 1, vec![]).encode();
        wire.push(0xFF);
        assert_eq!(CoapMessage::decode(&wire), Err(CoapError::Truncated));
    }

    #[test]
    fn reject_reserved_nibble() {
        // Option byte 0xF0: delta nibble 15 without payload marker.
        let mut wire = CoapMessage::request(Code::GET, MsgType::Con, 1, vec![]).encode();
        wire.push(0xF0);
        assert_eq!(CoapMessage::decode(&wire), Err(CoapError::BadOption));
    }

    #[test]
    fn reject_truncated_option_value() {
        let mut wire = CoapMessage::request(Code::GET, MsgType::Con, 1, vec![]).encode();
        wire.push(0x43); // delta 4 (ETag), length 3
        wire.push(0x01); // only 1 of 3 value bytes
        assert_eq!(CoapMessage::decode(&wire), Err(CoapError::Truncated));
    }

    #[test]
    fn decode_never_panics_on_fuzz_corpus() {
        // A cheap deterministic fuzz: decode every 1..64-byte slice of a
        // pseudo-random stream. Must never panic.
        let mut state = 0x12345678u64;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 33) as u8
            })
            .collect();
        for start in (0..data.len() - 64).step_by(7) {
            for len in [1usize, 4, 5, 13, 29, 64] {
                let _ = CoapMessage::decode(&data[start..start + len]);
            }
        }
    }

    #[test]
    fn coap_header_is_4_bytes_plus_token() {
        // Fig. 6 relies on CoAP adding only a few bytes: verify the
        // minimal FETCH request framing overhead.
        let m = CoapMessage::request(Code::FETCH, MsgType::Con, 1, vec![0x01])
            .with_option(CoapOption::new(OptionNumber::URI_PATH, b"dns".to_vec()))
            .with_payload(vec![0u8; 10]);
        // 4 header + 1 token + (1 opt hdr + 3 "dns") + 1 marker + 10
        assert_eq!(m.encoded_len(), 4 + 1 + 4 + 1 + 10);
    }
}
