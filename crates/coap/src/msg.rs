//! CoAP message codec (RFC 7252 §3).
//!
//! ```text
//!  0                   1                   2                   3
//!  0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! |Ver| T |  TKL  |      Code     |          Message ID           |
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! |   Token (if any, TKL bytes) ...                               |
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! |   Options (if any) ...  | 0xFF | Payload (if any) ...         |
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! ```

use crate::opt::{CoapOption, OptionNumber};
use crate::CoapError;

/// Message types (RFC 7252 §4.2/§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgType {
    /// Confirmable — retransmitted until acknowledged.
    Con,
    /// Non-confirmable.
    Non,
    /// Acknowledgement.
    Ack,
    /// Reset.
    Rst,
}

impl MsgType {
    /// The 2-bit wire representation (RFC 7252 §3).
    pub fn to_bits(self) -> u8 {
        match self {
            MsgType::Con => 0,
            MsgType::Non => 1,
            MsgType::Ack => 2,
            MsgType::Rst => 3,
        }
    }
    pub(crate) fn from_bits(b: u8) -> Self {
        match b & 3 {
            0 => MsgType::Con,
            1 => MsgType::Non,
            2 => MsgType::Ack,
            _ => MsgType::Rst,
        }
    }
}

/// A CoAP code: class (3 bits) . detail (5 bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Code(pub u8);

impl Code {
    /// 0.00 Empty.
    pub const EMPTY: Code = Code(0x00);
    /// 0.01 GET.
    pub const GET: Code = Code(0x01);
    /// 0.02 POST.
    pub const POST: Code = Code(0x02);
    /// 0.03 PUT.
    pub const PUT: Code = Code(0x03);
    /// 0.04 DELETE.
    pub const DELETE: Code = Code(0x04);
    /// 0.05 FETCH (RFC 8132) — the paper's preferred DoC method.
    pub const FETCH: Code = Code(0x05);
    /// 0.06 PATCH (RFC 8132).
    pub const PATCH: Code = Code(0x06);
    /// 0.07 iPATCH (RFC 8132).
    pub const IPATCH: Code = Code(0x07);
    /// 2.01 Created.
    pub const CREATED: Code = Code(0x41);
    /// 2.02 Deleted.
    pub const DELETED: Code = Code(0x42);
    /// 2.03 Valid — confirms a cache entry on ETag revalidation.
    pub const VALID: Code = Code(0x43);
    /// 2.04 Changed.
    pub const CHANGED: Code = Code(0x44);
    /// 2.05 Content.
    pub const CONTENT: Code = Code(0x45);
    /// 2.31 Continue (RFC 7959 Block1 flow).
    pub const CONTINUE: Code = Code(0x5F);
    /// 4.00 Bad Request.
    pub const BAD_REQUEST: Code = Code(0x80);
    /// 4.01 Unauthorized — OSCORE replay-window init (Echo) response.
    pub const UNAUTHORIZED: Code = Code(0x81);
    /// 4.02 Bad Option.
    pub const BAD_OPTION: Code = Code(0x82);
    /// 4.04 Not Found.
    pub const NOT_FOUND: Code = Code(0x84);
    /// 4.05 Method Not Allowed.
    pub const METHOD_NOT_ALLOWED: Code = Code(0x85);
    /// 4.08 Request Entity Incomplete (RFC 7959).
    pub const REQUEST_ENTITY_INCOMPLETE: Code = Code(0x88);
    /// 4.13 Request Entity Too Large (RFC 7959).
    pub const REQUEST_ENTITY_TOO_LARGE: Code = Code(0x8D);
    /// 4.15 Unsupported Content-Format.
    pub const UNSUPPORTED_CONTENT_FORMAT: Code = Code(0x8F);
    /// 5.00 Internal Server Error.
    pub const INTERNAL_SERVER_ERROR: Code = Code(0xA0);
    /// 5.02 Bad Gateway.
    pub const BAD_GATEWAY: Code = Code(0xA2);
    /// 5.04 Gateway Timeout.
    pub const GATEWAY_TIMEOUT: Code = Code(0xA4);

    /// Code class (0 = request, 2 = success, 4 = client error, 5 =
    /// server error).
    pub fn class(self) -> u8 {
        self.0 >> 5
    }

    /// Code detail.
    pub fn detail(self) -> u8 {
        self.0 & 0x1F
    }

    /// Is this a request method code?
    pub fn is_request(self) -> bool {
        self.class() == 0 && self.0 != 0
    }

    /// Is this a response code?
    pub fn is_response(self) -> bool {
        matches!(self.class(), 2 | 4 | 5)
    }

    /// Is this a successful response?
    pub fn is_success(self) -> bool {
        self.class() == 2
    }
}

impl core::fmt::Display for Code {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}.{:02}", self.class(), self.detail())
    }
}

/// A decoded CoAP message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoapMessage {
    /// Message type (CON/NON/ACK/RST).
    pub mtype: MsgType,
    /// Request/response code.
    pub code: Code,
    /// Message ID (message-layer correlation).
    pub message_id: u16,
    /// Token (request/response correlation), up to 8 bytes.
    pub token: Vec<u8>,
    /// Options, kept sorted by option number on encode.
    pub options: Vec<CoapOption>,
    /// Payload (may be empty).
    pub payload: Vec<u8>,
}

impl CoapMessage {
    /// Build a request with the given method.
    pub fn request(method: Code, mtype: MsgType, message_id: u16, token: Vec<u8>) -> Self {
        debug_assert!(method.is_request());
        CoapMessage {
            mtype,
            code: method,
            message_id,
            token,
            options: Vec::new(),
            payload: Vec::new(),
        }
    }

    /// Build a piggybacked (ACK) response to `req`.
    pub fn ack_response(req: &CoapMessage, code: Code) -> Self {
        Self::ack_reply(req.message_id, req.token.clone(), code)
    }

    /// Build a piggybacked (ACK) response from the exchange identifiers
    /// directly, taking ownership of the token — the no-clone path for
    /// reply construction from consumed exchange state or a borrowed
    /// request view.
    pub fn ack_reply(message_id: u16, token: Vec<u8>, code: Code) -> Self {
        CoapMessage {
            mtype: MsgType::Ack,
            code,
            message_id,
            token,
            options: Vec::new(),
            payload: Vec::new(),
        }
    }

    /// Build an empty ACK for `message_id` (separate-response flow).
    pub fn empty_ack(message_id: u16) -> Self {
        CoapMessage {
            mtype: MsgType::Ack,
            code: Code::EMPTY,
            message_id,
            token: Vec::new(),
            options: Vec::new(),
            payload: Vec::new(),
        }
    }

    /// Build a Reset message for `message_id`.
    pub fn reset(message_id: u16) -> Self {
        CoapMessage {
            mtype: MsgType::Rst,
            code: Code::EMPTY,
            message_id,
            token: Vec::new(),
            options: Vec::new(),
            payload: Vec::new(),
        }
    }

    /// Add an option (builder style).
    pub fn with_option(mut self, opt: CoapOption) -> Self {
        self.options.push(opt);
        self
    }

    /// Add a payload (builder style).
    pub fn with_payload(mut self, payload: Vec<u8>) -> Self {
        self.payload = payload;
        self
    }

    /// First option with the given number.
    pub fn option(&self, number: OptionNumber) -> Option<&CoapOption> {
        self.options.iter().find(|o| o.number == number)
    }

    /// All options with the given number (e.g. repeated Uri-Path).
    pub fn options_of(&self, number: OptionNumber) -> impl Iterator<Item = &CoapOption> {
        self.options.iter().filter(move |o| o.number == number)
    }

    /// Set (replacing) a single-instance option.
    pub fn set_option(&mut self, opt: CoapOption) {
        self.options.retain(|o| o.number != opt.number);
        self.options.push(opt);
    }

    /// Remove all instances of an option.
    pub fn remove_option(&mut self, number: OptionNumber) {
        self.options.retain(|o| o.number != number);
    }

    /// Max-Age value (default 60 per RFC 7252 §5.10.5 when absent).
    pub fn max_age(&self) -> u32 {
        self.option(OptionNumber::MAX_AGE)
            .map(|o| o.as_uint())
            .unwrap_or(60)
    }

    /// The reconstructed Uri-Path ("/a/b" form).
    pub fn uri_path(&self) -> String {
        let segs: Vec<String> = self
            .options_of(OptionNumber::URI_PATH)
            .map(|o| o.as_str())
            .collect();
        format!("/{}", segs.join("/"))
    }

    /// Encode to wire bytes (exact-capacity allocation, then
    /// [`CoapMessage::encode_into`]).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        self.encode_into(&mut out);
        out
    }

    /// Append the wire form to an existing buffer. With a reused `out`
    /// and options already in ascending number order (the case for
    /// every builder in this workspace), the encode performs zero heap
    /// allocations: option headers, extended delta/length bytes and
    /// values are written directly into the output.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        assert!(self.token.len() <= 8, "token too long");
        out.push(0x40 | (self.mtype.to_bits() << 4) | self.token.len() as u8);
        out.push(self.code.0);
        out.extend_from_slice(&self.message_id.to_be_bytes());
        out.extend_from_slice(&self.token);
        encode_options_into(self.options.iter(), out);
        if !self.payload.is_empty() {
            out.push(0xFF);
            out.extend_from_slice(&self.payload);
        }
    }

    /// Decode from wire bytes.
    pub fn decode(data: &[u8]) -> Result<Self, CoapError> {
        if data.len() < 4 {
            return Err(CoapError::Truncated);
        }
        let ver = data[0] >> 6;
        if ver != 1 {
            return Err(CoapError::BadVersion);
        }
        let mtype = MsgType::from_bits(data[0] >> 4);
        let tkl = (data[0] & 0x0F) as usize;
        if tkl > 8 {
            return Err(CoapError::BadHeader);
        }
        let code = Code(data[1]);
        let message_id = u16::from_be_bytes([data[2], data[3]]);
        let token = data.get(4..4 + tkl).ok_or(CoapError::Truncated)?.to_vec();

        let mut pos = 4 + tkl;
        let mut options = Vec::new();
        let mut number = 0u16;
        let mut payload = Vec::new();
        while pos < data.len() {
            let byte = data[pos];
            if byte == 0xFF {
                pos += 1;
                if pos == data.len() {
                    // Payload marker followed by zero-length payload is
                    // a format error (RFC 7252 §3).
                    return Err(CoapError::Truncated);
                }
                payload = data[pos..].to_vec();
                break;
            }
            pos += 1;
            let delta = read_ext(byte >> 4, data, &mut pos)?;
            let len = read_ext(byte & 0x0F, data, &mut pos)? as usize;
            number = number
                .checked_add(u16::try_from(delta).map_err(|_| CoapError::BadOption)?)
                .ok_or(CoapError::BadOption)?;
            let value = data
                .get(pos..pos + len)
                .ok_or(CoapError::Truncated)?
                .to_vec();
            pos += len;
            options.push(CoapOption::new(OptionNumber(number), value));
        }
        Ok(CoapMessage {
            mtype,
            code,
            message_id,
            token,
            options,
            payload,
        })
    }

    /// Encoded size computed analytically, without building any buffer
    /// (used by the packet-size analyses of Fig. 6/14 and to size
    /// [`CoapMessage::encode`]'s single allocation exactly).
    pub fn encoded_len(&self) -> usize {
        let mut n = 4 + self.token.len();
        if is_sorted(&self.options) {
            let mut prev = 0u16;
            for o in &self.options {
                n += option_wire_len(prev, o);
                prev = o.number.0;
            }
        } else {
            let mut nums: Vec<(u16, usize)> = self
                .options
                .iter()
                .map(|o| (o.number.0, o.value.len()))
                .collect();
            nums.sort_unstable();
            let mut prev = 0u16;
            for (num, len) in nums {
                n += 1 + ext_len((num - prev) as u32) + ext_len(len as u32) + len;
                prev = num;
            }
        }
        if !self.payload.is_empty() {
            n += 1 + self.payload.len();
        }
        n
    }
}

fn is_sorted(opts: &[CoapOption]) -> bool {
    opts.windows(2).all(|w| w[0].number.0 <= w[1].number.0)
}

/// Wire length of one option after an option numbered `prev`.
fn option_wire_len(prev: u16, opt: &CoapOption) -> usize {
    1 + ext_len((opt.number.0 - prev) as u32) + ext_len(opt.value.len() as u32) + opt.value.len()
}

/// Number of extended bytes a delta/length value needs (RFC 7252 §3.1).
fn ext_len(v: u32) -> usize {
    match v {
        0..=12 => 0,
        13..=268 => 1,
        _ => 2,
    }
}

/// The 4-bit nibble announcing a delta/length value.
fn nibble(v: u32) -> u8 {
    match v {
        0..=12 => v as u8,
        13..=268 => 13,
        _ => 14,
    }
}

/// Write a value's extended bytes (if any) for the given nibble.
fn push_ext(nib: u8, v: u32, out: &mut Vec<u8>) {
    match nib {
        13 => out.push((v - 13) as u8),
        14 => out.extend_from_slice(&((v - 269) as u16).to_be_bytes()),
        _ => {}
    }
}

/// Append one option's wire form given the number of the previously
/// written option; returns this option's number for delta chaining.
/// Header, extended bytes and value go directly into `out` — no
/// intermediate buffers.
pub fn encode_option_into(prev_number: u16, opt: &CoapOption, out: &mut Vec<u8>) -> u16 {
    encode_raw_option_into(prev_number, opt.number.0, &opt.value, out)
}

/// [`encode_option_into`] for a raw (number, value) pair — lets callers
/// emit options whose values live on the stack (e.g. the OSCORE option
/// in the wire-direct protect path) without building a [`CoapOption`].
pub fn encode_raw_option_into(
    prev_number: u16,
    number: u16,
    value: &[u8],
    out: &mut Vec<u8>,
) -> u16 {
    debug_assert!(number >= prev_number, "options must be ordered");
    let delta = (number - prev_number) as u32;
    let len = value.len() as u32;
    let (dn, ln) = (nibble(delta), nibble(len));
    out.push((dn << 4) | ln);
    push_ext(dn, delta, out);
    push_ext(ln, len, out);
    out.extend_from_slice(value);
    number
}

/// Append a run of options in ascending option-number order.
///
/// Pre-sorted input — the overwhelmingly common case, since every
/// builder in this workspace adds options in ascending order — streams
/// straight into `out` without allocating. If an out-of-order option is
/// encountered, the partial output is rolled back and a sort-indices
/// slow path re-encodes the run.
pub fn encode_options_into<'a, I>(opts: I, out: &mut Vec<u8>)
where
    I: Iterator<Item = &'a CoapOption> + Clone,
{
    let start = out.len();
    let mut prev = 0u16;
    // lint:allow(no-alloc-in-into): clones the iterator handle, not the options
    for opt in opts.clone() {
        if opt.number.0 < prev {
            // Out of order: roll back and sort (stable, preserving the
            // relative order of repeated options — RFC 7252 §3.1).
            out.truncate(start);
            // lint:allow(no-alloc-in-into): documented out-of-order fallback; the common pre-sorted path never reaches this
            let mut sorted: Vec<&CoapOption> = opts.collect();
            sorted.sort_by_key(|o| o.number.0);
            let mut prev = 0u16;
            for o in sorted {
                prev = encode_option_into(prev, o, out);
            }
            return;
        }
        prev = encode_option_into(prev, opt, out);
    }
}

/// Read an extended delta/length value (RFC 7252 §3.1; nibble 15
/// outside the payload marker is a format error). Shared with the
/// borrowed [`crate::view::CoapView`] parser so the owned and view
/// decoders can never diverge on these rules.
pub(crate) fn read_ext(nibble: u8, data: &[u8], pos: &mut usize) -> Result<u32, CoapError> {
    match nibble {
        0..=12 => Ok(nibble as u32),
        13 => {
            let b = *data.get(*pos).ok_or(CoapError::Truncated)?;
            *pos += 1;
            Ok(b as u32 + 13)
        }
        14 => {
            let b = data.get(*pos..*pos + 2).ok_or(CoapError::Truncated)?;
            *pos += 2;
            Ok(u16::from_be_bytes([b[0], b[1]]) as u32 + 269)
        }
        _ => Err(CoapError::BadOption),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fetch_request() -> CoapMessage {
        CoapMessage::request(Code::FETCH, MsgType::Con, 0x1234, vec![0xAB, 0xCD])
            .with_option(CoapOption::new(OptionNumber::URI_PATH, b"dns".to_vec()))
            .with_option(CoapOption::uint(OptionNumber::CONTENT_FORMAT, 553))
            .with_payload(b"dns query bytes".to_vec())
    }

    #[test]
    fn header_roundtrip() {
        let m = fetch_request();
        let wire = m.encode();
        let back = CoapMessage::decode(&wire).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn minimal_empty_message() {
        let ack = CoapMessage::empty_ack(7);
        let wire = ack.encode();
        assert_eq!(wire.len(), 4);
        let back = CoapMessage::decode(&wire).unwrap();
        assert_eq!(back.code, Code::EMPTY);
        assert_eq!(back.mtype, MsgType::Ack);
        assert_eq!(back.message_id, 7);
    }

    #[test]
    fn code_display() {
        assert_eq!(Code::CONTENT.to_string(), "2.05");
        assert_eq!(Code::VALID.to_string(), "2.03");
        assert_eq!(Code::CONTINUE.to_string(), "2.31");
        assert_eq!(Code::UNAUTHORIZED.to_string(), "4.01");
        assert_eq!(Code::FETCH.to_string(), "0.05");
    }

    #[test]
    fn code_classification() {
        assert!(Code::FETCH.is_request());
        assert!(Code::GET.is_request());
        assert!(!Code::EMPTY.is_request());
        assert!(Code::CONTENT.is_response());
        assert!(Code::CONTENT.is_success());
        assert!(!Code::BAD_REQUEST.is_success());
        assert!(Code::BAD_REQUEST.is_response());
    }

    #[test]
    fn option_sorting_on_encode() {
        // Insert out of order; wire must use ascending deltas.
        let m = CoapMessage::request(Code::GET, MsgType::Con, 1, vec![])
            .with_option(CoapOption::uint(OptionNumber::MAX_AGE, 300))
            .with_option(CoapOption::new(OptionNumber::URI_PATH, b"dns".to_vec()))
            .with_option(CoapOption::new(OptionNumber::ETAG, vec![1, 2, 3, 4]));
        let back = CoapMessage::decode(&m.encode()).unwrap();
        let nums: Vec<u16> = back.options.iter().map(|o| o.number.0).collect();
        assert_eq!(nums, vec![4, 11, 14]);
    }

    #[test]
    fn repeated_uri_path() {
        let m = CoapMessage::request(Code::GET, MsgType::Con, 1, vec![])
            .with_option(CoapOption::new(OptionNumber::URI_PATH, b"dns".to_vec()))
            .with_option(CoapOption::new(OptionNumber::URI_PATH, b"query".to_vec()));
        let back = CoapMessage::decode(&m.encode()).unwrap();
        assert_eq!(back.uri_path(), "/dns/query");
        assert_eq!(back.options_of(OptionNumber::URI_PATH).count(), 2);
    }

    #[test]
    fn large_option_delta_and_length() {
        // Echo (252) needs the 1-byte extended delta; a 300-byte value
        // needs the 2-byte extended length.
        let m = CoapMessage::request(Code::GET, MsgType::Con, 1, vec![])
            .with_option(CoapOption::new(OptionNumber::ECHO, vec![0x5A; 300]))
            .with_option(CoapOption::new(OptionNumber::NO_RESPONSE, vec![2]));
        let back = CoapMessage::decode(&m.encode()).unwrap();
        assert_eq!(back.option(OptionNumber::ECHO).unwrap().value.len(), 300);
        assert_eq!(
            back.option(OptionNumber::NO_RESPONSE).unwrap().value,
            vec![2]
        );
    }

    #[test]
    fn max_age_default() {
        let m = CoapMessage::request(Code::GET, MsgType::Con, 1, vec![]);
        assert_eq!(m.max_age(), 60);
        let m = m.with_option(CoapOption::uint(OptionNumber::MAX_AGE, 0));
        assert_eq!(m.max_age(), 0);
    }

    #[test]
    fn set_and_remove_option() {
        let mut m = fetch_request();
        m.set_option(CoapOption::uint(OptionNumber::CONTENT_FORMAT, 999));
        assert_eq!(
            m.option(OptionNumber::CONTENT_FORMAT).unwrap().as_uint(),
            999
        );
        assert_eq!(m.options_of(OptionNumber::CONTENT_FORMAT).count(), 1);
        m.remove_option(OptionNumber::CONTENT_FORMAT);
        assert!(m.option(OptionNumber::CONTENT_FORMAT).is_none());
    }

    #[test]
    fn reject_bad_version() {
        let mut wire = fetch_request().encode();
        wire[0] = (wire[0] & 0x3F) | 0x80; // version 2
        assert_eq!(CoapMessage::decode(&wire), Err(CoapError::BadVersion));
    }

    #[test]
    fn reject_token_too_long() {
        let wire = [0x49u8, 0x01, 0, 1]; // TKL 9
        assert_eq!(CoapMessage::decode(&wire), Err(CoapError::BadHeader));
    }

    #[test]
    fn reject_truncated_token() {
        let wire = [0x42u8, 0x01, 0, 1, 0xAA]; // TKL 2 but 1 byte present
        assert_eq!(CoapMessage::decode(&wire), Err(CoapError::Truncated));
    }

    #[test]
    fn reject_empty_payload_after_marker() {
        let mut wire = CoapMessage::request(Code::GET, MsgType::Con, 1, vec![]).encode();
        wire.push(0xFF);
        assert_eq!(CoapMessage::decode(&wire), Err(CoapError::Truncated));
    }

    #[test]
    fn reject_reserved_nibble() {
        // Option byte 0xF0: delta nibble 15 without payload marker.
        let mut wire = CoapMessage::request(Code::GET, MsgType::Con, 1, vec![]).encode();
        wire.push(0xF0);
        assert_eq!(CoapMessage::decode(&wire), Err(CoapError::BadOption));
    }

    #[test]
    fn reject_truncated_option_value() {
        let mut wire = CoapMessage::request(Code::GET, MsgType::Con, 1, vec![]).encode();
        wire.push(0x43); // delta 4 (ETag), length 3
        wire.push(0x01); // only 1 of 3 value bytes
        assert_eq!(CoapMessage::decode(&wire), Err(CoapError::Truncated));
    }

    #[test]
    fn decode_never_panics_on_fuzz_corpus() {
        // A cheap deterministic fuzz: decode every 1..64-byte slice of a
        // pseudo-random stream. Must never panic.
        let mut state = 0x12345678u64;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 33) as u8
            })
            .collect();
        for start in (0..data.len() - 64).step_by(7) {
            for len in [1usize, 4, 5, 13, 29, 64] {
                let _ = CoapMessage::decode(&data[start..start + len]);
            }
        }
    }

    #[test]
    fn encoded_len_matches_encode() {
        // Sorted, unsorted, extended-delta/length, empty, payload-less.
        let msgs = vec![
            fetch_request(),
            CoapMessage::empty_ack(9),
            CoapMessage::request(Code::GET, MsgType::Con, 1, vec![1, 2, 3])
                .with_option(CoapOption::uint(OptionNumber::MAX_AGE, 300))
                .with_option(CoapOption::new(OptionNumber::URI_PATH, b"dns".to_vec()))
                .with_option(CoapOption::new(OptionNumber::ETAG, vec![1, 2, 3, 4])),
            CoapMessage::request(Code::GET, MsgType::Con, 1, vec![])
                .with_option(CoapOption::new(OptionNumber::ECHO, vec![0x5A; 300]))
                .with_option(CoapOption::new(OptionNumber::NO_RESPONSE, vec![2])),
        ];
        for m in msgs {
            assert_eq!(m.encoded_len(), m.encode().len(), "{m:?}");
        }
    }

    #[test]
    fn unsorted_encode_rolls_back_and_preserves_repeat_order() {
        // Two Uri-Path segments followed by an out-of-order ETag: the
        // slow path must keep "a" before "b" (stable sort).
        let m = CoapMessage::request(Code::GET, MsgType::Con, 1, vec![])
            .with_option(CoapOption::new(OptionNumber::URI_PATH, b"a".to_vec()))
            .with_option(CoapOption::new(OptionNumber::URI_PATH, b"b".to_vec()))
            .with_option(CoapOption::new(OptionNumber::ETAG, vec![7]))
            .with_payload(b"x".to_vec());
        let back = CoapMessage::decode(&m.encode()).unwrap();
        assert_eq!(back.uri_path(), "/a/b");
        assert_eq!(back.option(OptionNumber::ETAG).unwrap().value, vec![7]);
        assert_eq!(back.payload, b"x");
        assert_eq!(m.encoded_len(), m.encode().len());
    }

    #[test]
    fn encode_into_reuses_buffer() {
        let m = fetch_request();
        let mut buf = Vec::new();
        for _ in 0..3 {
            buf.clear();
            m.encode_into(&mut buf);
            assert_eq!(CoapMessage::decode(&buf).unwrap(), m);
        }
        assert_eq!(buf.len(), m.encoded_len());
    }

    #[test]
    fn coap_header_is_4_bytes_plus_token() {
        // Fig. 6 relies on CoAP adding only a few bytes: verify the
        // minimal FETCH request framing overhead.
        let m = CoapMessage::request(Code::FETCH, MsgType::Con, 1, vec![0x01])
            .with_option(CoapOption::new(OptionNumber::URI_PATH, b"dns".to_vec()))
            .with_payload(vec![0u8; 10]);
        // 4 header + 1 token + (1 opt hdr + 3 "dns") + 1 marker + 10
        assert_eq!(m.encoded_len(), 4 + 1 + 4 + 1 + 10);
    }
}
