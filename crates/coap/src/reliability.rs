//! The CoAP message layer (RFC 7252 §4) as a sans-IO state machine.
//!
//! [`Endpoint`] owns outgoing-CON retransmission state, incoming-CON
//! deduplication, and token/MID correlation. It is driven by the caller
//! with explicit timestamps (milliseconds of virtual time), which lets
//! `doc-netsim` run thousands of reproducible experiments.
//!
//! Timer parameters follow RFC 7252 §4.8 — and thereby RIOT's gCoAP,
//! which the paper's experiments used: `ACK_TIMEOUT = 2 s`,
//! `ACK_RANDOM_FACTOR = 1.5`, `MAX_RETRANSMIT = 4`. The initial timeout
//! is drawn uniformly from `[ACK_TIMEOUT, ACK_TIMEOUT ×
//! ACK_RANDOM_FACTOR)` and doubles on each retransmission — producing
//! the scatter regions shaded grey in the paper's Fig. 11.

use crate::msg::{CoapMessage, MsgType};
use std::collections::HashMap;

/// Retransmission parameters (RFC 7252 §4.8).
#[derive(Debug, Clone, Copy)]
pub struct TransmissionParams {
    /// Base acknowledgement timeout in milliseconds.
    pub ack_timeout_ms: u64,
    /// Random factor applied to the initial timeout (×1000, i.e. 1500
    /// means 1.5).
    pub ack_random_factor_permille: u64,
    /// Maximum number of retransmissions.
    pub max_retransmit: u32,
    /// Deduplication window (EXCHANGE_LIFETIME) in milliseconds.
    pub exchange_lifetime_ms: u64,
}

impl Default for TransmissionParams {
    fn default() -> Self {
        TransmissionParams {
            ack_timeout_ms: 2000,
            ack_random_factor_permille: 1500,
            max_retransmit: 4,
            exchange_lifetime_ms: 247_000,
        }
    }
}

impl TransmissionParams {
    /// Worst-case total time spent retransmitting
    /// (`MAX_TRANSMIT_WAIT`-like bound): sum of all back-off intervals.
    pub fn max_transmit_wait_ms(&self) -> u64 {
        // ack_timeout * factor * (2^(max_retransmit+1) - 1)
        self.ack_timeout_ms * self.ack_random_factor_permille / 1000
            * ((1u64 << (self.max_retransmit + 1)) - 1)
    }
}

/// Events produced by the endpoint for the caller to act on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event<A> {
    /// Send this datagram to the peer.
    Transmit {
        /// Destination address.
        to: A,
        /// Encoded CoAP datagram.
        datagram: Vec<u8>,
        /// True when this is a retransmission (Fig. 11 bookkeeping).
        retransmission: bool,
    },
    /// A fresh (non-duplicate) request arrived.
    Request {
        /// Sender address.
        from: A,
        /// Decoded request.
        msg: CoapMessage,
    },
    /// A response matching one of our outstanding tokens arrived.
    Response {
        /// Sender address.
        from: A,
        /// Decoded response.
        msg: CoapMessage,
    },
    /// A CON we sent exhausted its retransmissions.
    TimedOut {
        /// Peer that never acknowledged.
        to: A,
        /// Token of the failed exchange (empty for raw CON).
        token: Vec<u8>,
    },
    /// A Reset arrived for one of our messages.
    Reset {
        /// Peer that rejected the message.
        from: A,
        /// MID that was reset.
        mid: u16,
    },
}

#[derive(Debug)]
struct PendingCon<A> {
    to: A,
    datagram: Vec<u8>,
    mid: u16,
    token: Vec<u8>,
    expects_response: bool,
    retries: u32,
    timeout_at: u64,
    backoff_ms: u64,
}

#[derive(Debug)]
struct SeenExchange<A> {
    from: A,
    mid: u16,
    at: u64,
    /// Cached wire response for duplicate CONs (RFC 7252 §4.2: "reply
    /// with the same response").
    response: Option<Vec<u8>>,
}

/// A sans-IO CoAP endpoint over peer addresses of type `A`.
pub struct Endpoint<A: Copy + Eq> {
    params: TransmissionParams,
    rng: u64,
    next_mid: u16,
    next_token: u16,
    pending: Vec<PendingCon<A>>,
    /// Tokens we have issued and not yet seen a (final) response for.
    open_requests: HashMap<Vec<u8>, A>,
    seen: Vec<SeenExchange<A>>,
}

impl<A: Copy + Eq> Endpoint<A> {
    /// Create an endpoint with default RFC 7252 parameters.
    pub fn new(seed: u64) -> Self {
        Self::with_params(seed, TransmissionParams::default())
    }

    /// Create an endpoint with explicit parameters.
    pub fn with_params(seed: u64, params: TransmissionParams) -> Self {
        Endpoint {
            params,
            rng: seed | 1,
            next_mid: (seed as u16) ^ (seed >> 40) as u16 | 1,
            next_token: (seed >> 16) as u16 ^ (seed >> 48) as u16,
            pending: Vec::new(),
            open_requests: HashMap::new(),
            seen: Vec::new(),
        }
    }

    fn rand(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Allocate a fresh message ID.
    pub fn alloc_mid(&mut self) -> u16 {
        self.next_mid = self.next_mid.wrapping_add(1);
        self.next_mid
    }

    /// Allocate a fresh 2-byte token (gCoAP-style short tokens).
    pub fn alloc_token(&mut self) -> Vec<u8> {
        self.next_token = self.next_token.wrapping_add(1);
        self.next_token.to_be_bytes().to_vec()
    }

    /// Number of in-flight confirmable transmissions.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Send a request. CON requests enter the retransmission machine;
    /// NON requests are fire-and-forget (but still correlated by
    /// token). Returns the events to act on (always starts with a
    /// `Transmit`).
    pub fn send_request(&mut self, now: u64, to: A, msg: &CoapMessage) -> Vec<Event<A>> {
        debug_assert!(msg.code.is_request());
        self.open_requests.insert(msg.token.clone(), to);
        self.send_message(now, to, msg, true)
    }

    /// Send a response. Piggybacked ACK responses are not retransmitted
    /// (the peer's CON machinery recovers loss); CON responses
    /// (separate responses) are.
    ///
    /// The response is also recorded so duplicate requests re-trigger
    /// the identical datagram.
    pub fn send_response(&mut self, now: u64, to: A, msg: &CoapMessage) -> Vec<Event<A>> {
        debug_assert!(msg.code.is_response());
        let wire = msg.encode();
        if msg.mtype == MsgType::Ack {
            if let Some(entry) = self
                .seen
                .iter_mut()
                .find(|s| s.from == to && s.mid == msg.message_id)
            {
                entry.response = Some(wire.clone());
            }
        }
        self.send_message(now, to, msg, false)
    }

    fn send_message(
        &mut self,
        now: u64,
        to: A,
        msg: &CoapMessage,
        expects_response: bool,
    ) -> Vec<Event<A>> {
        let wire = msg.encode();
        if msg.mtype == MsgType::Con {
            let spread =
                self.params.ack_timeout_ms * (self.params.ack_random_factor_permille - 1000) / 1000;
            let jitter = if spread == 0 {
                0
            } else {
                self.rand() % (spread + 1)
            };
            let backoff = self.params.ack_timeout_ms + jitter;
            self.pending.push(PendingCon {
                to,
                datagram: wire.clone(),
                mid: msg.message_id,
                token: msg.token.clone(),
                expects_response,
                retries: 0,
                timeout_at: now + backoff,
                backoff_ms: backoff,
            });
        }
        vec![Event::Transmit {
            to,
            datagram: wire,
            retransmission: false,
        }]
    }

    /// Process an incoming datagram.
    pub fn handle_datagram(&mut self, now: u64, from: A, datagram: &[u8]) -> Vec<Event<A>> {
        let msg = match CoapMessage::decode(datagram) {
            Ok(m) => m,
            // Malformed datagrams are silently dropped (a real endpoint
            // may send RST; for the experiments dropping is equivalent).
            Err(_) => return Vec::new(),
        };
        let mut events = Vec::new();
        match msg.mtype {
            MsgType::Ack | MsgType::Rst => {
                let is_rst = msg.mtype == MsgType::Rst;
                // Stop retransmitting the matched CON.
                if let Some(idx) = self.pending.iter().position(|p| p.mid == msg.message_id) {
                    let p = self.pending.remove(idx);
                    if is_rst {
                        events.push(Event::Reset {
                            from,
                            mid: msg.message_id,
                        });
                        self.open_requests.remove(&p.token);
                        return events;
                    }
                    // Piggybacked response?
                    if msg.code.is_response() && self.open_requests.remove(&msg.token).is_some() {
                        events.push(Event::Response { from, msg });
                    }
                    // Empty ACK: separate response will follow; keep
                    // open_requests entry.
                    let _ = p;
                } else if msg.code.is_response() && self.open_requests.remove(&msg.token).is_some()
                {
                    // ACK response whose original CON already completed
                    // (e.g. response to a retransmission): still deliver.
                    events.push(Event::Response { from, msg });
                }
            }
            MsgType::Con | MsgType::Non => {
                if msg.code.is_request() {
                    // Deduplication.
                    if let Some(entry) = self
                        .seen
                        .iter()
                        .find(|s| s.from == from && s.mid == msg.message_id)
                    {
                        if let Some(resp) = &entry.response {
                            events.push(Event::Transmit {
                                to: from,
                                datagram: resp.clone(),
                                retransmission: true,
                            });
                        }
                        return events;
                    }
                    self.seen.push(SeenExchange {
                        from,
                        mid: msg.message_id,
                        at: now,
                        response: None,
                    });
                    events.push(Event::Request { from, msg });
                } else if msg.code.is_response() {
                    // Separate response (CON or NON).
                    if msg.mtype == MsgType::Con {
                        // Always ACK a CON, even a duplicate.
                        events.push(Event::Transmit {
                            to: from,
                            datagram: CoapMessage::empty_ack(msg.message_id).encode(),
                            retransmission: false,
                        });
                    }
                    if self.open_requests.remove(&msg.token).is_some() {
                        events.push(Event::Response { from, msg });
                    }
                }
            }
        }
        events
    }

    /// Advance timers: returns retransmissions and failures due at `now`.
    pub fn poll(&mut self, now: u64) -> Vec<Event<A>> {
        let mut events = Vec::new();
        let params = self.params;
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].timeout_at <= now {
                if self.pending[i].retries >= params.max_retransmit {
                    let p = self.pending.remove(i);
                    if p.expects_response {
                        self.open_requests.remove(&p.token);
                    }
                    events.push(Event::TimedOut {
                        to: p.to,
                        token: p.token,
                    });
                    continue;
                }
                let p = &mut self.pending[i];
                p.retries += 1;
                p.backoff_ms *= 2;
                p.timeout_at = now + p.backoff_ms;
                events.push(Event::Transmit {
                    to: p.to,
                    datagram: p.datagram.clone(),
                    retransmission: true,
                });
            }
            i += 1;
        }
        // Purge the dedup window.
        self.seen
            .retain(|s| now.saturating_sub(s.at) < params.exchange_lifetime_ms);
        events
    }

    /// The earliest pending timer, if any (lets the simulator schedule
    /// the next wake-up precisely).
    pub fn next_timeout(&self) -> Option<u64> {
        self.pending.iter().map(|p| p.timeout_at).min()
    }

    /// Forget an open request (e.g. application-level timeout).
    pub fn cancel_request(&mut self, token: &[u8]) {
        self.open_requests.remove(token);
        self.pending.retain(|p| p.token != token);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::Code;
    use crate::opt::{CoapOption, OptionNumber};

    type Addr = u8;

    fn fetch(ep: &mut Endpoint<Addr>) -> CoapMessage {
        let mid = ep.alloc_mid();
        let token = ep.alloc_token();
        CoapMessage::request(Code::FETCH, MsgType::Con, mid, token)
            .with_option(CoapOption::new(OptionNumber::URI_PATH, b"dns".to_vec()))
            .with_payload(b"query".to_vec())
    }

    fn first_transmit(events: &[Event<Addr>]) -> Vec<u8> {
        for e in events {
            if let Event::Transmit { datagram, .. } = e {
                return datagram.clone();
            }
        }
        panic!("no transmit event");
    }

    #[test]
    fn request_response_exchange() {
        let mut client = Endpoint::<Addr>::new(1);
        let mut server = Endpoint::<Addr>::new(2);
        let req = fetch(&mut client);
        let ev = client.send_request(0, 2, &req);
        let wire = first_transmit(&ev);

        let ev = server.handle_datagram(5, 1, &wire);
        let incoming = match &ev[0] {
            Event::Request { msg, .. } => msg.clone(),
            other => panic!("expected request, got {other:?}"),
        };
        let resp =
            CoapMessage::ack_response(&incoming, Code::CONTENT).with_payload(b"answer".to_vec());
        let ev = server.send_response(6, 1, &resp);
        let resp_wire = first_transmit(&ev);

        let ev = client.handle_datagram(10, 2, &resp_wire);
        match &ev[0] {
            Event::Response { msg, .. } => {
                assert_eq!(msg.payload, b"answer");
                assert_eq!(msg.token, req.token);
            }
            other => panic!("expected response, got {other:?}"),
        }
        assert_eq!(client.in_flight(), 0);
    }

    #[test]
    fn retransmission_schedule_exponential() {
        let mut client = Endpoint::<Addr>::new(42);
        let req = fetch(&mut client);
        client.send_request(0, 2, &req);
        let t1 = client.next_timeout().unwrap();
        // Initial timeout within [2000, 3000] ms.
        assert!((2000..=3000).contains(&t1), "t1 = {t1}");
        // Drive through all 4 retransmissions.
        let mut retransmissions = 0;
        let mut now = t1;
        let mut last_backoff = t1;
        loop {
            let evs = client.poll(now);
            let mut done = false;
            for e in evs {
                match e {
                    Event::Transmit { retransmission, .. } => {
                        assert!(retransmission);
                        retransmissions += 1;
                    }
                    Event::TimedOut { token, .. } => {
                        assert_eq!(token, req.token);
                        done = true;
                    }
                    _ => {}
                }
            }
            if done {
                break;
            }
            let next = client.next_timeout().unwrap();
            let gap = next - now;
            // Back-off doubles each round.
            assert!(gap >= last_backoff, "gap {gap} < previous {last_backoff}");
            last_backoff = gap;
            now = next;
        }
        assert_eq!(retransmissions, 4);
        assert_eq!(client.in_flight(), 0);
    }

    #[test]
    fn ack_stops_retransmission() {
        let mut client = Endpoint::<Addr>::new(3);
        let req = fetch(&mut client);
        client.send_request(0, 2, &req);
        let ack = CoapMessage::empty_ack(req.message_id);
        client.handle_datagram(100, 2, &ack.encode());
        assert_eq!(client.in_flight(), 0);
        assert!(client.poll(10_000).is_empty());
        // The request stays open awaiting a separate response.
        let sep = CoapMessage {
            mtype: MsgType::Con,
            code: Code::CONTENT,
            message_id: 999,
            token: req.token.clone(),
            options: vec![],
            payload: b"late".to_vec(),
        };
        let ev = client.handle_datagram(5000, 2, &sep.encode());
        // First event: ACK for the CON response; second: delivery.
        assert!(matches!(ev[0], Event::Transmit { .. }));
        assert!(matches!(&ev[1], Event::Response { msg, .. } if msg.payload == b"late"));
    }

    #[test]
    fn duplicate_request_replays_response() {
        let mut server = Endpoint::<Addr>::new(4);
        let req = CoapMessage::request(Code::FETCH, MsgType::Con, 77, vec![1, 2]);
        let wire = req.encode();
        let ev = server.handle_datagram(0, 9, &wire);
        assert!(matches!(ev[0], Event::Request { .. }));
        let resp = CoapMessage::ack_response(&req, Code::CONTENT).with_payload(b"r".to_vec());
        server.send_response(1, 9, &resp);
        // Duplicate arrives: no Request event, replayed response instead.
        let ev = server.handle_datagram(2, 9, &wire);
        assert_eq!(ev.len(), 1);
        match &ev[0] {
            Event::Transmit {
                datagram,
                retransmission,
                ..
            } => {
                assert!(*retransmission);
                assert_eq!(*datagram, resp.encode());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn duplicate_before_response_is_dropped() {
        let mut server = Endpoint::<Addr>::new(5);
        let req = CoapMessage::request(Code::FETCH, MsgType::Con, 78, vec![9]);
        let wire = req.encode();
        assert_eq!(server.handle_datagram(0, 9, &wire).len(), 1);
        assert!(server.handle_datagram(1, 9, &wire).is_empty());
    }

    #[test]
    fn rst_cancels_exchange() {
        let mut client = Endpoint::<Addr>::new(6);
        let req = fetch(&mut client);
        client.send_request(0, 2, &req);
        let rst = CoapMessage::reset(req.message_id);
        let ev = client.handle_datagram(1, 2, &rst.encode());
        assert!(matches!(ev[0], Event::Reset { .. }));
        assert_eq!(client.in_flight(), 0);
        // No response delivery possible afterwards.
        let resp = CoapMessage {
            mtype: MsgType::Non,
            code: Code::CONTENT,
            message_id: 1,
            token: req.token,
            options: vec![],
            payload: vec![],
        };
        assert!(client.handle_datagram(2, 2, &resp.encode()).is_empty());
    }

    #[test]
    fn unsolicited_response_ignored() {
        let mut client = Endpoint::<Addr>::new(7);
        let resp = CoapMessage {
            mtype: MsgType::Non,
            code: Code::CONTENT,
            message_id: 5,
            token: vec![0xDE, 0xAD],
            options: vec![],
            payload: vec![],
        };
        assert!(client.handle_datagram(0, 2, &resp.encode()).is_empty());
    }

    #[test]
    fn malformed_datagram_ignored() {
        let mut ep = Endpoint::<Addr>::new(8);
        assert!(ep.handle_datagram(0, 1, &[0xFF, 0x00]).is_empty());
        assert!(ep.handle_datagram(0, 1, &[]).is_empty());
    }

    #[test]
    fn non_request_is_not_retransmitted() {
        let mut client = Endpoint::<Addr>::new(9);
        let mid = client.alloc_mid();
        let token = client.alloc_token();
        let req = CoapMessage::request(Code::GET, MsgType::Non, mid, token);
        client.send_request(0, 2, &req);
        assert_eq!(client.in_flight(), 0);
        assert!(client.poll(100_000).is_empty());
    }

    #[test]
    fn max_transmit_wait_matches_rfc() {
        // 2000 * 1.5 * 31 = 93000 ms ≈ the 93 s MAX_TRANSMIT_WAIT of
        // RFC 7252 — the paper's 41-44 s tail for 99% resolution fits
        // inside this envelope.
        let p = TransmissionParams::default();
        assert_eq!(p.max_transmit_wait_ms(), 93_000);
    }

    #[test]
    fn cancel_request_stops_everything() {
        let mut client = Endpoint::<Addr>::new(10);
        let req = fetch(&mut client);
        client.send_request(0, 2, &req);
        client.cancel_request(&req.token);
        assert_eq!(client.in_flight(), 0);
        assert!(client.poll(100_000).is_empty());
    }

    #[test]
    fn distinct_mids_and_tokens() {
        let mut ep = Endpoint::<Addr>::new(11);
        let mids: Vec<u16> = (0..100).map(|_| ep.alloc_mid()).collect();
        let tokens: Vec<Vec<u8>> = (0..100).map(|_| ep.alloc_token()).collect();
        let mut m = mids.clone();
        m.dedup();
        assert_eq!(m.len(), 100);
        let mut t = tokens.clone();
        t.dedup();
        assert_eq!(t.len(), 100);
    }
}
