//! Block-wise transfers (RFC 7959), as used in Appendix A/D of the
//! paper.
//!
//! The BLOCK option value packs `NUM` (block number), `M` (more flag)
//! and `SZX` (size exponent, block size = 2^(SZX+4)) into 0–3 bytes.
//! [`Block1Sender`], [`BlockAssembler`] and [`Block2Server`] implement
//! the state machines of Fig. 12: Block1 splits a request body across
//! multiple exchanges (server answers 2.31 Continue), Block2 serves a
//! response body block by block.

use crate::msg::{CoapMessage, Code};
use crate::opt::{CoapOption, OptionNumber};
use crate::CoapError;

/// A decoded Block1/Block2 option value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockOpt {
    /// Block number (`NUM`).
    pub num: u32,
    /// More-blocks flag (`M`).
    pub more: bool,
    /// Size exponent (`SZX`, 0..=6); block size is `2^(szx+4)`.
    pub szx: u8,
}

impl BlockOpt {
    /// Construct from a block number, more flag and byte size
    /// (16/32/64/…/1024).
    pub fn new(num: u32, more: bool, size: usize) -> Result<Self, CoapError> {
        let szx = match size {
            16 => 0,
            32 => 1,
            64 => 2,
            128 => 3,
            256 => 4,
            512 => 5,
            1024 => 6,
            _ => return Err(CoapError::BadBlock),
        };
        if num >= 1 << 20 {
            return Err(CoapError::BadBlock);
        }
        Ok(BlockOpt { num, more, szx })
    }

    /// Block size in bytes.
    pub fn size(&self) -> usize {
        1 << (self.szx + 4)
    }

    /// Byte offset of this block within the full body.
    pub fn offset(&self) -> usize {
        self.num as usize * self.size()
    }

    /// Encode as option value bytes (0–3 bytes).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(3);
        self.encode_into(&mut out);
        out
    }

    /// Append the option value bytes to `out` without allocating.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let v = (self.num << 4) | ((self.more as u32) << 3) | self.szx as u32;
        crate::opt::encode_uint_into(v, out);
    }

    /// Decode from option value bytes.
    pub fn decode(value: &[u8]) -> Result<Self, CoapError> {
        if value.len() > 3 {
            return Err(CoapError::BadBlock);
        }
        let v = crate::opt::decode_uint_value(value);
        let szx = (v & 7) as u8;
        if szx == 7 {
            return Err(CoapError::BadBlock);
        }
        Ok(BlockOpt {
            num: v >> 4,
            more: v & 8 != 0,
            szx,
        })
    }

    /// Read a BLOCK option off a message.
    pub fn from_message(
        msg: &CoapMessage,
        number: OptionNumber,
    ) -> Option<Result<Self, CoapError>> {
        msg.option(number).map(|o| Self::decode(&o.value))
    }

    /// [`BlockOpt::from_message`] over a borrowed request view.
    pub fn from_view(
        msg: &crate::view::CoapView<'_>,
        number: OptionNumber,
    ) -> Option<Result<Self, CoapError>> {
        msg.option(number).map(|o| Self::decode(o.value))
    }

    /// As a [`CoapOption`] with the given option number.
    pub fn to_option(self, number: OptionNumber) -> CoapOption {
        CoapOption::new(number, self.encode())
    }
}

impl core::fmt::Display for BlockOpt {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // The paper's Fig. 12 notation: num/more/size.
        write!(f, "{}/{}/{}", self.num, self.more as u8, self.size())
    }
}

/// Client-side Block1 sender: slices a request body into blocks.
///
/// Protocol (RFC 7959 §2.5, paper Fig. 12a): each non-final block is
/// answered by `2.31 Continue`; the final block carries the actual
/// request semantics and is answered by the real response.
#[derive(Debug, Clone)]
pub struct Block1Sender {
    body: Vec<u8>,
    block_size: usize,
    next: u32,
}

impl Block1Sender {
    /// Create a sender over `body` with `block_size` bytes per block.
    pub fn new(body: Vec<u8>, block_size: usize) -> Result<Self, CoapError> {
        BlockOpt::new(0, false, block_size)?; // validate size
        Ok(Block1Sender {
            body,
            block_size,
            next: 0,
        })
    }

    /// Total number of blocks.
    pub fn block_count(&self) -> usize {
        self.body.len().div_ceil(self.block_size).max(1)
    }

    /// The next (payload, Block1 option) pair, or `None` when done.
    pub fn next_block(&mut self) -> Option<(Vec<u8>, BlockOpt)> {
        let total = self.block_count();
        if self.next as usize >= total {
            return None;
        }
        let num = self.next;
        let start = num as usize * self.block_size;
        let end = (start + self.block_size).min(self.body.len());
        let more = (num as usize) < total - 1;
        self.next += 1;
        Some((
            self.body[start..end].to_vec(),
            BlockOpt {
                num,
                more,
                szx: BlockOpt::new(0, false, self.block_size)
                    .expect("validated")
                    .szx,
            },
        ))
    }

    /// Handle the server's `2.31 Continue` (or final) response: check
    /// that the echoed block number matches the block we just sent.
    pub fn handle_ack(&self, echoed: BlockOpt) -> Result<(), CoapError> {
        if echoed.num + 1 != self.next {
            return Err(CoapError::BlockSequence);
        }
        Ok(())
    }

    /// Whether all blocks have been produced.
    pub fn is_done(&self) -> bool {
        self.next as usize >= self.block_count()
    }
}

/// Server-side Block1 reassembler / client-side Block2 reassembler.
///
/// Accumulates blocks in order; rejects gaps or overlaps (the strict
/// sequential mode both RIOT gCoAP and the paper's experiments use).
#[derive(Debug, Clone, Default)]
pub struct BlockAssembler {
    body: Vec<u8>,
    next_num: u32,
    done: bool,
}

impl BlockAssembler {
    /// Fresh assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed one block; returns `Some(body)` when the body is complete.
    pub fn push(&mut self, block: BlockOpt, payload: &[u8]) -> Result<Option<Vec<u8>>, CoapError> {
        if self.done {
            return Err(CoapError::BlockSequence);
        }
        if block.num != self.next_num {
            return Err(CoapError::BlockSequence);
        }
        // All non-final blocks must be exactly the negotiated size.
        if block.more && payload.len() != block.size() {
            return Err(CoapError::BadBlock);
        }
        self.body.extend_from_slice(payload);
        self.next_num += 1;
        if block.more {
            Ok(None)
        } else {
            self.done = true;
            Ok(Some(std::mem::take(&mut self.body)))
        }
    }

    /// Whether the body completed.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Number of blocks received so far.
    pub fn received(&self) -> u32 {
        self.next_num
    }
}

/// Server-side Block2 responder: serves a response body block by block.
#[derive(Debug, Clone)]
pub struct Block2Server {
    body: Vec<u8>,
    block_size: usize,
}

impl Block2Server {
    /// Create a responder over `body` with the given default block size.
    pub fn new(body: Vec<u8>, block_size: usize) -> Result<Self, CoapError> {
        BlockOpt::new(0, false, block_size)?;
        Ok(Block2Server { body, block_size })
    }

    /// Produce block `num` (at `size` bytes per block, allowing the
    /// client to renegotiate a smaller size). Returns payload + option.
    pub fn block(&self, num: u32, size: usize) -> Result<(Vec<u8>, BlockOpt), CoapError> {
        BlockOpt::new(0, false, size)?;
        let start = num as usize * size;
        if start >= self.body.len() && !(num == 0 && self.body.is_empty()) {
            return Err(CoapError::BlockSequence);
        }
        let end = (start + size).min(self.body.len());
        let more = end < self.body.len();
        Ok((
            self.body[start..end].to_vec(),
            BlockOpt::new(num, more, size)?,
        ))
    }

    /// The default block size negotiated at construction (used when the
    /// client does not request a specific size).
    pub fn default_block_size(&self) -> usize {
        self.block_size
    }

    /// Whole-body length.
    pub fn len(&self) -> usize {
        self.body.len()
    }

    /// Whether the body is empty.
    pub fn is_empty(&self) -> bool {
        self.body.is_empty()
    }

    /// Does this body even need block-wise transfer at `size`?
    pub fn needs_blockwise(&self, size: usize) -> bool {
        self.body.len() > size
    }
}

/// Attach a Block1 slice to a request message (helper used by DoC
/// clients performing block-wise FETCH/POST queries).
pub fn apply_block1(msg: &mut CoapMessage, payload: Vec<u8>, block: BlockOpt) {
    msg.payload = payload;
    msg.set_option(block.to_option(OptionNumber::BLOCK1));
}

/// Build the `2.31 Continue` acknowledgment for a non-final Block1
/// request block.
pub fn continue_response(req: &CoapMessage, block: BlockOpt) -> CoapMessage {
    continue_reply(req.message_id, req.token.clone(), block)
}

/// [`continue_response`] from the exchange identifiers directly, taking
/// ownership of the token (no clone from a borrowed view).
pub fn continue_reply(message_id: u16, token: Vec<u8>, block: BlockOpt) -> CoapMessage {
    let mut resp = CoapMessage::ack_reply(message_id, token, Code::CONTINUE);
    resp.set_option(block.to_option(OptionNumber::BLOCK1));
    resp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::MsgType;

    #[test]
    fn block_opt_roundtrip() {
        for (num, more, size) in [
            (0u32, false, 16usize),
            (0, true, 32),
            (1, true, 64),
            (2, false, 32),
            (100, true, 1024),
            (1_048_575, false, 16),
        ] {
            let b = BlockOpt::new(num, more, size).unwrap();
            let back = BlockOpt::decode(&b.encode()).unwrap();
            assert_eq!(back, b);
            assert_eq!(back.size(), size);
        }
    }

    #[test]
    fn block_zero_no_more_szx0_is_empty_value() {
        // NUM=0, M=0, SZX=0 encodes to zero bytes (uint 0).
        let b = BlockOpt::new(0, false, 16).unwrap();
        assert!(b.encode().is_empty());
        assert_eq!(BlockOpt::decode(&[]).unwrap(), b);
    }

    #[test]
    fn reject_bad_blocks() {
        assert!(BlockOpt::new(0, false, 48).is_err());
        assert!(BlockOpt::new(1 << 20, false, 16).is_err());
        assert!(BlockOpt::decode(&[0x07]).is_err()); // SZX=7
        assert!(BlockOpt::decode(&[0, 0, 0, 0]).is_err()); // 4 bytes
    }

    #[test]
    fn display_matches_paper_notation() {
        // Fig. 12 uses n/m/s notation like "0/1/32".
        assert_eq!(BlockOpt::new(0, true, 32).unwrap().to_string(), "0/1/32");
        assert_eq!(BlockOpt::new(2, false, 32).unwrap().to_string(), "2/0/32");
    }

    /// Reproduces Fig. 12a: a 96-byte body in 32-byte blocks takes
    /// exactly 3 Block1 exchanges, the first two answered 2.31.
    #[test]
    fn fig12a_block1_sequence() {
        let body: Vec<u8> = (0..96u8).collect();
        let mut sender = Block1Sender::new(body.clone(), 32).unwrap();
        assert_eq!(sender.block_count(), 3);
        let mut assembler = BlockAssembler::new();
        let mut exchanges = 0;
        let mut result = None;
        while let Some((payload, block)) = sender.next_block() {
            exchanges += 1;
            let req = CoapMessage::request(Code::POST, MsgType::Con, exchanges, vec![1]);
            let mut req = req;
            apply_block1(&mut req, payload.clone(), block);
            // Server side
            let r = assembler.push(block, &req.payload).unwrap();
            if block.more {
                let resp = continue_response(&req, block);
                assert_eq!(resp.code, Code::CONTINUE);
                let echoed = BlockOpt::from_message(&resp, OptionNumber::BLOCK1)
                    .unwrap()
                    .unwrap();
                sender.handle_ack(echoed).unwrap();
                assert!(r.is_none());
            } else {
                result = r;
            }
        }
        assert_eq!(exchanges, 3);
        assert_eq!(result.unwrap(), body);
        assert!(sender.is_done());
    }

    /// Fig. 12b: Block2 retrieval of a 96-byte body in 32-byte blocks.
    #[test]
    fn fig12b_block2_sequence() {
        let body: Vec<u8> = (0..96u8).collect();
        let server = Block2Server::new(body.clone(), 32).unwrap();
        assert!(server.needs_blockwise(32));
        let mut assembler = BlockAssembler::new();
        let mut num = 0;
        loop {
            let (payload, block) = server.block(num, 32).unwrap();
            if let Some(full) = assembler.push(block, &payload).unwrap() {
                assert_eq!(full, body);
                break;
            }
            num += 1;
        }
        assert_eq!(assembler.received(), 3);
    }

    #[test]
    fn non_aligned_final_block() {
        let body = vec![7u8; 70]; // 3 blocks of 32: 32+32+6
        let mut sender = Block1Sender::new(body.clone(), 32).unwrap();
        let mut sizes = Vec::new();
        while let Some((p, _)) = sender.next_block() {
            sizes.push(p.len());
        }
        assert_eq!(sizes, vec![32, 32, 6]);
    }

    #[test]
    fn empty_body_single_block() {
        let mut sender = Block1Sender::new(Vec::new(), 16).unwrap();
        assert_eq!(sender.block_count(), 1);
        let (p, b) = sender.next_block().unwrap();
        assert!(p.is_empty());
        assert!(!b.more);
        assert!(sender.next_block().is_none());
    }

    #[test]
    fn assembler_rejects_out_of_order() {
        let mut a = BlockAssembler::new();
        let b1 = BlockOpt::new(1, true, 32).unwrap();
        assert_eq!(a.push(b1, &[0u8; 32]), Err(CoapError::BlockSequence));
    }

    #[test]
    fn assembler_rejects_duplicate() {
        let mut a = BlockAssembler::new();
        let b0 = BlockOpt::new(0, true, 32).unwrap();
        a.push(b0, &[0u8; 32]).unwrap();
        assert_eq!(a.push(b0, &[0u8; 32]), Err(CoapError::BlockSequence));
    }

    #[test]
    fn assembler_rejects_short_intermediate_block() {
        let mut a = BlockAssembler::new();
        let b0 = BlockOpt::new(0, true, 32).unwrap();
        assert_eq!(a.push(b0, &[0u8; 31]), Err(CoapError::BadBlock));
    }

    #[test]
    fn assembler_rejects_after_done() {
        let mut a = BlockAssembler::new();
        let b0 = BlockOpt::new(0, false, 32).unwrap();
        a.push(b0, &[0u8; 10]).unwrap();
        assert_eq!(
            a.push(BlockOpt::new(1, false, 32).unwrap(), &[]),
            Err(CoapError::BlockSequence)
        );
    }

    #[test]
    fn sender_detects_wrong_echo() {
        let mut sender = Block1Sender::new(vec![0u8; 64], 32).unwrap();
        let (_, _b) = sender.next_block().unwrap();
        let wrong = BlockOpt::new(5, true, 32).unwrap();
        assert_eq!(sender.handle_ack(wrong), Err(CoapError::BlockSequence));
    }

    #[test]
    fn block2_server_bounds() {
        let server = Block2Server::new(vec![1u8; 40], 32).unwrap();
        assert!(server.block(2, 32).is_err());
        let (p, b) = server.block(1, 32).unwrap();
        assert_eq!(p.len(), 8);
        assert!(!b.more);
        // Client renegotiates smaller size.
        let (p, b) = server.block(0, 16).unwrap();
        assert_eq!(p.len(), 16);
        assert!(b.more);
    }

    #[test]
    fn block2_empty_body() {
        let server = Block2Server::new(Vec::new(), 32).unwrap();
        assert!(server.is_empty());
        let (p, b) = server.block(0, 32).unwrap();
        assert!(p.is_empty());
        assert!(!b.more);
    }
}
