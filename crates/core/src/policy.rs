//! TTL ↔ Max-Age alignment policies (paper §4.2).
//!
//! The DoC server must map DNS record TTLs onto CoAP's freshness model.
//! Two schemes are compared in the paper:
//!
//! * **DoH-like** (RFC 8484 §5.1 semantics): `Max-Age := min TTL`,
//!   record TTLs stay in the payload. Any TTL change — which happens on
//!   every upstream cache interaction — changes the payload bytes and
//!   therefore the ETag, so cache revalidation fails and full responses
//!   must be retransferred (Fig. 3, steps 3/4).
//! * **EOL TTLs** (the paper's contribution): `Max-Age := min TTL`, all
//!   TTLs rewritten to 0. The payload — and the ETag — stay identical
//!   for the same record set; clients restore TTLs by copying the
//!   (decremented en route) Max-Age back into the records. Cache
//!   revalidation then succeeds whenever only TTLs changed.

use doc_dns::Message;

/// The caching scheme in use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CachePolicy {
    /// RFC 8484 behaviour (baseline).
    DohLike,
    /// The paper's EOL-TTLs improvement.
    EolTtls,
}

impl CachePolicy {
    /// Short display name matching the paper's figure labels.
    pub fn name(self) -> &'static str {
        match self {
            CachePolicy::DohLike => "DoH-like",
            CachePolicy::EolTtls => "EOL TTLs",
        }
    }
}

/// A server-side prepared response: payload bytes plus cache metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreparedResponse {
    /// The DNS response wire bytes to put into the CoAP payload.
    pub payload: Vec<u8>,
    /// Max-Age seconds (minimum TTL across records; 0 if no records).
    pub max_age: u32,
    /// ETag over the payload (8 bytes of SHA-256) — the paper's "naïve
    /// ETag generation calculates a hash over the CoAP message payload"
    /// (§7), which is exactly what breaks under DoH-like TTL decay.
    pub etag: Vec<u8>,
}

/// Prepare a DNS response under `policy` (server side, §4.2).
///
/// `response` should carry current (decremented) TTLs. The function
/// canonicalizes the DNS ID to 0 and sorts answers (both §4.2/§7
/// measures for deterministic ETags), applies the TTL rewrite for
/// [`CachePolicy::EolTtls`], and derives Max-Age and the ETag.
pub fn prepare_response(policy: CachePolicy, response: &Message) -> PreparedResponse {
    let mut msg = response.clone();
    msg.canonicalize_id();
    msg.sort_answers();
    let max_age = msg.min_ttl().unwrap_or(0);
    if policy == CachePolicy::EolTtls {
        msg.set_all_ttls(0);
    }
    let payload = msg.encode();
    let etag = doc_crypto::sha256::sha256(&payload)[..8].to_vec();
    PreparedResponse {
        payload,
        max_age,
        etag,
    }
}

/// Restore TTLs on the client after receiving a response with
/// `max_age` remaining freshness (§4.2, client side).
///
/// * EOL TTLs: "it copies the CoAP Max-Age into the DNS resource
///   records to restore the correctly decremented TTL values".
/// * DoH-like: "use the altered Max-Age to reduce TTLs of included
///   resource records" — TTLs are clamped to the remaining Max-Age.
pub fn restore_ttls(policy: CachePolicy, response: &mut Message, max_age: u32) {
    match policy {
        CachePolicy::EolTtls => response.restore_ttls_from_max_age(max_age),
        CachePolicy::DohLike => {
            for rec in response.records_mut() {
                rec.ttl = rec.ttl.min(max_age);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doc_dns::{Name, Rcode, Record, RecordType};
    use std::net::Ipv6Addr;

    fn response(ttls: &[u32]) -> Message {
        let name = Name::parse("name-01234.c.example.org").unwrap();
        let q = Message::query(0x4444, name.clone(), RecordType::Aaaa);
        let answers = ttls
            .iter()
            .enumerate()
            .map(|(i, &ttl)| {
                Record::aaaa(
                    name.clone(),
                    ttl,
                    Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, i as u16 + 1),
                )
            })
            .collect();
        Message::response(&q, Rcode::NoError, answers)
    }

    #[test]
    fn max_age_is_min_ttl() {
        for policy in [CachePolicy::DohLike, CachePolicy::EolTtls] {
            let p = prepare_response(policy, &response(&[300, 42, 600]));
            assert_eq!(p.max_age, 42, "{policy:?}");
        }
    }

    #[test]
    fn eol_zeroes_ttls_in_payload() {
        let p = prepare_response(CachePolicy::EolTtls, &response(&[300, 42]));
        let msg = Message::decode(&p.payload).unwrap();
        assert!(msg.answers.iter().all(|r| r.ttl == 0));
        // DoH-like keeps them.
        let p = prepare_response(CachePolicy::DohLike, &response(&[300, 42]));
        let msg = Message::decode(&p.payload).unwrap();
        assert_eq!(msg.answers.iter().map(|r| r.ttl).max(), Some(300));
    }

    /// The core EOL-TTLs property (Fig. 3 steps 3/4 vs. §4.2): a pure
    /// TTL change flips the DoH-like ETag but keeps the EOL ETag.
    #[test]
    fn etag_stability_under_ttl_change() {
        let r1 = response(&[300, 300]);
        let r2 = response(&[25, 25]); // same records, decayed TTLs
        let doh1 = prepare_response(CachePolicy::DohLike, &r1);
        let doh2 = prepare_response(CachePolicy::DohLike, &r2);
        assert_ne!(doh1.etag, doh2.etag, "DoH-like ETag must change");
        let eol1 = prepare_response(CachePolicy::EolTtls, &r1);
        let eol2 = prepare_response(CachePolicy::EolTtls, &r2);
        assert_eq!(eol1.etag, eol2.etag, "EOL ETag must be stable");
    }

    /// §7's load-balancing fix: record reordering does not change the
    /// ETag because the server sorts answers.
    #[test]
    fn etag_stable_under_record_reordering() {
        let r1 = response(&[60, 60, 60, 60]);
        let mut r2 = r1.clone();
        r2.answers.reverse();
        let p1 = prepare_response(CachePolicy::EolTtls, &r1);
        let p2 = prepare_response(CachePolicy::EolTtls, &r2);
        assert_eq!(p1.etag, p2.etag);
    }

    /// Different record sets must differ in ETag under either policy.
    #[test]
    fn etag_distinguishes_content() {
        let r1 = response(&[60]);
        let r2 = response(&[60, 60]);
        for policy in [CachePolicy::DohLike, CachePolicy::EolTtls] {
            let p1 = prepare_response(policy, &r1);
            let p2 = prepare_response(policy, &r2);
            assert_ne!(p1.etag, p2.etag, "{policy:?}");
        }
    }

    #[test]
    fn dns_id_canonicalized() {
        let p = prepare_response(CachePolicy::EolTtls, &response(&[60]));
        let msg = Message::decode(&p.payload).unwrap();
        assert_eq!(msg.header.id, 0);
    }

    #[test]
    fn restore_eol_ttls() {
        let mut msg = response(&[0, 0]);
        restore_ttls(CachePolicy::EolTtls, &mut msg, 37);
        assert!(msg.answers.iter().all(|r| r.ttl == 37));
    }

    #[test]
    fn restore_doh_like_clamps() {
        let mut msg = response(&[300, 10]);
        restore_ttls(CachePolicy::DohLike, &mut msg, 25);
        assert_eq!(msg.answers[0].ttl, 25); // clamped
        assert_eq!(msg.answers[1].ttl, 10); // already lower
    }

    #[test]
    fn empty_response_max_age_zero() {
        let name = Name::parse("nx.example.org").unwrap();
        let q = Message::query(1, name, RecordType::Aaaa);
        let r = Message::response(&q, Rcode::NxDomain, vec![]);
        let p = prepare_response(CachePolicy::EolTtls, &r);
        assert_eq!(p.max_age, 0);
    }

    #[test]
    fn policy_names() {
        assert_eq!(CachePolicy::DohLike.name(), "DoH-like");
        assert_eq!(CachePolicy::EolTtls.name(), "EOL TTLs");
    }
}
