//! The testbed-in-a-crate: drives DoC clients, the forwarder/proxy and
//! the DoC server over the `doc-netsim` simulator, reproducing the
//! paper's experiment setups:
//!
//! * **§5.1/§5.4 (Fig. 7)** — two clients, two wireless hops, opaque
//!   forwarder; 50 queries per run, Poisson λ = 5 /s; transports UDP,
//!   DTLSv1.2, CoAP (FETCH/GET/POST), CoAPSv1.2 (FETCH/GET/POST),
//!   OSCORE (FETCH); DTLS sessions and OSCORE replay windows are
//!   pre-initialized exactly as the paper does.
//! * **§6 (Fig. 10/11)** — 50 queries over 8 distinct names, 4 AAAA
//!   records per answer, TTLs uniform in [2 s, 8 s]; caching knobs:
//!   client DNS cache, client CoAP cache, caching forward proxy;
//!   policies DoH-like vs EOL TTLs.
//! * **Appendix D (Fig. 15)** — block-wise FETCH with block sizes
//!   16/32/64 over CoAP and CoAPS.
//!
//! The driver owns all node state machines and pumps the simulator's
//! event loop; every run is deterministic in its seed.

use crate::client::{DocClient, QueryOutcome};
use crate::method::DocMethod;
use crate::policy::CachePolicy;
use crate::proxy::{CoapProxy, ProxyAction};
use crate::server::{DocServer, MockUpstream};
use crate::transport::{
    experiment_name, frame_stream_query, frame_stream_response, TransportKind, QUIC_PSK,
};
use doc_coap::block::{Block1Sender, BlockAssembler, BlockOpt};
use doc_coap::msg::{CoapMessage, Code, MsgType};
use doc_coap::opt::OptionNumber;
use doc_coap::reliability::{Endpoint, Event as EpEvent};
use doc_dns::{Message, Question, RecordType};
use doc_netsim::{LinkKind, NodeId, Sim, SimEvent, Tag};
use doc_oscore::context::SecurityContext;
use doc_oscore::protect::OscoreEndpoint;
use doc_oscore::RequestBinding;
use std::collections::HashMap;

/// Experiment configuration. Defaults reproduce the Fig. 7 FETCH/CoAP
/// setup.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// DNS transport under test.
    pub transport: TransportKind,
    /// CoAP method (CoAP-based transports only).
    pub method: DocMethod,
    /// TTL↔Max-Age policy.
    pub policy: CachePolicy,
    /// Forwarder runs as caching CoAP proxy (vs. opaque IPv6 router).
    pub proxy_cache: bool,
    /// Clients keep a CoAP response cache.
    pub client_coap_cache: bool,
    /// Clients keep a DNS cache.
    pub client_dns_cache: bool,
    /// Queried record type.
    pub record_type: RecordType,
    /// Number of clients (paper: 2).
    pub num_clients: usize,
    /// Total queries across all clients (paper: 50).
    pub num_queries: usize,
    /// Number of distinct names queried (Fig. 7: 50; Fig. 10: 8).
    pub num_names: usize,
    /// Answer records per response (Fig. 7: 1; Fig. 10: 4).
    pub answers_per_response: u16,
    /// Upstream TTL range in seconds (Fig. 10: 2..=8).
    pub ttl_range: (u32, u32),
    /// Poisson query rate per second (paper: 5.0).
    pub lambda: f64,
    /// Per-frame wireless loss in permille.
    pub loss_permille: u32,
    /// Block-wise transfer size (Fig. 15), None = off.
    pub block_size: Option<usize>,
    /// RNG seed; equal seeds give identical runs.
    pub seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            transport: TransportKind::Coap,
            method: DocMethod::Fetch,
            policy: CachePolicy::EolTtls,
            proxy_cache: false,
            client_coap_cache: false,
            client_dns_cache: false,
            record_type: RecordType::Aaaa,
            num_clients: 2,
            num_queries: 50,
            num_names: 50,
            answers_per_response: 1,
            ttl_range: (300, 300),
            lambda: 5.0,
            loss_permille: 100,
            block_size: None,
            seed: 0xD0C,
        }
    }
}

/// What happened to one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryRecord {
    /// Which client issued it.
    pub client: usize,
    /// Issue time (virtual ms).
    pub issued_ms: u64,
    /// Completion time, None = never resolved.
    pub resolved_ms: Option<u64>,
}

impl QueryRecord {
    /// Resolution latency if resolved.
    pub fn latency_ms(&self) -> Option<u64> {
        self.resolved_ms.map(|r| r.saturating_sub(self.issued_ms))
    }
}

/// Kinds of client/proxy events tracked for Fig. 11.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// First transmission of a CoAP message for this query.
    Transmission,
    /// A CoAP retransmission.
    Retransmission,
    /// A cache hit (client or proxy) answered the query.
    CacheHit,
    /// A cache revalidation completed (2.03 observed).
    CacheValidation,
}

/// One Fig. 11 scatter point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxEvent {
    /// The absolute issue time of the query this event belongs to.
    pub query_start_ms: u64,
    /// Offset of the event from the query start.
    pub offset_ms: u64,
    /// Event kind.
    pub kind: EventKind,
}

/// Aggregated outcome of one experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Per-query records in issue order.
    pub queries: Vec<QueryRecord>,
    /// Client↔proxy link (2 hops from sink), both directions,
    /// aggregated over clients.
    pub client_proxy: doc_netsim::LinkStats,
    /// Proxy↔border-router link (1 hop from sink).
    pub proxy_br: doc_netsim::LinkStats,
    /// Fig. 11 event scatter.
    pub events: Vec<TxEvent>,
    /// Summed client stats.
    pub client_stats: crate::client::ClientStats,
    /// Proxy stats (zero when the forwarder was opaque).
    pub proxy_stats: crate::proxy::ProxyStats,
    /// Server stats.
    pub server_stats: crate::server::ServerStats,
}

impl ExperimentResult {
    /// Sorted resolution times of completed queries (CDF input).
    pub fn sorted_latencies(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.queries.iter().filter_map(|q| q.latency_ms()).collect();
        v.sort_unstable();
        v
    }

    /// Fraction of queries resolving within `limit_ms`.
    pub fn fraction_within(&self, limit_ms: u64) -> f64 {
        let done = self
            .queries
            .iter()
            .filter(|q| q.latency_ms().is_some_and(|l| l <= limit_ms))
            .count();
        done as f64 / self.queries.len().max(1) as f64
    }

    /// Fraction of queries that resolved at all.
    pub fn success_rate(&self) -> f64 {
        let done = self
            .queries
            .iter()
            .filter(|q| q.resolved_ms.is_some())
            .count();
        done as f64 / self.queries.len().max(1) as f64
    }
}

// ---------------------------------------------------------------------
// Driver internals
// ---------------------------------------------------------------------

/// CoAP-style retransmitter for the non-CoAP transports (the paper:
/// "we support the retransmission algorithm of CoAP for DNS over UDP,
/// i.e., 4 retransmissions using an exponential back-off").
struct RawRetrans {
    entries: Vec<RawEntry>,
    rng: u64,
}

struct RawEntry {
    dns_id: u16,
    query_idx: usize,
    dns_bytes: Vec<u8>,
    retries: u32,
    backoff_ms: u64,
    timeout_at: u64,
}

impl RawRetrans {
    fn new(seed: u64) -> Self {
        RawRetrans {
            entries: Vec::new(),
            rng: seed | 1,
        }
    }
    fn rand(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
    fn arm(&mut self, dns_id: u16, query_idx: usize, dns_bytes: Vec<u8>, now: u64) {
        let backoff = 2000 + self.rand() % 1001; // [2.0, 3.0] s
        self.entries.push(RawEntry {
            dns_id,
            query_idx,
            dns_bytes,
            retries: 0,
            backoff_ms: backoff,
            timeout_at: now + backoff,
        });
    }
    fn complete(&mut self, dns_id: u16) -> Option<usize> {
        let idx = self.entries.iter().position(|e| e.dns_id == dns_id)?;
        Some(self.entries.remove(idx).query_idx)
    }
    /// Returns ((dns_bytes, query_idx) to resend, failed query idxs).
    fn poll(&mut self, now: u64) -> (Vec<(Vec<u8>, usize)>, Vec<usize>) {
        let mut resend = Vec::new();
        let mut failed = Vec::new();
        let mut i = 0;
        while i < self.entries.len() {
            if self.entries[i].timeout_at <= now {
                if self.entries[i].retries >= 4 {
                    failed.push(self.entries.remove(i).query_idx);
                    continue;
                }
                let e = &mut self.entries[i];
                e.retries += 1;
                e.backoff_ms *= 2;
                e.timeout_at = now + e.backoff_ms;
                resend.push((e.dns_bytes.clone(), e.query_idx));
            }
            i += 1;
        }
        (resend, failed)
    }
    fn next_timeout(&self) -> Option<u64> {
        self.entries.iter().map(|e| e.timeout_at).min()
    }
}

/// Per-query block-wise state (Fig. 15 runs).
struct BlockwiseState {
    sender: Option<Block1Sender>,
    assembler: BlockAssembler,
    first_response: Option<CoapMessage>,
    size: usize,
}

/// Everything one client owns.
struct ClientNode {
    endpoint: Endpoint<NodeId>,
    doc: DocClient,
    token_query: HashMap<Vec<u8>, usize>,
    bindings: HashMap<Vec<u8>, RequestBinding>,
    blockwise: HashMap<Vec<u8>, BlockwiseState>,
    oscore: Option<OscoreEndpoint>,
    dtls: Option<doc_dtls::DtlsClient>,
    /// QUIC-lite connection (stream transports: DoQ/DoH/DoT).
    quic: Option<doc_quic::Connection>,
    /// Stream ID → query index (DoQ/DoH: one query per stream).
    stream_query: HashMap<u64, usize>,
    /// Per-stream response bytes accumulated until FIN (DoQ/DoH).
    stream_rx: HashMap<u64, Vec<u8>>,
    /// The pipelined DoT response stream splitter.
    dot_rx: doc_quic::doq::DotReassembler,
    /// DNS message ID → query index (DoT matches by ID, like UDP).
    dns_id_query: HashMap<u16, usize>,
    raw: RawRetrans,
    scheduled_poll: Option<u64>,
}

impl ClientNode {
    /// Wrap outgoing bytes in DTLS when the transport demands it.
    fn wrap(&mut self, kind: TransportKind, bytes: Vec<u8>) -> Vec<u8> {
        match kind {
            TransportKind::Coaps | TransportKind::Dtls => self
                .dtls
                .as_mut()
                .expect("dtls client present")
                .send_application_data(&bytes)
                .expect("session established"),
            _ => bytes,
        }
    }

    /// Unwrap incoming bytes (returns None when the record was
    /// dropped, e.g. replay).
    fn unwrap(&mut self, kind: TransportKind, now: u64, bytes: &[u8]) -> Option<Vec<u8>> {
        match kind {
            TransportKind::Coaps | TransportKind::Dtls => {
                let mut out = None;
                for ev in self
                    .dtls
                    .as_mut()
                    .expect("dtls client present")
                    .handle_datagram(now, bytes)
                {
                    if let doc_dtls::DtlsEvent::ApplicationData(d) = ev {
                        out = Some(d);
                    }
                }
                out
            }
            _ => Some(bytes.to_vec()),
        }
    }
}

const QUERY_TOKEN_BASE: u64 = 1_000_000;
const POLL_TOKEN: u64 = 1;

/// Run one experiment.
pub fn run(cfg: &ExperimentConfig) -> ExperimentResult {
    Driver::new(cfg).run()
}

struct Driver<'a> {
    cfg: &'a ExperimentConfig,
    sim: Sim,
    clients: Vec<ClientNode>,
    server: DocServer,
    server_ep: Endpoint<NodeId>,
    server_oscore: Vec<Option<OscoreEndpoint>>,
    server_dtls: Vec<Option<doc_dtls::DtlsServer>>,
    server_quic: Vec<Option<doc_quic::Connection>>,
    /// Per-(client, stream) request bytes accumulated until FIN.
    server_stream_rx: HashMap<(NodeId, u64), Vec<u8>>,
    /// Per-client pipelined DoT request splitters.
    server_dot_rx: Vec<doc_quic::doq::DotReassembler>,
    proxy: CoapProxy,
    proxy_ep: Endpoint<NodeId>,
    proxy_exchanges: HashMap<Vec<u8>, (u64, NodeId)>,
    /// (client, client-token) attribution snapshot for proxy events.
    proxy_attribution: HashMap<u64, (NodeId, Vec<u8>)>,
    names: Vec<doc_dns::Name>,
    queries: Vec<QueryRecord>,
    events: Vec<TxEvent>,
    n: usize,
    proxy_id: NodeId,
    br_id: NodeId,
    server_id: NodeId,
}

impl<'a> Driver<'a> {
    fn new(cfg: &'a ExperimentConfig) -> Self {
        assert!(
            cfg.transport.coap_based() || cfg.block_size.is_none(),
            "block-wise requires a CoAP transport"
        );
        assert!(
            cfg.transport == TransportKind::Coap
                || (!cfg.proxy_cache && !cfg.client_coap_cache && !cfg.client_dns_cache),
            "caching scenarios use unencrypted CoAP (paper §6.1)"
        );
        let n = cfg.num_clients;
        let proxy_id = n;
        let br_id = n + 1;
        let server_id = n + 2;

        let mut sim = Sim::new(cfg.seed);
        for c in 0..n {
            sim.add_link(
                c,
                proxy_id,
                LinkKind::Wireless {
                    channel: 0,
                    loss_permille: cfg.loss_permille,
                },
            );
        }
        sim.add_link(
            proxy_id,
            br_id,
            LinkKind::Wireless {
                channel: 0,
                loss_permille: cfg.loss_permille,
            },
        );
        sim.add_link(br_id, server_id, LinkKind::Wired { latency_us: 1000 });
        for c in 0..n {
            if cfg.proxy_cache {
                sim.add_route(&[c, proxy_id]);
            } else {
                sim.add_route(&[c, proxy_id, br_id, server_id]);
            }
        }
        sim.add_route(&[proxy_id, br_id, server_id]);

        let upstream = MockUpstream::new(cfg.seed ^ 0x5e4, cfg.ttl_range.0, cfg.ttl_range.1);
        let names: Vec<doc_dns::Name> = (0..cfg.num_names as u32).map(experiment_name).collect();
        for nm in &names {
            match cfg.record_type {
                RecordType::A => upstream.add_a(nm.clone(), cfg.answers_per_response as u8),
                _ => upstream.add_aaaa(nm.clone(), cfg.answers_per_response),
            }
        }
        let mut server = DocServer::new(cfg.policy, upstream);
        if let Some(bs) = cfg.block_size {
            server = server.with_block_size(bs);
        }

        let mut server_oscore = Vec::new();
        let mut server_dtls = Vec::new();
        let mut server_quic = Vec::new();
        let clients: Vec<ClientNode> = (0..n)
            .map(|c| {
                let mut doc = DocClient::new(cfg.method, cfg.policy);
                if cfg.client_dns_cache {
                    doc = doc.with_dns_cache();
                }
                if cfg.client_coap_cache {
                    doc = doc.with_coap_cache();
                }
                let (oscore, dtls, quic) = match cfg.transport {
                    TransportKind::Oscore => {
                        let secret = b"0123456789abcdef";
                        let salt = b"doc-salt";
                        let kid = [c as u8 + 1];
                        let cctx = SecurityContext::derive(secret, salt, &kid, &[0x00]);
                        let sctx = SecurityContext::derive(secret, salt, &[0x00], &kid);
                        server_oscore.push(Some(OscoreEndpoint::new(sctx, false)));
                        server_dtls.push(None);
                        server_quic.push(None);
                        (Some(OscoreEndpoint::new(cctx, false)), None, None)
                    }
                    TransportKind::Dtls | TransportKind::Coaps => {
                        // Pre-establish DTLS (paper §5.1: "we
                        // pre-initialize DTLS sessions … before starting
                        // experiments").
                        let (dc, ds) = establish_dtls(cfg.seed ^ ((c as u64 + 1) << 8));
                        server_oscore.push(None);
                        server_dtls.push(Some(ds));
                        server_quic.push(None);
                        (None, Some(dc), None)
                    }
                    TransportKind::Quic | TransportKind::DohLite | TransportKind::Dot => {
                        // Pre-establish the QUIC-lite session the same
                        // way (the 1-RTT handshake cost is measured
                        // separately by `session_setup` and the
                        // conformance test).
                        let (qc, qs) =
                            doc_quic::establish_pair(cfg.seed ^ ((c as u64 + 1) << 8), QUIC_PSK);
                        server_oscore.push(None);
                        server_dtls.push(None);
                        server_quic.push(Some(qs));
                        (None, None, Some(qc))
                    }
                    _ => {
                        server_oscore.push(None);
                        server_dtls.push(None);
                        server_quic.push(None);
                        (None, None, None)
                    }
                };
                ClientNode {
                    endpoint: Endpoint::new(cfg.seed ^ ((c as u64 + 1) << 32)),
                    doc,
                    token_query: HashMap::new(),
                    bindings: HashMap::new(),
                    blockwise: HashMap::new(),
                    oscore,
                    dtls,
                    quic,
                    stream_query: HashMap::new(),
                    stream_rx: HashMap::new(),
                    dot_rx: doc_quic::doq::DotReassembler::new(),
                    dns_id_query: HashMap::new(),
                    raw: RawRetrans::new(cfg.seed ^ 0xAB00 ^ c as u64),
                    scheduled_poll: None,
                }
            })
            .collect();

        let arrivals =
            doc_netsim::poisson_arrivals(cfg.seed ^ 0x90155, cfg.lambda, cfg.num_queries);
        let mut queries = Vec::with_capacity(cfg.num_queries);
        for (i, &t) in arrivals.iter().enumerate() {
            let client = i % n;
            queries.push(QueryRecord {
                client,
                issued_ms: t.as_millis(),
                resolved_ms: None,
            });
            sim.set_timer(client, t, QUERY_TOKEN_BASE + i as u64);
        }

        Driver {
            cfg,
            sim,
            clients,
            server,
            server_ep: Endpoint::new(cfg.seed ^ 0x1111),
            server_oscore,
            server_dtls,
            server_quic,
            server_stream_rx: HashMap::new(),
            server_dot_rx: (0..n)
                .map(|_| doc_quic::doq::DotReassembler::new())
                .collect(),
            proxy: CoapProxy::new(50),
            proxy_ep: Endpoint::new(cfg.seed ^ 0x2222),
            proxy_exchanges: HashMap::new(),
            proxy_attribution: HashMap::new(),
            names,
            queries,
            events: Vec::new(),
            n,
            proxy_id,
            br_id,
            server_id,
        }
    }

    fn client_dest(&self) -> NodeId {
        if self.cfg.proxy_cache {
            self.proxy_id
        } else {
            self.server_id
        }
    }

    fn record_event(&mut self, qidx: usize, now: u64, kind: EventKind) {
        let start = self.queries[qidx].issued_ms;
        self.events.push(TxEvent {
            query_start_ms: start,
            offset_ms: now.saturating_sub(start),
            kind,
        });
    }

    fn run(mut self) -> ExperimentResult {
        let deadline_ms = 600_000;
        while let Some((now, ev)) = self.sim.next_event() {
            // The protocol stack below keeps raw millisecond counts;
            // the typed boundary is the simulator/QUIC surface.
            let now = u64::from(now);
            if now > deadline_ms {
                break;
            }
            match ev {
                SimEvent::Timer { node, token } if token >= QUERY_TOKEN_BASE => {
                    self.issue_query(node, (token - QUERY_TOKEN_BASE) as usize, now);
                }
                SimEvent::Timer { node, .. } => {
                    self.handle_poll(node, now);
                }
                SimEvent::Datagram { from, to, bytes } => {
                    if to == self.server_id {
                        self.handle_server_datagram(from, bytes, now);
                    } else if to == self.proxy_id && self.cfg.proxy_cache {
                        self.handle_proxy_datagram(from, bytes, now);
                    } else if to < self.n {
                        self.handle_client_datagram(to, from, bytes, now);
                    }
                }
            }
            self.rearm_timers();
        }
        self.collect()
    }

    fn rearm_timers(&mut self) {
        for c in 0..self.n {
            let next = self.clients[c]
                .endpoint
                .next_timeout()
                .into_iter()
                .chain(self.clients[c].raw.next_timeout())
                .chain(
                    self.clients[c]
                        .quic
                        .as_ref()
                        .and_then(|q| q.next_timeout())
                        .map(u64::from),
                )
                .min();
            if let Some(t) = next {
                if self.clients[c].scheduled_poll.is_none_or(|s| t < s) {
                    self.clients[c].scheduled_poll = Some(t);
                    self.sim.set_timer(c, t.into(), POLL_TOKEN);
                }
            }
        }
        if let Some(t) = self.proxy_ep.next_timeout() {
            self.sim.set_timer(self.proxy_id, t.into(), POLL_TOKEN);
        }
        let server_next = self
            .server_ep
            .next_timeout()
            .into_iter()
            .chain(
                self.server_quic
                    .iter()
                    .flatten()
                    .filter_map(|q| q.next_timeout().map(u64::from)),
            )
            .min();
        if let Some(t) = server_next {
            self.sim.set_timer(self.server_id, t.into(), POLL_TOKEN);
        }
    }

    // -- query issue ---------------------------------------------------

    fn issue_query(&mut self, c: NodeId, qidx: usize, now: u64) {
        let name = self.names[qidx % self.names.len()].clone();
        let question = Question::new(name.clone(), self.cfg.record_type);
        match self.cfg.transport {
            TransportKind::Udp | TransportKind::Dtls => {
                let mut q = Message::query(qidx as u16 + 1, name, self.cfg.record_type);
                q.header.rd = true;
                let bytes = q.encode();
                self.clients[c]
                    .raw
                    .arm(qidx as u16 + 1, qidx, bytes.clone(), now);
                let wire = self.clients[c].wrap(self.cfg.transport, bytes);
                self.sim.send_datagram(c, self.server_id, wire, Tag::Query);
                self.record_event(qidx, now, EventKind::Transmission);
            }
            TransportKind::Quic | TransportKind::DohLite | TransportKind::Dot => {
                // Stream transports: the DNS ID doubles as the match
                // key (like the raw UDP path); loss recovery lives in
                // the QUIC-lite connection, not in an app-level
                // retransmitter.
                let mut q = Message::query(qidx as u16 + 1, name, self.cfg.record_type);
                q.header.rd = true;
                let dns = q.encode();
                let framed = frame_stream_query(self.cfg.transport, &dns);
                let node = &mut self.clients[c];
                let conn = node.quic.as_mut().expect("quic connection present");
                let datagrams = if self.cfg.transport == TransportKind::Dot {
                    // One pipelined stream for the whole session.
                    node.dns_id_query.insert(qidx as u16 + 1, qidx);
                    conn.send_stream(0, &framed, false, now.into())
                } else {
                    // RFC 9250: one query per stream, FIN after it.
                    let sid = conn.open_stream();
                    node.stream_query.insert(sid, qidx);
                    conn.send_stream(sid, &framed, true, now.into())
                }
                .expect("session pre-established");
                for d in datagrams {
                    self.sim.send_datagram(c, self.server_id, d, Tag::Query);
                }
                self.record_event(qidx, now, EventKind::Transmission);
            }
            _ => {
                let mid = self.clients[c].endpoint.alloc_mid();
                let tok = self.clients[c].endpoint.alloc_token();
                match self.clients[c]
                    .doc
                    .begin_query(question, mid, tok.clone(), now)
                {
                    Ok(QueryOutcome::Answered(_)) => {
                        self.queries[qidx].resolved_ms = Some(now);
                        self.record_event(qidx, now, EventKind::CacheHit);
                    }
                    Ok(QueryOutcome::SendRequest(req)) => {
                        self.clients[c].token_query.insert(tok.clone(), qidx);
                        let mut outgoing = *req;
                        if let Some(bs) = self.cfg.block_size {
                            if outgoing.payload.len() > bs && self.cfg.method.blockwise_query() {
                                let mut sender = Block1Sender::new(outgoing.payload.clone(), bs)
                                    .expect("valid block size");
                                let (slice, block) = sender.next_block().expect("non-empty body");
                                doc_coap::block::apply_block1(&mut outgoing, slice, block);
                                self.clients[c].blockwise.insert(
                                    tok.clone(),
                                    BlockwiseState {
                                        sender: Some(sender),
                                        assembler: BlockAssembler::new(),
                                        first_response: None,
                                        size: bs,
                                    },
                                );
                            } else {
                                self.clients[c].blockwise.insert(
                                    tok.clone(),
                                    BlockwiseState {
                                        sender: None,
                                        assembler: BlockAssembler::new(),
                                        first_response: None,
                                        size: bs,
                                    },
                                );
                            }
                        }
                        let final_msg = if self.clients[c].oscore.is_some() {
                            let osc = self.clients[c].oscore.as_mut().expect("checked");
                            let (outer, binding) =
                                osc.protect_request(&outgoing).expect("oscore protect");
                            self.clients[c].bindings.insert(tok.clone(), binding);
                            outer
                        } else {
                            outgoing
                        };
                        let dest = self.client_dest();
                        let evs = self.clients[c].endpoint.send_request(now, dest, &final_msg);
                        self.dispatch_client_events(c, evs, now);
                    }
                    Err(_) => {}
                }
            }
        }
    }

    // -- timers ----------------------------------------------------------

    fn handle_poll(&mut self, node: NodeId, now: u64) {
        if node < self.n {
            self.clients[node].scheduled_poll = None;
            let evs = self.clients[node].endpoint.poll(now);
            // Timeouts first (they clear state).
            for e in &evs {
                if let EpEvent::TimedOut { token, .. } = e {
                    self.clients[node].doc.fail_exchange(token);
                    self.clients[node].token_query.remove(token);
                    self.clients[node].blockwise.remove(token);
                    self.clients[node].bindings.remove(token);
                }
            }
            self.dispatch_client_events(node, evs, now);
            let (resend, _failed) = self.clients[node].raw.poll(now);
            for (bytes, qidx) in resend {
                let wire = self.clients[node].wrap(self.cfg.transport, bytes);
                self.sim
                    .send_datagram(node, self.server_id, wire, Tag::Query);
                self.record_event(qidx, now, EventKind::Retransmission);
            }
            if let Some(conn) = self.clients[node].quic.as_mut() {
                for d in conn.poll(now.into()).datagrams {
                    self.sim.send_datagram(node, self.server_id, d, Tag::Query);
                }
            }
        } else if node == self.proxy_id {
            let evs = self.proxy_ep.poll(now);
            for e in evs {
                if let EpEvent::Transmit { to, datagram, .. } = e {
                    let tag = if to == self.server_id {
                        Tag::Query
                    } else {
                        Tag::Response
                    };
                    self.sim.send_datagram(self.proxy_id, to, datagram, tag);
                }
            }
        } else if node == self.server_id {
            let evs = self.server_ep.poll(now);
            for e in evs {
                if let EpEvent::Transmit { to, datagram, .. } = e {
                    let wire = self.server_wrap(to, datagram);
                    self.sim
                        .send_datagram(self.server_id, to, wire, Tag::Response);
                }
            }
            for c in 0..self.server_quic.len() {
                let Some(conn) = self.server_quic[c].as_mut() else {
                    continue;
                };
                for d in conn.poll(now.into()).datagrams {
                    self.sim.send_datagram(self.server_id, c, d, Tag::Response);
                }
            }
        }
    }

    // -- client events ---------------------------------------------------

    fn dispatch_client_events(&mut self, c: usize, evs: Vec<EpEvent<NodeId>>, now: u64) {
        for e in evs {
            match e {
                EpEvent::Transmit {
                    to,
                    datagram,
                    retransmission,
                } => {
                    if let Ok(msg) = CoapMessage::decode(&datagram) {
                        if let Some(&qidx) = self.clients[c].token_query.get(&msg.token) {
                            self.record_event(
                                qidx,
                                now,
                                if retransmission {
                                    EventKind::Retransmission
                                } else {
                                    EventKind::Transmission
                                },
                            );
                        }
                    }
                    let wire = self.clients[c].wrap(self.cfg.transport, datagram);
                    self.sim.send_datagram(c, to, wire, Tag::Query);
                }
                EpEvent::Response { msg, .. } => {
                    self.complete_client_response(c, msg, now);
                }
                EpEvent::TimedOut { token, .. } => {
                    self.clients[c].doc.fail_exchange(&token);
                    self.clients[c].token_query.remove(&token);
                    self.clients[c].blockwise.remove(&token);
                    self.clients[c].bindings.remove(&token);
                }
                _ => {}
            }
        }
    }

    fn handle_client_datagram(&mut self, c: usize, from: NodeId, bytes: Vec<u8>, now: u64) {
        if self.cfg.transport.stream_based() {
            let evs = self.clients[c]
                .quic
                .as_mut()
                .expect("quic connection present")
                .handle_datagram(now.into(), &bytes);
            self.process_client_quic_events(c, evs, now);
            return;
        }
        match self.cfg.transport {
            TransportKind::Udp | TransportKind::Dtls => {
                let Some(dns_bytes) = self.clients[c].unwrap(self.cfg.transport, now, &bytes)
                else {
                    return;
                };
                let Ok(msg) = Message::decode(&dns_bytes) else {
                    return;
                };
                if let Some(qidx) = self.clients[c].raw.complete(msg.header.id) {
                    if self.queries[qidx].resolved_ms.is_none() {
                        self.queries[qidx].resolved_ms = Some(now);
                    }
                }
            }
            _ => {
                let Some(datagram) = self.clients[c].unwrap(self.cfg.transport, now, &bytes) else {
                    return;
                };
                let evs = self.clients[c]
                    .endpoint
                    .handle_datagram(now, from, &datagram);
                self.dispatch_client_events(c, evs, now);
            }
        }
    }

    fn process_client_quic_events(&mut self, c: usize, evs: Vec<doc_quic::QuicEvent>, now: u64) {
        for ev in evs {
            match ev {
                doc_quic::QuicEvent::Transmit(d) => {
                    // ACKs and other connection maintenance.
                    self.sim.send_datagram(c, self.server_id, d, Tag::Query);
                }
                doc_quic::QuicEvent::Stream { id, data, fin } => {
                    if self.cfg.transport == TransportKind::Dot {
                        // Pipelined responses: split on the 2-byte
                        // length prefix, match by DNS message ID.
                        for msg in self.clients[c].dot_rx.push(&data) {
                            let Ok(resp) = Message::decode(&msg) else {
                                continue;
                            };
                            let Some(qidx) = self.clients[c].dns_id_query.remove(&resp.header.id)
                            else {
                                continue;
                            };
                            if self.queries[qidx].resolved_ms.is_none() {
                                self.queries[qidx].resolved_ms = Some(now);
                            }
                        }
                    } else {
                        self.clients[c]
                            .stream_rx
                            .entry(id)
                            .or_default()
                            .extend_from_slice(&data);
                        if !fin {
                            continue;
                        }
                        let buf = self.clients[c].stream_rx.remove(&id).unwrap_or_default();
                        let Some(qidx) = self.clients[c].stream_query.remove(&id) else {
                            continue;
                        };
                        let dns = match self.cfg.transport {
                            TransportKind::Quic => doc_quic::doq::decode_doq(&buf),
                            _ => doc_quic::doq::decode_doh(&buf),
                        };
                        if dns.ok().and_then(|d| Message::decode(d).ok()).is_some()
                            && self.queries[qidx].resolved_ms.is_none()
                        {
                            self.queries[qidx].resolved_ms = Some(now);
                        }
                    }
                }
                doc_quic::QuicEvent::Established => {}
            }
        }
    }

    fn complete_client_response(&mut self, c: usize, outer: CoapMessage, now: u64) {
        let token = outer.token.clone();
        // OSCORE unprotect (responses bound to the stored binding).
        let msg = if let Some(binding) = self.clients[c].bindings.get(&token) {
            let osc = self.clients[c].oscore.as_ref().expect("binding ⇒ oscore");
            match osc.unprotect_response(&outer, binding) {
                Ok(inner) => inner,
                Err(_) => return,
            }
        } else {
            outer
        };
        let Some(&qidx) = self.clients[c].token_query.get(&token) else {
            return;
        };

        // Block-wise continuation.
        if self.clients[c].blockwise.contains_key(&token) {
            if msg.code == Code::CONTINUE {
                let next = self.clients[c]
                    .blockwise
                    .get_mut(&token)
                    .and_then(|bw| bw.sender.as_mut())
                    .and_then(|s| s.next_block());
                if let Some((slice, block)) = next {
                    let mid = self.clients[c].endpoint.alloc_mid();
                    let mut req = crate::method::build_request(
                        self.cfg.method,
                        &[],
                        MsgType::Con,
                        mid,
                        token.clone(),
                    )
                    .expect("request construction");
                    doc_coap::block::apply_block1(&mut req, slice, block);
                    let dest = self.client_dest();
                    let evs = self.clients[c].endpoint.send_request(now, dest, &req);
                    self.dispatch_client_events(c, evs, now);
                }
                return;
            }
            if let Some(Ok(block2)) = BlockOpt::from_message(&msg, OptionNumber::BLOCK2) {
                let (result, size) = {
                    let bw = self.clients[c].blockwise.get_mut(&token).expect("present");
                    if bw.first_response.is_none() {
                        bw.first_response = Some(msg.clone());
                    }
                    (bw.assembler.push(block2, &msg.payload), bw.size)
                };
                match result {
                    Ok(Some(full)) => {
                        let first = self.clients[c]
                            .blockwise
                            .remove(&token)
                            .and_then(|bw| bw.first_response)
                            .expect("first response recorded");
                        let mut synthesized = first;
                        synthesized.payload = full;
                        synthesized.remove_option(OptionNumber::BLOCK2);
                        self.finish_query(c, &token, &synthesized, now, qidx);
                    }
                    Ok(None) => {
                        let mid = self.clients[c].endpoint.alloc_mid();
                        let mut follow = CoapMessage::request(
                            self.cfg.method.code(),
                            MsgType::Con,
                            mid,
                            token.clone(),
                        );
                        follow.options.push(doc_coap::opt::CoapOption::new(
                            OptionNumber::URI_PATH,
                            crate::DEFAULT_RESOURCE.as_bytes().to_vec(),
                        ));
                        follow.set_option(
                            BlockOpt::new(block2.num + 1, false, size)
                                .expect("valid block")
                                .to_option(OptionNumber::BLOCK2),
                        );
                        let dest = self.client_dest();
                        let evs = self.clients[c].endpoint.send_request(now, dest, &follow);
                        self.dispatch_client_events(c, evs, now);
                    }
                    Err(_) => {
                        self.clients[c].blockwise.remove(&token);
                    }
                }
                return;
            }
            // Response without a Block2 option: the body fit one
            // exchange after all.
            self.clients[c].blockwise.remove(&token);
        }
        self.finish_query(c, &token, &msg, now, qidx);
    }

    fn finish_query(&mut self, c: usize, token: &[u8], msg: &CoapMessage, now: u64, qidx: usize) {
        let was_validation = msg.code == Code::VALID;
        if self.clients[c].doc.handle_response(token, msg, now).is_ok()
            && self.queries[qidx].resolved_ms.is_none()
        {
            self.queries[qidx].resolved_ms = Some(now);
            if was_validation {
                self.record_event(qidx, now, EventKind::CacheValidation);
            }
        }
        self.clients[c].token_query.remove(token);
        self.clients[c].bindings.remove(token);
    }

    // -- server ----------------------------------------------------------

    fn server_wrap(&mut self, to: NodeId, bytes: Vec<u8>) -> Vec<u8> {
        match self.cfg.transport {
            TransportKind::Coaps | TransportKind::Dtls => self.server_dtls[to]
                .as_mut()
                .expect("dtls server present")
                .send_application_data(&bytes)
                .expect("session established"),
            _ => bytes,
        }
    }

    fn handle_server_datagram(&mut self, from: NodeId, bytes: Vec<u8>, now: u64) {
        if self.cfg.transport.stream_based() {
            self.handle_server_stream_datagram(from, bytes, now);
            return;
        }
        match self.cfg.transport {
            TransportKind::Udp | TransportKind::Dtls => {
                let dns_bytes = match self.cfg.transport {
                    TransportKind::Dtls => {
                        let Some(ds) = self.server_dtls.get_mut(from).and_then(|d| d.as_mut())
                        else {
                            return;
                        };
                        let mut out = None;
                        for ev in ds.handle_datagram(now, &bytes) {
                            if let doc_dtls::DtlsEvent::ApplicationData(d) = ev {
                                out = Some(d);
                            }
                        }
                        match out {
                            Some(d) => d,
                            None => return,
                        }
                    }
                    _ => bytes,
                };
                let Ok(query) = Message::decode(&dns_bytes) else {
                    return;
                };
                let resp = self.server.upstream.resolve(&query, now);
                self.server.count_raw_dns_response();
                let wire = self.server_wrap(from, resp.encode());
                self.sim
                    .send_datagram(self.server_id, from, wire, Tag::Response);
            }
            _ => {
                let datagram = match self.cfg.transport {
                    TransportKind::Coaps => {
                        let Some(ds) = self.server_dtls.get_mut(from).and_then(|d| d.as_mut())
                        else {
                            return;
                        };
                        let mut out = None;
                        for ev in ds.handle_datagram(now, &bytes) {
                            if let doc_dtls::DtlsEvent::ApplicationData(d) = ev {
                                out = Some(d);
                            }
                        }
                        match out {
                            Some(d) => d,
                            None => return,
                        }
                    }
                    _ => bytes,
                };
                let evs = self.server_ep.handle_datagram(now, from, &datagram);
                for e in evs {
                    match e {
                        EpEvent::Transmit { to, datagram, .. } => {
                            let wire = self.server_wrap(to, datagram);
                            self.sim
                                .send_datagram(self.server_id, to, wire, Tag::Response);
                        }
                        EpEvent::Request { from, msg } => {
                            let (inner, binding) =
                                match self.server_oscore.get_mut(from).and_then(|o| o.as_mut()) {
                                    Some(osc) => match osc.unprotect_request(&msg) {
                                        Ok((inner, binding)) => (inner, Some(binding)),
                                        Err(_) => continue,
                                    },
                                    None => (msg.clone(), None),
                                };
                            let mut resp =
                                self.server.handle_request_from(from as u64, &inner, now);
                            if let Some(binding) = &binding {
                                let osc = self.server_oscore[from].as_ref().expect("present");
                                match osc.protect_response(&resp, binding, &msg) {
                                    Ok(outer) => resp = outer,
                                    Err(_) => continue,
                                }
                            }
                            let evs2 = self.server_ep.send_response(now, from, &resp);
                            for e2 in evs2 {
                                if let EpEvent::Transmit { to, datagram, .. } = e2 {
                                    let wire = self.server_wrap(to, datagram);
                                    self.sim
                                        .send_datagram(self.server_id, to, wire, Tag::Response);
                                }
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
    }

    /// Stream-transport server leg: pump the per-client QUIC-lite
    /// connection, reassemble request streams, resolve each DNS query
    /// against the upstream and write the framed response back on the
    /// same stream.
    fn handle_server_stream_datagram(&mut self, from: NodeId, bytes: Vec<u8>, now: u64) {
        let Some(conn) = self.server_quic.get_mut(from).and_then(|c| c.as_mut()) else {
            return;
        };
        let evs = conn.handle_datagram(now.into(), &bytes);
        for ev in evs {
            match ev {
                doc_quic::QuicEvent::Transmit(d) => {
                    self.sim
                        .send_datagram(self.server_id, from, d, Tag::Response);
                }
                doc_quic::QuicEvent::Stream { id, data, fin } => {
                    if self.cfg.transport == TransportKind::Dot {
                        let msgs = self.server_dot_rx[from].push(&data);
                        for dns in msgs {
                            self.answer_stream_query(from, 0, &dns, false, now);
                        }
                    } else {
                        self.server_stream_rx
                            .entry((from, id))
                            .or_default()
                            .extend_from_slice(&data);
                        if !fin {
                            continue;
                        }
                        let buf = self
                            .server_stream_rx
                            .remove(&(from, id))
                            .unwrap_or_default();
                        let dns = match self.cfg.transport {
                            TransportKind::Quic => doc_quic::doq::decode_doq(&buf),
                            _ => doc_quic::doq::decode_doh(&buf),
                        };
                        if let Ok(dns) = dns {
                            let dns = dns.to_vec();
                            self.answer_stream_query(from, id, &dns, true, now);
                        }
                    }
                }
                doc_quic::QuicEvent::Established => {}
            }
        }
    }

    fn answer_stream_query(&mut self, from: NodeId, sid: u64, dns: &[u8], fin: bool, now: u64) {
        let Ok(query) = Message::decode(dns) else {
            return;
        };
        let resp = self.server.upstream.resolve(&query, now);
        self.server.count_raw_dns_response();
        let framed = frame_stream_response(self.cfg.transport, &resp.encode());
        let conn = self.server_quic[from].as_mut().expect("stream transport");
        let datagrams = conn
            .send_stream(sid, &framed, fin, now.into())
            .expect("session pre-established");
        for d in datagrams {
            self.sim
                .send_datagram(self.server_id, from, d, Tag::Response);
        }
    }

    // -- proxy -----------------------------------------------------------

    fn handle_proxy_datagram(&mut self, from: NodeId, bytes: Vec<u8>, now: u64) {
        let evs = self.proxy_ep.handle_datagram(now, from, &bytes);
        for e in evs {
            match e {
                EpEvent::Transmit { to, datagram, .. } => {
                    let tag = if to == self.server_id {
                        Tag::Query
                    } else {
                        Tag::Response
                    };
                    self.sim.send_datagram(self.proxy_id, to, datagram, tag);
                }
                EpEvent::Request { from: client, msg } => {
                    match self.proxy.handle_client_request(&msg, now) {
                        ProxyAction::Respond(resp) => {
                            if let Some(&qidx) = self.clients[client].token_query.get(&msg.token) {
                                let kind = if resp.code == Code::VALID {
                                    EventKind::CacheValidation
                                } else {
                                    EventKind::CacheHit
                                };
                                self.record_event(qidx, now, kind);
                            }
                            let evs2 = self.proxy_ep.send_response(now, client, &resp);
                            for e2 in evs2 {
                                if let EpEvent::Transmit { to, datagram, .. } = e2 {
                                    self.sim.send_datagram(
                                        self.proxy_id,
                                        to,
                                        datagram,
                                        Tag::Response,
                                    );
                                }
                            }
                        }
                        ProxyAction::Forward {
                            mut request,
                            exchange_id,
                        } => {
                            let mid = self.proxy_ep.alloc_mid();
                            let tok = self.proxy_ep.alloc_token();
                            request.message_id = mid;
                            request.token = tok.clone();
                            self.proxy_exchanges.insert(tok, (exchange_id, client));
                            self.proxy_attribution
                                .insert(exchange_id, (client, msg.token.clone()));
                            let evs2 = self.proxy_ep.send_request(now, self.server_id, &request);
                            for e2 in evs2 {
                                if let EpEvent::Transmit { to, datagram, .. } = e2 {
                                    self.sim
                                        .send_datagram(self.proxy_id, to, datagram, Tag::Query);
                                }
                            }
                        }
                    }
                }
                EpEvent::Response { msg, .. } => {
                    let Some((exchange_id, client)) = self.proxy_exchanges.remove(&msg.token)
                    else {
                        continue;
                    };
                    self.proxy_attribution.remove(&exchange_id);
                    if let Some(resp) = self.proxy.handle_upstream_response(exchange_id, &msg, now)
                    {
                        let evs2 = self.proxy_ep.send_response(now, client, &resp);
                        for e2 in evs2 {
                            if let EpEvent::Transmit { to, datagram, .. } = e2 {
                                self.sim
                                    .send_datagram(self.proxy_id, to, datagram, Tag::Response);
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }

    // -- results ---------------------------------------------------------

    fn collect(self) -> ExperimentResult {
        let mut client_proxy = doc_netsim::LinkStats::default();
        for c in 0..self.n {
            let s = self.sim.link_stats_bidir(c, self.proxy_id);
            client_proxy.frames += s.frames;
            client_proxy.bytes += s.bytes;
            for k in 0..3 {
                client_proxy.frames_by_tag[k] += s.frames_by_tag[k];
                client_proxy.bytes_by_tag[k] += s.bytes_by_tag[k];
            }
            client_proxy.dropped_datagrams += s.dropped_datagrams;
        }
        let proxy_br = self.sim.link_stats_bidir(self.proxy_id, self.br_id);
        let mut client_stats = crate::client::ClientStats::default();
        for c in &self.clients {
            let s = c.doc.stats;
            client_stats.queries += s.queries;
            client_stats.dns_cache_hits += s.dns_cache_hits;
            client_stats.coap_cache_hits += s.coap_cache_hits;
            client_stats.revalidations_sent += s.revalidations_sent;
            client_stats.revalidated += s.revalidated;
            client_stats.full_responses += s.full_responses;
        }
        ExperimentResult {
            queries: self.queries,
            client_proxy,
            proxy_br,
            events: self.events,
            client_stats,
            proxy_stats: self.proxy.stats(),
            server_stats: self.server.stats(),
        }
    }
}

/// Establish one DTLS session out-of-band (paper-style
/// pre-initialization; the handshake cost is measured separately in
/// Fig. 6).
fn establish_dtls(seed: u64) -> (doc_dtls::DtlsClient, doc_dtls::DtlsServer) {
    let mut client = doc_dtls::DtlsClient::new(seed | 1, b"Client_ID", b"123456789");
    let mut server = doc_dtls::DtlsServer::new((seed ^ 0xF00D) | 1, b"123456789");
    let mut c2s: Vec<Vec<u8>> = Vec::new();
    for ev in client.start(0) {
        if let doc_dtls::DtlsEvent::Transmit { datagram, .. } = ev {
            c2s.push(datagram);
        }
    }
    for _ in 0..8 {
        let mut s2c = Vec::new();
        for d in c2s.drain(..) {
            for ev in server.handle_datagram(0, &d) {
                if let doc_dtls::DtlsEvent::Transmit { datagram, .. } = ev {
                    s2c.push(datagram);
                }
            }
        }
        for d in s2c {
            for ev in client.handle_datagram(0, &d) {
                if let doc_dtls::DtlsEvent::Transmit { datagram, .. } = ev {
                    c2s.push(datagram);
                }
            }
        }
        if client.is_connected() && server.is_connected() {
            break;
        }
    }
    assert!(client.is_connected() && server.is_connected());
    (client, server)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_cfg() -> ExperimentConfig {
        ExperimentConfig {
            num_queries: 20,
            num_names: 20,
            loss_permille: 50,
            ..Default::default()
        }
    }

    #[test]
    fn coap_fetch_resolves_queries() {
        let r = run(&base_cfg());
        assert!(r.success_rate() > 0.9, "success {}", r.success_rate());
        assert!(r.server_stats.requests >= 18);
        // Resolution times well below a second for unfragmented queries.
        let lat = r.sorted_latencies();
        assert!(lat[lat.len() / 2] < 1000, "median {:?}", lat);
    }

    #[test]
    fn udp_resolves_queries() {
        let mut cfg = base_cfg();
        cfg.transport = TransportKind::Udp;
        let r = run(&cfg);
        assert!(r.success_rate() > 0.9, "success {}", r.success_rate());
    }

    #[test]
    fn dtls_resolves_queries() {
        let mut cfg = base_cfg();
        cfg.transport = TransportKind::Dtls;
        let r = run(&cfg);
        assert!(r.success_rate() > 0.85, "success {}", r.success_rate());
    }

    #[test]
    fn coaps_resolves_queries() {
        let mut cfg = base_cfg();
        cfg.transport = TransportKind::Coaps;
        let r = run(&cfg);
        assert!(r.success_rate() > 0.85, "success {}", r.success_rate());
    }

    #[test]
    fn oscore_resolves_queries() {
        let mut cfg = base_cfg();
        cfg.transport = TransportKind::Oscore;
        let r = run(&cfg);
        assert!(r.success_rate() > 0.85, "success {}", r.success_rate());
    }

    #[test]
    fn quic_resolves_queries() {
        let mut cfg = base_cfg();
        cfg.transport = TransportKind::Quic;
        let r = run(&cfg);
        assert!(r.success_rate() > 0.85, "success {}", r.success_rate());
        assert!(r.server_stats.requests >= 18);
    }

    #[test]
    fn doh_resolves_queries() {
        let mut cfg = base_cfg();
        cfg.transport = TransportKind::DohLite;
        let r = run(&cfg);
        assert!(r.success_rate() > 0.85, "success {}", r.success_rate());
    }

    #[test]
    fn dot_resolves_queries() {
        let mut cfg = base_cfg();
        cfg.transport = TransportKind::Dot;
        let r = run(&cfg);
        assert!(r.success_rate() > 0.85, "success {}", r.success_rate());
    }

    /// QUIC loss recovery really runs over the event queue: with heavy
    /// loss, queries still resolve via stream retransmission (no
    /// app-level retransmitter exists for stream transports).
    #[test]
    fn quic_recovers_from_heavy_loss() {
        let mut cfg = base_cfg();
        cfg.transport = TransportKind::Quic;
        cfg.loss_permille = 200;
        let r = run(&cfg);
        assert!(r.success_rate() > 0.7, "success {}", r.success_rate());
    }

    #[test]
    fn stream_transports_deterministic() {
        for transport in [
            TransportKind::Quic,
            TransportKind::DohLite,
            TransportKind::Dot,
        ] {
            let mut cfg = base_cfg();
            cfg.transport = transport;
            let a = run(&cfg);
            let b = run(&cfg);
            assert_eq!(a.queries, b.queries, "{transport:?}");
            assert_eq!(a.client_proxy, b.client_proxy, "{transport:?}");
        }
    }

    /// Fig. 7 shape: UDP A-record resolution beats transports whose
    /// packets fragment.
    #[test]
    fn udp_a_faster_than_coaps() {
        let mut cfg = base_cfg();
        cfg.record_type = RecordType::A;
        cfg.loss_permille = 100;
        cfg.transport = TransportKind::Udp;
        let udp = run(&cfg);
        cfg.transport = TransportKind::Coaps;
        let coaps = run(&cfg);
        assert!(
            udp.fraction_within(250) > coaps.fraction_within(250),
            "udp {} vs coaps {}",
            udp.fraction_within(250),
            coaps.fraction_within(250)
        );
    }

    /// Fig. 10 effect: a caching proxy cuts proxy↔BR traffic roughly in
    /// half when 50 queries target only 8 names.
    #[test]
    fn proxy_cache_reduces_upstream_traffic() {
        let mut cfg = base_cfg();
        cfg.num_queries = 50;
        cfg.num_names = 8;
        cfg.answers_per_response = 4;
        cfg.ttl_range = (2, 8);
        cfg.loss_permille = 20;
        cfg.proxy_cache = false;
        let opaque = run(&cfg);
        cfg.proxy_cache = true;
        let proxied = run(&cfg);
        assert!(proxied.proxy_stats.cache_hits > 0, "proxy never hit");
        assert!(
            (proxied.proxy_br.bytes as f64) < 0.8 * opaque.proxy_br.bytes as f64,
            "proxied {} vs opaque {}",
            proxied.proxy_br.bytes,
            opaque.proxy_br.bytes
        );
        assert!(proxied.success_rate() > 0.9);
    }

    /// EOL TTLs revalidates where DoH-like must re-transfer: fewer
    /// upstream bytes.
    #[test]
    fn eol_beats_doh_like_with_proxy() {
        let mut cfg = base_cfg();
        cfg.num_queries = 50;
        cfg.num_names = 8;
        cfg.answers_per_response = 4;
        cfg.ttl_range = (2, 8);
        cfg.loss_permille = 20;
        cfg.proxy_cache = true;
        cfg.policy = CachePolicy::DohLike;
        let doh = run(&cfg);
        cfg.policy = CachePolicy::EolTtls;
        let eol = run(&cfg);
        assert!(
            eol.server_stats.validations > doh.server_stats.validations,
            "eol {} vs doh {}",
            eol.server_stats.validations,
            doh.server_stats.validations
        );
        assert!(
            eol.proxy_br.bytes < doh.proxy_br.bytes,
            "eol {} vs doh {} bytes upstream",
            eol.proxy_br.bytes,
            doh.proxy_br.bytes
        );
    }

    /// Fig. 15: smaller blocks mean more exchanges and slower
    /// resolution.
    #[test]
    fn blockwise_slows_resolution() {
        let mut cfg = base_cfg();
        cfg.loss_permille = 20;
        cfg.num_queries = 10;
        let plain = run(&cfg);
        cfg.block_size = Some(16);
        let b16 = run(&cfg);
        assert!(
            b16.success_rate() > 0.7,
            "b16 success {}",
            b16.success_rate()
        );
        let p50_plain = plain.sorted_latencies()[plain.sorted_latencies().len() / 2];
        let lat16 = b16.sorted_latencies();
        let p50_16 = lat16[lat16.len() / 2];
        assert!(
            p50_16 > p50_plain,
            "16-byte blocks {} ms vs plain {} ms",
            p50_16,
            p50_plain
        );
    }

    #[test]
    fn deterministic_runs() {
        let cfg = base_cfg();
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.client_proxy, b.client_proxy);
    }

    #[test]
    fn client_dns_cache_reduces_queries_to_server() {
        let mut cfg = base_cfg();
        cfg.num_queries = 40;
        cfg.num_names = 4;
        cfg.ttl_range = (30, 30); // long TTLs: cache always hits
        cfg.client_dns_cache = true;
        cfg.loss_permille = 0;
        let r = run(&cfg);
        assert!(r.client_stats.dns_cache_hits > 20);
        assert!(r.server_stats.requests < 20);
        assert!(r.success_rate() > 0.95);
    }
}

#[cfg(test)]
mod debug_tests {
    use super::*;

    #[test]
    fn blockwise_zero_loss_all_resolve() {
        let cfg = ExperimentConfig {
            num_queries: 10,
            num_names: 10,
            loss_permille: 0,
            block_size: Some(16),
            ..Default::default()
        };
        let r = run(&cfg);
        let unresolved: Vec<usize> = r
            .queries
            .iter()
            .enumerate()
            .filter(|(_, q)| q.resolved_ms.is_none())
            .map(|(i, _)| i)
            .collect();
        assert!(
            r.success_rate() > 0.99,
            "success {} with zero loss; unresolved {:?}; server {:?}; issued {:?}",
            r.success_rate(),
            unresolved,
            r.server_stats,
            r.queries.iter().map(|q| q.issued_ms).collect::<Vec<_>>()
        );
    }
}
