//! The DoC client (paper §4.1/§4.2, Fig. 2 nodes C1/C2).
//!
//! Responsibilities:
//!
//! * build canonical DNS queries (ID = 0) and map them onto
//!   FETCH/GET/POST requests,
//! * consult the optional **client DNS cache** (RIOT's
//!   `CONFIG_DNS_CACHE_SIZE = 8`, Table 6) before touching the network,
//! * consult the optional **client CoAP cache**: fresh entries answer
//!   locally, stale entries trigger ETag revalidation, `2.03 Valid`
//!   refreshes the entry without a payload transfer,
//! * restore DNS TTLs from the CoAP Max-Age per the active
//!   [`CachePolicy`].

use crate::method::{build_request, DocMethod};
use crate::policy::{restore_ttls, CachePolicy};
use crate::DocError;
use doc_coap::cache::{cache_key, CacheKey, Lookup, ResponseCache};
use doc_coap::msg::{CoapMessage, Code, MsgType};
use doc_coap::opt::{CoapOption, OptionNumber};
use doc_dns::{Message, Question};
use std::collections::HashMap;

/// A small client-side DNS cache (name/type → response until expiry).
pub struct DnsCache {
    entries: Vec<(Question, Message, u64)>,
    capacity: usize,
    /// Cache hits served.
    pub hits: u32,
}

impl DnsCache {
    /// Create a cache bounded to `capacity` entries (paper: 8).
    pub fn new(capacity: usize) -> Self {
        DnsCache {
            entries: Vec::new(),
            capacity: capacity.max(1),
            hits: 0,
        }
    }

    /// Look up an unexpired response; TTLs are decremented to the
    /// remaining lifetime.
    pub fn lookup(&mut self, q: &Question, now_ms: u64) -> Option<Message> {
        self.entries.retain(|(_, _, exp)| *exp > now_ms);
        let (_, msg, exp) = self.entries.iter().find(|(qq, _, _)| qq == q)?;
        let mut out = msg.clone();
        let remaining_s = ((exp - now_ms) / 1000) as u32;
        // Clamp TTLs to remaining lifetime.
        for r in out.records_mut() {
            r.ttl = r.ttl.min(remaining_s);
        }
        self.hits += 1;
        Some(out)
    }

    /// Insert a response; lifetime = minimum TTL.
    pub fn insert(&mut self, q: Question, msg: Message, now_ms: u64) {
        let ttl = msg.min_ttl().unwrap_or(0) as u64;
        if ttl == 0 {
            return; // nothing cacheable
        }
        self.entries.retain(|(qq, _, _)| qq != &q);
        if self.entries.len() >= self.capacity {
            self.entries.remove(0);
        }
        self.entries.push((q, msg, now_ms + ttl * 1000));
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Client statistics (feed Fig. 10/11's cache-event accounting).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Queries issued by the application.
    pub queries: u32,
    /// Served from the client DNS cache.
    pub dns_cache_hits: u32,
    /// Served fresh from the client CoAP cache.
    pub coap_cache_hits: u32,
    /// Revalidation requests sent (stale CoAP cache entry with ETag).
    pub revalidations_sent: u32,
    /// `2.03 Valid` responses that refreshed a cache entry.
    pub revalidated: u32,
    /// Full responses received.
    pub full_responses: u32,
}

/// What `begin_query` decided.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryOutcome {
    /// Answer served locally from a cache.
    Answered(Message),
    /// Transmit this CoAP request (token registered internally).
    SendRequest(Box<CoapMessage>),
}

struct PendingExchange {
    question: Question,
    key: CacheKey,
    revalidating: bool,
}

/// The DoC client.
pub struct DocClient {
    method: DocMethod,
    policy: CachePolicy,
    dns_cache: Option<DnsCache>,
    coap_cache: Option<ResponseCache>,
    pending: HashMap<Vec<u8>, PendingExchange>,
    /// Statistics.
    pub stats: ClientStats,
}

impl DocClient {
    /// Create a client using `method` under `policy`.
    pub fn new(method: DocMethod, policy: CachePolicy) -> Self {
        DocClient {
            method,
            policy,
            dns_cache: None,
            coap_cache: None,
            pending: HashMap::new(),
            stats: ClientStats::default(),
        }
    }

    /// Enable the client DNS cache (capacity 8 per Table 6).
    pub fn with_dns_cache(mut self) -> Self {
        self.dns_cache = Some(DnsCache::new(8));
        self
    }

    /// Enable the client CoAP response cache (capacity 8 per Table 6).
    pub fn with_coap_cache(mut self) -> Self {
        self.coap_cache = Some(ResponseCache::new(8));
        self
    }

    /// The configured method.
    pub fn method(&self) -> DocMethod {
        self.method
    }

    /// Outstanding exchange count.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Start resolving `question`. `mid`/`token` are allocated by the
    /// caller's CoAP endpoint.
    pub fn begin_query(
        &mut self,
        question: Question,
        mid: u16,
        token: Vec<u8>,
        now_ms: u64,
    ) -> Result<QueryOutcome, DocError> {
        self.stats.queries += 1;
        // 1. Client DNS cache.
        if let Some(cache) = &mut self.dns_cache {
            if let Some(answer) = cache.lookup(&question, now_ms) {
                self.stats.dns_cache_hits += 1;
                return Ok(QueryOutcome::Answered(answer));
            }
        }
        // 2. Build the canonical request.
        let mut dns_query = Message::query(0, question.qname.clone(), question.qtype);
        dns_query.canonicalize_id();
        let mut req = build_request(
            self.method,
            &dns_query.encode(),
            MsgType::Con,
            mid,
            token.clone(),
        )?;
        let key = cache_key(&req);
        // 3. Client CoAP cache (only for cacheable methods).
        let mut revalidating = false;
        if self.method.cacheable() {
            if let Some(cache) = &mut self.coap_cache {
                match cache.lookup(&key, now_ms) {
                    Lookup::Fresh(resp) => {
                        self.stats.coap_cache_hits += 1;
                        let answer = self.decode_response(&question, &resp)?;
                        if let Some(dc) = &mut self.dns_cache {
                            dc.insert(question.clone(), answer.clone(), now_ms);
                        }
                        return Ok(QueryOutcome::Answered(answer));
                    }
                    Lookup::Stale { etag, .. } => {
                        req.set_option(CoapOption::new(OptionNumber::ETAG, etag));
                        revalidating = true;
                        self.stats.revalidations_sent += 1;
                    }
                    Lookup::Miss | Lookup::StaleNoEtag => {}
                }
            }
        }
        self.pending.insert(
            token,
            PendingExchange {
                question,
                key,
                revalidating,
            },
        );
        Ok(QueryOutcome::SendRequest(Box::new(req)))
    }

    /// Process a DoC response for `token`; returns the resolved DNS
    /// message with restored TTLs.
    pub fn handle_response(
        &mut self,
        token: &[u8],
        resp: &CoapMessage,
        now_ms: u64,
    ) -> Result<Message, DocError> {
        let pending = self
            .pending
            .remove(token)
            .ok_or(DocError::UnknownExchange)?;
        let final_resp: CoapMessage = match resp.code {
            Code::CONTENT => {
                self.stats.full_responses += 1;
                if self.method.cacheable() {
                    if let Some(cache) = &mut self.coap_cache {
                        cache.insert(pending.key.clone(), resp.clone(), now_ms);
                    }
                }
                resp.clone()
            }
            Code::VALID => {
                // 2.03: refresh the stale entry and serve it.
                let refreshed = self
                    .coap_cache
                    .as_mut()
                    .and_then(|c| c.revalidate(&pending.key, resp, now_ms));
                match refreshed {
                    Some(r) => {
                        self.stats.revalidated += 1;
                        r
                    }
                    None => return Err(DocError::UnknownExchange),
                }
            }
            _ => return Err(DocError::BadDnsMessage),
        };
        let _ = pending.revalidating;
        let answer = self.decode_response(&pending.question, &final_resp)?;
        if let Some(dc) = &mut self.dns_cache {
            dc.insert(pending.question, answer.clone(), now_ms);
        }
        Ok(answer)
    }

    /// Whether a timed-out token was pending (removes it).
    pub fn fail_exchange(&mut self, token: &[u8]) -> bool {
        self.pending.remove(token).is_some()
    }

    fn decode_response(
        &self,
        _question: &Question,
        resp: &CoapMessage,
    ) -> Result<Message, DocError> {
        let mut msg = Message::decode(&resp.payload).map_err(|_| DocError::BadDnsMessage)?;
        restore_ttls(self.policy, &mut msg, resp.max_age());
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{DocServer, MockUpstream};
    use doc_dns::{Message, Name, RecordType};

    fn name() -> Name {
        Name::parse("name-01234.c.example.org").unwrap()
    }

    fn question() -> Question {
        Question::new(name(), RecordType::Aaaa)
    }

    fn server(policy: CachePolicy, ttl: u32) -> DocServer {
        let up = MockUpstream::new(1, ttl, ttl);
        up.add_aaaa(name(), 1);
        DocServer::new(policy, up)
    }

    /// Full client↔server exchange helper.
    fn resolve_once(client: &mut DocClient, server: &mut DocServer, mid: u16, now: u64) -> Message {
        match client
            .begin_query(question(), mid, vec![mid as u8, 1], now)
            .unwrap()
        {
            QueryOutcome::Answered(m) => m,
            QueryOutcome::SendRequest(req) => {
                let resp = server.handle_request(&req, now);
                client.handle_response(&req.token, &resp, now).unwrap()
            }
        }
    }

    #[test]
    fn basic_resolution_restores_ttls_eol() {
        let mut c = DocClient::new(DocMethod::Fetch, CachePolicy::EolTtls);
        let mut s = server(CachePolicy::EolTtls, 300);
        let answer = resolve_once(&mut c, &mut s, 1, 0);
        assert_eq!(answer.answers.len(), 1);
        // EOL zeroed the wire TTL; client restored it from Max-Age.
        assert_eq!(answer.answers[0].ttl, 300);
    }

    #[test]
    fn basic_resolution_doh_like() {
        let mut c = DocClient::new(DocMethod::Fetch, CachePolicy::DohLike);
        let mut s = server(CachePolicy::DohLike, 300);
        let answer = resolve_once(&mut c, &mut s, 1, 0);
        assert_eq!(answer.answers[0].ttl, 300);
    }

    #[test]
    fn dns_cache_hit_avoids_network() {
        let mut c = DocClient::new(DocMethod::Fetch, CachePolicy::EolTtls).with_dns_cache();
        let mut s = server(CachePolicy::EolTtls, 300);
        resolve_once(&mut c, &mut s, 1, 0);
        // Second query shortly after: served locally.
        match c.begin_query(question(), 2, vec![2, 1], 5_000).unwrap() {
            QueryOutcome::Answered(m) => {
                // TTL decremented by elapsed time.
                assert_eq!(m.answers[0].ttl, 295);
            }
            other => panic!("expected local answer, got {other:?}"),
        }
        assert_eq!(c.stats.dns_cache_hits, 1);
    }

    #[test]
    fn dns_cache_expires() {
        let mut c = DocClient::new(DocMethod::Fetch, CachePolicy::EolTtls).with_dns_cache();
        let mut s = server(CachePolicy::EolTtls, 2);
        resolve_once(&mut c, &mut s, 1, 0);
        // After 3 s the entry is gone: must go to the network.
        match c.begin_query(question(), 2, vec![2, 1], 3_000).unwrap() {
            QueryOutcome::SendRequest(_) => {}
            other => panic!("expected network query, got {other:?}"),
        }
    }

    #[test]
    fn coap_cache_hit_fresh() {
        let mut c = DocClient::new(DocMethod::Fetch, CachePolicy::EolTtls).with_coap_cache();
        let mut s = server(CachePolicy::EolTtls, 300);
        resolve_once(&mut c, &mut s, 1, 0);
        match c.begin_query(question(), 2, vec![2, 1], 10_000).unwrap() {
            QueryOutcome::Answered(m) => {
                // Max-Age 300 − 10 s elapsed = 290 restored as TTL.
                assert_eq!(m.answers[0].ttl, 290);
            }
            other => panic!("expected CoAP cache hit, got {other:?}"),
        }
        assert_eq!(c.stats.coap_cache_hits, 1);
    }

    #[test]
    fn coap_cache_revalidation_roundtrip() {
        let mut c = DocClient::new(DocMethod::Fetch, CachePolicy::EolTtls).with_coap_cache();
        let mut s = server(CachePolicy::EolTtls, 2);
        resolve_once(&mut c, &mut s, 1, 0);
        // 3 s later: entry stale; client must revalidate with ETag.
        let req = match c.begin_query(question(), 2, vec![2, 1], 3_000).unwrap() {
            QueryOutcome::SendRequest(r) => r,
            other => panic!("expected revalidation, got {other:?}"),
        };
        assert!(req.option(OptionNumber::ETAG).is_some());
        assert_eq!(c.stats.revalidations_sent, 1);
        let resp = s.handle_request(&req, 3_000);
        assert_eq!(resp.code, Code::VALID, "EOL TTLs revalidates");
        let answer = c.handle_response(&req.token, &resp, 3_000).unwrap();
        assert_eq!(answer.answers.len(), 1);
        assert_eq!(c.stats.revalidated, 1);
        // TTL restored from the fresh Max-Age (2 s).
        assert_eq!(answer.answers[0].ttl, 2);
    }

    #[test]
    fn doh_like_revalidation_fails_full_transfer() {
        // Timeline mirrors Fig. 3: our entry is cached at t=0 (TTL 5);
        // another client refreshes the upstream at t=7 s; when we
        // revalidate at t=9 s the upstream's remaining TTL (3 s) has
        // decayed, so the DoH-like payload — and its ETag — changed.
        let mut c = DocClient::new(DocMethod::Fetch, CachePolicy::DohLike).with_coap_cache();
        let mut s = server(CachePolicy::DohLike, 5);
        resolve_once(&mut c, &mut s, 1, 0);
        let other = crate::method::build_request(
            DocMethod::Fetch,
            &{
                let mut q = Message::query(0, name(), RecordType::Aaaa);
                q.canonicalize_id();
                q.encode()
            },
            doc_coap::msg::MsgType::Con,
            77,
            vec![77],
        )
        .unwrap();
        s.handle_request(&other, 7_000); // C2 refreshes the RRset
        let req = match c.begin_query(question(), 2, vec![2, 1], 9_000).unwrap() {
            QueryOutcome::SendRequest(r) => r,
            other => panic!("{other:?}"),
        };
        assert!(req.option(OptionNumber::ETAG).is_some());
        let resp = s.handle_request(&req, 9_000);
        assert_eq!(resp.code, Code::CONTENT, "DoH-like must resend in full");
        let answer = c.handle_response(&req.token, &resp, 9_000).unwrap();
        assert!(!answer.answers.is_empty());
        assert_eq!(c.stats.full_responses, 2);
    }

    #[test]
    fn post_never_caches() {
        let mut c = DocClient::new(DocMethod::Post, CachePolicy::EolTtls).with_coap_cache();
        let mut s = server(CachePolicy::EolTtls, 300);
        resolve_once(&mut c, &mut s, 1, 0);
        match c.begin_query(question(), 2, vec![2, 1], 1_000).unwrap() {
            QueryOutcome::SendRequest(req) => {
                assert!(req.option(OptionNumber::ETAG).is_none());
            }
            other => panic!("POST must always hit the network, got {other:?}"),
        }
        assert_eq!(c.stats.coap_cache_hits, 0);
    }

    #[test]
    fn get_caches_too() {
        let mut c = DocClient::new(DocMethod::Get, CachePolicy::EolTtls).with_coap_cache();
        let mut s = server(CachePolicy::EolTtls, 300);
        resolve_once(&mut c, &mut s, 1, 0);
        match c.begin_query(question(), 2, vec![2, 1], 1_000).unwrap() {
            QueryOutcome::Answered(_) => {}
            other => panic!("GET should cache, got {other:?}"),
        }
    }

    #[test]
    fn unknown_token_rejected() {
        let mut c = DocClient::new(DocMethod::Fetch, CachePolicy::EolTtls);
        let resp = CoapMessage::ack_response(
            &CoapMessage::request(Code::FETCH, MsgType::Con, 1, vec![9]),
            Code::CONTENT,
        );
        assert_eq!(
            c.handle_response(&[9], &resp, 0),
            Err(DocError::UnknownExchange)
        );
    }

    #[test]
    fn error_response_rejected() {
        let mut c = DocClient::new(DocMethod::Fetch, CachePolicy::EolTtls);
        let out = c.begin_query(question(), 1, vec![7], 0).unwrap();
        let req = match out {
            QueryOutcome::SendRequest(r) => r,
            other => panic!("{other:?}"),
        };
        let resp = CoapMessage::ack_response(&req, Code::NOT_FOUND);
        assert_eq!(
            c.handle_response(&req.token, &resp, 0),
            Err(DocError::BadDnsMessage)
        );
    }

    #[test]
    fn fail_exchange_clears_pending() {
        let mut c = DocClient::new(DocMethod::Fetch, CachePolicy::EolTtls);
        let out = c.begin_query(question(), 1, vec![7], 0).unwrap();
        assert!(matches!(out, QueryOutcome::SendRequest(_)));
        assert_eq!(c.pending_count(), 1);
        assert!(c.fail_exchange(&[7]));
        assert!(!c.fail_exchange(&[7]));
        assert_eq!(c.pending_count(), 0);
    }

    #[test]
    fn dns_cache_capacity_fifo() {
        let mut cache = DnsCache::new(2);
        for i in 0..3u16 {
            let n = Name::parse(&format!("n{i}.example.org")).unwrap();
            let q = Question::new(n.clone(), RecordType::Aaaa);
            let msg = Message::response(
                &Message::query(0, n.clone(), RecordType::Aaaa),
                doc_dns::Rcode::NoError,
                vec![doc_dns::Record::aaaa(n, 60, std::net::Ipv6Addr::LOCALHOST)],
            );
            cache.insert(q, msg, 0);
        }
        assert_eq!(cache.len(), 2);
        let q0 = Question::new(Name::parse("n0.example.org").unwrap(), RecordType::Aaaa);
        assert!(cache.lookup(&q0, 1).is_none(), "oldest evicted");
    }
}
