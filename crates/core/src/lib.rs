//! `doc-core` — DNS over CoAP (DoC), the primary contribution of
//! *Securing Name Resolution in the IoT: DNS over CoAP* (Lenders et
//! al., CoNEXT 2023).
//!
//! DoC maps each DNS query/response pair onto a CoAP message exchange
//! (paper §4), protected either by DTLS (CoAPS) or by OSCORE, and
//! aligns DNS TTLs with CoAP's caching model so that en-route CoAP
//! caches — on clients and on forward proxies — can serve and
//! revalidate DNS responses:
//!
//! * [`method`] — the three request mappings (Table 5): **FETCH**
//!   (cacheable + body + block-wise; the preferred method), **GET**
//!   (query in a base64url URI variable via a URI template) and
//!   **POST** (body, not cacheable).
//! * [`uri_template`] — the lightweight URI-template processor GET
//!   requires (RFC 6570 form-style query expansion, e.g. `/dns{?dns}`).
//! * [`policy`] — the two TTL↔Max-Age alignment schemes of §4.2:
//!   **DoH-like** (RFC 8484 semantics: Max-Age = min TTL, TTLs decay in
//!   the payload, ETags break on TTL change) and **EOL TTLs** (the
//!   paper's improvement: TTLs rewritten to 0, ETag stable, clients
//!   restore TTLs from Max-Age).
//! * [`client`] — the DoC client: canonical queries (DNS ID = 0),
//!   client-side DNS cache, client-side CoAP cache, ETag revalidation.
//! * [`server`] — the DoC server with a mock recursive resolver
//!   upstream (the paper's resolver is "mocked up to generate the
//!   desired responses").
//! * [`proxy`] — a DoC-agnostic caching CoAP forward proxy (the node
//!   `P` of Fig. 2/3).
//! * [`transport`] — datagram framings for all five evaluated
//!   transports (UDP, DTLSv1.2, CoAP, CoAPSv1.2, OSCORE) used by the
//!   packet-size analyses (Fig. 6/9/14).
//! * [`experiment`] — the testbed-in-a-crate: drives clients, proxy and
//!   server over `doc-netsim` to regenerate Fig. 7/10/11/15.

pub mod bottleneck;
pub mod client;
pub mod experiment;
pub mod io;
pub mod method;
pub mod policy;
pub mod pool;
pub mod proxy;
pub mod server;
pub mod transport;
pub mod ttl_integrity;
pub mod uri_template;

pub use client::DocClient;
pub use io::{IoProvider, RecvSlot, SimProvider, UdpProvider};
pub use method::DocMethod;
pub use policy::CachePolicy;
pub use pool::{BufferPool, Datagram, ProxyPool, Reply, SpmcRing, WorkerDeque};
pub use proxy::CoapProxy;
pub use server::{DocServer, MockUpstream};

/// CoAP Content-Format for `application/dns-message`
/// (draft-ietf-core-dns-over-coap: value 553).
pub const CONTENT_FORMAT_DNS_MESSAGE: u16 = 553;

/// The default DoC resource path (the paper: "the requested DNS
/// resource is /dns").
pub const DEFAULT_RESOURCE: &str = "dns";

/// Errors produced by the DoC layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DocError {
    /// The request/response did not carry a parseable DNS message.
    BadDnsMessage,
    /// The CoAP message was not a valid DoC request (wrong method,
    /// missing query variable, unsupported Content-Format …).
    BadRequest,
    /// A GET request's `dns` variable failed base64url decoding.
    BadEncoding,
    /// The URI template could not be processed.
    BadTemplate,
    /// A response arrived for an unknown token.
    UnknownExchange,
}

impl core::fmt::Display for DocError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DocError::BadDnsMessage => write!(f, "invalid DNS message"),
            DocError::BadRequest => write!(f, "invalid DoC request"),
            DocError::BadEncoding => write!(f, "invalid base64url encoding"),
            DocError::BadTemplate => write!(f, "invalid URI template"),
            DocError::UnknownExchange => write!(f, "unknown exchange"),
        }
    }
}

impl std::error::Error for DocError {}
