//! The DoC request-method mappings (paper §4.1, Table 5).
//!
//! | Feature                          | GET | POST | FETCH |
//! |----------------------------------|-----|------|-------|
//! | Cacheable                        |  ✓  |  ✘   |   ✓   |
//! | Application data carried in body |  ✘  |  ✓   |   ✓   |
//! | Block-wise transferable query    |  ✘  |  ✓   |   ✓   |

use crate::uri_template::UriTemplate;
use crate::{DocError, CONTENT_FORMAT_DNS_MESSAGE, DEFAULT_RESOURCE};
use doc_coap::msg::{CoapMessage, Code, MsgType};
use doc_coap::opt::{CoapOption, OptionNumber};
use doc_crypto::base64url;

/// The CoAP method a DoC client uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DocMethod {
    /// FETCH (RFC 8132) — cacheable, body-carrying, block-wise capable;
    /// "the preferred method for DoC".
    Fetch,
    /// GET — cacheable but base64url-inflates the query into the URI.
    Get,
    /// POST — body-carrying but responses are not cacheable.
    Post,
}

impl DocMethod {
    /// The CoAP request code.
    pub fn code(self) -> Code {
        match self {
            DocMethod::Fetch => Code::FETCH,
            DocMethod::Get => Code::GET,
            DocMethod::Post => Code::POST,
        }
    }

    /// Whether responses to this method can be cached (Table 5 row 1).
    pub fn cacheable(self) -> bool {
        doc_coap::cache::is_cacheable_method(self.code())
    }

    /// Whether the DNS query rides in the body (Table 5 row 2).
    pub fn body_carried(self) -> bool {
        matches!(self, DocMethod::Fetch | DocMethod::Post)
    }

    /// Whether the query can use Block1 transfer (Table 5 row 3).
    pub fn blockwise_query(self) -> bool {
        self.body_carried()
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            DocMethod::Fetch => "FETCH",
            DocMethod::Get => "GET",
            DocMethod::Post => "POST",
        }
    }
}

/// Build a DoC request carrying `dns_query` wire bytes for `method`.
///
/// * FETCH/POST: query in the payload, `Content-Format:
///   application/dns-message`.
/// * GET: query base64url-encoded into the `dns` variable of the URI
///   template (default `/dns{?dns}`), Content-Format elided (paper
///   §5.2: "the Content-Format option is elided" for GET).
pub fn build_request(
    method: DocMethod,
    dns_query: &[u8],
    mtype: MsgType,
    message_id: u16,
    token: Vec<u8>,
) -> Result<CoapMessage, DocError> {
    build_request_at(
        method,
        dns_query,
        mtype,
        message_id,
        token,
        DEFAULT_RESOURCE,
    )
}

/// [`build_request`] against a non-default resource path.
pub fn build_request_at(
    method: DocMethod,
    dns_query: &[u8],
    mtype: MsgType,
    message_id: u16,
    token: Vec<u8>,
    resource: &str,
) -> Result<CoapMessage, DocError> {
    let mut msg = CoapMessage::request(method.code(), mtype, message_id, token);
    match method {
        DocMethod::Fetch | DocMethod::Post => {
            msg.options.push(CoapOption::new(
                OptionNumber::URI_PATH,
                resource.as_bytes().to_vec(),
            ));
            msg.options.push(CoapOption::uint(
                OptionNumber::CONTENT_FORMAT,
                CONTENT_FORMAT_DNS_MESSAGE as u32,
            ));
            if method == DocMethod::Fetch {
                // FETCH also declares what it accepts back.
                msg.options.push(CoapOption::uint(
                    OptionNumber::ACCEPT,
                    CONTENT_FORMAT_DNS_MESSAGE as u32,
                ));
            }
            msg.payload = dns_query.to_vec();
        }
        DocMethod::Get => {
            let template = UriTemplate::parse(&format!("/{resource}{{?dns}}"))
                .expect("static template is valid");
            let encoded = base64url::encode(dns_query);
            let uri = template.expand("dns", &encoded)?;
            let (paths, queries) = UriTemplate::to_coap_options(&uri);
            for p in paths {
                msg.options
                    .push(CoapOption::new(OptionNumber::URI_PATH, p.into_bytes()));
            }
            for q in queries {
                msg.options
                    .push(CoapOption::new(OptionNumber::URI_QUERY, q.into_bytes()));
            }
        }
    }
    Ok(msg)
}

/// Extract the DNS query wire bytes from a DoC request (server side).
pub fn extract_query(req: &CoapMessage) -> Result<Vec<u8>, DocError> {
    match req.code {
        Code::FETCH | Code::POST => {
            if req.payload.is_empty() {
                return Err(DocError::BadRequest);
            }
            Ok(req.payload.clone())
        }
        Code::GET => {
            for q in req.options_of(OptionNumber::URI_QUERY) {
                let s = q.as_str();
                if let Some(encoded) = s.strip_prefix("dns=") {
                    return base64url::decode(encoded).map_err(|_| DocError::BadEncoding);
                }
            }
            Err(DocError::BadRequest)
        }
        _ => Err(DocError::BadRequest),
    }
}

/// [`extract_query`] over a borrowed request view. FETCH/POST queries
/// come back as a borrow of the datagram payload — no copy; only GET's
/// base64url variable forces an owned decode.
pub fn extract_query_view<'a>(
    req: &doc_coap::view::CoapView<'a>,
) -> Result<std::borrow::Cow<'a, [u8]>, DocError> {
    match req.code {
        Code::FETCH | Code::POST => {
            if req.payload().is_empty() {
                return Err(DocError::BadRequest);
            }
            Ok(std::borrow::Cow::Borrowed(req.payload()))
        }
        Code::GET => {
            for q in req.options_of(OptionNumber::URI_QUERY) {
                if let Some(encoded) = q.value.strip_prefix(b"dns=") {
                    // base64url is ASCII; invalid UTF-8 is just an
                    // invalid encoding.
                    let s = std::str::from_utf8(encoded).map_err(|_| DocError::BadEncoding)?;
                    return base64url::decode(s)
                        .map(std::borrow::Cow::Owned)
                        .map_err(|_| DocError::BadEncoding);
                }
            }
            Err(DocError::BadRequest)
        }
        _ => Err(DocError::BadRequest),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doc_dns::{Message, Name, RecordType};

    fn dns_query() -> Vec<u8> {
        let mut q = Message::query(
            0,
            Name::parse("name-01234.c.example.org").unwrap(),
            RecordType::Aaaa,
        );
        q.canonicalize_id();
        q.encode()
    }

    #[test]
    fn table5_feature_matrix() {
        assert!(DocMethod::Fetch.cacheable());
        assert!(DocMethod::Get.cacheable());
        assert!(!DocMethod::Post.cacheable());

        assert!(DocMethod::Fetch.body_carried());
        assert!(!DocMethod::Get.body_carried());
        assert!(DocMethod::Post.body_carried());

        assert!(DocMethod::Fetch.blockwise_query());
        assert!(!DocMethod::Get.blockwise_query());
        assert!(DocMethod::Post.blockwise_query());
    }

    #[test]
    fn fetch_roundtrip() {
        let q = dns_query();
        let req = build_request(DocMethod::Fetch, &q, MsgType::Con, 1, vec![1]).unwrap();
        assert_eq!(req.code, Code::FETCH);
        assert_eq!(req.uri_path(), "/dns");
        assert_eq!(
            req.option(OptionNumber::CONTENT_FORMAT).unwrap().as_uint(),
            553
        );
        assert_eq!(extract_query(&req).unwrap(), q);
    }

    #[test]
    fn post_roundtrip() {
        let q = dns_query();
        let req = build_request(DocMethod::Post, &q, MsgType::Con, 1, vec![1]).unwrap();
        assert_eq!(req.code, Code::POST);
        assert!(req.option(OptionNumber::ACCEPT).is_none());
        assert_eq!(extract_query(&req).unwrap(), q);
    }

    #[test]
    fn get_roundtrip_base64url() {
        let q = dns_query();
        let req = build_request(DocMethod::Get, &q, MsgType::Con, 1, vec![1]).unwrap();
        assert_eq!(req.code, Code::GET);
        assert!(req.payload.is_empty());
        // Content-Format is elided on GET.
        assert!(req.option(OptionNumber::CONTENT_FORMAT).is_none());
        let uq = req.option(OptionNumber::URI_QUERY).unwrap().as_str();
        assert!(uq.starts_with("dns="));
        assert_eq!(extract_query(&req).unwrap(), q);
    }

    /// §5.3: GET inflates requests ≈1.5× over binary FETCH/POST.
    #[test]
    fn get_is_roughly_1_5x_larger() {
        let q = dns_query();
        let fetch = build_request(DocMethod::Fetch, &q, MsgType::Con, 1, vec![1, 2])
            .unwrap()
            .encoded_len();
        let get = build_request(DocMethod::Get, &q, MsgType::Con, 1, vec![1, 2])
            .unwrap()
            .encoded_len();
        let ratio = get as f64 / fetch as f64;
        assert!(
            (1.2..1.6).contains(&ratio),
            "GET/FETCH size ratio {ratio:.2}"
        );
    }

    #[test]
    fn custom_resource_path() {
        let q = dns_query();
        let req =
            build_request_at(DocMethod::Fetch, &q, MsgType::Con, 1, vec![], "resolve").unwrap();
        assert_eq!(req.uri_path(), "/resolve");
    }

    #[test]
    fn extract_rejects_bad_requests() {
        let empty_fetch = CoapMessage::request(Code::FETCH, MsgType::Con, 1, vec![]);
        assert_eq!(extract_query(&empty_fetch), Err(DocError::BadRequest));

        let get_no_var = CoapMessage::request(Code::GET, MsgType::Con, 1, vec![])
            .with_option(CoapOption::new(OptionNumber::URI_PATH, b"dns".to_vec()));
        assert_eq!(extract_query(&get_no_var), Err(DocError::BadRequest));

        let get_bad_b64 = get_no_var.with_option(CoapOption::new(
            OptionNumber::URI_QUERY,
            b"dns=!!!".to_vec(),
        ));
        assert_eq!(extract_query(&get_bad_b64), Err(DocError::BadEncoding));

        let put = CoapMessage::request(Code::PUT, MsgType::Con, 1, vec![]);
        assert_eq!(extract_query(&put), Err(DocError::BadRequest));
    }

    /// §4.2: identical queries yield byte-identical FETCH requests —
    /// the deterministic cache key.
    #[test]
    fn deterministic_requests_for_cache_key() {
        let q = dns_query();
        let r1 = build_request(DocMethod::Fetch, &q, MsgType::Con, 7, vec![9]).unwrap();
        let r2 = build_request(DocMethod::Fetch, &q, MsgType::Con, 8, vec![3]).unwrap();
        use doc_coap::cache::cache_key;
        assert_eq!(cache_key(&r1), cache_key(&r2));
    }
}
