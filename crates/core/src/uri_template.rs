//! A lightweight URI-template processor (RFC 6570 subset).
//!
//! DoC GET requests need the query encoded "within the request URI. As
//! such, a DoC resource needs to be configured as a URI template,
//! describing the position of the DNS query in the URI as a variable"
//! (paper §4.1). DoH uses the same convention
//! (`https://example/dns-query{?dns}`).
//!
//! This processor supports the two expansion forms DoC/DoH templates
//! use in practice: simple string expansion `{var}` inside a path
//! segment and form-style query expansion `{?var}` — matching the
//! "lightweight URI template processor" the paper added to RIOT
//! (≈1 kByte of ROM in Fig. 5's "DNS (GET overhead)" slice).

use crate::DocError;

/// A parsed URI template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UriTemplate {
    parts: Vec<Part>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Part {
    Literal(String),
    /// `{var}` — simple expansion.
    Simple(String),
    /// `{?var}` — form-style query expansion.
    FormQuery(String),
}

impl UriTemplate {
    /// Parse a template like `/dns{?dns}` or `/resolve/{dns}`.
    pub fn parse(template: &str) -> Result<Self, DocError> {
        let mut parts = Vec::new();
        let mut rest = template;
        while let Some(open) = rest.find('{') {
            if !rest[..open].is_empty() {
                parts.push(Part::Literal(rest[..open].to_string()));
            }
            let close = rest[open..].find('}').ok_or(DocError::BadTemplate)? + open;
            let expr = &rest[open + 1..close];
            if expr.is_empty() {
                return Err(DocError::BadTemplate);
            }
            if let Some(var) = expr.strip_prefix('?') {
                if var.is_empty() || !is_varname(var) {
                    return Err(DocError::BadTemplate);
                }
                parts.push(Part::FormQuery(var.to_string()));
            } else {
                if !is_varname(expr) {
                    return Err(DocError::BadTemplate);
                }
                parts.push(Part::Simple(expr.to_string()));
            }
            rest = &rest[close + 1..];
        }
        if !rest.is_empty() {
            if rest.contains('}') {
                return Err(DocError::BadTemplate);
            }
            parts.push(Part::Literal(rest.to_string()));
        }
        Ok(UriTemplate { parts })
    }

    /// Expand the template with a single variable binding.
    pub fn expand(&self, var: &str, value: &str) -> Result<String, DocError> {
        let mut out = String::new();
        for part in &self.parts {
            match part {
                Part::Literal(l) => out.push_str(l),
                Part::Simple(v) => {
                    if v != var {
                        return Err(DocError::BadTemplate);
                    }
                    out.push_str(value);
                }
                Part::FormQuery(v) => {
                    if v != var {
                        return Err(DocError::BadTemplate);
                    }
                    out.push('?');
                    out.push_str(v);
                    out.push('=');
                    out.push_str(value);
                }
            }
        }
        Ok(out)
    }

    /// The variable names this template expects, in order.
    pub fn variables(&self) -> Vec<&str> {
        self.parts
            .iter()
            .filter_map(|p| match p {
                Part::Simple(v) | Part::FormQuery(v) => Some(v.as_str()),
                Part::Literal(_) => None,
            })
            .collect()
    }

    /// Split an expanded URI into CoAP Uri-Path segments and Uri-Query
    /// strings (the forms a CoAP GET carries as options).
    pub fn to_coap_options(uri: &str) -> (Vec<String>, Vec<String>) {
        let (path, query) = match uri.split_once('?') {
            Some((p, q)) => (p, Some(q)),
            None => (uri, None),
        };
        let segments: Vec<String> = path
            .split('/')
            .filter(|s| !s.is_empty())
            .map(|s| s.to_string())
            .collect();
        let queries: Vec<String> = query
            .map(|q| q.split('&').map(|s| s.to_string()).collect())
            .unwrap_or_default();
        (segments, queries)
    }
}

fn is_varname(s: &str) -> bool {
    s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doh_style_template() {
        let t = UriTemplate::parse("/dns{?dns}").unwrap();
        assert_eq!(t.variables(), vec!["dns"]);
        let uri = t.expand("dns", "AAABBB").unwrap();
        assert_eq!(uri, "/dns?dns=AAABBB");
    }

    #[test]
    fn path_variable_template() {
        let t = UriTemplate::parse("/resolve/{dns}/answer").unwrap();
        assert_eq!(t.expand("dns", "XYZ").unwrap(), "/resolve/XYZ/answer");
    }

    #[test]
    fn literal_only() {
        let t = UriTemplate::parse("/plain/path").unwrap();
        assert!(t.variables().is_empty());
        assert_eq!(t.expand("dns", "x").unwrap(), "/plain/path");
    }

    #[test]
    fn reject_malformed() {
        assert!(UriTemplate::parse("/dns{?dns").is_err()); // unclosed
        assert!(UriTemplate::parse("/dns{}").is_err()); // empty expr
        assert!(UriTemplate::parse("/dns{?}").is_err()); // empty var
        assert!(UriTemplate::parse("/dns}x").is_err()); // stray close
        assert!(UriTemplate::parse("/dns{a b}").is_err()); // bad name
    }

    #[test]
    fn wrong_variable_rejected() {
        let t = UriTemplate::parse("/dns{?dns}").unwrap();
        assert_eq!(t.expand("query", "x"), Err(DocError::BadTemplate));
    }

    #[test]
    fn coap_option_split() {
        let (path, query) = UriTemplate::to_coap_options("/dns?dns=AAAA");
        assert_eq!(path, vec!["dns"]);
        assert_eq!(query, vec!["dns=AAAA"]);
        let (path, query) = UriTemplate::to_coap_options("/a/b/c");
        assert_eq!(path, vec!["a", "b", "c"]);
        assert!(query.is_empty());
        let (path, query) = UriTemplate::to_coap_options("/r?x=1&y=2");
        assert_eq!(path, vec!["r"]);
        assert_eq!(query, vec!["x=1", "y=2"]);
    }
}
