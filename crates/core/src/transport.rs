//! Datagram framings for the five evaluated DNS transports and the
//! byte-exact packet dissection behind the paper's Fig. 6/9/14.
//!
//! Every size in this module is produced by *really constructing* the
//! packet: a real DNS message for a 24-character name, wrapped by the
//! real CoAP codec, protected by the real DTLS record layer or the real
//! OSCORE implementation, then laid onto 802.15.4 frames by the real
//! 6LoWPAN fragmentation planner. Nothing is hard-coded.

use crate::method::{build_request, DocMethod};
use crate::policy::{prepare_response, CachePolicy};
use doc_coap::msg::{CoapMessage, Code, MsgType};
use doc_coap::opt::{CoapOption, OptionNumber};
use doc_dns::{Message, Name, Rcode, Record, RecordType};
use doc_dtls::record::CipherState;
use doc_oscore::context::SecurityContext;
use doc_oscore::protect::OscoreEndpoint;
use doc_sixlowpan::{bytes_on_air, fragment_count};
use std::net::{Ipv4Addr, Ipv6Addr};

/// The DNS transports compared in §5 (short names as in the paper),
/// plus the three stream transports the paper discusses analytically
/// (§5.5) and this reproduction simulates over the QUIC-lite layer
/// (`doc-quic`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransportKind {
    /// Plain DNS over UDP.
    Udp,
    /// DNS over DTLS 1.2 (DoDTLS).
    Dtls,
    /// DNS over unencrypted CoAP (DoC).
    Coap,
    /// DNS over CoAP over DTLS (CoAPSv1.2).
    Coaps,
    /// DNS over OSCORE.
    Oscore,
    /// DNS over QUIC (RFC 9250): one query per QUIC-lite stream,
    /// 2-byte length-prefixed.
    Quic,
    /// DNS over HTTPS, HTTP/3-flavoured: HEADERS+DATA frames on a
    /// QUIC-lite stream.
    DohLite,
    /// DNS over TLS (RFC 7858 framing): pipelined length-prefixed
    /// messages on one long-lived QUIC-lite stream.
    Dot,
}

impl TransportKind {
    /// Paper label.
    pub fn name(self) -> &'static str {
        match self {
            TransportKind::Udp => "UDP",
            TransportKind::Dtls => "DTLSv1.2",
            TransportKind::Coap => "CoAP",
            TransportKind::Coaps => "CoAPSv1.2",
            TransportKind::Oscore => "OSCORE",
            TransportKind::Quic => "DoQ",
            TransportKind::DohLite => "DoH",
            TransportKind::Dot => "DoT",
        }
    }

    /// Whether the transport encrypts DNS messages (Table 1 row
    /// "Message Encryption").
    pub fn encrypted(self) -> bool {
        !matches!(self, TransportKind::Udp | TransportKind::Coap)
    }

    /// Whether the transport is CoAP-based (method choice applies).
    pub fn coap_based(self) -> bool {
        matches!(
            self,
            TransportKind::Coap | TransportKind::Coaps | TransportKind::Oscore
        )
    }

    /// Whether the transport runs over QUIC-lite streams (DoQ, DoH,
    /// DoT): per-query or pipelined reliable streams with their own
    /// loss recovery instead of CoAP/raw-datagram retransmission.
    pub fn stream_based(self) -> bool {
        matches!(
            self,
            TransportKind::Quic | TransportKind::DohLite | TransportKind::Dot
        )
    }
}

/// The canonical transport × method evaluation matrix: every
/// combination the end-to-end suite, the throughput bench and the
/// Fig. 7-style sweeps must cover. Non-CoAP transports carry `Fetch`
/// as a placeholder (the method only applies to CoAP-based rows).
///
/// This is the *single* source of truth — the end-to-end test and the
/// bench derive their row sets from it, so a new transport cannot be
/// silently omitted from either.
pub const TRANSPORT_MATRIX: [(TransportKind, DocMethod); 12] = [
    (TransportKind::Udp, DocMethod::Fetch),
    (TransportKind::Dtls, DocMethod::Fetch),
    (TransportKind::Coap, DocMethod::Fetch),
    (TransportKind::Coap, DocMethod::Get),
    (TransportKind::Coap, DocMethod::Post),
    (TransportKind::Coaps, DocMethod::Fetch),
    (TransportKind::Coaps, DocMethod::Get),
    (TransportKind::Coaps, DocMethod::Post),
    (TransportKind::Oscore, DocMethod::Fetch),
    (TransportKind::Quic, DocMethod::Fetch),
    (TransportKind::DohLite, DocMethod::Fetch),
    (TransportKind::Dot, DocMethod::Fetch),
];

/// The PSK the simulated QUIC-lite transports are provisioned with
/// (mirrors the paper's 9-byte DTLS PSK setup; the value is arbitrary).
pub const QUIC_PSK: &[u8] = b"123456789";

/// The packet of interest in Fig. 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketItem {
    /// The DNS query.
    Query,
    /// The response carrying one A record.
    ResponseA,
    /// The response carrying one AAAA record.
    ResponseAaaa,
}

impl PacketItem {
    /// Paper label.
    pub fn name(self) -> &'static str {
        match self {
            PacketItem::Query => "Query",
            PacketItem::ResponseA => "Response (A)",
            PacketItem::ResponseAaaa => "Response (AAAA)",
        }
    }
}

/// Per-layer byte breakdown of one transport PDU (a Fig. 6 bar).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dissection {
    /// What this packet is.
    pub label: String,
    /// 802.15.4 MAC + 6LoWPAN bytes summed over all fragments.
    pub l2_sixlo: usize,
    /// DTLS record-layer bytes (header + nonce + tag).
    pub dtls: usize,
    /// CoAP header/option bytes.
    pub coap: usize,
    /// OSCORE bytes (option + COSE overhead).
    pub oscore: usize,
    /// DNS message bytes.
    pub dns: usize,
    /// Number of 802.15.4 frames (>1 ⇒ 6LoWPAN fragmentation).
    pub frames: usize,
    /// Total bytes on air.
    pub total: usize,
}

impl Dissection {
    /// UDP payload size (everything above the compressed IP/UDP
    /// headers).
    pub fn udp_payload(&self) -> usize {
        self.dtls + self.coap + self.oscore + self.dns
    }
}

/// The canonical 24-character experiment name (median of the empirical
/// IoT name-length distribution, Table 3).
pub fn experiment_name(id: u32) -> Name {
    // "name-XXXXX.c.example.org" = 24 chars with a 5-digit id.
    let name = format!("name-{id:05}.c.example.org");
    debug_assert_eq!(name.len(), 24);
    Name::parse(&name).expect("static name shape is valid")
}

/// Canonical DNS query bytes (ID = 0) for the experiment name.
pub fn dns_query_bytes(name: &Name, rtype: RecordType) -> Vec<u8> {
    let mut q = Message::query(0, name.clone(), rtype);
    q.canonicalize_id();
    q.encode()
}

/// Canonical single-record DNS response bytes for the experiment name.
pub fn dns_response_bytes(name: &Name, rtype: RecordType, ttl: u32) -> Vec<u8> {
    let q = Message::query(0, name.clone(), rtype);
    let rec = match rtype {
        RecordType::A => Record::a(name.clone(), ttl, Ipv4Addr::new(192, 0, 2, 1)),
        _ => Record::aaaa(
            name.clone(),
            ttl,
            Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 1),
        ),
    };
    let mut resp = Message::response(&q, Rcode::NoError, vec![rec]);
    resp.canonicalize_id();
    resp.encode()
}

/// Build the CoAP response message a DoC server would send for
/// `dns_payload` (ETag + Max-Age + Content-Format), matching
/// [`crate::server::DocServer`]'s output shape.
pub fn coap_response_for(req: &CoapMessage, dns_payload: &[u8]) -> CoapMessage {
    let msg = Message::decode(dns_payload).expect("valid dns payload");
    let prepared = prepare_response(CachePolicy::EolTtls, &msg);
    let mut resp = CoapMessage::ack_response(req, Code::CONTENT);
    resp.set_option(CoapOption::new(OptionNumber::ETAG, prepared.etag));
    resp.set_option(CoapOption::uint(OptionNumber::MAX_AGE, prepared.max_age));
    resp.set_option(CoapOption::uint(
        OptionNumber::CONTENT_FORMAT,
        crate::CONTENT_FORMAT_DNS_MESSAGE as u32,
    ));
    resp.payload = prepared.payload;
    resp
}

/// DTLS record-layer overhead for one application-data record:
/// header(13) + explicit nonce(8) + tag(8).
pub const DTLS_RECORD_OVERHEAD: usize = doc_dtls::record::RECORD_HEADER_LEN + CipherState::OVERHEAD;

/// Dissect the `item` packet of `kind`/`method` (Fig. 6 bars; Fig. 14
/// uses [`dissect_blockwise`]).
pub fn dissect(kind: TransportKind, method: DocMethod, item: PacketItem) -> Dissection {
    let name = experiment_name(0);
    let rtype = match item {
        PacketItem::ResponseA => RecordType::A,
        _ => RecordType::Aaaa,
    };
    // For the query the record type does not change the size; Fig. 6
    // shows identical query bars for A and AAAA.
    let dns = match item {
        PacketItem::Query => dns_query_bytes(&name, rtype),
        _ => dns_response_bytes(&name, rtype, 3600),
    };
    let label = format!("{} {}", kind.name(), item.name());
    match kind {
        TransportKind::Udp => finish(label, 0, 0, 0, dns.len(), dns.len()),
        TransportKind::Dtls => {
            let payload = dns.len() + DTLS_RECORD_OVERHEAD;
            finish(label, DTLS_RECORD_OVERHEAD, 0, 0, dns.len(), payload)
        }
        TransportKind::Coap => {
            let msg = coap_message(method, item, &dns);
            let total = msg.encoded_len();
            finish(
                label,
                0,
                total - dns_in_coap(&msg, &dns),
                0,
                dns_in_coap(&msg, &dns),
                total,
            )
        }
        TransportKind::Coaps => {
            let msg = coap_message(method, item, &dns);
            let coap_total = msg.encoded_len();
            let dns_len = dns_in_coap(&msg, &dns);
            let total = coap_total + DTLS_RECORD_OVERHEAD;
            finish(
                label,
                DTLS_RECORD_OVERHEAD,
                coap_total - dns_len,
                0,
                dns_len,
                total,
            )
        }
        TransportKind::Quic | TransportKind::DohLite | TransportKind::Dot => {
            // Really construct the packet: an established QUIC-lite
            // pair frames, protects and (for responses) acks exactly
            // like the simulated transport does. Everything that is
            // not DNS payload — short header, AEAD tag, STREAM frame,
            // DoQ/DoH/DoT framing, piggybacked ACK — is attributed to
            // the transport-security layer (the `dtls` column of the
            // Fig. 6 bars).
            let (mut client, mut server) = doc_quic::establish_pair(0xD0C, QUIC_PSK);
            let framed_query = frame_stream_query(kind, &dns_query_bytes(&name, rtype));
            let sid = if kind == TransportKind::Dot {
                0
            } else {
                client.open_stream()
            };
            let fin = kind != TransportKind::Dot;
            let query_pkts = client
                .send_stream(sid, &framed_query, fin, doc_time::Instant::EPOCH)
                .expect("established");
            let datagram = match item {
                PacketItem::Query => query_pkts.into_iter().next().expect("one packet"),
                _ => {
                    for d in &query_pkts {
                        server.handle_datagram(doc_time::Instant::EPOCH, d);
                    }
                    let framed_resp = frame_stream_response(kind, &dns);
                    server
                        .send_stream(sid, &framed_resp, fin, doc_time::Instant::EPOCH)
                        .expect("established")
                        .into_iter()
                        .next()
                        .expect("one packet")
                }
            };
            let total = datagram.len();
            finish(label, total - dns.len(), 0, 0, dns.len(), total)
        }
        TransportKind::Oscore => {
            // Protect a real message pair and measure the outer bytes.
            let (mut client, mut server) = oscore_pair();
            let inner_req = coap_message(
                DocMethod::Fetch,
                PacketItem::Query,
                &dns_query_bytes(&name, rtype),
            );
            let (outer_req, binding) = client
                .protect_request(&inner_req)
                .expect("protect succeeds");
            let outer = match item {
                PacketItem::Query => outer_req,
                _ => {
                    let (inner_at_server, s_binding) = server
                        .unprotect_request(&outer_req)
                        .expect("unprotect succeeds");
                    let _ = binding;
                    let resp = coap_response_for(&inner_at_server, &dns);
                    server
                        .protect_response(&resp, &s_binding, &outer_req)
                        .expect("protect succeeds")
                }
            };
            let total = outer.encoded_len();
            // Layer attribution: outer CoAP framing vs OSCORE overhead.
            let coap_bytes = 4 + outer.token.len();
            let oscore_bytes = total - coap_bytes - dns.len();
            finish(label, 0, coap_bytes, oscore_bytes, dns.len(), total)
        }
    }
}

fn coap_message(method: DocMethod, item: PacketItem, dns: &[u8]) -> CoapMessage {
    match item {
        PacketItem::Query => build_request(method, dns, MsgType::Con, 0x0101, vec![0xAA, 0x01])
            .expect("request construction"),
        _ => {
            // Response to a FETCH-style request (method affects only
            // the request side).
            let req = build_request(
                DocMethod::Fetch,
                &dns_query_bytes(&experiment_name(0), RecordType::Aaaa),
                MsgType::Con,
                0x0101,
                vec![0xAA, 0x01],
            )
            .expect("request construction");
            coap_response_for(&req, dns)
        }
    }
}

/// DNS bytes carried inside a CoAP message. For GET the query is
/// base64url-inflated into the URI, so the "DNS" layer is the encoded
/// variable (what actually travels), exactly how Fig. 6 draws it.
fn dns_in_coap(msg: &CoapMessage, dns: &[u8]) -> usize {
    if !msg.payload.is_empty() {
        msg.payload.len()
    } else {
        // GET: dns=<base64url>
        doc_crypto::base64url::encoded_len(dns.len())
    }
}

/// Frame a DNS query for a stream transport's request direction.
pub fn frame_stream_query(kind: TransportKind, dns: &[u8]) -> Vec<u8> {
    match kind {
        TransportKind::Quic => doc_quic::doq::encode_doq(dns),
        TransportKind::DohLite => doc_quic::doq::encode_doh_request(dns),
        TransportKind::Dot => doc_quic::doq::encode_dot(dns),
        _ => panic!("{kind:?} is not a stream transport"),
    }
}

/// Frame a DNS response for a stream transport's response direction.
pub fn frame_stream_response(kind: TransportKind, dns: &[u8]) -> Vec<u8> {
    match kind {
        TransportKind::Quic => doc_quic::doq::encode_doq(dns),
        TransportKind::DohLite => doc_quic::doq::encode_doh_response(dns),
        TransportKind::Dot => doc_quic::doq::encode_dot(dns),
        _ => panic!("{kind:?} is not a stream transport"),
    }
}

fn oscore_pair() -> (OscoreEndpoint, OscoreEndpoint) {
    let secret = b"0123456789abcdef";
    let salt = b"doc-salt";
    (
        OscoreEndpoint::new(SecurityContext::derive(secret, salt, &[], &[0x01]), false),
        OscoreEndpoint::new(SecurityContext::derive(secret, salt, &[0x01], &[]), false),
    )
}

fn finish(
    label: String,
    dtls: usize,
    coap: usize,
    oscore: usize,
    dns: usize,
    udp_payload: usize,
) -> Dissection {
    let frames = fragment_count(udp_payload);
    let total = bytes_on_air(udp_payload);
    let l2 = total - udp_payload;
    Dissection {
        label,
        l2_sixlo: l2,
        dtls,
        coap,
        oscore,
        dns,
        frames,
        total,
    }
}

/// Session-setup packets (Fig. 6 "Session setup" panels): the DTLS
/// handshake flights, measured from a real loopback handshake, and the
/// OSCORE Echo round trip.
pub fn session_setup(kind: TransportKind) -> Vec<Dissection> {
    match kind {
        TransportKind::Dtls | TransportKind::Coaps => {
            let mut client = doc_dtls::DtlsClient::new(0xD0C, b"Client_ID", b"123456789");
            let mut server = doc_dtls::DtlsServer::new(0x5E4, b"123456789");
            let mut trace: Vec<(&'static str, usize)> = Vec::new();
            let mut c2s: Vec<Vec<u8>> = Vec::new();
            let mut s2c: Vec<Vec<u8>> = Vec::new();
            for ev in client.start(0) {
                if let doc_dtls::DtlsEvent::Transmit { datagram, label } = ev {
                    trace.push((label, datagram.len()));
                    c2s.push(datagram);
                }
            }
            for _ in 0..8 {
                let mut next = Vec::new();
                for d in c2s.drain(..) {
                    for ev in server.handle_datagram(0, &d) {
                        if let doc_dtls::DtlsEvent::Transmit { datagram, label } = ev {
                            trace.push((label, datagram.len()));
                            next.push(datagram);
                        }
                    }
                }
                s2c.extend(next);
                let mut back = Vec::new();
                for d in s2c.drain(..) {
                    for ev in client.handle_datagram(0, &d) {
                        if let doc_dtls::DtlsEvent::Transmit { datagram, label } = ev {
                            trace.push((label, datagram.len()));
                            back.push(datagram);
                        }
                    }
                }
                c2s.extend(back);
                if client.is_connected() && server.is_connected() {
                    break;
                }
            }
            trace
                .into_iter()
                .map(|(label, len)| {
                    let frames = fragment_count(len);
                    let total = bytes_on_air(len);
                    Dissection {
                        label: label.to_string(),
                        l2_sixlo: total - len,
                        dtls: len,
                        coap: 0,
                        oscore: 0,
                        dns: 0,
                        frames,
                        total,
                    }
                })
                .collect()
        }
        TransportKind::Oscore => {
            // Replay-window initialization: request → 4.01 w/ Echo →
            // request w/ Echo.
            let secret = b"0123456789abcdef";
            let salt = b"doc-salt";
            let mut client =
                OscoreEndpoint::new(SecurityContext::derive(secret, salt, &[], &[0x01]), false);
            let mut server =
                OscoreEndpoint::new(SecurityContext::derive(secret, salt, &[0x01], &[]), true);
            let name = experiment_name(0);
            let dns = dns_query_bytes(&name, RecordType::Aaaa);
            let inner = coap_message(DocMethod::Fetch, PacketItem::Query, &dns);
            let (outer1, binding1) = client.protect_request(&inner).expect("protect");
            let challenge = match server.unprotect_request(&outer1) {
                Err(doc_oscore::OscoreError::EchoRequired(c)) => c,
                other => panic!("expected echo challenge, got {other:?}"),
            };
            let opt = doc_oscore::protect::OscoreOption::decode(
                &outer1.option(OptionNumber::OSCORE).expect("option").value,
            )
            .expect("decodes");
            let s_binding = doc_oscore::RequestBinding {
                kid: opt.kid.expect("kid"),
                piv: opt.piv,
            };
            let unauthorized = server
                .protect_echo_challenge(&outer1, &s_binding, &challenge)
                .expect("protect");
            let echoed = client
                .unprotect_response(&unauthorized, &binding1)
                .expect("unprotect")
                .option(OptionNumber::ECHO)
                .expect("echo present")
                .value
                .clone();
            let mut retry_inner = inner.clone();
            retry_inner.set_option(CoapOption::new(OptionNumber::ECHO, echoed));
            let (outer2, _) = client.protect_request(&retry_inner).expect("protect");
            [
                ("4.01 Unauthorized", unauthorized.encoded_len()),
                ("Query (w/ Echo)", outer2.encoded_len()),
            ]
            .into_iter()
            .map(|(label, len)| {
                let frames = fragment_count(len);
                let total = bytes_on_air(len);
                Dissection {
                    label: label.to_string(),
                    l2_sixlo: total - len,
                    dtls: 0,
                    coap: 0,
                    oscore: len,
                    dns: 0,
                    frames,
                    total,
                }
            })
            .collect()
        }
        TransportKind::Quic | TransportKind::DohLite | TransportKind::Dot => {
            // The QUIC-lite 1-RTT handshake: ClientInitial → server
            // handshake flight; data can flow one round trip after the
            // first packet (the assumption behind `doc-models::quic`).
            let mut client = doc_quic::Connection::client(0xD0C, QUIC_PSK);
            let mut server = doc_quic::Connection::server(0x5E4, QUIC_PSK);
            let mut trace: Vec<(&'static str, usize)> = Vec::new();
            for d in client.connect(doc_time::Instant::EPOCH) {
                trace.push(("ClientInitial", d.len()));
                for ev in server.handle_datagram(doc_time::Instant::EPOCH, &d) {
                    if let doc_quic::QuicEvent::Transmit(reply) = ev {
                        trace.push(("ServerHandshake", reply.len()));
                        client.handle_datagram(doc_time::Instant::EPOCH, &reply);
                    }
                }
            }
            assert!(client.is_established() && server.is_established());
            trace
                .into_iter()
                .map(|(label, len)| {
                    let frames = fragment_count(len);
                    let total = bytes_on_air(len);
                    Dissection {
                        label: label.to_string(),
                        l2_sixlo: total - len,
                        dtls: len,
                        coap: 0,
                        oscore: 0,
                        dns: 0,
                        frames,
                        total,
                    }
                })
                .collect()
        }
        _ => Vec::new(),
    }
}

/// Fig. 14: packet sizes with block-wise transfer. Returns one
/// dissection per (message, block) for the given block size.
pub fn dissect_blockwise(
    method: DocMethod,
    item: PacketItem,
    block_size: usize,
    coaps: bool,
) -> Vec<Dissection> {
    use doc_coap::block::{Block1Sender, BlockOpt};
    let name = experiment_name(0);
    let rtype = match item {
        PacketItem::ResponseA => RecordType::A,
        _ => RecordType::Aaaa,
    };
    let dtls_extra = if coaps { DTLS_RECORD_OVERHEAD } else { 0 };
    let mut out = Vec::new();
    match item {
        PacketItem::Query => {
            let dns = dns_query_bytes(&name, rtype);
            if method == DocMethod::Get {
                // GET cannot block-transfer its query (carried in URI).
                let d = dissect(
                    if coaps {
                        TransportKind::Coaps
                    } else {
                        TransportKind::Coap
                    },
                    method,
                    item,
                );
                return vec![d];
            }
            let mut sender = Block1Sender::new(dns.clone(), block_size).expect("valid block size");
            let total_blocks = sender.block_count();
            let mut idx = 0;
            while let Some((slice, block)) = sender.next_block() {
                let mut msg = build_request(method, &[], MsgType::Con, 0x0101, vec![0xAA, 0x01])
                    .expect("request");
                doc_coap::block::apply_block1(&mut msg, slice.clone(), block);
                let coap_total = msg.encoded_len();
                let payload = coap_total + dtls_extra;
                let is_last = idx == total_blocks - 1;
                let mut d = finish(
                    format!(
                        "Query [{}]{}",
                        method.name(),
                        if is_last { " (Last)" } else { "" }
                    ),
                    dtls_extra,
                    coap_total - slice.len(),
                    0,
                    slice.len(),
                    payload,
                );
                d.label = d.label.clone();
                out.push(d);
                idx += 1;
            }
            // The 2.31 Continue acknowledgement.
            let req = build_request(method, &[], MsgType::Con, 0x0101, vec![0xAA, 0x01])
                .expect("request");
            let cont = doc_coap::block::continue_response(
                &req,
                BlockOpt::new(0, true, block_size).expect("valid"),
            );
            let len = cont.encoded_len() + dtls_extra;
            out.push(finish(
                "2.31 Continue".to_string(),
                dtls_extra,
                cont.encoded_len(),
                0,
                0,
                len,
            ));
        }
        _ => {
            let dns = dns_response_bytes(&name, rtype, 3600);
            let msg = coap_message(DocMethod::Fetch, item, &dns);
            let body = msg.payload.clone();
            if body.len() <= block_size {
                let d = dissect(
                    if coaps {
                        TransportKind::Coaps
                    } else {
                        TransportKind::Coap
                    },
                    method,
                    item,
                );
                return vec![d];
            }
            let server = doc_coap::block::Block2Server::new(body, block_size).expect("valid");
            let mut num = 0;
            loop {
                let (slice, block) = server.block(num, block_size).expect("in range");
                let mut resp = msg.clone();
                resp.payload = slice.clone();
                resp.set_option(block.to_option(OptionNumber::BLOCK2));
                let coap_total = resp.encoded_len();
                let is_last = !block.more;
                out.push(finish(
                    format!("{}{}", item.name(), if is_last { " (Last)" } else { "" }),
                    dtls_extra,
                    coap_total - slice.len(),
                    0,
                    slice.len(),
                    coap_total + dtls_extra,
                ));
                if is_last {
                    break;
                }
                num += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_name_is_24_chars() {
        for id in [0u32, 7, 49, 99999] {
            assert_eq!(experiment_name(id).presentation_len(), 24);
        }
    }

    /// Fig. 6 regime 1: plain UDP — the query is 42 bytes of DNS, one
    /// frame; responses also fit one frame.
    #[test]
    fn fig6_udp_sizes() {
        let q = dissect(TransportKind::Udp, DocMethod::Fetch, PacketItem::Query);
        assert_eq!(q.dns, 42);
        assert_eq!(q.frames, 1);
        let ra = dissect(TransportKind::Udp, DocMethod::Fetch, PacketItem::ResponseA);
        assert_eq!(ra.dns, 58);
        assert_eq!(ra.frames, 1);
        let raaaa = dissect(
            TransportKind::Udp,
            DocMethod::Fetch,
            PacketItem::ResponseAaaa,
        );
        assert_eq!(raaaa.dns, 70, "the §7 baseline AAAA response");
        // §5.4: "The query is not fragmented, but the response is."
        assert_eq!(raaaa.frames, 2);
    }

    /// Fig. 6: DTLS adds a fixed 29-byte record overhead, pushing both
    /// queries and responses over the fragmentation line (§5.4 groups
    /// DTLSv1.2 with the transports "for which both queries and
    /// responses fragment").
    #[test]
    fn fig6_dtls_sizes() {
        let q = dissect(TransportKind::Dtls, DocMethod::Fetch, PacketItem::Query);
        assert_eq!(q.dtls, 29);
        assert_eq!(q.udp_payload(), 42 + 29);
        assert_eq!(q.frames, 2, "DTLS query fragments");
        let raaaa = dissect(
            TransportKind::Dtls,
            DocMethod::Fetch,
            PacketItem::ResponseAaaa,
        );
        assert_eq!(raaaa.udp_payload(), 70 + 29);
        assert_eq!(raaaa.frames, 2, "AAAA over DTLS fragments");
    }

    /// Fig. 6: plain CoAP FETCH queries stay below the line; AAAA
    /// responses fragment (CoAP options + 70-byte payload).
    #[test]
    fn fig6_coap_fetch_sizes() {
        let q = dissect(TransportKind::Coap, DocMethod::Fetch, PacketItem::Query);
        assert_eq!(q.dns, 42);
        assert!(
            q.coap > 0 && q.coap < 20,
            "CoAP framing is small: {}",
            q.coap
        );
        assert_eq!(q.frames, 1);
        let r = dissect(
            TransportKind::Coap,
            DocMethod::Fetch,
            PacketItem::ResponseAaaa,
        );
        assert_eq!(r.dns, 70);
        assert_eq!(r.frames, 2, "CoAP AAAA response fragments");
    }

    /// §5.3: "DNS queries are base64-encoded within the GET method.
    /// This inflates requests … approximately 1.5 times larger" and
    /// "a DNS query using GET will be fragmented".
    #[test]
    fn fig6_get_query_fragments() {
        let fetch = dissect(TransportKind::Coap, DocMethod::Fetch, PacketItem::Query);
        let get = dissect(TransportKind::Coap, DocMethod::Get, PacketItem::Query);
        assert!(get.dns > fetch.dns, "base64url inflation");
        assert_eq!(get.dns, 56); // 42 bytes -> 56 base64url chars
        assert_eq!(get.frames, 2, "GET query fragments");
    }

    /// Fig. 6: CoAPS leaves "little room … for the DNS message itself"
    /// — both query and responses fragment.
    #[test]
    fn fig6_coaps_fragments() {
        let q = dissect(TransportKind::Coaps, DocMethod::Fetch, PacketItem::Query);
        assert!(q.udp_payload() > 85, "payload {}", q.udp_payload());
        let r = dissect(
            TransportKind::Coaps,
            DocMethod::Fetch,
            PacketItem::ResponseAaaa,
        );
        assert_eq!(r.frames, 2);
    }

    /// Fig. 6: OSCORE sits between plain CoAP and CoAPS.
    #[test]
    fn fig6_oscore_overhead_between_coap_and_coaps() {
        let coap = dissect(TransportKind::Coap, DocMethod::Fetch, PacketItem::Query);
        let oscore = dissect(TransportKind::Oscore, DocMethod::Fetch, PacketItem::Query);
        let coaps = dissect(TransportKind::Coaps, DocMethod::Fetch, PacketItem::Query);
        assert!(oscore.total > coap.total);
        assert!(oscore.total < coaps.total);
        assert!(oscore.oscore >= 8, "at least the COSE tag");
    }

    /// Fig. 6 session setup: the DTLS handshake costs 8 flights with
    /// multiple fragmenting datagrams; OSCORE costs one Echo round
    /// trip.
    #[test]
    fn session_setup_shapes() {
        let dtls = session_setup(TransportKind::Dtls);
        assert_eq!(dtls.len(), 8);
        let total_frames: usize = dtls.iter().map(|d| d.frames).sum();
        assert!(
            total_frames >= 8,
            "handshake spans at least 8 frames, got {total_frames}"
        );
        let oscore = session_setup(TransportKind::Oscore);
        assert_eq!(oscore.len(), 2);
        assert_eq!(oscore[0].label, "4.01 Unauthorized");
        assert_eq!(oscore[1].label, "Query (w/ Echo)");
        // The Echo-carrying query is bigger than a plain OSCORE query.
        let plain = dissect(TransportKind::Oscore, DocMethod::Fetch, PacketItem::Query);
        assert!(oscore[1].total > plain.total);
        assert!(session_setup(TransportKind::Udp).is_empty());
        assert!(session_setup(TransportKind::Coap).is_empty());
    }

    /// Fig. 14: with 32-byte blocks everything stays below the
    /// fragmentation limit; 64-byte blocks re-fragment AAAA responses
    /// (paper: "64 already leads to 6LoWPAN fragmentation").
    #[test]
    fn fig14_blockwise_sizes() {
        for method in [DocMethod::Fetch, DocMethod::Post] {
            let blocks = dissect_blockwise(method, PacketItem::Query, 32, false);
            // 42-byte query in 32-byte blocks: 2 query blocks + 2.31.
            assert_eq!(blocks.len(), 3, "{method:?}");
            for b in &blocks {
                assert_eq!(b.frames, 1, "{}: must not fragment", b.label);
            }
        }
        let resp32 = dissect_blockwise(DocMethod::Fetch, PacketItem::ResponseAaaa, 32, false);
        assert!(resp32.len() >= 3);
        assert!(resp32.iter().all(|d| d.frames == 1));
        // 16-byte blocks: more, smaller exchanges.
        let resp16 = dissect_blockwise(DocMethod::Fetch, PacketItem::ResponseAaaa, 16, false);
        assert!(resp16.len() > resp32.len());
    }

    #[test]
    fn fig14_get_query_cannot_block() {
        let blocks = dissect_blockwise(DocMethod::Get, PacketItem::Query, 32, false);
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].frames, 2, "GET query still fragments");
    }

    #[test]
    fn transport_properties() {
        assert!(!TransportKind::Udp.encrypted());
        assert!(!TransportKind::Coap.encrypted());
        assert!(TransportKind::Dtls.encrypted());
        assert!(TransportKind::Coaps.encrypted());
        assert!(TransportKind::Oscore.encrypted());
        assert!(TransportKind::Coap.coap_based());
        assert!(!TransportKind::Udp.coap_based());
        for kind in [
            TransportKind::Quic,
            TransportKind::DohLite,
            TransportKind::Dot,
        ] {
            assert!(kind.encrypted(), "{kind:?}");
            assert!(!kind.coap_based(), "{kind:?}");
            assert!(kind.stream_based(), "{kind:?}");
        }
        assert!(!TransportKind::Udp.stream_based());
        assert!(!TransportKind::Coaps.stream_based());
    }

    /// The shared evaluation matrix covers every transport variant at
    /// least once (the guard that keeps the e2e suite and the bench in
    /// sync when a transport is added).
    #[test]
    fn transport_matrix_covers_every_kind() {
        for kind in [
            TransportKind::Udp,
            TransportKind::Dtls,
            TransportKind::Coap,
            TransportKind::Coaps,
            TransportKind::Oscore,
            TransportKind::Quic,
            TransportKind::DohLite,
            TransportKind::Dot,
        ] {
            assert!(
                TRANSPORT_MATRIX.iter().any(|&(k, _)| k == kind),
                "{kind:?} missing from TRANSPORT_MATRIX"
            );
        }
        // Method rows only vary for CoAP-based transports.
        for (kind, method) in TRANSPORT_MATRIX {
            assert!(
                kind.coap_based() || method == DocMethod::Fetch,
                "{kind:?}/{method:?}"
            );
        }
    }

    /// Fig. 9 cross-check at the packet level: the simulated DoQ query
    /// carries its DNS message with an overhead inside the analytical
    /// 1-RTT envelope (24–64 bytes), and DoH's HTTP framing makes it
    /// strictly larger.
    #[test]
    fn stream_transport_overheads() {
        let doq = dissect(TransportKind::Quic, DocMethod::Fetch, PacketItem::Query);
        assert_eq!(doq.dns, 42);
        assert!(
            (24..=64).contains(&doq.dtls),
            "DoQ overhead {} outside the 1-RTT envelope",
            doq.dtls
        );
        let doh = dissect(TransportKind::DohLite, DocMethod::Fetch, PacketItem::Query);
        assert!(
            doh.total > doq.total,
            "DoH {} <= DoQ {}",
            doh.total,
            doq.total
        );
        let dot = dissect(TransportKind::Dot, DocMethod::Fetch, PacketItem::Query);
        // DoT shares DoQ's 2-byte framing; first-message packets differ
        // only in header/frame bytes.
        assert!(
            dot.dtls.abs_diff(doq.dtls) <= 4,
            "DoT {} vs DoQ {}",
            dot.dtls,
            doq.dtls
        );
    }

    /// The QUIC-lite session setup is one round trip: two flights,
    /// against DTLS's eight.
    #[test]
    fn quic_session_setup_is_one_rtt() {
        for kind in [
            TransportKind::Quic,
            TransportKind::DohLite,
            TransportKind::Dot,
        ] {
            let setup = session_setup(kind);
            assert_eq!(setup.len(), 2, "{kind:?}");
            assert_eq!(setup[0].label, "ClientInitial");
            assert_eq!(setup[1].label, "ServerHandshake");
            let dtls_flights = session_setup(TransportKind::Dtls).len();
            assert!(setup.len() < dtls_flights);
        }
    }

    #[test]
    fn dissection_totals_consistent() {
        for kind in [
            TransportKind::Udp,
            TransportKind::Dtls,
            TransportKind::Coap,
            TransportKind::Coaps,
            TransportKind::Oscore,
            TransportKind::Quic,
            TransportKind::DohLite,
            TransportKind::Dot,
        ] {
            for item in [
                PacketItem::Query,
                PacketItem::ResponseA,
                PacketItem::ResponseAaaa,
            ] {
                let d = dissect(kind, DocMethod::Fetch, item);
                assert_eq!(
                    d.total,
                    d.l2_sixlo + d.udp_payload(),
                    "{}: layer sum mismatch",
                    d.label
                );
                let plan = doc_sixlowpan::fragment_plan(d.udp_payload());
                assert_eq!(d.frames, plan.len());
            }
        }
    }
}
