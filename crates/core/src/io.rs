//! I/O providers: the pluggable front door of the worker pool.
//!
//! The pool ([`crate::pool::ProxyPool`]) is transport-agnostic — it
//! consumes [`Datagram`]s and emits [`Reply`]s. An [`IoProvider`] is
//! where those datagrams come from and where the replies go:
//!
//! * [`SimProvider`] feeds the pool from a `doc-netsim` event drain,
//!   so the paper's simulated workloads run through the *same* worker
//!   code as production traffic — and stay bit-identical, because the
//!   provider only re-plumbs `Sim::drain_due`, it does not reinterpret
//!   the schedule.
//! * [`UdpProvider`] serves real datagrams from a
//!   [`std::net::UdpSocket`] with a batched receive loop (block for
//!   the first datagram, then drain the socket non-blocking —
//!   `recvmmsg` shaped, one syscall per datagram but one *blocking
//!   point* per batch).
//!
//! The split follows the provider pattern of s2n-quic's platform
//! layer: protocol code never touches a socket, so a test harness, a
//! simulator and a production front-end are interchangeable at one
//! seam. Deadlines are [`Millis`]-typed; providers never see protocol
//! state.
//!
//! [`ProxyPool::run_io`] is the pump: it turns a provider into the
//! pool's datagram iterator (the calling thread alternates
//! `send_batch` flushes and `recv_batch` fills) and routes every
//! worker reply back out through the provider.

use crate::pool::{Datagram, PoolRunStats, ProxyPool, Reply};
use doc_netsim::{NodeId, Sim, SimEvent, Tag};
use doc_time::{Instant, Millis};
use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::sync::Mutex;

/// One receive slot a provider fills: `recv_batch` writes at most one
/// datagram per slot, front-to-back.
#[derive(Debug, Default)]
pub struct RecvSlot {
    /// The received datagram, if this slot was filled.
    pub datagram: Option<Datagram>,
}

/// A source/sink of request datagrams — the pool's view of "the
/// network".
pub trait IoProvider {
    /// Fill `slots` front-to-back with received datagrams, waiting up
    /// to `timeout` for the first one. Returns the number of slots
    /// filled; 0 means the source is idle (timeout expired or the
    /// workload is exhausted) and ends a [`ProxyPool::run_io`] pump.
    fn recv_batch(&mut self, slots: &mut [RecvSlot], timeout: Millis) -> usize;

    /// Send a batch of replies back to their peers. Replies whose
    /// `wire` is `None` (dropped datagrams) are skipped. Returns the
    /// number actually sent.
    fn send_batch(&mut self, replies: &[Reply]) -> usize;
}

/// [`IoProvider`] over a `doc-netsim` simulation: events addressed to
/// `node` become pool datagrams, replies are sent back into the
/// simulation along its installed routes.
///
/// The provider is a pure re-plumbing of [`Sim::drain_due`] — event
/// order, timestamps and bytes pass through untouched, which is what
/// keeps the paper sims bit-identical whether they run through the
/// pool or through the original experiment harness.
pub struct SimProvider<'a> {
    sim: &'a mut Sim,
    node: NodeId,
    window_us: u64,
    seq: u64,
    backlog: VecDeque<Datagram>,
    scratch: Vec<(Instant, SimEvent)>,
    delivered: Vec<(NodeId, Vec<u8>)>,
}

impl<'a> SimProvider<'a> {
    /// Serve `node` from `sim`, draining events in windows of
    /// `window_us` past the earliest pending event (the batching knob:
    /// bigger windows, bigger drains).
    pub fn new(sim: &'a mut Sim, node: NodeId, window_us: u64) -> Self {
        SimProvider {
            sim,
            node,
            window_us,
            seq: 0,
            backlog: VecDeque::new(),
            scratch: Vec::new(),
            delivered: Vec::new(),
        }
    }

    /// Datagrams the simulation delivered to nodes *other* than the
    /// served one (e.g. pool replies arriving back at their clients),
    /// in delivery order. Drained by the caller.
    pub fn take_delivered(&mut self) -> Vec<(NodeId, Vec<u8>)> {
        std::mem::take(&mut self.delivered)
    }
}

impl IoProvider for SimProvider<'_> {
    fn recv_batch(&mut self, slots: &mut [RecvSlot], _timeout: Millis) -> usize {
        // Virtual time: the "timeout" is the simulation going idle.
        while self.backlog.is_empty() && !self.sim.is_idle() {
            self.scratch.clear();
            self.sim
                .drain_next_window(self.window_us, &mut self.scratch);
            for (at, ev) in self.scratch.drain(..) {
                match ev {
                    SimEvent::Datagram { from, to, bytes } if to == self.node => {
                        let seq = self.seq;
                        self.seq += 1;
                        self.backlog.push_back(Datagram {
                            peer: from as u64,
                            seq,
                            at,
                            wire: bytes,
                        });
                    }
                    SimEvent::Datagram { to, bytes, .. } => self.delivered.push((to, bytes)),
                    SimEvent::Timer { .. } => {}
                }
            }
        }
        let mut n = 0;
        for slot in slots.iter_mut() {
            match self.backlog.pop_front() {
                Some(d) => {
                    slot.datagram = Some(d);
                    n += 1;
                }
                None => break,
            }
        }
        n
    }

    fn send_batch(&mut self, replies: &[Reply]) -> usize {
        let mut n = 0;
        for r in replies {
            if let Some(wire) = &r.wire {
                self.sim
                    .send_datagram(self.node, r.peer as usize, wire.clone(), Tag::Response);
                n += 1;
            }
        }
        n
    }
}

/// Largest datagram the UDP provider accepts (CoAP over UDP fits
/// comfortably; anything bigger is truncated by the socket and will
/// fail parsing downstream like any other malformed datagram).
const UDP_RECV_BUF: usize = 2048;

/// [`IoProvider`] over a real [`std::net::UdpSocket`]: block for the
/// first datagram (up to the deadline), then drain whatever else the
/// socket already holds without blocking — a `recvmmsg`-shaped batch
/// per wakeup.
///
/// Peers are keyed by source address: the first datagram from an
/// address allocates the next peer id, and replies are routed back by
/// that id. Receive timestamps are pinned to a caller-set virtual
/// instant ([`UdpProvider::with_virtual_time`]) so loopback runs are
/// reproducible against sim runs; production callers would advance it
/// from a wall clock.
pub struct UdpProvider {
    socket: UdpSocket,
    /// peer id → address.
    peers: Vec<SocketAddr>,
    /// address → peer id.
    peer_ids: HashMap<SocketAddr, u64>,
    seq: u64,
    at: Instant,
    buf: [u8; UDP_RECV_BUF],
}

impl UdpProvider {
    /// Bind a socket (e.g. `"127.0.0.1:0"` for an ephemeral loopback
    /// port).
    pub fn bind<A: ToSocketAddrs>(addr: A) -> std::io::Result<Self> {
        Ok(UdpProvider {
            socket: UdpSocket::bind(addr)?,
            peers: Vec::new(),
            peer_ids: HashMap::new(),
            seq: 0,
            at: Instant::EPOCH,
            buf: [0u8; UDP_RECV_BUF],
        })
    }

    /// The bound local address (where clients send).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// Pin the virtual receive timestamp stamped on every datagram
    /// (drives cache freshness deterministically).
    pub fn with_virtual_time(mut self, at: Instant) -> Self {
        self.at = at;
        self
    }

    fn peer_id(&mut self, addr: SocketAddr) -> u64 {
        match self.peer_ids.get(&addr) {
            Some(&id) => id,
            None => {
                let id = self.peers.len() as u64;
                self.peers.push(addr);
                self.peer_ids.insert(addr, id);
                id
            }
        }
    }

    fn slot_from(&mut self, len: usize, addr: SocketAddr) -> Datagram {
        let seq = self.seq;
        self.seq += 1;
        Datagram {
            peer: self.peer_id(addr),
            seq,
            at: self.at,
            wire: self.buf[..len].to_vec(),
        }
    }
}

impl IoProvider for UdpProvider {
    fn recv_batch(&mut self, slots: &mut [RecvSlot], timeout: Millis) -> usize {
        if slots.is_empty() {
            return 0;
        }
        // Blocking wait (bounded by the deadline) for the first
        // datagram of the batch.
        let wait = std::time::Duration::from_millis(timeout.as_millis().max(1));
        if self.socket.set_read_timeout(Some(wait)).is_err() {
            return 0;
        }
        let first = match self.socket.recv_from(&mut self.buf) {
            Ok((len, addr)) => self.slot_from(len, addr),
            Err(_) => return 0, // timeout / interrupted → idle
        };
        slots[0].datagram = Some(first);
        let mut n = 1;
        // Non-blocking drain of whatever is already queued.
        if self.socket.set_nonblocking(true).is_ok() {
            while n < slots.len() {
                match self.socket.recv_from(&mut self.buf) {
                    Ok((len, addr)) => {
                        slots[n].datagram = Some(self.slot_from(len, addr));
                        n += 1;
                    }
                    Err(_) => break,
                }
            }
            let _ = self.socket.set_nonblocking(false);
        }
        n
    }

    fn send_batch(&mut self, replies: &[Reply]) -> usize {
        let mut n = 0;
        for r in replies {
            let Some(wire) = &r.wire else { continue };
            let Some(&addr) = self.peers.get(r.peer as usize) else {
                continue;
            };
            if self.socket.send_to(wire, addr).is_ok() {
                n += 1;
            }
        }
        n
    }
}

impl ProxyPool {
    /// Pump a provider through the pool: the calling thread alternates
    /// reply flushes (`send_batch`) and receive fills (`recv_batch`,
    /// up to `slots` datagrams per fill, waiting up to `recv_timeout`
    /// for the first), feeding the worker threads through a bounded
    /// injector of `ring_capacity` slots. Returns once the provider
    /// reports idle (a `recv_batch` of 0) and every in-flight datagram
    /// has been served and flushed back out.
    pub fn run_io<P: IoProvider>(
        &self,
        provider: &mut P,
        ring_capacity: usize,
        slots: usize,
        recv_timeout: Millis,
    ) -> PoolRunStats {
        let outbox: Mutex<Vec<Reply>> = Mutex::new(Vec::new());
        let mut slot_buf: Vec<RecvSlot> = Vec::new();
        slot_buf.resize_with(slots.max(1), RecvSlot::default);
        let mut pending: VecDeque<Datagram> = VecDeque::new();
        let stats = {
            let outbox = &outbox;
            let provider = &mut *provider;
            let slot_buf = &mut slot_buf;
            let pending = &mut pending;
            // In-flight ledger: datagrams yielded to the pool minus
            // replies drained from the outbox. A recv timeout with
            // exchanges still in flight means the peers may be waiting
            // on *us* (serial clients), so keep flushing instead of
            // declaring the source idle.
            let mut yielded: u64 = 0;
            let mut drained: u64 = 0;
            let feed = std::iter::from_fn(move || loop {
                if let Some(d) = pending.pop_front() {
                    yielded += 1;
                    return Some(d);
                }
                // Flush finished replies before blocking in recv — a
                // serial client is waiting for them before it sends
                // its next query.
                let ready = std::mem::take(&mut *outbox.lock().unwrap());
                drained += ready.len() as u64;
                if !ready.is_empty() {
                    provider.send_batch(&ready);
                }
                // While replies are still in flight, poll with a short
                // wait so a finished reply gets flushed promptly — a
                // serial peer won't send again until it lands. Only a
                // fully-flushed pump waits out the real deadline.
                let wait = if drained < yielded {
                    Millis::from_millis(1).min(recv_timeout)
                } else {
                    recv_timeout
                };
                let n = provider.recv_batch(slot_buf, wait);
                if n == 0 {
                    if drained < yielded {
                        continue;
                    }
                    return None;
                }
                for slot in slot_buf.iter_mut().take(n) {
                    if let Some(d) = slot.datagram.take() {
                        pending.push_back(d);
                    }
                }
            });
            self.run(ring_capacity, feed, &|r| {
                outbox.lock().unwrap().push(r.clone())
            })
        };
        // The workers finished after the provider went idle; flush the
        // tail of replies.
        let ready = std::mem::take(&mut *outbox.lock().unwrap());
        if !ready.is_empty() {
            provider.send_batch(&ready);
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::{build_request, DocMethod};
    use crate::policy::CachePolicy;
    use crate::proxy::CoapProxy;
    use crate::server::{DocServer, MockUpstream};
    use doc_check::sync::Arc;
    use doc_coap::msg::MsgType;
    use doc_dns::{Message, Name, RecordType};
    use doc_netsim::LinkKind;

    fn fetch_wire(name: &str, seq: u64) -> Vec<u8> {
        let mut q = Message::query(0, Name::parse(name).unwrap(), RecordType::Aaaa);
        q.canonicalize_id();
        build_request(
            DocMethod::Fetch,
            &q.encode(),
            MsgType::Con,
            seq as u16,
            vec![seq as u8, (seq >> 8) as u8],
        )
        .unwrap()
        .encode()
    }

    fn pool(workers: usize) -> ProxyPool {
        let up = MockUpstream::new(7, 3600, 3600);
        up.add_aaaa(Name::parse("a.example.org").unwrap(), 1);
        up.add_aaaa(Name::parse("b.example.org").unwrap(), 1);
        ProxyPool::new(
            workers,
            Arc::new(CoapProxy::with_shards(64, 4)),
            Arc::new(DocServer::new(CachePolicy::EolTtls, up)),
        )
    }

    #[test]
    fn sim_provider_serves_pool_and_replies_reach_clients() {
        let mut sim = Sim::new(42);
        let proxy_node: NodeId = 0;
        let client: NodeId = 1;
        sim.add_link(proxy_node, client, LinkKind::Wired { latency_us: 100 });
        sim.add_route(&[client, proxy_node]);
        let total = 20u64;
        for seq in 0..total {
            let name = if seq % 2 == 0 {
                "a.example.org"
            } else {
                "b.example.org"
            };
            sim.send_datagram(client, proxy_node, fetch_wire(name, seq), Tag::Query);
        }
        let pool = pool(2);
        let mut provider = SimProvider::new(&mut sim, proxy_node, 1_000);
        let stats = pool.run_io(&mut provider, 16, 8, Millis::from_millis(10));
        assert_eq!(stats.processed, total);
        assert_eq!(stats.replies, total);
        // Pump the sim dry so the replies sent back actually arrive
        // (the tail of the final flush is still in the event queue).
        let mut none: [RecvSlot; 1] = Default::default();
        assert_eq!(provider.recv_batch(&mut none, Millis::from_millis(1)), 0);
        let delivered = provider.take_delivered();
        assert_eq!(delivered.len(), total as usize, "every reply delivered");
        assert!(delivered.iter().all(|(node, _)| *node == client));
    }

    #[test]
    fn udp_provider_times_out_when_idle() {
        let pool = pool(1);
        let mut provider = UdpProvider::bind("127.0.0.1:0").unwrap();
        let stats = pool.run_io(&mut provider, 8, 4, Millis::from_millis(20));
        assert_eq!(stats.processed, 0);
    }

    #[test]
    fn udp_provider_serves_loopback_queries() {
        let pool = pool(2);
        let mut provider = UdpProvider::bind("127.0.0.1:0")
            .unwrap()
            .with_virtual_time(Instant::from_millis(1));
        let server_addr = provider.local_addr().unwrap();
        let client = UdpSocket::bind("127.0.0.1:0").unwrap();
        client
            .set_read_timeout(Some(std::time::Duration::from_millis(2000)))
            .unwrap();
        let total = 10u64;
        let handle = std::thread::spawn(move || {
            let mut replies = Vec::new();
            let mut buf = [0u8; 2048];
            for seq in 0..total {
                client
                    .send_to(&fetch_wire("a.example.org", seq), server_addr)
                    .unwrap();
                let (len, _) = client.recv_from(&mut buf).unwrap();
                replies.push(buf[..len].to_vec());
            }
            replies
        });
        let stats = pool.run_io(&mut provider, 8, 4, Millis::from_millis(500));
        let replies = handle.join().unwrap();
        assert_eq!(stats.processed, total);
        assert_eq!(stats.replies, total);
        assert_eq!(replies.len(), total as usize);
        for (seq, wire) in replies.iter().enumerate() {
            let v = doc_coap::view::CoapView::parse(wire).unwrap();
            assert_eq!(v.message_id, seq as u16, "reply for query {seq}");
        }
    }
}
