//! The DoC server and its mock recursive-resolver upstream.
//!
//! The server terminates DoC requests (FETCH/GET/POST), resolves them
//! against an upstream, applies a [`CachePolicy`] to align TTLs with
//! CoAP freshness, and supports ETag revalidation with `2.03 Valid`
//! responses and Block2 slicing of large responses.
//!
//! The upstream mirrors the paper's setup: "The recursive resolver is
//! mocked up to generate the desired responses" — a programmable zone
//! whose records refresh their TTLs on expiry (uniformly drawn from a
//! configured range, e.g. the 2–8 s of §6.1), which is precisely the
//! behaviour that makes DoH-like ETags churn.
//!
//! Both the server and the mock upstream are **thread-safe**: every
//! public method takes `&self`, so an `Arc<DocServer>` can back the
//! workers of a [`crate::pool`] front-end. The upstream's resource
//! table (zone + per-RRset TTL state) is lock-striped behind a
//! [`ShardedCache`], its xorshift state is an atomic (the draw
//! sequence is unchanged for single-threaded drivers, so seeded
//! experiments stay bit-identical), the block-wise transfer tables are
//! sharded by `(peer, token)`, and the statistics are atomics exposed
//! through snapshot accessors.

use crate::method::extract_query_view;
use crate::policy::{prepare_response, CachePolicy, PreparedResponse};
use crate::{DocError, CONTENT_FORMAT_DNS_MESSAGE};
use doc_coap::block::{Block2Server, BlockAssembler, BlockOpt};
use doc_coap::msg::{CoapMessage, Code};
use doc_coap::opt::{CoapOption, OptionNumber};
use doc_coap::shard::ShardedCache;
use doc_coap::view::CoapView;
use doc_coap::CoapError;
use doc_dns::view::MessageView;
use doc_dns::{Message, Name, Rcode, Record, RecordClass, RecordData, RecordType};
use std::borrow::Cow;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// One RRset of the mock zone: the records plus the TTL state machine
/// (absolute expiry of the current TTL draw; 0 = not yet drawn).
struct Rrset {
    data: Vec<RecordData>,
    expires_at_ms: u64,
}

/// One xorshift64 step (shared by the upstream's atomic RNG).
fn xorshift64(mut x: u64) -> u64 {
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    x
}

/// A programmable mock recursive resolver.
pub struct MockUpstream {
    /// The resource table: zone data + TTL state, lock-striped so
    /// concurrent workers resolving different names never contend.
    zone: ShardedCache<(Name, RecordType), Rrset>,
    ttl_min: u32,
    ttl_max: u32,
    rng: AtomicU64,
    ns_queries: AtomicU32,
    cache_hits: AtomicU32,
}

impl MockUpstream {
    /// Create an upstream whose record TTLs refresh uniformly within
    /// `[ttl_min, ttl_max]` seconds.
    pub fn new(seed: u64, ttl_min: u32, ttl_max: u32) -> Self {
        Self::with_shards(seed, ttl_min, ttl_max, 8)
    }

    /// Like [`MockUpstream::new`], with the resource table striped over
    /// `shards` locks (rounded up to a power of two) — the scale-out
    /// knob for multi-worker front-ends.
    pub fn with_shards(seed: u64, ttl_min: u32, ttl_max: u32, shards: usize) -> Self {
        assert!(ttl_min <= ttl_max && ttl_min > 0);
        MockUpstream {
            zone: ShardedCache::new(shards),
            ttl_min,
            ttl_max,
            rng: AtomicU64::new(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1),
            ns_queries: AtomicU32::new(0),
            cache_hits: AtomicU32::new(0),
        }
    }

    /// Number of resolutions that had to "contact the name server"
    /// (TTL expired) — the NS-query events of Fig. 3.
    pub fn ns_queries(&self) -> u32 {
        self.ns_queries.load(Ordering::Relaxed)
    }

    /// Number of resolutions served from the mock's own cache.
    pub fn cache_hits(&self) -> u32 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Draw the next xorshift64* value. Same sequence as the historical
    /// single-threaded RNG; under concurrency each draw is still unique
    /// and uniform, just non-deterministically interleaved.
    fn rand(&self) -> u64 {
        let prev = self
            .rng
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |x| {
                Some(xorshift64(x))
            })
            .expect("fetch_update closure never fails");
        xorshift64(prev).wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Register an RRset. Re-registering an existing `(name, rtype)`
    /// replaces the record data but keeps the in-flight TTL window,
    /// matching the historical behaviour where record data and TTL
    /// state lived in separate maps.
    pub fn add_rrset(&self, name: Name, rtype: RecordType, data: Vec<RecordData>) {
        let key = (name, rtype);
        self.zone
            .with_shard_mut(&key, |shard| match shard.entry(key.clone()) {
                std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().data = data,
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(Rrset {
                        data,
                        expires_at_ms: 0,
                    });
                }
            });
    }

    /// Convenience: register `n` AAAA records `2001:db8::i` for a name.
    pub fn add_aaaa(&self, name: Name, n: u16) {
        let data = (1..=n)
            .map(|i| RecordData::Aaaa(std::net::Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, i)))
            .collect();
        self.add_rrset(name, RecordType::Aaaa, data);
    }

    /// Convenience: register `n` A records `192.0.2.i` for a name.
    pub fn add_a(&self, name: Name, n: u8) {
        let data = (1..=n)
            .map(|i| RecordData::A(std::net::Ipv4Addr::new(192, 0, 2, i)))
            .collect();
        self.add_rrset(name, RecordType::A, data);
    }

    /// Resolve a DNS query at virtual time `now_ms`. Returns a response
    /// with *remaining* TTLs (the decrementing behaviour of a real
    /// recursive cache).
    pub fn resolve(&self, query: &Message, now_ms: u64) -> Message {
        let Some(q) = query.questions.first() else {
            return Message::response(query, Rcode::FormErr, vec![]);
        };
        let key = (q.qname.clone(), q.qtype);
        // One shard lock covers the whole read-check-refresh sequence,
        // so two workers cannot both decide to refresh the same RRset.
        let resolved = self.zone.with_shard_mut(&key, |shard| {
            let rrset = shard.get_mut(&key)?;
            let remaining_ms = if rrset.expires_at_ms > now_ms {
                bump(&self.cache_hits);
                rrset.expires_at_ms - now_ms
            } else {
                bump(&self.ns_queries);
                let span = (self.ttl_max - self.ttl_min) as u64;
                let ttl_s = self.ttl_min as u64
                    + if span == 0 {
                        0
                    } else {
                        self.rand() % (span + 1)
                    };
                rrset.expires_at_ms = now_ms + ttl_s * 1000;
                ttl_s * 1000
            };
            Some((rrset.data.clone(), remaining_ms))
        });
        let Some((data, remaining_ms)) = resolved else {
            return Message::response(query, Rcode::NxDomain, vec![]);
        };
        let ttl = remaining_ms.div_ceil(1000) as u32;
        let answers: Vec<Record> = data
            .into_iter()
            .map(|d| Record {
                name: q.qname.clone(),
                rtype: q.qtype,
                rclass: RecordClass::In,
                ttl,
                data: d,
            })
            .collect();
        Message::response(query, Rcode::NoError, answers)
    }
}

/// Server-side statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// DoC requests handled.
    pub requests: u32,
    /// Requests answered with `2.03 Valid` (successful revalidations —
    /// Fig. 3 step 5 / the EOL-TTLs win in step 4).
    pub validations: u32,
    /// Full `2.05 Content` responses.
    pub full_responses: u32,
    /// Malformed requests rejected.
    pub errors: u32,
}

/// Lock-free counters behind the [`ServerStats`] snapshot.
#[derive(Default)]
struct AtomicServerStats {
    requests: AtomicU32,
    validations: AtomicU32,
    full_responses: AtomicU32,
    errors: AtomicU32,
}

impl AtomicServerStats {
    fn snapshot(&self) -> ServerStats {
        ServerStats {
            requests: self.requests.load(Ordering::Relaxed),
            validations: self.validations.load(Ordering::Relaxed),
            full_responses: self.full_responses.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
        }
    }
}

/// Bump a counter by one (relaxed: counters are advisory statistics).
fn bump(c: &AtomicU32) {
    c.fetch_add(1, Ordering::Relaxed);
}

/// The DoC server.
pub struct DocServer {
    policy: CachePolicy,
    /// The mock upstream resolver.
    pub upstream: MockUpstream,
    /// Block2 slicing threshold (None = never slice proactively).
    block_size: Option<usize>,
    /// Recent prepared responses for Block2 continuation, keyed by
    /// (peer, request token) — clients reuse one token per block-wise
    /// transaction.
    block_state: ShardedCache<(u64, Vec<u8>), Vec<u8>>,
    /// In-progress Block1 query reassembly, keyed by (peer, token).
    block1_assembly: ShardedCache<(u64, Vec<u8>), BlockAssembler>,
    stats: AtomicServerStats,
}

impl DocServer {
    /// Create a server with the given policy and upstream.
    pub fn new(policy: CachePolicy, upstream: MockUpstream) -> Self {
        Self::with_shards(policy, upstream, 8)
    }

    /// Like [`DocServer::new`], with the block-wise transfer tables
    /// striped over `shards` locks (rounded up to a power of two). The
    /// upstream's own resource-table striping is configured on
    /// [`MockUpstream::with_shards`].
    pub fn with_shards(policy: CachePolicy, upstream: MockUpstream, shards: usize) -> Self {
        DocServer {
            policy,
            upstream,
            block_size: None,
            block_state: ShardedCache::new(shards),
            block1_assembly: ShardedCache::new(shards),
            stats: AtomicServerStats::default(),
        }
    }

    /// A snapshot of the server statistics.
    pub fn stats(&self) -> ServerStats {
        self.stats.snapshot()
    }

    /// Account a DNS response served outside the CoAP path (the
    /// experiment harness answers UDP/DTLS transports straight from the
    /// upstream; those still count as served requests).
    pub fn count_raw_dns_response(&self) {
        bump(&self.stats.requests);
        bump(&self.stats.full_responses);
    }

    /// Enable proactive Block2 slicing of responses larger than
    /// `size` bytes.
    pub fn with_block_size(mut self, size: usize) -> Self {
        self.block_size = Some(size);
        self
    }

    /// The active cache policy.
    pub fn policy(&self) -> CachePolicy {
        self.policy
    }

    /// Handle one DoC request, producing the CoAP response
    /// (single-peer convenience wrapper of
    /// [`DocServer::handle_request_from`]).
    pub fn handle_request(&self, req: &CoapMessage, now_ms: u64) -> CoapMessage {
        self.handle_request_from(0, req, now_ms)
    }

    /// Handle one DoC request from peer `peer` (block-wise transfer
    /// state is scoped per peer).
    ///
    /// Owned-message convenience wrapper over the wire hot path: the
    /// request is encoded once and handled as a borrowed view, so both
    /// entry points exercise exactly the same logic (the serialize pass
    /// is the deliberate price for not maintaining two request
    /// handlers; latency-sensitive callers hold wire bytes already and
    /// use [`DocServer::handle_request_wire`] directly). A message that
    /// cannot be represented on the wire (e.g. a token longer than 8
    /// bytes) is answered `4.00 Bad Request` rather than processed —
    /// with the token truncated to 8 bytes so the reply itself stays
    /// encodable.
    pub fn handle_request_from(&self, peer: u64, req: &CoapMessage, now_ms: u64) -> CoapMessage {
        if req.token.len() > 8 {
            bump(&self.stats.requests);
            bump(&self.stats.errors);
            return CoapMessage::ack_reply(
                req.message_id,
                req.token[..8].to_vec(),
                Code::BAD_REQUEST,
            );
        }
        let wire = req.encode();
        match self.handle_request_wire(peer, &wire, now_ms) {
            Ok(resp) => resp,
            Err(_) => {
                bump(&self.stats.requests);
                bump(&self.stats.errors);
                CoapMessage::ack_reply(req.message_id, req.token.clone(), Code::BAD_REQUEST)
            }
        }
    }

    /// Handle one DoC request straight from its datagram bytes — the
    /// zero-copy hot path. The CoAP request is parsed as a borrowed
    /// [`CoapView`] and the DNS query inside it as a borrowed
    /// [`MessageView`] (pure validation plus field access, no per-label
    /// `Vec`s); an owned query is materialized only at the upstream
    /// resolve boundary, where the resolver builds the response from it.
    pub fn handle_request_wire(
        &self,
        peer: u64,
        wire: &[u8],
        now_ms: u64,
    ) -> Result<CoapMessage, CoapError> {
        let req = CoapView::parse(wire)?;
        bump(&self.stats.requests);
        Ok(match self.try_handle(peer, &req, now_ms) {
            Ok(resp) => resp,
            Err(e) => {
                bump(&self.stats.errors);
                let code = match e {
                    DocError::BadEncoding | DocError::BadDnsMessage => Code::BAD_REQUEST,
                    DocError::BadRequest => Code::METHOD_NOT_ALLOWED,
                    _ => Code::INTERNAL_SERVER_ERROR,
                };
                CoapMessage::ack_reply(req.message_id, req.token().to_vec(), code)
            }
        })
    }

    fn try_handle(
        &self,
        peer: u64,
        req: &CoapView<'_>,
        now_ms: u64,
    ) -> Result<CoapMessage, DocError> {
        // Block1 reassembly: a block-wise transferred query (paper
        // Fig. 12a) is accumulated per token; non-final blocks are
        // answered 2.31 Continue. The whole push-or-finish sequence
        // runs under the key's shard lock, so concurrent blocks of one
        // transaction cannot interleave mid-assembly.
        enum Block1Outcome {
            Done(Vec<u8>),
            Continue,
            Bad,
        }
        let mut reassembled: Option<Vec<u8>> = None;
        if let Some(Ok(block1)) = BlockOpt::from_view(req, OptionNumber::BLOCK1) {
            let key = (peer, req.token().to_vec());
            let outcome = self.block1_assembly.with_shard_mut(&key, |shard| {
                let assembler = shard.entry(key.clone()).or_default();
                match assembler.push(block1, req.payload()) {
                    Ok(Some(full)) => {
                        shard.remove(&key);
                        Block1Outcome::Done(full)
                    }
                    Ok(None) => Block1Outcome::Continue,
                    Err(_) => {
                        shard.remove(&key);
                        Block1Outcome::Bad
                    }
                }
            });
            match outcome {
                Block1Outcome::Done(full) => reassembled = Some(full),
                Block1Outcome::Continue => {
                    return Ok(doc_coap::block::continue_reply(
                        req.message_id,
                        req.token().to_vec(),
                        block1,
                    ));
                }
                Block1Outcome::Bad => return Err(DocError::BadRequest),
            }
        }

        // Block2 continuation: serve the next block of a response we
        // already prepared.
        if let Some(Ok(block2)) = BlockOpt::from_view(req, OptionNumber::BLOCK2) {
            if block2.num > 0 {
                if let Some(payload) = self.block_state.get_cloned(&(peer, req.token().to_vec())) {
                    let server = Block2Server::new(payload, block2.size())
                        .map_err(|_| DocError::BadRequest)?;
                    let (slice, opt) = server
                        .block(block2.num, block2.size())
                        .map_err(|_| DocError::BadRequest)?;
                    let mut resp =
                        CoapMessage::ack_reply(req.message_id, req.token().to_vec(), Code::CONTENT);
                    resp.set_option(opt.to_option(OptionNumber::BLOCK2));
                    resp.payload = slice;
                    bump(&self.stats.full_responses);
                    return Ok(resp);
                }
            }
        }

        // FETCH/POST queries stay borrowed from the datagram (or the
        // reassembled body); only GET's base64url variable is decoded
        // into an owned buffer. Any other method is rejected by
        // `extract_query_view` regardless of Block1 reassembly.
        let query_bytes: Cow<'_, [u8]> = match reassembled {
            Some(full) if matches!(req.code, Code::FETCH | Code::POST) => {
                if full.is_empty() {
                    return Err(DocError::BadRequest);
                }
                Cow::Owned(full)
            }
            _ => extract_query_view(req)?,
        };
        // Validate the DNS query in place; materialize the owned query
        // only for the upstream resolver, which builds the response
        // message from it.
        let qview = MessageView::parse(&query_bytes).map_err(|_| DocError::BadDnsMessage)?;
        let query = qview.to_owned();
        let resolved = self.upstream.resolve(&query, now_ms);
        let prepared = self.prepare(&resolved);

        // ETag revalidation: if the client presented the current ETag,
        // confirm with 2.03 Valid carrying only ETag + Max-Age.
        if let Some(etag_opt) = req.option(OptionNumber::ETAG) {
            if etag_opt.value == prepared.etag {
                bump(&self.stats.validations);
                let mut resp =
                    CoapMessage::ack_reply(req.message_id, req.token().to_vec(), Code::VALID);
                resp.set_option(CoapOption::new(OptionNumber::ETAG, prepared.etag));
                resp.set_option(CoapOption::uint(OptionNumber::MAX_AGE, prepared.max_age));
                return Ok(resp);
            }
        }

        bump(&self.stats.full_responses);
        let mut resp = CoapMessage::ack_reply(req.message_id, req.token().to_vec(), Code::CONTENT);
        resp.set_option(CoapOption::new(OptionNumber::ETAG, prepared.etag.clone()));
        resp.set_option(CoapOption::uint(OptionNumber::MAX_AGE, prepared.max_age));
        resp.set_option(CoapOption::uint(
            OptionNumber::CONTENT_FORMAT,
            CONTENT_FORMAT_DNS_MESSAGE as u32,
        ));

        // Proactive Block2 slicing.
        let requested_size = BlockOpt::from_view(req, OptionNumber::BLOCK2)
            .and_then(|r| r.ok())
            .map(|b| b.size());
        let slice_size = requested_size.or(self.block_size);
        match slice_size {
            Some(size) if prepared.payload.len() > size => {
                self.block_state
                    .insert((peer, req.token().to_vec()), prepared.payload.clone());
                let server =
                    Block2Server::new(prepared.payload, size).map_err(|_| DocError::BadRequest)?;
                let (slice, opt) = server.block(0, size).map_err(|_| DocError::BadRequest)?;
                resp.set_option(opt.to_option(OptionNumber::BLOCK2));
                resp.payload = slice;
            }
            _ => {
                resp.payload = prepared.payload;
            }
        }
        Ok(resp)
    }

    fn prepare(&self, resolved: &Message) -> PreparedResponse {
        prepare_response(self.policy, resolved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::{build_request, DocMethod};
    use doc_coap::msg::MsgType;

    fn name() -> Name {
        Name::parse("name-01234.c.example.org").unwrap()
    }

    fn server(policy: CachePolicy) -> DocServer {
        let up = MockUpstream::new(1, 300, 300);
        up.add_aaaa(name(), 1);
        DocServer::new(policy, up)
    }

    fn query_bytes() -> Vec<u8> {
        let mut q = Message::query(0, name(), RecordType::Aaaa);
        q.canonicalize_id();
        q.encode()
    }

    fn fetch_req(mid: u16) -> CoapMessage {
        build_request(
            DocMethod::Fetch,
            &query_bytes(),
            MsgType::Con,
            mid,
            vec![mid as u8],
        )
        .unwrap()
    }

    #[test]
    fn resolves_fetch_request() {
        let s = server(CachePolicy::EolTtls);
        let resp = s.handle_request(&fetch_req(1), 0);
        assert_eq!(resp.code, Code::CONTENT);
        assert_eq!(resp.max_age(), 300);
        assert!(resp.option(OptionNumber::ETAG).is_some());
        let msg = Message::decode(&resp.payload).unwrap();
        assert_eq!(msg.answers.len(), 1);
        assert_eq!(msg.answers[0].ttl, 0, "EOL TTLs zeroed");
        assert_eq!(msg.header.rcode, Rcode::NoError);
    }

    /// The wire entry point (borrowed-view hot path) matches the owned
    /// one byte for byte, including error replies.
    #[test]
    fn wire_path_matches_owned_path() {
        let s1 = server(CachePolicy::EolTtls);
        let s2 = server(CachePolicy::EolTtls);
        let req = fetch_req(1);
        let owned = s1.handle_request(&req, 0);
        let via_wire = s2.handle_request_wire(0, &req.encode(), 0).unwrap();
        assert_eq!(owned, via_wire);
        // Malformed DNS payload → 4.00 via both paths.
        let bad = build_request(DocMethod::Fetch, &[1, 2, 3], MsgType::Con, 2, vec![2]).unwrap();
        assert_eq!(
            s1.handle_request(&bad, 0),
            s2.handle_request_wire(0, &bad.encode(), 0).unwrap()
        );
        // Malformed CoAP datagram is rejected, not panicked on.
        assert!(s2.handle_request_wire(0, &[0xFF], 0).is_err());
    }

    #[test]
    fn doh_like_keeps_ttls() {
        let s = server(CachePolicy::DohLike);
        let resp = s.handle_request(&fetch_req(1), 0);
        let msg = Message::decode(&resp.payload).unwrap();
        assert_eq!(msg.answers[0].ttl, 300);
    }

    #[test]
    fn get_and_post_also_work() {
        for method in [DocMethod::Get, DocMethod::Post] {
            let s = server(CachePolicy::EolTtls);
            let req = build_request(method, &query_bytes(), MsgType::Con, 5, vec![5]).unwrap();
            let resp = s.handle_request(&req, 0);
            assert_eq!(resp.code, Code::CONTENT, "{method:?}");
        }
    }

    #[test]
    fn nxdomain_for_unknown_name() {
        let up = MockUpstream::new(1, 60, 60);
        up.add_aaaa(name(), 1);
        let s = DocServer::new(CachePolicy::EolTtls, up);
        let mut q = Message::query(
            0,
            Name::parse("other.example.org").unwrap(),
            RecordType::Aaaa,
        );
        q.canonicalize_id();
        let req = build_request(DocMethod::Fetch, &q.encode(), MsgType::Con, 1, vec![1]).unwrap();
        let resp = s.handle_request(&req, 0);
        assert_eq!(resp.code, Code::CONTENT);
        let msg = Message::decode(&resp.payload).unwrap();
        assert_eq!(msg.header.rcode, Rcode::NxDomain);
        assert!(msg.answers.is_empty());
    }

    #[test]
    fn etag_revalidation_valid() {
        let s = server(CachePolicy::EolTtls);
        let resp1 = s.handle_request(&fetch_req(1), 0);
        let etag = resp1.option(OptionNumber::ETAG).unwrap().value.clone();
        // Client revalidates with the ETag (records unchanged).
        let mut req2 = fetch_req(2);
        req2.set_option(CoapOption::new(OptionNumber::ETAG, etag.clone()));
        let resp2 = s.handle_request(&req2, 1000);
        assert_eq!(resp2.code, Code::VALID);
        assert!(resp2.payload.is_empty());
        assert_eq!(resp2.option(OptionNumber::ETAG).unwrap().value, etag);
        assert_eq!(s.stats().validations, 1);
    }

    /// Fig. 3 steps 3/4: when a revalidation hits the upstream while
    /// the RRset's TTL has *decayed* (another client refreshed it
    /// earlier), DoH-like revalidation fails (TTL change ⇒ new ETag ⇒
    /// full transfer) while EOL TTLs still validates.
    #[test]
    fn revalidation_across_ttl_refresh() {
        let mk = |policy| {
            let up = MockUpstream::new(7, 5, 5);
            up.add_aaaa(name(), 1);
            DocServer::new(policy, up)
        };
        for (policy, expect_valid) in [(CachePolicy::DohLike, false), (CachePolicy::EolTtls, true)]
        {
            let s = mk(policy);
            // t=0: our client caches the response (TTL 5, ETag e1).
            let resp1 = s.handle_request(&fetch_req(1), 0);
            let etag = resp1.option(OptionNumber::ETAG).unwrap().value.clone();
            // t=7 s: another client's query refreshes the RRset.
            s.handle_request(&fetch_req(9), 7_000);
            // t=9 s: we revalidate; remaining TTL is now 3 s ≠ 5 s.
            let mut req2 = fetch_req(2);
            req2.set_option(CoapOption::new(OptionNumber::ETAG, etag));
            let resp2 = s.handle_request(&req2, 9_000);
            if expect_valid {
                assert_eq!(resp2.code, Code::VALID, "{policy:?}");
                assert_eq!(resp2.max_age(), 3);
            } else {
                assert_eq!(resp2.code, Code::CONTENT, "{policy:?}");
                assert!(!resp2.payload.is_empty());
            }
        }
    }

    #[test]
    fn upstream_ttl_decrements_between_queries() {
        let s = server(CachePolicy::DohLike);
        let r1 = s.handle_request(&fetch_req(1), 0);
        assert_eq!(r1.max_age(), 300);
        let r2 = s.handle_request(&fetch_req(2), 100_000);
        assert_eq!(r2.max_age(), 200);
        assert_eq!(s.upstream.ns_queries(), 1);
        assert_eq!(s.upstream.cache_hits(), 1);
    }

    #[test]
    fn malformed_dns_rejected() {
        let s = server(CachePolicy::EolTtls);
        let req = build_request(DocMethod::Fetch, &[1, 2, 3], MsgType::Con, 1, vec![1]).unwrap();
        let resp = s.handle_request(&req, 0);
        assert_eq!(resp.code, Code::BAD_REQUEST);
        assert_eq!(s.stats().errors, 1);
    }

    #[test]
    fn wrong_method_rejected() {
        let s = server(CachePolicy::EolTtls);
        let req =
            CoapMessage::request(Code::PUT, MsgType::Con, 1, vec![1]).with_payload(query_bytes());
        let resp = s.handle_request(&req, 0);
        assert_eq!(resp.code, Code::METHOD_NOT_ALLOWED);
    }

    /// Regression: a Block1-reassembled request must still pass method
    /// validation — a PUT carrying a final Block1 is not a DoC query.
    #[test]
    fn wrong_method_with_block1_rejected() {
        let s = server(CachePolicy::EolTtls);
        let mut req =
            CoapMessage::request(Code::PUT, MsgType::Con, 1, vec![1]).with_payload(query_bytes());
        req.set_option(
            doc_coap::block::BlockOpt::new(0, false, 64)
                .unwrap()
                .to_option(OptionNumber::BLOCK1),
        );
        let resp = s.handle_request(&req, 0);
        assert_eq!(resp.code, Code::METHOD_NOT_ALLOWED);
    }

    #[test]
    fn block2_slicing() {
        let up = MockUpstream::new(1, 300, 300);
        up.add_aaaa(name(), 4); // 4 AAAA records: >100-byte response
        let s = DocServer::new(CachePolicy::EolTtls, up).with_block_size(32);
        let resp0 = s.handle_request(&fetch_req(1), 0);
        assert_eq!(resp0.code, Code::CONTENT);
        let b0 = BlockOpt::from_message(&resp0, OptionNumber::BLOCK2)
            .unwrap()
            .unwrap();
        assert_eq!(b0.num, 0);
        assert!(b0.more);
        assert_eq!(resp0.payload.len(), 32);

        // Fetch remaining blocks and reassemble.
        let mut assembler = doc_coap::block::BlockAssembler::new();
        let mut full = assembler.push(b0, &resp0.payload).unwrap();
        let mut num = 1;
        while full.is_none() {
            // Follow-up blocks reuse the token of the transaction.
            let mut req = fetch_req(1);
            req.message_id = 10 + num as u16;
            req.set_option(
                BlockOpt::new(num, false, 32)
                    .unwrap()
                    .to_option(OptionNumber::BLOCK2),
            );
            let resp = s.handle_request(&req, 0);
            assert_eq!(resp.code, Code::CONTENT);
            let b = BlockOpt::from_message(&resp, OptionNumber::BLOCK2)
                .unwrap()
                .unwrap();
            full = assembler.push(b, &resp.payload).unwrap();
            num += 1;
        }
        let msg = Message::decode(&full.unwrap()).unwrap();
        assert_eq!(msg.answers.len(), 4);
    }

    #[test]
    fn multiple_names_tracked_independently() {
        let n2 = Name::parse("second.example.org").unwrap();
        let up = MockUpstream::new(3, 300, 300);
        up.add_aaaa(name(), 1);
        up.add_a(n2.clone(), 2);
        let s = DocServer::new(CachePolicy::EolTtls, up);
        let mut q2 = Message::query(0, n2, RecordType::A);
        q2.canonicalize_id();
        let req2 = build_request(DocMethod::Fetch, &q2.encode(), MsgType::Con, 9, vec![9]).unwrap();
        let resp = s.handle_request(&req2, 0);
        let msg = Message::decode(&resp.payload).unwrap();
        assert_eq!(msg.answers.len(), 2);
        assert!(matches!(msg.answers[0].data, RecordData::A(_)));
    }
}
