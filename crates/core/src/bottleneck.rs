//! Congested-bottleneck scenario: several DoQ clients share one
//! wireless channel to a resolver and contend under loss, so the
//! choice of congestion controller — [`ControllerKind::FixedRto`]'s
//! fixed 300 ms timer versus the adaptive RTT-tracking recovery of
//! [`ControllerKind::Cubic`] and [`ControllerKind::BbrLite`] — shows
//! up directly in the resolution-latency tail.
//!
//! The scenario is fully deterministic (virtual time, seeded RNG):
//! the same seed and controller always produce the same per-query
//! latencies, which is what lets `bench_gate proxy` assert a strict
//! p99 ordering instead of a statistical one.

use doc_netsim::{LinkKind, Sim, SimEvent, Tag};
use doc_quic::recovery::ControllerKind;
use doc_quic::{doq, establish_pair_with, Connection, QuicEvent};
use doc_time::Instant;

/// PSK shared by every simulated pair (value is irrelevant to the
/// scenario; it only keys the toy handshake).
const PSK: &[u8] = b"bottleneck-psk-0";

/// Timer token used for connection poll wake-ups; query-issue timers
/// use the query index directly, so they stay below this.
const POLL_TOKEN: u64 = u64::MAX;

/// Virtual-time cutoff: queries unresolved after this are abandoned.
const DEADLINE_MS: u64 = 600_000;

/// Stand-in DNS query carried on each stream (size matches the
/// paper's single-record AAAA responses closely enough that every
/// query is one datagram, so the latency tail isolates *recovery*
/// behaviour rather than flow reassembly).
const DNS_QUERY: &[u8] = b"\x00\x30congested-bottleneck-stand-in-dns-query-bytes-42";

/// Scenario parameters.
#[derive(Debug, Clone, Copy)]
pub struct BottleneckConfig {
    /// Congestion controller every client uses.
    pub controller: ControllerKind,
    /// Number of clients contending for the shared channel.
    pub clients: usize,
    /// Queries issued per client.
    pub queries_per_client: usize,
    /// Per-frame loss on every wireless hop, in permille.
    pub loss_permille: u32,
    /// Simulation seed (shared by topology, arrivals, and crypto).
    pub seed: u64,
}

impl Default for BottleneckConfig {
    fn default() -> Self {
        Self {
            controller: ControllerKind::FixedRto,
            clients: 4,
            queries_per_client: 25,
            loss_permille: 20,
            seed: 0xB0_77_1E,
        }
    }
}

/// Scenario outcome, one row per controller in `BENCH_proxy.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct BottleneckResult {
    /// `ControllerKind::name()` of the controller under test.
    pub controller: &'static str,
    /// Loss rate the scenario ran at.
    pub loss_permille: u32,
    /// Total queries issued.
    pub queries: usize,
    /// Queries resolved before the virtual-time deadline.
    pub resolved: usize,
    /// Median resolution latency (ms).
    pub p50_ms: u64,
    /// 99th-percentile resolution latency (ms).
    pub p99_ms: u64,
}

struct ClientState {
    conn: Connection,
    /// stream id -> (query index, issued at).
    inflight: Vec<(u64, usize, Instant)>,
    /// Queries waiting for their arrival timer.
    pending: Vec<usize>,
}

/// Run the congested-bottleneck scenario for one controller.
pub fn run_bottleneck(cfg: &BottleneckConfig) -> BottleneckResult {
    let mut sim = Sim::new(cfg.seed);
    let server_id = cfg.clients;
    for c in 0..cfg.clients {
        sim.add_link(
            c,
            server_id,
            LinkKind::Wireless {
                channel: 0,
                loss_permille: cfg.loss_permille,
            },
        );
        sim.add_route(&[c, server_id]);
    }

    let mut clients: Vec<ClientState> = Vec::with_capacity(cfg.clients);
    let mut servers: Vec<Connection> = Vec::with_capacity(cfg.clients);
    for c in 0..cfg.clients {
        let (cl, sv) = establish_pair_with(cfg.seed.wrapping_add(c as u64), PSK, cfg.controller);
        clients.push(ClientState {
            conn: cl,
            inflight: Vec::new(),
            pending: Vec::new(),
        });
        servers.push(sv);
    }

    // Poisson arrivals per client, offset so clients do not issue in
    // lock-step but still overlap enough to contend on the channel.
    let total = cfg.clients * cfg.queries_per_client;
    let mut latencies: Vec<Option<u64>> = vec![None; total];
    for c in 0..cfg.clients {
        let arrivals = doc_netsim::poisson_arrivals(
            cfg.seed.wrapping_add(0x517E).wrapping_add(c as u64),
            4.0,
            cfg.queries_per_client,
        );
        for (i, t) in arrivals.into_iter().enumerate() {
            let qidx = c * cfg.queries_per_client + i;
            sim.set_timer(c, t, qidx as u64);
        }
    }

    let mut scheduled: Vec<Option<Instant>> = vec![None; cfg.clients + 1];
    while let Some((now, ev)) = sim.next_event() {
        if u64::from(now) > DEADLINE_MS {
            break;
        }
        match ev {
            SimEvent::Timer { node, token } if token == POLL_TOKEN => {
                scheduled[node] = None;
                if node == server_id {
                    for (c, sv) in servers.iter_mut().enumerate() {
                        for d in sv.poll(now).datagrams {
                            sim.send_datagram(server_id, c, d, Tag::Response);
                        }
                    }
                } else {
                    for d in clients[node].conn.poll(now).datagrams {
                        sim.send_datagram(node, server_id, d, Tag::Query);
                    }
                }
            }
            SimEvent::Timer { node, token } => {
                let qidx = token as usize;
                clients[node].pending.push(qidx);
                issue_pending(&mut sim, node, server_id, &mut clients[node], now);
            }
            SimEvent::Datagram { from, to, bytes } if to == server_id => {
                let sv = &mut servers[from];
                let mut replies = Vec::new();
                for ev in sv.handle_datagram(now, &bytes) {
                    match ev {
                        QuicEvent::Transmit(d) => replies.push(d),
                        QuicEvent::Stream { id, data, fin } => {
                            if !fin {
                                continue;
                            }
                            let msg = doq::decode_doq(&data).unwrap_or(&data).to_vec();
                            if let Ok(ds) = sv.send_stream(id, &doq::encode_doq(&msg), true, now) {
                                replies.extend(ds);
                            }
                        }
                        QuicEvent::Established => {}
                    }
                }
                for d in replies {
                    sim.send_datagram(server_id, from, d, Tag::Response);
                }
            }
            SimEvent::Datagram { to, bytes, .. } => {
                let st = &mut clients[to];
                let mut out = Vec::new();
                for ev in st.conn.handle_datagram(now, &bytes) {
                    match ev {
                        QuicEvent::Transmit(d) => out.push(d),
                        QuicEvent::Stream { id, fin, .. } => {
                            if !fin {
                                continue;
                            }
                            if let Some(pos) = st.inflight.iter().position(|&(sid, _, _)| sid == id)
                            {
                                let (_, qidx, issued) = st.inflight.remove(pos);
                                latencies[qidx] = Some((now - issued).as_millis());
                            }
                        }
                        QuicEvent::Established => {}
                    }
                }
                for d in out {
                    sim.send_datagram(to, server_id, d, Tag::Query);
                }
                // Freed quota may let a pending query through now.
                issue_pending(&mut sim, to, server_id, st, now);
            }
        }
        // Re-arm the earliest poll timer for every endpoint whose
        // connection wants a wake-up.
        for c in 0..cfg.clients {
            if let Some(t) = clients[c].conn.next_timeout() {
                if scheduled[c].is_none_or(|s| t < s) {
                    scheduled[c] = Some(t);
                    sim.set_timer(c, t, POLL_TOKEN);
                }
            }
        }
        if let Some(t) = servers.iter().filter_map(|s| s.next_timeout()).min() {
            if scheduled[server_id].is_none_or(|s| t < s) {
                scheduled[server_id] = Some(t);
                sim.set_timer(server_id, t, POLL_TOKEN);
            }
        }
        if latencies.iter().all(|l| l.is_some()) {
            break;
        }
    }

    let mut resolved: Vec<u64> = latencies.iter().flatten().copied().collect();
    resolved.sort_unstable();
    BottleneckResult {
        controller: cfg.controller.name(),
        loss_permille: cfg.loss_permille,
        queries: total,
        resolved: resolved.len(),
        p50_ms: percentile(&resolved, 50),
        p99_ms: percentile(&resolved, 99),
    }
}

/// Issue every pending query whose turn has come, in order.
fn issue_pending(sim: &mut Sim, node: usize, server_id: usize, st: &mut ClientState, now: Instant) {
    while let Some(&qidx) = st.pending.first() {
        let sid = st.conn.open_stream();
        let framed = doq::encode_doq(DNS_QUERY);
        let Ok(datagrams) = st.conn.send_stream(sid, &framed, true, now) else {
            break;
        };
        st.pending.remove(0);
        st.inflight.push((sid, qidx, now));
        for d in datagrams {
            sim.send_datagram(node, server_id, d, Tag::Query);
        }
        // Quota exhausted: the frames were queued inside the
        // connection and will ride out on later polls/acks, so the
        // issue time above still covers the queueing delay.
        if st.conn.bytes_in_flight() >= doc_quic::recovery::INITIAL_WINDOW {
            break;
        }
    }
}

/// Nearest-rank percentile of a sorted slice (0 for empty input).
fn percentile(sorted: &[u64], pct: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (pct * sorted.len() as u64).div_ceil(100).max(1) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_is_deterministic() {
        let cfg = BottleneckConfig {
            clients: 2,
            queries_per_client: 6,
            ..BottleneckConfig::default()
        };
        assert_eq!(run_bottleneck(&cfg), run_bottleneck(&cfg));
    }

    #[test]
    fn lossless_bottleneck_resolves_everything_quickly() {
        let cfg = BottleneckConfig {
            clients: 2,
            queries_per_client: 8,
            loss_permille: 0,
            ..BottleneckConfig::default()
        };
        let r = run_bottleneck(&cfg);
        assert_eq!(r.resolved, r.queries);
        assert!(
            r.p99_ms < 300,
            "lossless p99 {} must beat one RTO",
            r.p99_ms
        );
    }

    #[test]
    fn adaptive_controllers_beat_fixed_rto_under_loss() {
        let base = BottleneckConfig::default();
        let fixed = run_bottleneck(&base);
        assert!(fixed.resolved > 0);
        for kind in [ControllerKind::Cubic, ControllerKind::BbrLite] {
            let r = run_bottleneck(&BottleneckConfig {
                controller: kind,
                ..base
            });
            assert_eq!(r.queries, fixed.queries);
            assert!(
                r.p99_ms < fixed.p99_ms,
                "{}: p99 {} not below fixed_rto {}",
                r.controller,
                r.p99_ms,
                fixed.p99_ms
            );
        }
    }
}
