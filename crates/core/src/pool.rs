//! Multi-worker datagram front-end: a bounded injector ring plus
//! per-worker work-stealing deques fanning request datagrams onto N
//! worker threads.
//!
//! The paper's evaluation is single-node and the whole protocol stack
//! is sans-IO, so scaling across cores is purely a front-end concern:
//! workers pull raw datagrams off the queues and run the *existing*
//! borrowed-view hot path — [`CoapProxy::serve_wire`] for the proxy
//! leg and [`DocServer::handle_request_wire`] for the origin leg —
//! against state that is lock-striped per shard ([`doc_coap::shard`]).
//! Nothing in the protocol logic knows it is being run concurrently.
//!
//! * [`SpmcRing`] — a bounded single-producer/multi-consumer ring of
//!   fixed power-of-two capacity, the pool's shared **injector**. The
//!   producer blocks when the ring is full (closed-loop backpressure:
//!   in-flight work is bounded by the ring), consumers drain in
//!   batches to amortize lock/wake traffic.
//! * [`WorkerDeque`] — one bounded deque per worker: the owner pushes
//!   and pops at the back (LIFO, cache-hot), idle workers steal from
//!   the front (FIFO). A worker that grabs a large injector batch
//!   parks the excess on its own deque, where siblings can steal it.
//! * [`Park`] — sleep/wake coordination: workers with every source
//!   empty park on one condvar; producers pay a single atomic read to
//!   skip the wakeup when nobody sleeps.
//! * [`ProxyPool`] — N workers sharing one `Arc<CoapProxy>` and one
//!   `Arc<DocServer>`; each datagram runs the full client → proxy →
//!   (origin, on a cache miss) → client exchange and the reply is
//!   handed to a caller-supplied sink as a *borrowed* [`Reply`] — the
//!   worker retains the reply buffer, so the steady-state serve loop
//!   allocates nothing (see `BENCH_proxy.json`'s `allocs_per_req`).
//!
//! The queues are transport-agnostic: the closed-loop throughput
//! harness (`doc-bench`) feeds them from a replayed query mix, and the
//! [`crate::io`] providers feed them from `doc-netsim` drains or real
//! UDP sockets through the identical worker code.

use crate::proxy::{CoapProxy, ProxyScratch, WireAction};
use crate::server::DocServer;
use crate::transport::TransportKind;
// The sync primitives come from `doc-check`: outside a model execution
// they are passthroughs to `std::sync`, inside one every operation is
// a scheduling point — so `check_gate` explores the interleavings of
// *this* ring, deque and park, not copies (see `crates/check`).
use doc_check::sync::atomic::{AtomicU64, Ordering};
use doc_check::sync::{Arc, Condvar, Mutex};
use doc_dtls::record::{CipherState, ContentType, Record, RecordSeal};
use std::collections::VecDeque;

/// What wire format the pool's workers speak.
///
/// The CoAP mode runs the full client → proxy → origin exchange (the
/// paper's DoC deployment). The stream modes serve the DoQ/DoH/DoT
/// application layer — parse the framed DNS message, resolve it
/// against the origin's upstream, frame the response — which is the
/// per-request hot path those transports add on top of QUIC-lite
/// (connection crypto is per-session, not per-request, and is measured
/// by the `doc-quic` crate itself).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeMode {
    /// CoAP proxy + origin view path (default).
    Coap,
    /// RFC 9250 2-byte length-prefixed DNS (also the DoT framing).
    Doq,
    /// DoH-lite HEADERS+DATA framing.
    DohLite,
    /// RFC 7858 length-prefixed DNS, one message per datagram.
    Dot,
}

impl ServeMode {
    /// The pool mode serving a transport's application framing.
    pub fn for_transport(kind: TransportKind) -> ServeMode {
        match kind {
            TransportKind::Quic => ServeMode::Doq,
            TransportKind::DohLite => ServeMode::DohLite,
            TransportKind::Dot => ServeMode::Dot,
            _ => ServeMode::Coap,
        }
    }

    /// Artifact label (`BENCH_proxy.json` `transport` field).
    pub fn label(self) -> &'static str {
        match self {
            ServeMode::Coap => "coap",
            ServeMode::Doq => "doq",
            ServeMode::DohLite => "doh",
            ServeMode::Dot => "dot",
        }
    }
}

/// A bounded single-producer/multi-consumer ring buffer.
///
/// Fixed storage allocated once at construction; `push` blocks while
/// the ring is full, `pop`/`pop_batch` block while it is empty. After
/// [`SpmcRing::close`], pushes fail and pops drain the remaining items
/// before returning `None`.
pub struct SpmcRing<T> {
    state: Mutex<RingState<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

struct RingState<T> {
    /// `capacity` slots; `None` = empty slot.
    slots: Box<[Option<T>]>,
    /// Next slot to pop (wraps with the power-of-two mask).
    head: u64,
    /// Next slot to push.
    tail: u64,
    closed: bool,
}

impl<T> RingState<T> {
    fn len(&self) -> usize {
        (self.tail - self.head) as usize
    }
    fn mask(&self) -> u64 {
        self.slots.len() as u64 - 1
    }
}

impl<T> SpmcRing<T> {
    /// Create a ring with `capacity` slots (rounded up to a power of
    /// two, at least 2).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        SpmcRing {
            state: Mutex::new(RingState {
                slots: (0..cap).map(|_| None).collect(),
                head: 0,
                tail: 0,
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Slot count.
    pub fn capacity(&self) -> usize {
        self.state.lock().unwrap().slots.len()
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().len()
    }

    /// Whether the ring is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Push an item, blocking while the ring is full. Returns the item
    /// back if the ring was closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut st = self.state.lock().unwrap();
        while st.len() == st.slots.len() && !st.closed {
            st = self.not_full.wait(st).unwrap();
        }
        if st.closed {
            return Err(item);
        }
        let idx = (st.tail & st.mask()) as usize;
        st.slots[idx] = Some(item);
        st.tail += 1;
        drop(st);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Pop one item, blocking while the ring is empty. Returns `None`
    /// once the ring is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.state.lock().unwrap();
        loop {
            if st.len() > 0 {
                let idx = (st.head & st.mask()) as usize;
                let item = st.slots[idx].take();
                st.head += 1;
                drop(st);
                self.not_full.notify_one();
                return item;
            }
            if st.closed {
                return None;
            }
            st = self.not_empty.wait(st).unwrap();
        }
    }

    /// Pop up to `max` items into `out`, blocking while the ring is
    /// empty. **`out` is cleared at entry**: the batch a call returns
    /// is exactly the batch it drained, so a caller reusing a scratch
    /// buffer across drains can never silently reprocess stale items.
    /// Returns the number of items drained — 0 only once the ring is
    /// closed and drained. Batch draining takes the lock once per
    /// batch instead of once per datagram.
    pub fn pop_batch(&self, out: &mut Vec<T>, max: usize) -> usize {
        out.clear();
        let mut st = self.state.lock().unwrap();
        loop {
            let n = st.len().min(max.max(1));
            if n > 0 {
                for _ in 0..n {
                    let idx = (st.head & st.mask()) as usize;
                    out.push(st.slots[idx].take().expect("occupied slot"));
                    st.head += 1;
                }
                drop(st);
                // Several slots freed: there may be room for more than
                // one producer push and other consumers may still find
                // items.
                self.not_full.notify_all();
                return n;
            }
            if st.closed {
                return 0;
            }
            st = self.not_empty.wait(st).unwrap();
        }
    }

    /// Non-blocking [`SpmcRing::pop_batch`]: drain up to `max` items
    /// if any are immediately available, else return 0 without waiting
    /// (`out` is cleared either way). Work-stealing workers use this
    /// to fall through to their other sources instead of parking on
    /// the ring's condvar.
    pub fn try_pop_batch(&self, out: &mut Vec<T>, max: usize) -> usize {
        out.clear();
        let mut st = self.state.lock().unwrap();
        let n = st.len().min(max.max(1));
        for _ in 0..n {
            let idx = (st.head & st.mask()) as usize;
            out.push(st.slots[idx].take().expect("occupied slot"));
            st.head += 1;
        }
        if n > 0 {
            drop(st);
            self.not_full.notify_all();
        }
        n
    }

    /// Whether the ring is closed *and* fully drained — the worker
    /// termination condition.
    pub fn is_drained(&self) -> bool {
        let st = self.state.lock().unwrap();
        st.closed && st.len() == 0
    }

    /// Close the ring: subsequent pushes fail, pops drain what is left.
    /// Idempotent.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

/// A bounded per-worker deque: the owner pushes and pops at the
/// **back** (LIFO — the freshest datagrams stay cache-hot), thieves
/// steal from the **front** (FIFO — the oldest work migrates first,
/// preserving rough arrival order under imbalance). All operations
/// are non-blocking; sleeping is [`Park`]'s job.
///
/// Built on the model-checkable `doc_check::sync` mutex, so
/// `check_gate`'s `deque-steal`/`deque-drain` models explore the
/// owner-vs-thief interleavings of *this* type.
pub struct WorkerDeque<T> {
    items: Mutex<VecDeque<T>>,
    capacity: usize,
}

impl<T> WorkerDeque<T> {
    /// Create a deque bounded to `capacity` items (at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        WorkerDeque {
            items: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
        }
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.items.lock().unwrap().len()
    }

    /// Whether the deque is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Push one item at the back; returns it back (without blocking)
    /// if the deque is full.
    pub fn push_back(&self, item: T) -> Result<(), T> {
        let mut q = self.items.lock().unwrap();
        if q.len() >= self.capacity {
            return Err(item);
        }
        q.push_back(item);
        Ok(())
    }

    /// Owner drain: pop up to `max` items from the back (LIFO). `out`
    /// is cleared at entry — same contract as [`SpmcRing::pop_batch`].
    pub fn pop_back_batch(&self, out: &mut Vec<T>, max: usize) -> usize {
        out.clear();
        let mut q = self.items.lock().unwrap();
        let n = q.len().min(max.max(1));
        for _ in 0..n {
            out.push(q.pop_back().expect("length checked under the lock"));
        }
        n
    }

    /// Owner bulk push: move `src[keep..]` to the back — as much as
    /// capacity allows, under **one** lock — leaving the first `keep`
    /// items (and any overflow) in `src`. Returns the number moved.
    pub fn push_back_from(&self, src: &mut Vec<T>, keep: usize) -> usize {
        let mut q = self.items.lock().unwrap();
        let room = self.capacity.saturating_sub(q.len());
        let start = keep.max(src.len().saturating_sub(room)).min(src.len());
        let n = src.len() - start;
        q.extend(src.drain(start..));
        n
    }

    /// Thief drain: steal up to `max` items from the front (FIFO).
    /// `out` is cleared at entry.
    pub fn steal_front_batch(&self, out: &mut Vec<T>, max: usize) -> usize {
        out.clear();
        let mut q = self.items.lock().unwrap();
        let n = q.len().min(max.max(1));
        for _ in 0..n {
            out.push(q.pop_front().expect("length checked under the lock"));
        }
        n
    }
}

/// Producer ↔ worker sleep/wake coordination for the work-stealing
/// pool.
///
/// Workers that find every source empty park here; anyone who makes
/// new work reachable (the producer after a push, a worker after
/// offloading stealable work, the close path) calls [`Park::notify`]
/// afterwards. The `parked` counter makes the nobody-sleeps case one
/// atomic read. The lost-wakeup race is closed by operation order
/// under sequential consistency: a worker raises `parked` *before*
/// its final source re-check (inside [`Park::park_until`]), and a
/// notifier publishes the work *before* reading the counter — so
/// either the worker's re-check sees the work, or the notifier's read
/// sees the parked worker and takes the lock to wake it. `check_gate`'s
/// `pool-park` model explores exactly this handoff.
pub struct Park {
    generation: Mutex<u64>,
    wake: Condvar,
    parked: AtomicU64,
}

impl Park {
    /// A park with no sleepers.
    pub fn new() -> Self {
        Park {
            generation: Mutex::new(0),
            wake: Condvar::new(),
            parked: AtomicU64::new(0),
        }
    }

    /// Wake every parked worker. Call *after* the new work (or the
    /// shutdown condition) is visible to their `wake` predicates.
    pub fn notify(&self) {
        if self.parked.load(Ordering::SeqCst) > 0 {
            let mut generation = self.generation.lock().unwrap();
            *generation = generation.wrapping_add(1);
            drop(generation);
            self.wake.notify_all();
        }
    }

    /// Wake one parked worker — the per-publish fast path (one item
    /// of new work needs one server, not a stampede). Shutdown paths
    /// must use [`Park::notify`] so *every* worker observes the close.
    /// The lost-wakeup ordering argument is the same as for `notify`;
    /// under the model checker `notify_one` wakes every waiter, so
    /// the `pool-park` model explores the superset of real schedules.
    pub fn notify_one(&self) {
        if self.parked.load(Ordering::SeqCst) > 0 {
            let mut generation = self.generation.lock().unwrap();
            *generation = generation.wrapping_add(1);
            drop(generation);
            self.wake.notify_one();
        }
    }

    /// Whether any worker is currently parked — one atomic read. Used
    /// as an offload hint: spilling stealable work is only worth its
    /// lock traffic when somebody is idle enough to take it.
    pub fn any_parked(&self) -> bool {
        self.parked.load(Ordering::SeqCst) > 0
    }

    /// Park until `wake` returns true. The predicate is evaluated
    /// under the park lock with this thread already counted in
    /// `parked`, so a concurrent [`Park::notify`] can never be lost.
    pub fn park_until(&self, wake: impl Fn() -> bool) {
        let mut generation = self.generation.lock().unwrap();
        self.parked.fetch_add(1, Ordering::SeqCst);
        while !wake() {
            generation = self.wake.wait(generation).unwrap();
        }
        self.parked.fetch_sub(1, Ordering::SeqCst);
        drop(generation);
    }
}

impl Default for Park {
    fn default() -> Self {
        Self::new()
    }
}

/// A shared free-list of byte buffers — the allocation-recycling link
/// between a producer that must give each [`Datagram`] an owned
/// `wire` and the workers that are done with it. Workers return a
/// whole drain's buffers in one lock acquisition; the producer
/// [`BufferPool::take`]s them back (cleared, capacity intact) instead
/// of allocating. This is what holds the pool's steady-state
/// `allocs_per_req` below 1.
pub struct BufferPool {
    bufs: Mutex<Vec<Vec<u8>>>,
}

impl BufferPool {
    /// A new, empty pool.
    pub fn new() -> Self {
        BufferPool {
            bufs: Mutex::new(Vec::new()),
        }
    }

    /// Take a recycled buffer (empty, capacity preserved), or a fresh
    /// one if the pool is dry.
    pub fn take(&self) -> Vec<u8> {
        let mut buf = self.bufs.lock().unwrap().pop().unwrap_or_default();
        buf.clear();
        buf
    }

    /// Buffers currently pooled.
    pub fn len(&self) -> usize {
        self.bufs.lock().unwrap().len()
    }

    /// Whether the free-list is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Return one spent buffer.
    pub fn put(&self, buf: Vec<u8>) {
        self.bufs.lock().unwrap().push(buf);
    }

    /// Return a batch of spent buffers under one lock acquisition.
    pub fn put_batch(&self, bufs: impl Iterator<Item = Vec<u8>>) {
        self.bufs.lock().unwrap().extend(bufs);
    }
}

impl Default for BufferPool {
    fn default() -> Self {
        Self::new()
    }
}

/// Closes the injector and wakes every parked worker when dropped —
/// including when a worker or the producer unwinds. Without this, a
/// panicking participant would leave the others parked forever
/// instead of letting the scope join and propagate the panic.
struct CloseGuard<'a> {
    ring: &'a SpmcRing<Datagram>,
    park: &'a Park,
}

impl Drop for CloseGuard<'_> {
    fn drop(&mut self) {
        self.ring.close();
        self.park.notify();
    }
}

/// One request datagram entering the pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Datagram {
    /// Peer (client) identifier — scopes block-wise transfer state.
    pub peer: u64,
    /// Caller-chosen sequence number, carried through to the reply.
    pub seq: u64,
    /// Virtual receive time (drives cache freshness).
    pub at: doc_time::Instant,
    /// The CoAP request wire bytes.
    pub wire: Vec<u8>,
}

/// One reply datagram leaving the pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// Peer the reply goes back to.
    pub peer: u64,
    /// Sequence number of the request this answers.
    pub seq: u64,
    /// Index of the worker that served the exchange.
    pub worker: usize,
    /// The CoAP response wire bytes (`None`: the datagram was
    /// malformed and dropped, like a real UDP front-end would).
    pub wire: Option<Vec<u8>>,
}

/// Counters aggregated over one [`ProxyPool::run`] call.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PoolRunStats {
    /// Datagrams pulled off the queues.
    pub processed: u64,
    /// Replies produced.
    pub replies: u64,
    /// Malformed datagrams dropped.
    pub errors: u64,
    /// Per-worker count of successful steals from a sibling's deque
    /// (one entry per worker, indexed by worker id). Empty only for a
    /// default-constructed value.
    pub steals_per_worker: Vec<u64>,
}

impl PoolRunStats {
    /// Total cross-worker steals over the run.
    pub fn total_steals(&self) -> u64 {
        self.steals_per_worker.iter().sum()
    }
}

/// DTLS protection for the pool's reply leg: every reply leaving a
/// worker is sealed as an epoch-`epoch` ApplicationData record, with
/// the whole `pop_batch` drain protected in **one** batched AEAD pass
/// ([`CipherState::seal_batch`]) so the keystream setup is amortized
/// across the drain instead of paid per reply.
pub struct ReplySeal {
    cipher: CipherState,
    epoch: u16,
    /// Next record sequence number; workers reserve a contiguous run
    /// per batch.
    seq: AtomicU64,
}

impl ReplySeal {
    /// Create from the write-direction key-block material.
    pub fn new(key: &[u8; 16], fixed_iv: [u8; 4], epoch: u16) -> Self {
        ReplySeal {
            cipher: CipherState::new(key, fixed_iv),
            epoch,
            seq: AtomicU64::new(0),
        }
    }

    /// Reserve `n` consecutive record sequence numbers.
    fn reserve(&self, n: u64) -> u64 {
        self.seq.fetch_add(n, Ordering::Relaxed)
    }

    /// Seal the batch's reply wires, returning full DTLS record wire
    /// bytes per reply. `wires[i]` is only a reply when `served[i]` is
    /// true (malformed datagrams keep a `None` in the output), so the
    /// worker's reply slab can be passed in borrowed instead of moved.
    fn seal_replies(&self, wires: &[Vec<u8>], served: &[bool]) -> Vec<Option<Vec<u8>>> {
        let n_ok = served.iter().filter(|&&s| s).count() as u64;
        let first = self.reserve(n_ok);
        let items: Vec<RecordSeal<'_>> = wires
            .iter()
            .zip(served)
            .filter(|(_, &s)| s)
            .enumerate()
            .map(|(i, (w, _))| RecordSeal {
                ctype: ContentType::ApplicationData,
                epoch: self.epoch,
                seq: first + i as u64,
                plaintext: w,
            })
            .collect();
        let payloads = self
            .cipher
            .seal_batch(&items)
            .expect("record parameters are valid");
        let mut sealed = items.iter().zip(payloads);
        served
            .iter()
            .map(|&s| {
                s.then(|| {
                    let (item, payload) = sealed.next().expect("one sealed payload per reply");
                    Record {
                        ctype: item.ctype,
                        epoch: item.epoch,
                        seq: item.seq,
                        payload,
                    }
                    .encode()
                })
            })
            .collect()
    }
}

/// QUIC-lite packet protection for the pool's *inbound* leg: each
/// datagram arrives as `header || ciphertext || tag` under these keys,
/// and a worker opens its whole drain in **one** batched keystream
/// pass ([`PacketKeys::open_batch`]) — the decrypt-side mirror of
/// [`ReplySeal`]'s batched seal. Datagrams that fail header parsing or
/// authentication have their wire cleared, so they fall through the
/// serve path as malformed and are counted as errors.
pub struct RequestOpen {
    keys: doc_quic::packet::PacketKeys,
}

/// Headers are 1 flag byte + 2 CID bytes + a varint packet number —
/// never more than 11 bytes; 16 gives slack for the scratch copies
/// the batch-open borrow split needs.
const HEADER_SCRATCH: usize = 16;

impl RequestOpen {
    /// Protect the inbound leg with `keys` (the client-write
    /// direction).
    pub fn new(keys: doc_quic::packet::PacketKeys) -> Self {
        RequestOpen { keys }
    }

    /// Open every datagram in `batch` in place: on success `d.wire`
    /// becomes the plaintext request; on parse/auth failure it is
    /// cleared. Returns the failure count.
    ///
    /// The happy path is a single [`PacketKeys::open_batch`] pass over
    /// the drain. That call is all-or-nothing, so when a batch
    /// contains a forgery the whole batch is retried packet-at-a-time
    /// to salvage the authentic ones — the slow path only runs under
    /// active tampering.
    pub fn open_drain(&self, batch: &mut [Datagram]) -> u64 {
        use doc_quic::packet::{Header, PacketOpen};
        let mut failed = 0u64;
        // Phase 1: parse headers, copying the header bytes out to a
        // scratch array per packet — `PacketOpen` borrows the header
        // immutably and the buffer mutably, which can't both come from
        // the same `d.wire`.
        let mut metas: Vec<Option<(u64, usize)>> = Vec::with_capacity(batch.len());
        let mut headers: Vec<[u8; HEADER_SCRATCH]> = Vec::with_capacity(batch.len());
        for d in batch.iter_mut() {
            let mut scratch = [0u8; HEADER_SCRATCH];
            match Header::decode(&d.wire) {
                Ok(h) if h.len <= HEADER_SCRATCH && h.len <= d.wire.len() => {
                    scratch[..h.len].copy_from_slice(&d.wire[..h.len]);
                    metas.push(Some((h.pn, h.len)));
                }
                _ => {
                    d.wire.clear();
                    metas.push(None);
                    failed += 1;
                }
            }
            headers.push(scratch);
        }
        // Phase 2: one batched open over the parseable packets.
        let mut ok: Vec<bool> = Vec::new();
        {
            let mut opens: Vec<PacketOpen<'_>> = Vec::new();
            for (i, d) in batch.iter_mut().enumerate() {
                if let Some((pn, hlen)) = metas[i] {
                    opens.push(PacketOpen {
                        pn,
                        header: &headers[i][..hlen],
                        buf: &mut d.wire,
                        start: hlen,
                    });
                }
            }
            ok.resize(opens.len(), true);
            if self.keys.open_batch(&mut opens).is_err() {
                // Batch failed atomically (buffers restored): retry
                // each packet alone so one forgery doesn't take the
                // authentic drain down with it.
                for (j, o) in opens.iter_mut().enumerate() {
                    match self.keys.open(o.pn, o.header, &o.buf[o.start..]) {
                        Ok(plain) => {
                            o.buf.truncate(o.start);
                            o.buf.extend_from_slice(&plain);
                        }
                        Err(_) => ok[j] = false,
                    }
                }
            }
        }
        // Phase 3: strip headers off the opened packets, clear the
        // forgeries.
        let mut j = 0;
        for (i, d) in batch.iter_mut().enumerate() {
            if let Some((_, hlen)) = metas[i] {
                if ok[j] {
                    d.wire.drain(..hlen);
                } else {
                    d.wire.clear();
                    failed += 1;
                }
                j += 1;
            }
        }
        failed
    }
}

/// A multi-worker proxy front-end: N threads sharing one thread-safe
/// [`CoapProxy`] and [`DocServer`].
pub struct ProxyPool {
    /// The shared (sharded) caching proxy.
    pub proxy: Arc<CoapProxy>,
    /// The shared origin server.
    pub server: Arc<DocServer>,
    workers: usize,
    mode: ServeMode,
    /// When set, replies leave the pool as DTLS records, batch-sealed
    /// per drain. `None` (the default) keeps the plaintext reply wire.
    seal: Option<ReplySeal>,
    /// When set, inbound datagrams are QUIC-lite protected and each
    /// drain is opened in one batched pass before serving.
    request_open: Option<RequestOpen>,
    /// When set, spent `Datagram::wire` buffers are returned here
    /// after each drain so the producer can reuse them.
    recycle: Option<Arc<BufferPool>>,
    /// Route datagrams to `deques[peer % workers]` instead of the
    /// shared injector (stealing topologies: a hot peer loads one
    /// worker, siblings steal).
    affinity: bool,
}

/// How many datagrams a worker drains from its own deque (or steals)
/// per lock acquisition.
const POP_BATCH: usize = 32;

/// How many datagrams a worker grabs from the shared injector at once;
/// the excess beyond `POP_BATCH` is parked on its own deque where
/// siblings can steal it.
const INJECTOR_GRAB: usize = 128;

/// Per-worker deque bound: big enough to hold an injector grab's
/// offload plus affinity-routed bursts, small enough to keep
/// backpressure meaningful.
const DEQUE_CAPACITY: usize = 256;

impl ProxyPool {
    /// Create a pool of `workers` threads (at least 1) over shared
    /// proxy/server state, speaking CoAP.
    pub fn new(workers: usize, proxy: Arc<CoapProxy>, server: Arc<DocServer>) -> Self {
        Self::with_mode(workers, proxy, server, ServeMode::Coap)
    }

    /// Like [`ProxyPool::new`] with an explicit wire format.
    pub fn with_mode(
        workers: usize,
        proxy: Arc<CoapProxy>,
        server: Arc<DocServer>,
        mode: ServeMode,
    ) -> Self {
        ProxyPool {
            proxy,
            server,
            workers: workers.max(1),
            mode,
            seal: None,
            request_open: None,
            recycle: None,
            affinity: false,
        }
    }

    /// Protect the reply leg: every reply this pool emits becomes a
    /// DTLS ApplicationData record, sealed batch-at-a-time (the crypto
    /// analogue of `pop_batch`'s lock amortization).
    pub fn with_reply_seal(mut self, seal: ReplySeal) -> Self {
        self.seal = Some(seal);
        self
    }

    /// Protect the inbound leg: every datagram entering the pool is a
    /// QUIC-lite packet opened (batch-at-a-time) before serving.
    pub fn with_request_open(mut self, open: RequestOpen) -> Self {
        self.request_open = Some(open);
        self
    }

    /// Recycle spent `Datagram::wire` buffers through `pool` — the
    /// producer side of the closed loop takes them back with
    /// [`BufferPool::take`] instead of allocating.
    pub fn with_wire_recycling(mut self, pool: Arc<BufferPool>) -> Self {
        self.recycle = Some(pool);
        self
    }

    /// Route each datagram to the deque of worker `peer % workers`
    /// instead of the shared injector. With a skewed peer mix this
    /// loads some workers and leaves others idle — which is exactly
    /// what exercises stealing.
    pub fn with_affinity(mut self, affinity: bool) -> Self {
        self.affinity = affinity;
        self
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The wire format the workers speak.
    pub fn mode(&self) -> ServeMode {
        self.mode
    }

    /// Serve one request datagram end to end on the calling thread:
    /// proxy view path, then (on miss/revalidation) the origin's view
    /// path, then the upstream response re-entering the proxy. Returns
    /// the reply wire bytes, or `None` for malformed datagrams.
    ///
    /// `upstream_buf` is a scratch buffer reused across calls for the
    /// re-encoded upstream request.
    pub fn serve(&self, d: &Datagram, upstream_buf: &mut Vec<u8>) -> Option<Vec<u8>> {
        let mut scratch = ProxyScratch::default();
        let mut out = Vec::new();
        self.serve_into(d, &mut scratch, upstream_buf, &mut out)
            .then_some(out)
    }

    /// The allocation-free serve core: the reply wire is written into
    /// `out` (cleared first), `scratch`/`upstream_buf` are reused
    /// across calls. Returns whether a reply was produced.
    fn serve_into(
        &self,
        d: &Datagram,
        scratch: &mut ProxyScratch,
        upstream_buf: &mut Vec<u8>,
        out: &mut Vec<u8>,
    ) -> bool {
        out.clear();
        if self.mode != ServeMode::Coap {
            let Some(wire) = self.serve_stream(d) else {
                return false;
            };
            out.extend_from_slice(&wire);
            return true;
        }
        match self
            .proxy
            .serve_wire(&d.wire, d.at.as_millis(), scratch, out)
        {
            Ok(WireAction::Responded) => true,
            Ok(WireAction::Forward {
                request,
                exchange_id,
            }) => {
                upstream_buf.clear();
                request.encode_into(upstream_buf);
                let Ok(upstream_resp) =
                    self.server
                        .handle_request_wire(d.peer, upstream_buf, d.at.as_millis())
                else {
                    return false;
                };
                match self.proxy.handle_upstream_response(
                    exchange_id,
                    &upstream_resp,
                    d.at.as_millis(),
                ) {
                    Some(resp) => {
                        out.clear();
                        resp.encode_into(out);
                        true
                    }
                    None => false,
                }
            }
            Err(_) => false,
        }
    }

    /// Serve one framed DNS request in a stream mode: unframe, resolve
    /// against the origin's upstream, re-frame. Malformed framing (or
    /// a non-DNS body) drops the datagram, like the CoAP path.
    fn serve_stream(&self, d: &Datagram) -> Option<Vec<u8>> {
        let dns = match self.mode {
            ServeMode::Doq | ServeMode::Dot => doc_quic::doq::decode_doq(&d.wire).ok()?,
            ServeMode::DohLite => doc_quic::doq::decode_doh(&d.wire).ok()?,
            ServeMode::Coap => unreachable!("handled by serve"),
        };
        let query = doc_dns::Message::decode(dns).ok()?;
        let resp = self.server.upstream.resolve(&query, d.at.as_millis());
        self.server.count_raw_dns_response();
        let bytes = resp.encode();
        Some(match self.mode {
            ServeMode::Doq | ServeMode::Dot => doc_quic::doq::encode_doq(&bytes),
            ServeMode::DohLite => doc_quic::doq::encode_doh_response(&bytes),
            ServeMode::Coap => unreachable!("handled by serve"),
        })
    }

    /// Fan `datagrams` over the worker threads — through a bounded
    /// injector ring of `ring_capacity` slots (or, with
    /// [`ProxyPool::with_affinity`], straight onto the per-worker
    /// deques) — and hand every reply to `on_reply` (called from
    /// worker threads; replies arrive in completion order, not
    /// submission order). The `Reply` is **borrowed**: the worker
    /// keeps ownership of the reply buffer and reuses it on the next
    /// drain, so a sink that only inspects or copies out costs the
    /// pool nothing.
    ///
    /// The calling thread is the single producer: it blocks while the
    /// injector is full, which bounds in-flight work and gives
    /// closed-loop behaviour when the iterator is replayed load.
    pub fn run<I>(
        &self,
        ring_capacity: usize,
        datagrams: I,
        on_reply: &(dyn Fn(&Reply) + Sync),
    ) -> PoolRunStats
    where
        I: IntoIterator<Item = Datagram>,
    {
        let injector: SpmcRing<Datagram> = SpmcRing::new(ring_capacity);
        let deques: Vec<WorkerDeque<Datagram>> = (0..self.workers)
            .map(|_| WorkerDeque::new(DEQUE_CAPACITY))
            .collect();
        let park = Park::new();
        let steals: Vec<AtomicU64> = (0..self.workers).map(|_| AtomicU64::new(0)).collect();
        let processed = AtomicU64::new(0);
        let replies = AtomicU64::new(0);
        let errors = AtomicU64::new(0);
        std::thread::scope(|scope| {
            // The producer needs the same unwind protection as the
            // workers: if the datagram iterator panics, the scope body
            // unwinds before the explicit close below, and scope()
            // would join workers parked on the empty queues forever.
            let _producer_guard = CloseGuard {
                ring: &injector,
                park: &park,
            };
            for worker in 0..self.workers {
                let ctx = WorkerCtx {
                    injector: &injector,
                    deques: &deques,
                    park: &park,
                    steals: &steals,
                    index: worker,
                    blocking_injector: !(self.affinity && self.workers > 1),
                };
                let processed = &processed;
                let replies = &replies;
                let errors = &errors;
                scope.spawn(move || {
                    // If this worker unwinds (serve or on_reply
                    // panicking), the guard closes the injector and
                    // wakes everyone so the producer unblocks and the
                    // scope can join and propagate the panic instead
                    // of deadlocking.
                    let _close_guard = CloseGuard {
                        ring: ctx.injector,
                        park: ctx.park,
                    };
                    let mut batch: Vec<Datagram> = Vec::with_capacity(INJECTOR_GRAB);
                    let mut scratch = WorkerScratch::default();
                    while ctx.fetch(&mut batch) {
                        if let Some(open) = &self.request_open {
                            open.open_drain(&mut batch);
                        }
                        self.serve_batch(
                            worker,
                            &mut batch,
                            &mut scratch,
                            processed,
                            replies,
                            errors,
                            on_reply,
                        );
                    }
                });
            }
            for d in datagrams {
                if self.affinity && self.workers > 1 {
                    let target = (d.peer % self.workers as u64) as usize;
                    match deques[target].push_back(d) {
                        Ok(()) => {
                            park.notify_one();
                            continue;
                        }
                        // Deque full: spill to the shared injector,
                        // where the target (or a thief) will find it.
                        Err(d) => {
                            if injector.push(d).is_err() {
                                break;
                            }
                            park.notify_one();
                        }
                    }
                } else if injector.push(d).is_err() {
                    // No park wake needed: without affinity the
                    // workers sleep in the ring's condvar, which
                    // `push` already notifies.
                    break;
                }
            }
            injector.close();
            park.notify();
        });
        PoolRunStats {
            processed: processed.load(Ordering::Relaxed),
            replies: replies.load(Ordering::Relaxed),
            errors: errors.load(Ordering::Relaxed),
            steals_per_worker: steals.iter().map(|s| s.load(Ordering::Relaxed)).collect(),
        }
    }

    /// Serve one fetched drain: open/serve every datagram into the
    /// worker's reply slab, batch-seal if the reply leg is protected,
    /// emit borrowed [`Reply`]s, then recycle the spent wire buffers.
    #[allow(clippy::too_many_arguments)]
    fn serve_batch(
        &self,
        worker: usize,
        batch: &mut Vec<Datagram>,
        scratch: &mut WorkerScratch,
        processed: &AtomicU64,
        replies: &AtomicU64,
        errors: &AtomicU64,
        on_reply: &(dyn Fn(&Reply) + Sync),
    ) {
        let WorkerScratch {
            reply_bufs,
            served,
            proxy,
            upstream,
        } = scratch;
        // The reply slab: one buffer per batch slot, grown once to the
        // largest drain seen and then reused forever. `serve_into`
        // clears each buffer before writing, so nothing from a
        // previous batch can leak across the boundary.
        while reply_bufs.len() < batch.len() {
            reply_bufs.push(Vec::new());
        }
        served.clear();
        for (i, d) in batch.iter().enumerate() {
            let ok = self.serve_into(d, proxy, upstream, &mut reply_bufs[i]);
            processed.fetch_add(1, Ordering::Relaxed);
            match ok {
                true => replies.fetch_add(1, Ordering::Relaxed),
                false => errors.fetch_add(1, Ordering::Relaxed),
            };
            served.push(ok);
        }
        // When the reply leg is protected, the whole drain is sealed
        // in one batched AEAD pass before emitting.
        let mut sealed = self
            .seal
            .as_ref()
            .map(|s| s.seal_replies(&reply_bufs[..batch.len()], served));
        for (i, d) in batch.iter().enumerate() {
            let wire = match &mut sealed {
                Some(wires) => wires[i].take(),
                None => served[i].then(|| std::mem::take(&mut reply_bufs[i])),
            };
            let reply = Reply {
                peer: d.peer,
                seq: d.seq,
                worker,
                wire,
            };
            on_reply(&reply);
            if sealed.is_none() {
                // Reclaim the slab buffer the borrowed reply carried.
                if let Some(buf) = reply.wire {
                    reply_bufs[i] = buf;
                }
            }
        }
        match &self.recycle {
            Some(recycle) => recycle.put_batch(batch.drain(..).map(|mut d| {
                d.wire.clear();
                d.wire
            })),
            None => batch.clear(),
        }
    }
}

/// Per-worker reusable scratch state: the reply slab, the served
/// flags, and the proxy/upstream encode buffers. Everything here is
/// grown during warmup and reused for the rest of the run — the
/// steady-state serve loop allocates nothing.
#[derive(Default)]
struct WorkerScratch {
    reply_bufs: Vec<Vec<u8>>,
    served: Vec<bool>,
    proxy: ProxyScratch,
    upstream: Vec<u8>,
}

/// A worker's view of the pool's queues: its own deque, the shared
/// injector, every sibling deque (for stealing), and the park.
struct WorkerCtx<'a> {
    injector: &'a SpmcRing<Datagram>,
    deques: &'a [WorkerDeque<Datagram>],
    park: &'a Park,
    steals: &'a [AtomicU64],
    index: usize,
    /// When the producer feeds only the injector (affinity off), the
    /// deques can never gain work while this worker sleeps: offload
    /// requires a parked sibling, and on this path nobody parks. So
    /// instead of the park handshake, an idle worker blocks inside
    /// the injector's own condvar — one lock to sleep and wake, the
    /// same wait path the plain ring pool used.
    blocking_injector: bool,
}

impl WorkerCtx<'_> {
    /// Fetch the next drain into `batch` (cleared first). Source
    /// priority: own deque (LIFO, cache-hot) → shared injector →
    /// steal from a sibling (FIFO). Returns `false` once every source
    /// is empty and the injector is closed; parks in between.
    fn fetch(&self, batch: &mut Vec<Datagram>) -> bool {
        if self.blocking_injector {
            // The deques are provably empty on this path (see the
            // field doc), so the fetch collapses to the plain
            // blocking ring pop: one lock to grab a drain, the
            // ring's own condvar to sleep until the producer pushes
            // or closes.
            return self.injector.pop_batch(batch, INJECTOR_GRAB) > 0;
        }
        loop {
            if self.deques[self.index].pop_back_batch(batch, POP_BATCH) > 0 {
                return true;
            }
            if self.injector.try_pop_batch(batch, INJECTOR_GRAB) > 0 {
                self.offload(batch);
                return true;
            }
            for k in 1..self.deques.len() {
                let victim = (self.index + k) % self.deques.len();
                if self.deques[victim].steal_front_batch(batch, POP_BATCH) > 0 {
                    self.steals[self.index].fetch_add(1, Ordering::Relaxed);
                    return true;
                }
            }
            if self.drained() {
                return false;
            }
            self.park.park_until(|| self.has_work() || self.drained());
        }
    }

    /// Keep `POP_BATCH` datagrams of a large injector grab and park
    /// the excess on our own deque, where siblings can steal it.
    fn offload(&self, batch: &mut Vec<Datagram>) {
        // A single worker has no sibling to steal; keep the whole
        // grab so replies stay in submission order.
        // Spilling only pays off when an idle sibling can actually
        // steal the spill; while everyone is busy, serving the whole
        // grab in-line beats the extra deque round-trip.
        if self.deques.len() <= 1 || batch.len() <= POP_BATCH || !self.park.any_parked() {
            return;
        }
        // One lock for the whole spill; whatever exceeds the deque's
        // room just stays in this batch and gets served now.
        if self.deques[self.index].push_back_from(batch, POP_BATCH) > 0 {
            self.park.notify();
        }
    }

    /// Whether any queue currently holds work.
    fn has_work(&self) -> bool {
        !self.injector.is_empty() || self.deques.iter().any(|d| !d.is_empty())
    }

    /// The termination condition: injector closed and drained, every
    /// deque empty.
    fn drained(&self) -> bool {
        self.injector.is_drained() && self.deques.iter().all(|d| d.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::{build_request, DocMethod};
    use crate::policy::CachePolicy;
    use crate::server::MockUpstream;
    use doc_coap::msg::{Code, MsgType};
    use doc_coap::view::CoapView;
    use doc_dns::{Message, Name, RecordType};
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn ring_is_bounded_fifo() {
        let ring = SpmcRing::new(4);
        assert_eq!(ring.capacity(), 4);
        for i in 0..4 {
            ring.push(i).unwrap();
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.pop(), Some(0));
        assert_eq!(ring.pop(), Some(1));
        ring.push(4).unwrap();
        let mut batch = Vec::new();
        assert_eq!(ring.pop_batch(&mut batch, 8), 3);
        assert_eq!(batch, vec![2, 3, 4]);
        ring.close();
        assert_eq!(ring.pop(), None);
        assert!(ring.push(9).is_err());
    }

    #[test]
    fn ring_full_push_blocks_until_pop() {
        let ring = Arc::new(SpmcRing::new(2));
        ring.push(1u32).unwrap();
        ring.push(2).unwrap();
        let r2 = Arc::clone(&ring);
        let producer = std::thread::spawn(move || r2.push(3).is_ok());
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(ring.pop(), Some(1), "push of 3 must still be parked");
        assert!(producer.join().unwrap());
        assert_eq!(ring.pop(), Some(2));
        assert_eq!(ring.pop(), Some(3));
    }

    #[test]
    fn ring_multi_consumer_partitions_items() {
        let ring = Arc::new(SpmcRing::new(8));
        let seen = Arc::new(Mutex::new(Vec::new()));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let ring = Arc::clone(&ring);
                let seen = Arc::clone(&seen);
                std::thread::spawn(move || {
                    let mut batch = Vec::new();
                    while ring.pop_batch(&mut batch, 4) > 0 {
                        seen.lock().unwrap().append(&mut batch);
                    }
                })
            })
            .collect();
        for i in 0..100u32 {
            ring.push(i).unwrap();
        }
        ring.close();
        for c in consumers {
            c.join().unwrap();
        }
        let mut got = seen.lock().unwrap().clone();
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>(), "exactly-once delivery");
    }

    fn fetch_wire(name: &str, seq: u64) -> Vec<u8> {
        let mut q = Message::query(0, Name::parse(name).unwrap(), RecordType::Aaaa);
        q.canonicalize_id();
        build_request(
            DocMethod::Fetch,
            &q.encode(),
            MsgType::Con,
            seq as u16,
            vec![seq as u8, (seq >> 8) as u8],
        )
        .unwrap()
        .encode()
    }

    fn pool(workers: usize, names: &[&str]) -> ProxyPool {
        let up = MockUpstream::new(7, 3600, 3600);
        for n in names {
            up.add_aaaa(Name::parse(n).unwrap(), 1);
        }
        ProxyPool::new(
            workers,
            Arc::new(CoapProxy::with_shards(256, 8)),
            Arc::new(DocServer::new(CachePolicy::EolTtls, up)),
        )
    }

    #[test]
    fn pool_serves_all_datagrams_with_matching_exchanges() {
        let names = ["a.example.org", "b.example.org", "c.example.org"];
        let pool = pool(4, &names);
        let total = 300u64;
        let replies = Mutex::new(Vec::new());
        let stats = pool.run(
            16,
            (0..total).map(|seq| Datagram {
                peer: seq % 5,
                seq,
                at: doc_time::Instant::from_millis(seq),
                wire: fetch_wire(names[(seq % 3) as usize], seq),
            }),
            &|r| replies.lock().unwrap().push(r.clone()),
        );
        assert_eq!(stats.processed, total);
        assert_eq!(stats.replies, total);
        assert_eq!(stats.errors, 0);
        let replies = replies.lock().unwrap();
        assert_eq!(replies.len(), total as usize);
        for r in replies.iter() {
            // Each reply carries its own request's token and MID — no
            // cross-exchange mix-ups under concurrency.
            let wire = r.wire.as_ref().expect("reply present");
            let v = CoapView::parse(wire).unwrap();
            assert_eq!(v.code, Code::CONTENT, "seq {}", r.seq);
            assert_eq!(v.message_id, r.seq as u16);
            assert_eq!(v.token(), &[r.seq as u8, (r.seq >> 8) as u8]);
        }
        // 3 distinct names with 1-hour TTLs: all but the first touches
        // are proxy cache hits. Concurrent first touches can each miss
        // before the insert lands, so the miss count is bounded by
        // names × workers, not names.
        let p = pool.proxy.stats();
        assert_eq!(p.requests, total as u32);
        assert!(p.cache_hits >= total as u32 - 12, "hits {}", p.cache_hits);
    }

    #[test]
    fn stream_modes_serve_framed_dns() {
        use doc_quic::doq;
        for mode in [ServeMode::Doq, ServeMode::DohLite, ServeMode::Dot] {
            let up = MockUpstream::new(7, 3600, 3600);
            up.add_aaaa(Name::parse("a.example.org").unwrap(), 1);
            let pool = ProxyPool::with_mode(
                2,
                Arc::new(CoapProxy::with_shards(64, 4)),
                Arc::new(DocServer::new(CachePolicy::EolTtls, up)),
                mode,
            );
            assert_eq!(pool.mode(), mode);
            let mut q = Message::query(9, Name::parse("a.example.org").unwrap(), RecordType::Aaaa);
            q.header.rd = true;
            let framed = match mode {
                ServeMode::DohLite => doq::encode_doh_request(&q.encode()),
                _ => doq::encode_doq(&q.encode()),
            };
            let replies = Mutex::new(Vec::new());
            let stats = pool.run(
                8,
                (0..50u64).map(|seq| Datagram {
                    peer: 0,
                    seq,
                    at: doc_time::Instant::from_millis(1),
                    wire: if seq == 13 {
                        vec![0xFF; 3] // malformed framing is dropped
                    } else {
                        framed.clone()
                    },
                }),
                &|r| replies.lock().unwrap().push(r.clone()),
            );
            assert_eq!(stats.processed, 50, "{mode:?}");
            assert_eq!(stats.replies, 49, "{mode:?}");
            assert_eq!(stats.errors, 1, "{mode:?}");
            let replies = replies.lock().unwrap();
            let wire = replies
                .iter()
                .find(|r| r.wire.is_some())
                .and_then(|r| r.wire.clone())
                .expect("a reply");
            let dns = match mode {
                ServeMode::DohLite => doq::decode_doh(&wire).unwrap(),
                _ => doq::decode_doq(&wire).unwrap(),
            };
            let resp = Message::decode(dns).unwrap();
            assert_eq!(resp.header.id, 9, "{mode:?}: response echoes the query ID");
            assert_eq!(resp.answers.len(), 1, "{mode:?}");
        }
    }

    #[test]
    fn pool_drops_malformed_datagrams() {
        let pool = pool(2, &["a.example.org"]);
        let errors = AtomicUsize::new(0);
        let stats = pool.run(
            4,
            (0..10u64).map(|seq| Datagram {
                peer: 0,
                seq,
                at: doc_time::Instant::from_millis(0),
                wire: if seq % 2 == 0 {
                    fetch_wire("a.example.org", seq)
                } else {
                    vec![0xFF, 0x00, 0x01] // not a CoAP datagram
                },
            }),
            &|r| {
                if r.wire.is_none() {
                    errors.fetch_add(1, Ordering::Relaxed);
                }
            },
        );
        assert_eq!(stats.processed, 10);
        assert_eq!(stats.replies, 5);
        assert_eq!(stats.errors, 5);
        assert_eq!(errors.load(Ordering::Relaxed), 5);
    }

    /// A panicking worker must propagate out of `run` (via the scope
    /// join), not leave the producer deadlocked on the full ring.
    #[test]
    fn worker_panic_propagates_instead_of_deadlocking() {
        let pool = pool(1, &["a.example.org"]);
        // Far more datagrams than ring slots, so the producer would
        // park on the full ring if the sole (panicked) worker stopped
        // draining without closing it.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(
                4,
                (0..1000u64).map(|seq| Datagram {
                    peer: 0,
                    seq,
                    at: doc_time::Instant::from_millis(0),
                    wire: fetch_wire("a.example.org", seq),
                }),
                &|_| panic!("reply sink failure"),
            )
        }));
        assert!(result.is_err(), "panic must propagate");
    }

    /// A panicking datagram source must propagate out of `run` the
    /// same way a panicking worker does — not leave the workers parked
    /// on the open ring's condvar.
    #[test]
    fn producer_panic_propagates_instead_of_deadlocking() {
        let pool = pool(2, &["a.example.org"]);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(
                4,
                (0..100u64).map(|seq| {
                    if seq == 50 {
                        panic!("load source failure");
                    }
                    Datagram {
                        peer: 0,
                        seq,
                        at: doc_time::Instant::from_millis(0),
                        wire: fetch_wire("a.example.org", seq),
                    }
                }),
                &|_| {},
            )
        }));
        assert!(result.is_err(), "panic must propagate");
    }

    /// With one worker the sealed pool's output must be byte-exactly
    /// what sealing each plaintext reply sequentially would produce.
    #[test]
    fn sealed_replies_match_sequential_seal() {
        let names = ["a.example.org"];
        let key = [0x4Du8; 16];
        let iv = [9, 8, 7, 6];
        let make_load = || {
            (0..40u64).map(|seq| Datagram {
                peer: 0,
                seq,
                at: doc_time::Instant::from_millis(1),
                wire: fetch_wire("a.example.org", seq),
            })
        };
        // Plaintext reference replies (submission order: 1 worker).
        let plain_pool = pool(1, &names);
        let plain = Mutex::new(Vec::new());
        plain_pool.run(8, make_load(), &|r| plain.lock().unwrap().push(r.clone()));
        let mut plain = plain.lock().unwrap().clone();
        plain.sort_by_key(|r| r.seq);

        let sealed_pool = pool(1, &names).with_reply_seal(ReplySeal::new(&key, iv, 1));
        let sealed = Mutex::new(Vec::new());
        let stats = sealed_pool.run(8, make_load(), &|r| sealed.lock().unwrap().push(r.clone()));
        assert_eq!(stats.replies, 40);
        let mut sealed = sealed.lock().unwrap().clone();
        sealed.sort_by_key(|r| r.seq);

        // One worker drains in submission order, so record seqs are
        // 0..40 in reply order; re-seal the plaintext replies with a
        // fresh cipher and compare byte-for-byte.
        let cipher = CipherState::new(&key, iv);
        for (rec_seq, (p, s)) in plain.iter().zip(sealed.iter()).enumerate() {
            let expect = Record {
                ctype: ContentType::ApplicationData,
                epoch: 1,
                seq: rec_seq as u64,
                payload: cipher
                    .seal(
                        ContentType::ApplicationData,
                        1,
                        rec_seq as u64,
                        p.wire.as_ref().unwrap(),
                    )
                    .unwrap(),
            }
            .encode();
            assert_eq!(s.wire.as_ref().unwrap(), &expect, "reply {}", p.seq);
        }
    }

    /// Multi-worker sealed replies all decrypt to valid responses with
    /// unique record sequence numbers.
    #[test]
    fn sealed_replies_decrypt_under_concurrency() {
        let names = ["a.example.org", "b.example.org"];
        let key = [0x4Du8; 16];
        let iv = [1, 2, 3, 4];
        let pool = pool(4, &names).with_reply_seal(ReplySeal::new(&key, iv, 1));
        let replies = Mutex::new(Vec::new());
        let total = 200u64;
        let stats = pool.run(
            16,
            (0..total).map(|seq| Datagram {
                peer: seq % 3,
                seq,
                at: doc_time::Instant::from_millis(1),
                wire: fetch_wire(names[(seq % 2) as usize], seq),
            }),
            &|r| replies.lock().unwrap().push(r.clone()),
        );
        assert_eq!(stats.replies, total);
        let cipher = CipherState::new(&key, iv);
        let mut seen_seqs = Vec::new();
        for r in replies.lock().unwrap().iter() {
            let wire = r.wire.as_ref().expect("reply present");
            let (rec, used) = Record::decode(wire).unwrap();
            assert_eq!(used, wire.len());
            assert_eq!(rec.ctype, ContentType::ApplicationData);
            assert_eq!(rec.epoch, 1);
            seen_seqs.push(rec.seq);
            let inner = cipher
                .open(rec.ctype, rec.epoch, rec.seq, &rec.payload)
                .unwrap();
            let v = CoapView::parse(&inner).unwrap();
            assert_eq!(v.code, Code::CONTENT);
            assert_eq!(v.message_id, r.seq as u16);
        }
        seen_seqs.sort_unstable();
        seen_seqs.dedup();
        assert_eq!(seen_seqs.len(), total as usize, "record seqs unique");
    }

    #[test]
    fn single_and_multi_worker_agree_on_totals() {
        let names = ["x.example.org", "y.example.org"];
        let total = 200u64;
        let run = |workers| {
            let pool = pool(workers, &names);
            // Prime the cache single-threaded so the measured run has
            // no first-touch races; after that, totals are exact and
            // identical for every worker count.
            let mut buf = Vec::new();
            for (i, n) in names.iter().enumerate() {
                pool.serve(
                    &Datagram {
                        peer: 9,
                        seq: 1000 + i as u64,
                        at: doc_time::Instant::from_millis(0),
                        wire: fetch_wire(n, 1000 + i as u64),
                    },
                    &mut buf,
                );
            }
            let stats = pool.run(
                8,
                (0..total).map(|seq| Datagram {
                    peer: 0,
                    seq,
                    at: doc_time::Instant::from_millis(5), // single instant: no TTL churn
                    wire: fetch_wire(names[(seq % 2) as usize], seq),
                }),
                &|_| {},
            );
            (stats, pool.proxy.stats(), pool.server.stats())
        };
        let (s1, p1, sv1) = run(1);
        let (s4, p4, sv4) = run(4);
        // Steal counts are topology-dependent; the serve totals are
        // what must agree across worker counts.
        assert_eq!(s1.processed, s4.processed);
        assert_eq!(s1.replies, s4.replies);
        assert_eq!(s1.errors, s4.errors);
        assert_eq!(p1.requests, p4.requests);
        assert_eq!(p1.cache_hits, p4.cache_hits);
        assert_eq!(p1.cache_hits, total as u32, "every measured request hits");
        assert_eq!(sv1.full_responses, sv4.full_responses);
    }

    #[test]
    fn deque_owner_lifo_thief_fifo_bounded() {
        let dq = WorkerDeque::new(4);
        for i in 0..4 {
            dq.push_back(i).unwrap();
        }
        assert_eq!(dq.len(), 4);
        assert_eq!(dq.push_back(9), Err(9), "full deque rejects non-blocking");
        let mut out = vec![99]; // stale scratch content must not survive
        assert_eq!(dq.pop_back_batch(&mut out, 2), 2);
        assert_eq!(out, vec![3, 2], "owner pops newest first (LIFO)");
        assert_eq!(dq.steal_front_batch(&mut out, 2), 2);
        assert_eq!(out, vec![0, 1], "thief steals oldest first (FIFO)");
        assert!(dq.is_empty());
        assert_eq!(dq.pop_back_batch(&mut out, 2), 0);
        assert!(out.is_empty(), "batch drains clear the scratch buffer");
    }

    #[test]
    fn park_wakes_on_notify() {
        let park = Arc::new(Park::new());
        let flag = Arc::new(AtomicU64::new(0));
        let (p2, f2) = (Arc::clone(&park), Arc::clone(&flag));
        let sleeper = std::thread::spawn(move || {
            p2.park_until(|| f2.load(Ordering::SeqCst) == 1);
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        // Publish the condition, then notify — the park_until predicate
        // re-check under the lock makes this race-free.
        flag.store(1, Ordering::SeqCst);
        park.notify();
        sleeper.join().unwrap();
    }

    #[test]
    fn buffer_pool_recycles_capacity() {
        let pool = BufferPool::new();
        assert!(pool.is_empty());
        let mut buf = pool.take();
        assert!(buf.is_empty());
        buf.extend_from_slice(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let cap = buf.capacity();
        pool.put(buf);
        assert_eq!(pool.len(), 1);
        let again = pool.take();
        assert!(again.is_empty(), "recycled buffers come back cleared");
        assert_eq!(again.capacity(), cap, "…with their capacity intact");
        pool.put_batch((0..3).map(|_| vec![0u8; 16]));
        assert_eq!(pool.len(), 3);
    }

    /// Affinity routing with a single hot peer loads one worker's
    /// deque; the idle siblings must steal and the totals must still
    /// be exact.
    #[test]
    fn idle_workers_steal_from_hot_worker() {
        let names = ["a.example.org"];
        let pool = pool(4, &names).with_affinity(true);
        let total = 400u64;
        let replies = Mutex::new(Vec::new());
        let stats = pool.run(
            16,
            (0..total).map(|seq| Datagram {
                peer: 1, // every datagram routes to worker 1 % 4
                seq,
                at: doc_time::Instant::from_millis(1),
                wire: fetch_wire("a.example.org", seq),
            }),
            &|r| replies.lock().unwrap().push(r.clone()),
        );
        assert_eq!(stats.processed, total);
        assert_eq!(stats.replies, total);
        assert_eq!(stats.errors, 0);
        assert_eq!(stats.steals_per_worker.len(), 4);
        let replies = replies.lock().unwrap();
        let mut seqs: Vec<u64> = replies.iter().map(|r| r.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (0..total).collect::<Vec<_>>(), "exactly-once");
    }

    fn quic_request_wire(
        keys: &doc_quic::packet::PacketKeys,
        pn: u64,
        plaintext: &[u8],
    ) -> Vec<u8> {
        use doc_quic::packet::{Header, Space};
        let mut wire = Vec::new();
        Header::encode_into(Space::OneRtt, [7, 7], pn, &mut wire);
        let header = wire.clone();
        keys.seal_into(pn, &header, plaintext, &mut wire).unwrap();
        wire
    }

    #[test]
    fn request_open_opens_batch_and_salvages_around_forgery() {
        use doc_quic::packet::PacketKeys;
        let secret = b"psk-material-client-random-bits";
        let keys = PacketKeys::derive(secret, "client write");
        let open = RequestOpen::new(PacketKeys::derive(secret, "client write"));

        let mk = |seq: u64| Datagram {
            peer: 0,
            seq,
            at: doc_time::Instant::from_millis(0),
            wire: quic_request_wire(&keys, seq, &fetch_wire("a.example.org", seq)),
        };
        // Clean batch: single batched pass, every wire becomes the
        // plaintext request.
        let mut batch: Vec<Datagram> = (0..8).map(mk).collect();
        assert_eq!(open.open_drain(&mut batch), 0);
        for d in &batch {
            assert_eq!(d.wire, fetch_wire("a.example.org", d.seq), "seq {}", d.seq);
        }
        // A forged tag and a truncated header inside the batch: the
        // per-packet fallback salvages the authentic packets, the bad
        // ones are cleared and counted.
        let mut batch: Vec<Datagram> = (0..6).map(mk).collect();
        let last = batch[3].wire.len() - 1;
        batch[3].wire[last] ^= 0xFF; // break the AEAD tag
        batch[5].wire.truncate(2); // not even a full header
        assert_eq!(open.open_drain(&mut batch), 2);
        for (i, d) in batch.iter().enumerate() {
            if i == 3 || i == 5 {
                assert!(d.wire.is_empty(), "seq {} dropped", d.seq);
            } else {
                assert_eq!(d.wire, fetch_wire("a.example.org", d.seq), "seq {}", d.seq);
            }
        }
    }

    /// End to end: QUIC-protected CoAP requests in, DTLS-sealed
    /// replies out, both legs batch-processed.
    #[test]
    fn pool_opens_protected_requests_before_serving() {
        use doc_quic::packet::PacketKeys;
        let secret = b"psk-material-client-random-bits";
        let keys = PacketKeys::derive(secret, "client write");
        let pool = pool(2, &["a.example.org"])
            .with_request_open(RequestOpen::new(PacketKeys::derive(secret, "client write")));
        let total = 60u64;
        let replies = Mutex::new(Vec::new());
        let stats = pool.run(
            16,
            (0..total).map(|seq| Datagram {
                peer: 0,
                seq,
                at: doc_time::Instant::from_millis(1),
                wire: if seq == 30 {
                    vec![0xAA; 5] // unparseable header → dropped
                } else {
                    quic_request_wire(&keys, seq, &fetch_wire("a.example.org", seq))
                },
            }),
            &|r| replies.lock().unwrap().push(r.clone()),
        );
        assert_eq!(stats.processed, total);
        assert_eq!(stats.replies, total - 1);
        assert_eq!(stats.errors, 1);
        for r in replies.lock().unwrap().iter() {
            if r.seq == 30 {
                assert!(r.wire.is_none());
            } else {
                let wire = r.wire.as_ref().expect("reply present");
                let v = CoapView::parse(wire).unwrap();
                assert_eq!(v.code, Code::CONTENT, "seq {}", r.seq);
                assert_eq!(v.message_id, r.seq as u16);
            }
        }
    }

    /// The wire-recycling loop: after a run with a [`BufferPool`]
    /// attached, the spent wires are back in the pool (cleared) for
    /// the producer to take.
    #[test]
    fn wire_recycling_returns_buffers_to_pool() {
        let recycle = Arc::new(BufferPool::new());
        let pool = pool(2, &["a.example.org"]).with_wire_recycling(Arc::clone(&recycle));
        let total = 50u64;
        let stats = pool.run(
            8,
            (0..total).map(|seq| Datagram {
                peer: 0,
                seq,
                at: doc_time::Instant::from_millis(1),
                wire: fetch_wire("a.example.org", seq),
            }),
            &|_| {},
        );
        assert_eq!(stats.replies, total);
        assert_eq!(
            recycle.len(),
            total as usize,
            "every wire buffer recycled exactly once"
        );
        assert!(recycle.take().is_empty(), "recycled wires come back empty");
    }
}
